(* Benchmark harness: regenerates, for every quantitative claim of the
   paper (see DESIGN.md §3, experiments C1–C8), the table or series that
   supports it, and times the core operations with Bechamel.

   The paper (SIGMOD 1989) reports no absolute numbers — its evaluation
   is the worked figures plus performance arguments (storage compression
   in §1; footnote 1's repeated-join degradation; consolidation and
   explication costs in §3.3). Accordingly each experiment below prints
   the paper's *shape*: who wins, by what factor, and how the gap scales.

   Run with: dune exec bench/main.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Workload = Hr_workload.Workload
module Traditional = Hr_flat.Traditional
module Flat_relation = Hr_flat.Flat_relation
module Mine = Hr_mine.Mine
module Prng = Hr_util.Prng
module Texttable = Hr_util.Texttable
open Hierel

let section title = Format.printf "@.==== %s ====@." title

(* ---- Bechamel helpers ----------------------------------------------- *)

open Bechamel
open Toolkit

(* Per-run knobs (set from argv before any experiment runs) and the
   accumulated estimates, for the optional --metrics-json report. *)
let quota_s = ref 0.25
let metrics_json_path : string option ref = ref None
let collected : (string * float) list ref = ref []

let run_benches ~label tests =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota_s) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:label ~fmt:"%s %s" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let table = Texttable.create ~aligns:[ Texttable.Left; Texttable.Right ] [ "benchmark"; "ns/op" ] in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) ->
             collected := (name, e) :: !collected;
             Printf.sprintf "%.0f" e
           | Some [] | None -> "n/a"
         in
         Texttable.add_row table [ name; ns ]);
  print_string (Texttable.render table)

(* ---- C1: storage compression (paper §1) ------------------------------ *)

let bench_storage () =
  section "C1 — storage: one class tuple vs enumerated extension (paper §1)";
  let table =
    Texttable.create
      ~aligns:[ Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "extension size"; "hierarchical tuples"; "flat rows"; "flat bytes" ]
  in
  List.iter
    (fun (depth, fanout, ipl) ->
      let h = Workload.tree_hierarchy ~name:(Printf.sprintf "c1_%d_%d" depth ipl) ~depth ~fanout ~instances_per_leaf:ipl () in
      let schema = Schema.make [ ("v", h) ] in
      let rel =
        Relation.of_tuples ~name:"r" schema
          [ (Types.Pos, [ Hierarchy.node_label h (Hierarchy.root h) ]) ]
      in
      let flat = Traditional.extension_relation rel in
      Texttable.add_row table
        [
          string_of_int (Explicate.extension_size rel);
          string_of_int (Relation.cardinality rel);
          string_of_int (Flat_relation.cardinality flat);
          string_of_int (Flat_relation.approx_bytes flat);
        ])
    [ (1, 10, 1); (2, 10, 1); (2, 10, 10); (3, 10, 10) ];
  print_string (Texttable.render table);
  Format.printf
    "shape check: hierarchical storage is O(1) in the class size; flat storage is O(n).@."

(* ---- C2: membership queries vs repeated joins (footnote 1) ----------- *)

let bench_membership () =
  section "C2 — membership: O(1) binding vs one join per level (footnote 1)";
  let depths = [ 2; 4; 8; 16 ] in
  let table =
    Texttable.create
      ~aligns:[ Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "hierarchy depth"; "traditional join rounds"; "hierarchical lookups" ]
  in
  let setups =
    List.map
      (fun d ->
        let h = Workload.chain_hierarchy ~name:(Printf.sprintf "c2_%d" d) ~depth:d () in
        (d, h, Traditional.of_hierarchy h))
      depths
  in
  List.iter
    (fun (d, _, t) ->
      let _, joins = Traditional.member_join_count t ~instance:"leaf" ~cls:"c0" in
      Texttable.add_row table [ string_of_int d; string_of_int joins; "1" ])
    setups;
  print_string (Texttable.render table);
  let tests =
    List.concat_map
      (fun (d, h, t) ->
        let leaf = Hierarchy.find_exn h "leaf" and c0 = Hierarchy.find_exn h "c0" in
        ignore (Hierarchy.subsumes h c0 leaf) (* warm the reachability index *);
        [
          Test.make
            ~name:(Printf.sprintf "hier/depth %02d" d)
            (Staged.stage (fun () -> Hierarchy.subsumes h c0 leaf));
          Test.make
            ~name:(Printf.sprintf "trad/depth %02d" d)
            (Staged.stage (fun () -> Traditional.member t ~instance:"leaf" ~cls:"c0"));
        ])
      setups
  in
  run_benches ~label:"membership" tests;
  Format.printf
    "shape check: traditional latency grows with depth; hierarchical stays flat.@."

(* ---- C3: consolidation (paper §3.3.1) -------------------------------- *)

let bench_consolidate () =
  section "C3 — consolidation: compression vs redundancy rate (§3.3.1)";
  let g = Prng.create 11L in
  let h = Workload.tree_hierarchy ~name:"c3" ~depth:3 ~fanout:4 ~instances_per_leaf:2 () in
  let table =
    Texttable.create
      ~aligns:[ Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "redundancy"; "tuples before"; "tuples after"; "extension preserved" ]
  in
  let cases =
    List.map
      (fun redundancy ->
        let rel = Workload.redundant_relation (Prng.split g) h ~redundancy ~tuples:60 in
        let c = Consolidate.consolidate rel in
        Texttable.add_row table
          [
            Printf.sprintf "%.0f%%" (redundancy *. 100.);
            string_of_int (Relation.cardinality rel);
            string_of_int (Relation.cardinality c);
            string_of_bool (Flatten.equal_extension rel c);
          ];
        (redundancy, rel))
      [ 0.0; 0.3; 0.6; 0.9 ]
  in
  print_string (Texttable.render table);
  let tests =
    List.map
      (fun (redundancy, rel) ->
        Test.make
          ~name:(Printf.sprintf "redundancy %.0f%%" (redundancy *. 100.))
          (Staged.stage (fun () -> Consolidate.consolidate rel)))
      cases
  in
  run_benches ~label:"consolidate" tests

(* ---- C4: explication (paper §3.3.2) ----------------------------------- *)

let bench_explicate () =
  section "C4 — explication cost tracks extension size (§3.3.2)";
  let cases =
    List.map
      (fun (fanout, ipl) ->
        let h =
          Workload.tree_hierarchy ~name:(Printf.sprintf "c4_%d_%d" fanout ipl) ~depth:2 ~fanout
            ~instances_per_leaf:ipl ()
        in
        let schema = Schema.make [ ("v", h) ] in
        (* exception on the first depth-1 class actually present *)
        let some_leaf_class =
          List.find
            (fun c ->
              String.length (Hierarchy.node_label h c) > 1
              && (Hierarchy.node_label h c).[1] = '1')
            (Hierarchy.classes h)
        in
        let rel =
          Relation.of_tuples ~name:"r" schema
            [
              (Types.Pos, [ Hierarchy.node_label h (Hierarchy.root h) ]);
              (Types.Neg, [ Hierarchy.node_label h some_leaf_class ]);
            ]
        in
        (Explicate.extension_size rel, rel))
      [ (4, 4); (8, 4); (8, 16) ]
  in
  let tests =
    List.map
      (fun (size, rel) ->
        Test.make
          ~name:(Printf.sprintf "extension %5d" size)
          (Staged.stage (fun () -> Explicate.explicate rel)))
      cases
  in
  run_benches ~label:"explicate" tests

(* ---- C5: lifted set operations vs explicate-then-flat ----------------- *)

let bench_setops () =
  section "C5 — set ops: lifted (hierarchical) vs explicate-then-flat (§3.4)";
  let h = Workload.tree_hierarchy ~name:"c5" ~depth:2 ~fanout:6 ~instances_per_leaf:8 () in
  let schema = Schema.make [ ("v", h) ] in
  let deep_classes =
    List.filter
      (fun c ->
        let l = Hierarchy.node_label h c in
        String.length l > 1 && l.[0] = 'c' && l.[1] = '1')
      (Hierarchy.classes h)
    |> List.map (Hierarchy.node_label h)
  in
  let ca, cb =
    match deep_classes with a :: b :: _ -> (a, b) | _ -> assert false
  in
  let r1 =
    Relation.of_tuples ~name:"r1" schema [ (Types.Pos, [ "c5" ]); (Types.Neg, [ ca ]) ]
  in
  let r2 =
    Relation.of_tuples ~name:"r2" schema [ (Types.Pos, [ ca ]); (Types.Pos, [ cb ]) ]
  in
  let flat1 = Traditional.extension_relation r1 and flat2 = Traditional.extension_relation r2 in
  Format.printf "operands: %d and %d stored tuples (extensions %d and %d)@."
    (Relation.cardinality r1) (Relation.cardinality r2)
    (Flat_relation.cardinality flat1) (Flat_relation.cardinality flat2);
  let tests =
    [
      Test.make ~name:"lifted union" (Staged.stage (fun () -> Ops.union r1 r2));
      Test.make ~name:"lifted diff" (Staged.stage (fun () -> Ops.diff r1 r2));
      Test.make ~name:"flat union (pre-explicated)"
        (Staged.stage (fun () -> Flat_relation.union flat1 flat2));
      Test.make ~name:"flat union + explication cost"
        (Staged.stage (fun () ->
             Flat_relation.union (Traditional.extension_relation r1)
               (Traditional.extension_relation r2)));
    ]
  in
  run_benches ~label:"setops" tests;
  Format.printf
    "shape check: lifted ops work on O(tuples); the flat path pays O(extension) each time.@."

(* ---- C6: integrity checking (§3.1) ------------------------------------ *)

let bench_integrity () =
  section "C6 — ambiguity-constraint checking cost (§3.1)";
  let g = Prng.create 23L in
  let cases =
    List.map
      (fun tuples ->
        let h =
          Workload.random_hierarchy (Prng.split g)
            { Workload.default_hierarchy_spec with name = Printf.sprintf "c6_%d" tuples }
        in
        let schema = Schema.make [ ("v", h) ] in
        let rel =
          Workload.consistent_random_relation (Prng.split g) schema
            { Workload.default_relation_spec with tuples }
        in
        (tuples, rel))
      [ 10; 30; 60 ]
  in
  let tests =
    List.map
      (fun (tuples, rel) ->
        Test.make
          ~name:(Printf.sprintf "%2d tuples" tuples)
          (Staged.stage (fun () -> Integrity.is_consistent rel)))
      cases
  in
  run_benches ~label:"integrity" tests

(* ---- C7: preemption semantics ablation (Appendix) --------------------- *)

let bench_preemption () =
  section "C7 — preemption semantics ablation (Appendix)";
  let h, rel = Workload.exception_chain ~name:"c7dom" ~depth:10 ~instances_per_class:2 () in
  let schema = Relation.schema rel in
  let deepest = Item.of_names schema [ "i9_1" ] in
  let answers =
    List.map
      (fun sem ->
        ( Format.asprintf "%a" Types.pp_semantics sem,
          match Binding.verdict ~semantics:sem rel deepest with
          | Binding.Asserted (s, _) -> Format.asprintf "%a" Types.pp_sign s
          | Binding.Unasserted -> "unasserted"
          | Binding.Conflict _ -> "conflict" ))
      [ Types.Off_path; Types.On_path; Types.No_preemption ]
  in
  let table = Texttable.create [ "semantics"; "verdict at depth-10 instance" ] in
  List.iter (fun (s, v) -> Texttable.add_row table [ s; v ]) answers;
  print_string (Texttable.render table);
  ignore h;
  let tests =
    List.map
      (fun sem ->
        Test.make
          ~name:(Format.asprintf "%a" Types.pp_semantics sem)
          (Staged.stage (fun () -> Binding.verdict ~semantics:sem rel deepest)))
      [ Types.Off_path; Types.On_path; Types.No_preemption ]
  in
  run_benches ~label:"preemption" tests

(* ---- C8: storage-minimizing organization (Conclusion) ----------------- *)

let bench_mine () =
  section "C8 — mechanical organization minimizes storage (Conclusion)";
  let h = Workload.tree_hierarchy ~name:"c8" ~depth:3 ~fanout:4 ~instances_per_leaf:4 () in
  let instances = Hierarchy.instances h in
  let n = List.length instances in
  let table =
    Texttable.create
      ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "membership pattern"; "members"; "tuples stored"; "compression" ]
  in
  let patterns =
    [
      ("everything", List.map (Hierarchy.node_label h) instances);
      ( "all but one",
        List.map (Hierarchy.node_label h) (List.tl instances) );
      ( "every other subtree",
        List.filteri (fun i _ -> i / 16 mod 2 = 0) instances
        |> List.map (Hierarchy.node_label h) );
      ( "random half",
        let g = Prng.create 31L in
        List.filter (fun _ -> Prng.bool g) instances |> List.map (Hierarchy.node_label h) );
    ]
  in
  let organized =
    List.map
      (fun (label, members) ->
        let rel = Mine.organize h ~members in
        Texttable.add_row table
          [
            label;
            Printf.sprintf "%d/%d" (List.length members) n;
            string_of_int (Relation.cardinality rel);
            Printf.sprintf "%.1fx" (Mine.compression_ratio rel);
          ];
        (label, members))
      patterns
  in
  print_string (Texttable.render table);
  let tests =
    List.map
      (fun (label, members) ->
        Test.make ~name:label (Staged.stage (fun () -> Mine.organize h ~members)))
      organized
  in
  run_benches ~label:"mine" tests

(* ---- C9: indexed vs scanned binding queries (§4 efficiency) ----------- *)

let bench_index () =
  section "C9 — binding queries: indexed vs full scan (§4 efficiency promise)";
  let g = Prng.create 41L in
  (* One hierarchy (and one probe) shared by every size, so the cases
     differ only in tuple count — separate random hierarchies per case
     made the sizes incomparable (ancestor-set shape dominated, which is
     how 100 tuples once benched slower than 400). *)
  let h =
    Workload.random_hierarchy (Prng.split g)
      {
        Workload.name = "c9";
        classes = 60;
        instances = 200;
        multi_parent_prob = 0.15;
      }
  in
  let schema = Schema.make [ ("v", h) ] in
  let probe = Item.make schema [| List.hd (Hierarchy.instances h) |] in
  let cases =
    List.map
      (fun tuples ->
        let rel =
          Workload.consistent_random_relation (Prng.split g) schema
            { Workload.default_relation_spec with tuples }
        in
        let idx = Index.build rel in
        (tuples, rel, idx, probe))
      [ 25; 100; 400 ]
  in
  let tests =
    List.concat_map
      (fun (tuples, rel, idx, probe) ->
        [
          Test.make
            ~name:(Printf.sprintf "scan/%3d tuples" tuples)
            (Staged.stage (fun () -> Binding.verdict rel probe));
          Test.make
            ~name:(Printf.sprintf "index/%3d tuples" tuples)
            (Staged.stage (fun () -> Index.verdict idx probe));
        ])
      cases
  in
  run_benches ~label:"binding" tests;
  Format.printf
    "shape check: scan cost grows with relation size; indexed probes stay near-flat.@."

(* ---- C10: storage engine costs ----------------------------------------- *)

let bench_storage_engine () =
  section "C10 — storage engine: snapshot codec and WAL append";
  let g = Prng.create 53L in
  let cat = Catalog.create () in
  let h =
    Workload.random_hierarchy (Prng.split g)
      { Workload.default_hierarchy_spec with name = "c10"; classes = 40; instances = 120 }
  in
  Catalog.define_hierarchy cat h;
  let schema = Schema.make [ ("v", h) ] in
  Catalog.define_relation cat
    (Workload.consistent_random_relation (Prng.split g) schema
       { Workload.default_relation_spec with rel_name = "c10_rel"; tuples = 80 });
  let encoded = Hr_storage.Snapshot.encode cat in
  Format.printf "snapshot size for 160-node hierarchy + 80-tuple relation: %d bytes@."
    (String.length encoded);
  let wal_dir = Filename.temp_file "hrbench" "" in
  Sys.remove wal_dir;
  Sys.mkdir wal_dir 0o755;
  let wal_path = Filename.concat wal_dir "wal.log" in
  (* No-fsync WAL: the bench isolates serialization + buffered-write +
     flush cost; C14 measures real fsync'd throughput end to end. *)
  let wal = Hr_storage.Wal.open_ ~fsync:false wal_path in
  let lsn = ref 0 in
  let tests =
    [
      Test.make ~name:"snapshot encode" (Staged.stage (fun () -> Hr_storage.Snapshot.encode cat));
      Test.make ~name:"snapshot decode (checked)"
        (Staged.stage (fun () -> Hr_storage.Snapshot.decode encoded));
      Test.make ~name:"snapshot decode (trusted)"
        (Staged.stage (fun () -> Hr_storage.Snapshot.decode ~check:false encoded));
      Test.make ~name:"wal append (buffered)"
        (Staged.stage (fun () ->
             incr lsn;
             Hr_storage.Wal.append wal ~lsn:!lsn "INSERT INTO c10_rel VALUES (+ c10_i1);"));
      Test.make ~name:"wal append+sync"
        (Staged.stage (fun () ->
             incr lsn;
             Hr_storage.Wal.append wal ~lsn:!lsn "INSERT INTO c10_rel VALUES (+ c10_i1);";
             Hr_storage.Wal.sync wal));
    ]
  in
  run_benches ~label:"storage" tests;
  Hr_storage.Wal.close wal;
  Sys.remove wal_path;
  Sys.rmdir wal_dir

(* ---- C14: group commit — multi-client mutation throughput --------------- *)

(* End-to-end durable throughput through the real server event loop and
   wire protocol, with real fsyncs. Two arms:

   - per-stmt sync: one request/response client — every statement waits
     for its own fsync'd ack, the pre-group-commit behaviour;
   - group commit: [--clients K] pipelined clients — the event loop
     drains every readable frame per tick and all of them share one
     WAL flush+fsync at the commit point.

   Both arms report ns/statement (schema-compatible with the bechamel
   estimates in the JSON report); the speedup is their ratio. *)

let clients_k = ref 8

let bench_group_commit () =
  let module Server = Hr_server.Server in
  let module Wire = Hr_frames.Wire in
  let module Metrics = Hr_obs.Metrics in
  section
    (Printf.sprintf "C14 — group commit: durable mutation throughput (%d pipelined clients)"
       !clients_k);
  let with_temp_dir f =
    let dir = Filename.temp_file "hrbench_c14" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ())
      (fun () -> f dir)
  in
  (* Scale the statement count with --quota so the CI smoke run stays
     cheap while the default run measures something stable. *)
  let stmts_per_client = max 30 (int_of_float (!quota_s *. 800.)) in
  let stmt = "INSERT INTO r VALUES (+ c14_i1);" in
  let frame = Wire.frame "EXEC" stmt in
  let run_arm ~clients ~pipelined =
    with_temp_dir (fun dir ->
        let server = Server.create_durable ~port:0 ~dir () in
        Fun.protect
          ~finally:(fun () -> Server.close server)
          (fun () ->
            let port = Server.port server in
            (* schema setup over a throwaway request/response client *)
            let setup = Server.Client.connect ~timeout:10.0 ~port () in
            let setup_fd = Server.Client.fd setup in
            Wire.send setup_fd "EXEC"
              "CREATE DOMAIN c14_d; CREATE INSTANCE c14_i1 OF c14_d; CREATE RELATION r (v: c14_d);";
            let rec await_setup () =
              ignore (Server.poll server 0.01);
              match Unix.select [ setup_fd ] [] [] 0.0 with
              | [ _ ], _, _ -> (
                match Server.Client.recv setup with
                | Ok _ -> ()
                | Error msg -> failwith ("C14 setup: " ^ msg))
              | _ -> await_setup ()
            in
            await_setup ();
            Server.Client.close setup;
            ignore (Server.poll server 0.01);
            let appends0 = Metrics.counter_value "storage.wal.appends" in
            let syncs0 = Metrics.counter_value "storage.wal.sync_batches" in
            let fsyncs0 = Metrics.counter_value "storage.wal.fsyncs" in
            (* per-client pipelined sender/ack-counter state machine *)
            let conns =
              Array.init clients (fun _ ->
                  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
                  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
                  Unix.set_nonblock fd;
                  (fd, Wire.Decoder.create (), ref 0 (* sent *), ref 0 (* acked *),
                   ref 0 (* offset into the in-flight frame *)))
            in
            let total = clients * stmts_per_client in
            let acked_total = ref 0 in
            let buf = Bytes.create 65536 in
            let t0 = Unix.gettimeofday () in
            while !acked_total < total do
              ignore (Server.poll server 0.002);
              Array.iter
                (fun (fd, dec, sent, acked, off) ->
                  (* send while the socket accepts bytes; the baseline
                     arm keeps at most one statement in flight *)
                  (try
                     while
                       !sent < stmts_per_client
                       && (pipelined || !acked = !sent)
                     do
                       let n =
                         Unix.write_substring fd frame !off (String.length frame - !off)
                       in
                       off := !off + n;
                       if !off = String.length frame then begin
                         off := 0;
                         incr sent
                       end
                     done
                   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> failwith "C14: server closed a client connection"
                  | n ->
                    Wire.Decoder.feed dec buf n;
                    let rec drain () =
                      match Wire.Decoder.next dec with
                      | Ok (Some (tag, payload)) ->
                        if tag = "ERR" then failwith ("C14: ERR reply: " ^ payload);
                        incr acked;
                        incr acked_total;
                        drain ()
                      | Ok None -> ()
                      | Error msg -> failwith ("C14: bad reply frame: " ^ msg)
                    in
                    drain ()
                  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
                conns
            done;
            let elapsed = Unix.gettimeofday () -. t0 in
            Array.iter (fun (fd, _, _, _, _) -> Unix.close fd) conns;
            let appends = Metrics.counter_value "storage.wal.appends" - appends0 in
            let syncs = Metrics.counter_value "storage.wal.sync_batches" - syncs0 in
            let fsyncs = Metrics.counter_value "storage.wal.fsyncs" - fsyncs0 in
            (total, elapsed, appends, syncs, fsyncs)))
  in
  let report name (total, elapsed, appends, syncs, fsyncs) =
    let per_sec = float total /. elapsed in
    let ns_per_stmt = elapsed /. float total *. 1e9 in
    collected := (name ^ " ns/stmt", ns_per_stmt) :: !collected;
    Format.printf
      "%s: %d stmts in %.3fs = %.0f stmts/s (%.0f ns/stmt); %d appends, %d sync batches, %d \
       fsyncs (%.1f stmts/sync)@."
      name total elapsed per_sec ns_per_stmt appends syncs fsyncs
      (float appends /. float (max 1 syncs));
    ns_per_stmt
  in
  let baseline = run_arm ~clients:1 ~pipelined:false in
  let grouped = run_arm ~clients:!clients_k ~pipelined:true in
  let ns_base = report "C14 per-stmt sync (1 client)" baseline in
  let ns_grp =
    report (Printf.sprintf "C14 group commit (%d clients)" !clients_k) grouped
  in
  let _, _, grp_appends, grp_syncs, _ = grouped in
  Format.printf "group-commit speedup: %.1fx; batching %s@." (ns_base /. ns_grp)
    (if grp_syncs < grp_appends then "confirmed (sync batches < appends)"
     else "NOT OBSERVED (sync batches >= appends)")

(* ---- C12: page-level I/O of both representations ------------------------ *)

let bench_page_io () =
  section "C12 — page I/O: hierarchical stored form vs enumerated extension";
  let table =
    Texttable.create
      ~aligns:
        [ Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "extension"; "hier rows"; "hier pages"; "flat rows"; "flat pages" ]
  in
  List.iter
    (fun (fanout, ipl) ->
      let h =
        Workload.tree_hierarchy ~name:(Printf.sprintf "c12_%d_%d" fanout ipl) ~depth:2 ~fanout
          ~instances_per_leaf:ipl ()
      in
      let schema = Schema.make [ ("v", h) ] in
      let rel =
        Relation.of_tuples ~name:"r" schema
          [ (Types.Pos, [ Hierarchy.node_label h (Hierarchy.root h) ]) ]
      in
      let flat = Traditional.extension_relation rel in
      let with_heap fill =
        let path = Filename.temp_file "hrc12" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let hf = Hr_storage.Heap_file.create path in
            fill hf;
            let pages = Hr_storage.Heap_file.page_count hf in
            let rows = Hr_storage.Heap_file.row_count hf in
            Hr_storage.Heap_file.close hf;
            (rows, pages))
      in
      let hier_rows, hier_pages =
        with_heap (fun hf ->
            Relation.iter
              (fun (t : Relation.tuple) ->
                Hr_storage.Heap_file.append hf
                  (Format.asprintf "%a%s" Types.pp_sign t.Relation.sign
                     (Item.to_string schema t.Relation.item)))
              rel)
      in
      let flat_rows, flat_pages =
        with_heap (fun hf ->
            Flat_relation.fold
              (fun row () -> Hr_storage.Heap_file.append hf (String.concat "," row))
              flat ())
      in
      Texttable.add_row table
        [
          string_of_int (Explicate.extension_size rel);
          string_of_int hier_rows;
          string_of_int hier_pages;
          string_of_int flat_rows;
          string_of_int flat_pages;
        ])
    [ (8, 8); (16, 16); (32, 32) ];
  print_string (Texttable.render table);
  Format.printf
    "shape check: the hierarchical form stays within one page while the flat form grows.@."

(* ---- C13: semantic-net geometric growth (§2.1) --------------------------- *)

let bench_semantic_net () =
  section "C13 — semantic nets: product-taxonomy blow-up vs tuples (§2.1)";
  (* A semantic net folds associations into the taxonomy: a k-attribute
     association needs class nodes for the product regions and their
     ancestors, while the hierarchical model keeps the k taxonomies
     separate and stores one tuple per association. Count both. *)
  let domain k =
    Workload.tree_hierarchy ~name:(Printf.sprintf "c13_%d" k) ~depth:2 ~fanout:3
      ~instances_per_leaf:2 ()
  in
  let table =
    Texttable.create
      ~aligns:[ Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "attributes k"; "taxonomy nodes (ours)"; "tuples (ours)"; "semantic-net product nodes" ]
  in
  List.iter
    (fun k ->
      let hs = List.init k domain in
      let per_domain = Hierarchy.node_count (List.hd hs) in
      (* one association asserted on a mid-level class of each coordinate *)
      let mid h =
        List.find
          (fun c ->
            c <> Hierarchy.root h
            &&
            let l = Hierarchy.node_label h c in
            String.length l > 2 && l.[0] = 'c' && l.[1] = '1' && l.[2] = '_')
          (Hierarchy.classes h)
      in
      (* net nodes: every ancestor combination of the asserted region must
         exist as an explicit class in the folded taxonomy *)
      let net_nodes =
        List.fold_left
          (fun acc h -> acc * List.length (Hierarchy.ancestors h (mid h)))
          1 hs
        |> fun product_region ->
        (* plus the k base taxonomies themselves *)
        (per_domain * k) + product_region
      in
      let ours_taxonomy = per_domain * k in
      let ours_tuples = 1 in
      Texttable.add_row table
        [
          string_of_int k;
          string_of_int ours_taxonomy;
          string_of_int ours_tuples;
          string_of_int net_nodes;
        ])
    [ 1; 2; 3; 4 ];
  print_string (Texttable.render table);
  Format.printf
    "shape check: our storage is linear in k; the folded-taxonomy encoding grows geometrically.@."

(* ---- C11: HRQL end-to-end ----------------------------------------------- *)

let bench_hrql () =
  section "C11 — HRQL: parse, optimize, evaluate";
  let cat = Catalog.create () in
  let setup =
    {|
    CREATE DOMAIN animal;
    CREATE CLASS bird UNDER animal;
    CREATE CLASS penguin UNDER bird;
    CREATE CLASS afp UNDER penguin;
    CREATE INSTANCE tweety OF bird;
    CREATE INSTANCE paul OF penguin;
    CREATE INSTANCE pamela OF afp;
    CREATE RELATION jack (creature: animal);
    CREATE RELATION jill (creature: animal);
    INSERT INTO jack VALUES (+ ALL bird), (- ALL penguin);
    INSERT INTO jill VALUES (+ ALL penguin), (- ALL afp);
    |}
  in
  (match Hr_query.Eval.run_script cat setup with Ok _ -> () | Error e -> failwith e);
  let ask = "ASK jack (pamela);" in
  let select = "SELECT * FROM SELECT (jack UNION jill) WHERE creature = penguin;" in
  let tests =
    [
      Test.make ~name:"parse only"
        (Staged.stage (fun () -> Hr_query.Parser.parse select));
      Test.make ~name:"ASK end-to-end"
        (Staged.stage (fun () -> Hr_query.Eval.run_script cat ask));
      Test.make ~name:"SELECT over UNION end-to-end"
        (Staged.stage (fun () -> Hr_query.Eval.run_script cat select));
    ]
  in
  run_benches ~label:"hrql" tests

(* ---- C15: estimator accuracy — estimated vs actual rows ------------------ *)

(* Per-workload q-error summaries and catalog statistics, accumulated
   for the --metrics-json report (docs/OBSERVABILITY.md, docs/COST.md). *)
let c15_json : (string * Hr_obs.Jsonout.t) list ref = ref []

(* The standard q-error with +1 smoothing, so empty nodes (estimated or
   actual) stay finite. *)
let qerror est actual =
  let e = est +. 1.0 and a = float_of_int actual +. 1.0 in
  Float.max (e /. a) (a /. e)

let median = function
  | [] -> 0.0
  | xs ->
    let sorted = List.sort compare xs in
    List.nth sorted (List.length sorted / 2)

(* Pairs each estimate node with the evaluated node of the same plan —
   Cost_model.plan and Eval.analyze_raw both walk Optimizer.optimize's
   output, so the trees are shape-identical by construction. *)
let rec zip_estimates (n : Hr_analysis.Cost_model.node) (a : Hr_query.Eval.analyzed) acc =
  let acc = (n.Hr_analysis.Cost_model.n_label, n.Hr_analysis.Cost_model.n_rows, a.Hr_query.Eval.a_rows) :: acc in
  List.fold_left2
    (fun acc c ac -> zip_estimates c ac acc)
    acc n.Hr_analysis.Cost_model.n_children a.Hr_query.Eval.a_children

(* Per-class extension counts and cone sizes — the statistics the
   estimator reads, snapshotted so a metrics report pins down the
   catalog the q-errors were measured against. *)
let catalog_stats cat =
  let open Hr_obs.Jsonout in
  let per_hierarchy h =
    let classes =
      List.filter (fun v -> not (Hierarchy.is_instance h v)) (Hierarchy.nodes h)
    in
    ( Hr_util.Symbol.name (Hierarchy.domain h),
      Obj
        (List.map
           (fun v ->
             ( Hierarchy.node_label h v,
               Obj
                 [
                   ("extension", Int (Hr_analysis.Cost_model.extension_count h v));
                   ("cone", Int (Hr_analysis.Cost_model.cone_size h v));
                 ] ))
           classes) )
  in
  Obj (List.map per_hierarchy (Catalog.hierarchies cat))

let bench_estimator () =
  section "C15 — estimator accuracy: estimated vs actual rows per plan node";
  let module Cost_model = Hr_analysis.Cost_model in
  let run_workload (name, cat, queries) =
    let src = Cost_model.of_catalog cat in
    let qs = ref [] in
    let nodes = ref 0 in
    List.iter
      (fun q ->
        let { Hr_query.Ast.stmt; _ } =
          Hr_query.Parser.parse_statement ("EXPLAIN ESTIMATE " ^ q)
        in
        let expr =
          match stmt with
          | Hr_query.Ast.Explain_estimate e -> e
          | _ -> failwith "C15: not an expression"
        in
        match Cost_model.plan src expr with
        | Error msg -> failwith ("C15 " ^ name ^ ": " ^ msg)
        | Ok (optimized, root) ->
          let _, actual = Hr_query.Eval.analyze_raw cat optimized in
          let pairs = zip_estimates root actual [] in
          nodes := !nodes + List.length pairs;
          List.iter (fun (_, est, act) -> qs := qerror est act :: !qs) pairs)
      queries;
    let med = median !qs and worst = List.fold_left Float.max 1.0 !qs in
    c15_json :=
      ( name,
        Hr_obs.Jsonout.Obj
          [
            ("queries", Hr_obs.Jsonout.Int (List.length queries));
            ("nodes", Hr_obs.Jsonout.Int !nodes);
            ("median_q_error", Hr_obs.Jsonout.Float med);
            ("max_q_error", Hr_obs.Jsonout.Float worst);
            ("catalog", catalog_stats cat);
          ] )
      :: !c15_json;
    (name, List.length queries, !nodes, med, worst)
  in
  let scripted name setup queries =
    let cat = Catalog.create () in
    (match Hr_query.Eval.run_script cat setup with
    | Ok _ -> ()
    | Error e -> failwith ("C15 setup: " ^ e));
    (name, cat, queries)
  in
  let flat =
    scripted "flat"
      {|
      CREATE DOMAIN d;
      CREATE INSTANCE x1 OF d; CREATE INSTANCE x2 OF d;
      CREATE INSTANCE x3 OF d; CREATE INSTANCE x4 OF d;
      CREATE RELATION r (v: d);
      CREATE RELATION s (v: d);
      INSERT INTO r VALUES (+ x1), (+ x2), (+ x3);
      INSERT INTO s VALUES (+ x2), (+ x3), (+ x4);
      |}
      [
        "r";
        "SELECT r WHERE v = x1";
        "r UNION s";
        "r INTERSECT s";
        "r JOIN s";
      ]
  in
  let hierarchy =
    scripted "hierarchy"
      {|
      CREATE DOMAIN animal;
      CREATE CLASS bird UNDER animal;
      CREATE CLASS penguin UNDER bird;
      CREATE CLASS afp UNDER penguin;
      CREATE INSTANCE tweety OF bird;
      CREATE INSTANCE paul OF penguin;
      CREATE INSTANCE pamela OF afp;
      CREATE RELATION jack (creature: animal);
      CREATE RELATION jill (creature: animal);
      INSERT INTO jack VALUES (+ ALL bird), (- ALL penguin);
      INSERT INTO jill VALUES (+ ALL penguin), (- ALL afp);
      |}
      [
        "jack";
        "SELECT jack WHERE creature = penguin";
        "jack UNION jill";
        "EXPLICATED jack";
        "EXPLICATED (jack UNION jill)";
      ]
  in
  let synthetic =
    let h =
      Workload.tree_hierarchy ~name:"syn" ~depth:2 ~fanout:3
        ~instances_per_leaf:2 ()
    in
    let cat = Catalog.create () in
    Catalog.define_hierarchy cat h;
    let prng = Prng.create 15L in
    let schema = Schema.make [ ("a", h); ("b", h) ] in
    let rel =
      Workload.repair prng
        (Workload.random_relation prng schema
           { Workload.default_relation_spec with Workload.rel_name = "syn_rel"; tuples = 12 })
    in
    Catalog.define_relation cat rel;
    ( "synthetic",
      cat,
      [ "syn_rel"; "SELECT syn_rel WHERE a = c0_1"; "EXPLICATED syn_rel" ] )
  in
  let table =
    Texttable.create
      ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Right; Texttable.Right; Texttable.Right ]
      [ "workload"; "queries"; "nodes"; "median q-error"; "max q-error" ]
  in
  List.iter
    (fun w ->
      let name, queries, nodes, med, worst = run_workload w in
      Texttable.add_row table
        [
          name;
          string_of_int queries;
          string_of_int nodes;
          Printf.sprintf "%.2f" med;
          Printf.sprintf "%.2f" worst;
        ])
    [ flat; hierarchy; synthetic ];
  print_string (Texttable.render table)

(* ---- figure regeneration check (F1–F11) -------------------------------- *)

let check_figures () =
  section "F1–F11 — figure regeneration summary (details: dune exec bin/figures.exe)";
  let h = Hierarchy.create "animal_b" in
  ignore (Hierarchy.add_class h "bird");
  ignore (Hierarchy.add_class h ~parents:[ "bird" ] "penguin");
  ignore (Hierarchy.add_class h ~parents:[ "penguin" ] "afp");
  ignore (Hierarchy.add_instance h ~parents:[ "bird" ] "tweety");
  ignore (Hierarchy.add_instance h ~parents:[ "penguin" ] "paul");
  ignore (Hierarchy.add_instance h ~parents:[ "afp" ] "pamela");
  let schema = Schema.make [ ("creature", h) ] in
  let flies =
    Relation.of_tuples ~name:"flies" schema
      [ (Types.Pos, [ "bird" ]); (Types.Neg, [ "penguin" ]); (Types.Pos, [ "afp" ]) ]
  in
  let checks =
    [
      ("F1 exception chain verdicts",
       Binding.holds flies (Item.of_names schema [ "tweety" ])
       && (not (Binding.holds flies (Item.of_names schema [ "paul" ])))
       && Binding.holds flies (Item.of_names schema [ "pamela" ]));
      ("F5/F6 consolidation fixpoint", Consolidate.is_consolidated (Consolidate.consolidate flies));
      ("F10 union extension", List.length (Flatten.extension_list (Ops.union flies flies)) = 2);
      ("ambiguity constraint", Integrity.is_consistent flies);
    ]
  in
  let table = Texttable.create [ "check"; "status" ] in
  List.iter
    (fun (name, ok) -> Texttable.add_row table [ name; (if ok then "ok" else "FAILED") ])
    checks;
  print_string (Texttable.render table)

(* ---- C17: sharding — partitioned writes and scatter-gather reads --------- *)

(* End-to-end throughput through a real sharded deployment: K forked
   backend shard servers, a shard map splitting four subtree classes
   round-robin across them, and the router forked on top. The same
   workload runs at K in {1, 2, --shards}: every arm inserts the same
   instances into the same relation, so only the partitioning varies.

   - writes: 8 pipelined clients, each a stream of single-statement,
     single-shard INSERTs (the router's fast path). Per-insert cost
     grows with the shard's stored relation, so partitioning K ways
     both parallelizes the work and shrinks every shard's relation —
     the paper's locality argument made measurable. Shards run with
     fsync off so the arm compares sharding, not disk sync (C14
     measures the real durability hot path).
   - reads: synchronous full-relation scatter-gather queries — the
     router pulls every shard, merges with subsumption-aware dedup, and
     evaluates locally.

   Must run before C16: the shard and router processes are forked, and
   spawning a domain forbids Unix.fork for the rest of the process. *)

let shards_k = ref 4

let bench_sharding () =
  let module Server = Hr_server.Server in
  let module Client = Hr_server.Server.Client in
  let module Router = Hr_shard.Router in
  let module Shard_map = Hr_check.Shard_map in
  let module Wire = Hr_frames.Wire in
  section
    (Printf.sprintf
       "C17 — sharding: partitioned write throughput and scatter-gather reads \
        (K in {1, 2, %d})"
       !shards_k);
  let clients = 8 in
  let subtrees = 4 in
  let stmts_per_client = max 25 (int_of_float (!quota_s *. 300.)) in
  let queries = max 20 (int_of_float (!quota_s *. 120.)) in
  let instance c j = Printf.sprintf "c17_x%d_%d" c j in
  let setup_script =
    String.concat " "
      ([ "CREATE DOMAIN c17_d;" ]
      @ List.init subtrees (fun s ->
            Printf.sprintf "CREATE CLASS c17_s%d UNDER c17_d;" s)
      @ List.concat
          (List.init clients (fun c ->
               List.init stmts_per_client (fun j ->
                   Printf.sprintf "CREATE INSTANCE %s OF c17_s%d;" (instance c j)
                     (c mod subtrees))))
      @ [ "CREATE RELATION c17_r (v: c17_d);" ])
  in
  let temp_dir tag =
    let dir = Filename.temp_file ("hrbench_c17_" ^ tag) "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    dir
  in
  let rm_dir dir =
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  let kill pid =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let run_arm k =
    let dirs = List.init k (fun i -> temp_dir (string_of_int i)) in
    let pids = ref [] in
    Fun.protect
      ~finally:(fun () ->
        List.iter kill !pids;
        List.iter rm_dir dirs)
      (fun () ->
        let ports =
          List.map
            (fun dir ->
              let server = Server.create_durable ~port:0 ~dir ~fsync:false () in
              let port = Server.port server in
              (match Unix.fork () with
              | 0 ->
                (try Server.serve_forever server with _ -> ());
                Unix._exit 0
              | pid -> pids := pid :: !pids);
              port)
            dirs
        in
        let map_text =
          String.concat "\n"
            (List.mapi
               (fun i p -> Printf.sprintf "shard %d 127.0.0.1:%d" i p)
               ports
            @ List.init subtrees (fun s ->
                  Printf.sprintf "subtree c17_s%d %d" s (s mod k))
            @ [ "default 0" ])
        in
        let map =
          match Shard_map.parse map_text with
          | Ok m -> m
          | Error e -> failwith ("C17 map: " ^ e)
        in
        let router = Router.create ~port:0 ~timeout:10.0 ~map () in
        let rport = Router.port router in
        (match Unix.fork () with
        | 0 ->
          (try Router.serve_forever router with _ -> ());
          Unix._exit 0
        | pid -> pids := pid :: !pids);
        let setup = Client.connect ~timeout:30.0 ~port:rport () in
        (match Client.exec setup setup_script with
        | Ok _ -> ()
        | Error msg -> failwith ("C17 setup: " ^ msg));
        Client.close setup;
        (* pipelined partitioned writes, the C14 client state machine *)
        let conns =
          Array.init clients (fun _ ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, rport));
              Unix.set_nonblock fd;
              (fd, Wire.Decoder.create (), ref 0 (* sent *), ref 0 (* acked *),
               ref 0 (* offset *), Buffer.create 256))
        in
        let frame_for c j =
          Wire.frame "EXEC"
            (Printf.sprintf "INSERT INTO c17_r VALUES (+ %s);" (instance c j))
        in
        let total = clients * stmts_per_client in
        let acked_total = ref 0 in
        let buf = Bytes.create 65536 in
        let t0 = Unix.gettimeofday () in
        while !acked_total < total do
          Array.iteri
            (fun c (fd, dec, sent, acked, off, pending) ->
              (try
                 while !sent < stmts_per_client do
                   if Buffer.length pending = 0 then
                     Buffer.add_string pending (frame_for c !sent);
                   let s = Buffer.contents pending in
                   let n = Unix.write_substring fd s !off (String.length s - !off) in
                   off := !off + n;
                   if !off = String.length s then begin
                     off := 0;
                     Buffer.clear pending;
                     incr sent
                   end
                 done
               with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> failwith "C17: router closed a client connection"
              | n ->
                Wire.Decoder.feed dec buf n;
                let rec drain () =
                  match Wire.Decoder.next dec with
                  | Ok (Some (tag, payload)) ->
                    if tag = "ERR" then failwith ("C17: ERR reply: " ^ payload);
                    incr acked;
                    incr acked_total;
                    drain ()
                  | Ok None -> ()
                  | Error msg -> failwith ("C17: bad reply frame: " ^ msg)
                in
                drain ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                -> ())
            conns;
        done;
        let write_elapsed = Unix.gettimeofday () -. t0 in
        Array.iter (fun (fd, _, _, _, _, _) -> Unix.close fd) conns;
        (* synchronous scatter-gather reads over the merged relation *)
        let q = Client.connect ~timeout:30.0 ~port:rport () in
        let t1 = Unix.gettimeofday () in
        for _ = 1 to queries do
          match Client.exec q "SELECT * FROM c17_r;" with
          | Ok _ -> ()
          | Error msg -> failwith ("C17 query: " ^ msg)
        done;
        let read_elapsed = Unix.gettimeofday () -. t1 in
        Client.close q;
        let write_ns = write_elapsed /. float total *. 1e9 in
        let read_ns = read_elapsed /. float queries *. 1e9 in
        Format.printf
          "K=%d: %d inserts in %.3fs = %.0f stmts/s (%.0f ns/stmt); %d \
           scatter-gather queries at %.0f ns/op@."
          k total write_elapsed
          (float total /. write_elapsed)
          write_ns queries read_ns;
        collected :=
          (Printf.sprintf "C17 sharded writes K=%d ns/stmt" k, write_ns)
          :: (Printf.sprintf "C17 scatter-gather query K=%d ns/op" k, read_ns)
          :: !collected;
        (write_ns, read_ns))
  in
  let arms =
    List.sort_uniq compare (List.filter (fun k -> k > 0) [ 1; 2; !shards_k ])
  in
  let results = List.map (fun k -> (k, run_arm k)) arms in
  match (List.assoc_opt 1 results, List.assoc_opt !shards_k results) with
  | Some (w1, _), Some (wk, _) when !shards_k > 1 ->
    Format.printf "write speedup at K=%d: %.2fx (%d cores)@." !shards_k
      (w1 /. wk)
      (Domain.recommended_domain_count ())
  | _ -> ()

(* ---- C16: reader domains — snapshot-isolated read throughput ------------ *)

(* Read QPS through the pool server (lib/exec) at K=1 vs K=N reader
   domains: the C14 pipelined-client state machine, but the traffic is
   read-only, so every frame is offloaded to the domain pool and
   evaluated against the pinned catalog version while the event loop
   only shuttles bytes. On a multi-core host the K=N arm must scale;
   the CI assertion (>= 2.5x at K=4) is gated on the [cores] field the
   JSON report records, because a 1-core container can only interleave.

   Must stay last in the experiment list: spawning a domain forbids
   Unix.fork for the rest of the process. *)

let reader_domains_k = ref 4

let bench_reader_domains () =
  let module Server = Hr_server.Server in
  let module Wire = Hr_frames.Wire in
  section
    (Printf.sprintf
       "C16 — reader domains: snapshot-isolated read throughput (K=1 vs K=%d)"
       !reader_domains_k);
  let reads_per_client = max 150 (int_of_float (!quota_s *. 1200.)) in
  let clients = 6 in
  (* The reads must be evaluation-heavy (subsumption reasoning) with
     small replies: evaluation runs on the domains and scales with K,
     while reply bytes are shuttled by the single event-loop thread and
     do not. *)
  let setup_script =
    String.concat " "
      ([ "CREATE DOMAIN c16_d;";
         "CREATE CLASS c16_c0 UNDER c16_d; CREATE CLASS c16_c1 UNDER c16_d;";
         "CREATE CLASS c16_c2 UNDER c16_c0;" ]
      @ List.init 32 (fun i ->
            Printf.sprintf "CREATE INSTANCE c16_i%d OF c16_c%d;" i (i mod 3))
      @ [ "CREATE RELATION c16_r (v: c16_d);";
          "INSERT INTO c16_r VALUES (+ ALL c16_c0);";
          "INSERT INTO c16_r VALUES (- c16_i4);";
          "INSERT INTO c16_r VALUES (+ c16_i7);" ])
  in
  let read_script =
    String.concat " "
      (List.init 8 (fun i -> Printf.sprintf "ASK c16_r (c16_i%d);" (i * 4))
      @ [ "SELECT * FROM c16_r WHERE v = c16_i2;";
          "SELECT * FROM c16_r WHERE v = c16_i9;" ])
  in
  let frame = Wire.frame "EXEC" read_script in
  let run_arm ~domains =
    let server = Server.create_memory ~port:0 ~reader_domains:domains () in
    Fun.protect
      ~finally:(fun () -> Server.close server)
      (fun () ->
        let port = Server.port server in
        let setup = Server.Client.connect ~timeout:10.0 ~port () in
        let setup_fd = Server.Client.fd setup in
        Wire.send setup_fd "EXEC" setup_script;
        let rec await_setup () =
          ignore (Server.poll server 0.01);
          match Unix.select [ setup_fd ] [] [] 0.0 with
          | [ _ ], _, _ -> (
            match Server.Client.recv setup with
            | Ok _ -> ()
            | Error msg -> failwith ("C16 setup: " ^ msg))
          | _ -> await_setup ()
        in
        await_setup ();
        Server.Client.close setup;
        ignore (Server.poll server 0.01);
        let conns =
          Array.init clients (fun _ ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              Unix.set_nonblock fd;
              (fd, Wire.Decoder.create (), ref 0 (* sent *), ref 0 (* off *)))
        in
        let total = clients * reads_per_client in
        let acked_total = ref 0 in
        let buf = Bytes.create 65536 in
        let t0 = Unix.gettimeofday () in
        while !acked_total < total do
          ignore (Server.poll server 0.002);
          Array.iter
            (fun (fd, dec, sent, off) ->
              (try
                 while !sent < reads_per_client do
                   let n =
                     Unix.write_substring fd frame !off (String.length frame - !off)
                   in
                   off := !off + n;
                   if !off = String.length frame then begin
                     off := 0;
                     incr sent
                   end
                 done
               with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> failwith "C16: server closed a client connection"
              | n ->
                Wire.Decoder.feed dec buf n;
                let rec drain () =
                  match Wire.Decoder.next dec with
                  | Ok (Some (tag, payload)) ->
                    if tag = "ERR" then failwith ("C16: ERR reply: " ^ payload);
                    incr acked_total;
                    drain ()
                  | Ok None -> ()
                  | Error msg -> failwith ("C16: bad reply frame: " ^ msg)
                in
                drain ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ())
            conns
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        Array.iter (fun (fd, _, _, _) -> Unix.close fd) conns;
        (total, elapsed))
  in
  let report name (total, elapsed) =
    let qps = float total /. elapsed in
    let ns = elapsed /. float total *. 1e9 in
    collected := (name ^ " ns/op", ns) :: !collected;
    Format.printf "%s: %d read scripts in %.3fs = %.0f reads/s (%.0f ns/read)@." name
      total elapsed qps ns;
    ns
  in
  let ns_1 = report "C16 snapshot reads K=1" (run_arm ~domains:1) in
  let ns_k =
    report
      (Printf.sprintf "C16 snapshot reads K=%d" !reader_domains_k)
      (run_arm ~domains:!reader_domains_k)
  in
  let cores = Domain.recommended_domain_count () in
  Format.printf
    "read scaling K=1 -> K=%d: %.2fx on %d core(s)%s@." !reader_domains_k (ns_1 /. ns_k)
    cores
    (if cores < !reader_domains_k then
       " (fewer cores than domains: interleaving only, no speedup expected)"
     else "")

(* ---- C18: replica catch-up — parallel WAL apply -------------------------- *)

let apply_domains_k = ref 4

(* Drives Hr_repl.Apply.apply_batch directly on a durable Db — no
   sockets, no forks — with a record stream that round-robins inserts
   across [nrels] relations: every burst partitions into [nrels]
   provably-commuting groups (docs/EFFECTS.md), the best case the
   effect oracle certifies. The K=1 arm is exactly the sequential apply
   loop, so the ratio isolates what the worker domains buy. *)
let bench_replica_apply () =
  section
    (Printf.sprintf "C18 — replica catch-up: parallel WAL apply (K=1 vs K=%d)"
       !apply_domains_k);
  let nrels = 4 in
  let total = 2048 and burst = 64 in
  let per_rel = total / nrels in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "CREATE DOMAIN c18;\n";
  for i = 0 to per_rel - 1 do
    Buffer.add_string buf (Printf.sprintf "CREATE INSTANCE c18i%d OF c18;\n" i)
  done;
  for r = 0 to nrels - 1 do
    Buffer.add_string buf (Printf.sprintf "CREATE RELATION c18r%d (v: c18);\n" r)
  done;
  let ddl = Buffer.contents buf in
  let stmts =
    Array.init total (fun i ->
        Printf.sprintf "INSERT INTO c18r%d VALUES (+ c18i%d);" (i mod nrels)
          (i / nrels))
  in
  let temp_dir () =
    let dir = Filename.temp_file "hrbench_c18" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    dir
  in
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  let run_arm ~domains =
    let dir = temp_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let db = Hr_storage.Db.open_dir dir in
        Fun.protect
          ~finally:(fun () -> Hr_storage.Db.close db)
          (fun () ->
            (match Hr_storage.Db.exec db ddl with
            | Ok _ -> ()
            | Error m -> failwith ("C18 setup: " ^ m));
            let base = Hr_storage.Db.lsn db in
            let t0 = Unix.gettimeofday () in
            let i = ref 0 in
            while !i < total do
              let n = min burst (total - !i) in
              let records =
                List.init n (fun j ->
                    {
                      Hr_repl.Apply.lsn = base + !i + j + 1;
                      stmt = stmts.(!i + j);
                    })
              in
              (match Hr_repl.Apply.apply_batch ~domains db records with
              | Ok () -> ()
              | Error m -> failwith ("C18 apply: " ^ m));
              i := !i + n
            done;
            Hr_storage.Db.sync db;
            let dt = Unix.gettimeofday () -. t0 in
            dt *. 1e9 /. float_of_int total))
  in
  let report name ns =
    Format.printf "%-34s %12.0f ns/record  (%.0f records/s)@." name ns
      (1e9 /. ns);
    collected := (name ^ " ns/record", ns) :: !collected;
    ns
  in
  let ns_1 = report "C18 replica apply K=1" (run_arm ~domains:1) in
  let ns_k =
    report
      (Printf.sprintf "C18 replica apply K=%d" !apply_domains_k)
      (run_arm ~domains:!apply_domains_k)
  in
  let cores = Domain.recommended_domain_count () in
  Format.printf "apply scaling K=1 -> K=%d: %.2fx on %d core(s)%s@."
    !apply_domains_k (ns_1 /. ns_k) cores
    (if cores < !apply_domains_k then
       " (fewer cores than domains: interleaving only, no speedup expected)"
     else "")

(* ---- C19: incremental checkpoint — page writes track the delta ---------- *)

(* The tentpole claim of the paged store: [Db.checkpoint] flushes only
   dirty pages plus the meta/root pages, so a small delta after a big load
   costs a small, size-independent number of page writes — where the old
   snapshot codec rewrote the whole database every time. Two scales 10x
   apart; the large scale must show the incremental checkpoint at least
   5x cheaper in page writes than its own full (first) checkpoint. *)
let bench_incremental_checkpoint () =
  section "C19 — incremental checkpoint: page writes track the delta, not the database";
  let temp_dir () =
    let dir = Filename.temp_file "hrbench_c19" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    dir
  in
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  let load_script n =
    let buf = Buffer.create (n * 64) in
    Buffer.add_string buf "CREATE DOMAIN c19;\nCREATE CLASS c19c UNDER c19;\n";
    for i = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "CREATE INSTANCE c19i%05d OF c19c;\n" i)
    done;
    Buffer.add_string buf "CREATE RELATION c19r (v: c19);\n";
    for i = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "INSERT INTO c19r VALUES (+ c19i%05d);\n" i)
    done;
    Buffer.contents buf
  in
  (* ~20-statement delta: flip the sign of ten existing items, a real net
     change the checkpoint diff must persist *)
  let delta_script =
    String.concat "\n"
      (List.init 10 (fun i ->
           Printf.sprintf
             "DELETE FROM c19r VALUES (c19i%05d);\nINSERT INTO c19r VALUES (- c19i%05d);"
             (i * 7) (i * 7)))
  in
  let run_scale n =
    let dir = temp_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let db = Hr_storage.Db.open_dir ~fsync:false dir in
        Fun.protect
          ~finally:(fun () -> Hr_storage.Db.close db)
          (fun () ->
            (match Hr_storage.Db.exec db (load_script n) with
            | Ok _ -> ()
            | Error m -> failwith ("C19 load: " ^ m));
            let t0 = Unix.gettimeofday () in
            Hr_storage.Db.checkpoint db;
            let full_s = Unix.gettimeofday () -. t0 in
            let full_written, total = Hr_storage.Db.last_checkpoint_pages db in
            (match Hr_storage.Db.exec db delta_script with
            | Ok _ -> ()
            | Error m -> failwith ("C19 delta: " ^ m));
            let t1 = Unix.gettimeofday () in
            Hr_storage.Db.checkpoint db;
            let incr_s = Unix.gettimeofday () -. t1 in
            let incr_written, _ = Hr_storage.Db.last_checkpoint_pages db in
            Format.printf
              "N=%-5d full ckpt: %4d/%4d pages in %6.2f ms   delta ckpt (20 stmts): %4d \
               pages in %6.2f ms@."
              n full_written total (full_s *. 1e3) incr_written (incr_s *. 1e3);
            collected :=
              (Printf.sprintf "C19 full checkpoint N=%d page writes" n,
               float_of_int full_written)
              :: (Printf.sprintf "C19 delta checkpoint N=%d page writes" n,
                  float_of_int incr_written)
              :: (Printf.sprintf "C19 full checkpoint N=%d ns" n, full_s *. 1e9)
              :: (Printf.sprintf "C19 delta checkpoint N=%d ns" n, incr_s *. 1e9)
              :: !collected;
            (full_written, incr_written, incr_s)))
  in
  let _ = run_scale 300 in
  let full, incr, incr_s = run_scale 3000 in
  if incr * 5 > full then
    failwith
      (Printf.sprintf
         "C19: incremental checkpoint wrote %d pages, full wrote %d — expected >= 5x \
          fewer"
         incr full);
  Format.printf
    "delta checkpoint wrote %.1fx fewer pages than the full rewrite at N=3000 (%.2f \
     ms); checkpoint cost is proportional to the delta.@."
    (float_of_int full /. float_of_int incr)
    (incr_s *. 1e3)

let experiments =
  [
    ("C1", bench_storage);
    ("C2", bench_membership);
    ("C3", bench_consolidate);
    ("C4", bench_explicate);
    ("C5", bench_setops);
    ("C6", bench_integrity);
    ("C7", bench_preemption);
    ("C8", bench_mine);
    ("C9", bench_index);
    ("C10", bench_storage_engine);
    ("C11", bench_hrql);
    ("C12", bench_page_io);
    ("C13", bench_semantic_net);
    ("C14", bench_group_commit);
    ("C15", bench_estimator);
    ("C19", bench_incremental_checkpoint);
    ("F", check_figures);
    (* C17 forks shard and router subprocesses, so it must precede any
       experiment that spawns a domain *)
    ("C17", bench_sharding);
    (* last: C16 and C18 spawn OCaml 5 domains, which forbids Unix.fork
       for the rest of the process *)
    ("C16", bench_reader_domains);
    ("C18", bench_replica_apply);
  ]

(* The JSON report: bechamel estimates plus a snapshot of the metrics
   registry, so a CI run records both latency and work counters. The
   schema is documented in docs/OBSERVABILITY.md. *)
let write_metrics_json path experiment_ids =
  let open Hr_obs.Jsonout in
  let benchmarks =
    List.rev !collected
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ns) -> (name, Float ns))
  in
  let report =
    Obj
      [
        ("schema_version", Int 1);
        ("suite", String "hierel-bench");
        ("quota_seconds", Float !quota_s);
        (* cores on the measuring host: scaling assertions (C16's 2.5x
           at K=4) only hold where the domains can actually run in
           parallel *)
        ("cores", Int (Domain.recommended_domain_count ()));
        ("experiments", List (List.map (fun id -> String id) experiment_ids));
        ("benchmarks_ns_per_op", Obj benchmarks);
        ("estimator", Obj (List.rev !c15_json));
        ("metrics", Hr_obs.Metrics.json_of_snapshot (Hr_obs.Metrics.snapshot ()));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string report);
      output_char oc '\n');
  Format.printf "metrics report written to %s@." path

(* argv: experiment ids freely mixed with [--metrics-json FILE] and
   [--quota SECONDS]. *)
let rec parse_args = function
  | [] -> []
  | "--metrics-json" :: path :: rest ->
    metrics_json_path := Some path;
    parse_args rest
  | "--clients" :: s :: rest ->
    (match int_of_string_opt s with
    | Some k when k > 0 -> clients_k := k
    | _ ->
      prerr_endline ("bench: invalid --clients " ^ s);
      exit 2);
    parse_args rest
  | "--reader-domains" :: s :: rest ->
    (match int_of_string_opt s with
    | Some k when k > 0 -> reader_domains_k := k
    | _ ->
      prerr_endline ("bench: invalid --reader-domains " ^ s);
      exit 2);
    parse_args rest
  | "--shards" :: s :: rest ->
    (match int_of_string_opt s with
    | Some k when k > 0 -> shards_k := k
    | _ ->
      prerr_endline ("bench: invalid --shards " ^ s);
      exit 2);
    parse_args rest
  | "--apply-domains" :: s :: rest ->
    (match int_of_string_opt s with
    | Some k when k > 0 -> apply_domains_k := k
    | _ ->
      prerr_endline ("bench: invalid --apply-domains " ^ s);
      exit 2);
    parse_args rest
  | "--quota" :: s :: rest ->
    (match float_of_string_opt s with
    | Some q when q > 0. -> quota_s := q
    | _ ->
      prerr_endline ("bench: invalid --quota " ^ s);
      exit 2);
    parse_args rest
  | ("--metrics-json" | "--quota" | "--clients" | "--reader-domains" | "--shards"
    | "--apply-domains") :: [] ->
    prerr_endline "bench: missing argument to flag";
    exit 2
  | id :: rest -> id :: parse_args rest

let () =
  Format.printf
    "hierel benchmark harness — experiments C1..C18 (see DESIGN.md / EXPERIMENTS.md)@.";
  let requested = parse_args (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match requested with
    | [] -> experiments
    | _ ->
      List.filter
        (fun (id, _) -> List.exists (String.equal id) requested)
        experiments
  in
  if selected = [] then
    Format.printf "no such experiment; available: %s@."
      (String.concat " " (List.map fst experiments))
  else List.iter (fun (_, run) -> run ()) selected;
  Option.iter (fun path -> write_metrics_json path (List.map fst selected)) !metrics_json_path;
  Format.printf "@.done.@."
