(* hrdb — an interactive shell (and script runner) for the hierarchical
   relational model, speaking HRQL.

   Usage:
     dune exec bin/hrdb.exe                   # in-memory REPL
     dune exec bin/hrdb.exe -- -d ./mydb      # durable: snapshot + WAL
     dune exec bin/hrdb.exe -- -f x.hrql      # run a script, then exit
     dune exec bin/hrdb.exe -- -f x.hrql -i   # run a script, then REPL
     dune exec bin/hrdb.exe -- lint x.hrql    # static analysis only
     dune exec bin/hrdb.exe -- exec -p 7799 'ASK r (x);'   # network client
     dune exec bin/hrdb.exe -- replica -P 7799 -d ./rep    # read-only replica *)

module Eval = Hr_query.Eval
module Persist = Hr_query.Persist
module Db = Hr_storage.Db
module Lint = Hr_analysis.Lint
module Diagnostic = Hr_analysis.Diagnostic
open Hierel

(* Installs the EXPLAIN ESTIMATE and EXPLAIN EFFECTS hooks into
   Hr_query.Eval — the modules must be referenced for their
   initializers to be linked. *)
let () = Hr_analysis.Estimate.ensure_registered ()
let () = Hr_analysis.Effect.ensure_registered ()

let banner durable =
  Printf.sprintf
    "hrdb — hierarchical relational database (Jagadish, SIGMOD 1989)%s\n\
     Type HRQL statements terminated by ';'. Try: SHOW RELATIONS;  \\h for help, \\q to quit.\n"
    (if durable then " [durable]" else "")

let help =
  {|Statements (see lib/query/parser.mli for the full grammar):
  CREATE DOMAIN d;                       CREATE CLASS c UNDER parent;
  CREATE INSTANCE i OF c;                CREATE ISA sub UNDER super;
  CREATE PREFERENCE a OVER b;            CREATE RELATION r (attr: domain, ...);
  INSERT INTO r VALUES (+ ALL c, x), (- y, z);
  DELETE FROM r VALUES (ALL c, x);
  SELECT * FROM r WHERE attr = v [WITH JUSTIFICATION];
  LET s = r UNION t;   (also INTERSECT, EXCEPT, JOIN, PROJECT..ON, RENAME..TO)
  ASK r (x, y) [UNDER OFF-PATH|ON-PATH|NO-PREEMPTION];
  CONSOLIDATE r;   EXPLICATE r [ON (attr)];   CHECK r;
  COUNT r [BY attr];   EXPLAIN PLAN <expr>;   EXPLAIN ANALYZE <expr>;
  EXPLAIN ESTIMATE <expr>;   price the plan statically, run nothing (docs/COST.md)
  EXPLAIN EFFECTS <stmt>;    show the statement's read/write cone footprint (docs/EFFECTS.md)
  SHOW HIERARCHY d;   SHOW RELATIONS;   SHOW HIERARCHIES;
  EXPLAIN r (x, y);   DROP RELATION r;
  STATS;   STATS JSON;   STATS RESET;     engine metrics (docs/OBSERVABILITY.md)
  LINT <statements...>;   statically check against the live catalog, run nothing
REPL commands:
  \save FILE     dump the whole catalog as an HRQL script
  \load FILE     replay an HRQL script into the catalog
  \checkpoint    write the binary snapshot, truncate the WAL (durable mode)
  \h             this help            \q   quit
|}

(* One backend interface over the in-memory and durable modes. *)
type backend = {
  run : string -> (string list, string) result;
  cat : unit -> Catalog.t;
  checkpoint : (unit -> unit) option;
  shutdown : unit -> unit;
}

let memory_backend () =
  let cat = Catalog.create () in
  {
    run = (fun input -> Eval.run_script cat input);
    cat = (fun () -> cat);
    checkpoint = None;
    shutdown = ignore;
  }

let durable_backend dir =
  let db = Db.open_dir dir in
  {
    run = (fun input -> Db.exec db input);
    cat = (fun () -> Db.catalog db);
    checkpoint = Some (fun () -> Db.checkpoint db);
    shutdown = (fun () -> Db.close db);
  }

(* [LINT <statements...>;] — check without running. Detected textually
   (case-insensitive first word) so lint requests never reach the
   evaluator's parser as statements. *)
let lint_request input =
  let t = String.trim input in
  if
    String.length t >= 4
    && String.lowercase_ascii (String.sub t 0 4) = "lint"
    && (String.length t = 4
       || match t.[4] with ' ' | '\t' | '\n' | '\r' | ';' -> true | _ -> false)
  then Some (String.sub t 4 (String.length t - 4))
  else None

let lint_against backend script =
  Lint.analyze_script ~catalog:(backend.cat ()) script

let run_input ?(strict = false) backend input =
  match lint_request input with
  | Some script ->
    if String.trim script = "" || String.trim script = ";" then
      print_endline "usage: LINT <statements...>;"
    else print_string (Diagnostic.render_text (lint_against backend script))
  | None ->
    let rejected =
      strict
      &&
      let diags = lint_against backend input in
      if diags <> [] then print_string (Diagnostic.render_text diags);
      if Diagnostic.has_errors diags then begin
        print_endline "rejected: lint errors (strict mode); nothing was executed";
        true
      end
      else false
    in
    if not rejected then
      match backend.run input with
      | Ok outputs -> List.iter print_endline outputs
      | Error msg -> Printf.printf "error: %s\n" msg

let strip_prefix ~prefix line =
  let n = String.length prefix in
  if String.length line > n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let repl ~strict backend durable =
  print_string (banner durable);
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "hrdb> " else "  ... ");
    match read_line () with
    | exception End_of_file -> print_endline "bye."
    | "\\q" | "\\quit" -> print_endline "bye."
    | "\\h" | "\\help" ->
      print_string help;
      loop ()
    | "\\checkpoint" ->
      (match backend.checkpoint with
      | Some f ->
        f ();
        print_endline "checkpoint written"
      | None -> print_endline "error: not in durable mode (start with -d DIR)");
      loop ()
    | line when strip_prefix ~prefix:"\\save " line <> None ->
      let path = Option.get (strip_prefix ~prefix:"\\save " line) in
      (try
         Persist.save (backend.cat ()) path;
         Printf.printf "catalog saved to %s\n" path
       with Sys_error e -> Printf.printf "error: %s\n" e);
      loop ()
    | line when strip_prefix ~prefix:"\\load " line <> None ->
      let path = Option.get (strip_prefix ~prefix:"\\load " line) in
      (try
         let ic = open_in path in
         let contents = really_input_string ic (in_channel_length ic) in
         close_in ic;
         run_input ~strict backend contents
       with Sys_error e -> Printf.printf "error: %s\n" e);
      loop ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      if String.contains line ';' then begin
        let input = Buffer.contents buffer in
        Buffer.clear buffer;
        run_input ~strict backend input
      end;
      loop ()
  in
  loop ()

let main file interactive dir strict =
  let durable = Option.is_some dir in
  let backend =
    match dir with Some d -> durable_backend d | None -> memory_backend ()
  in
  Fun.protect ~finally:backend.shutdown (fun () ->
      (match file with
      | Some path ->
        let ic = open_in path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        run_input ~strict backend contents
      | None -> ());
      if interactive || file = None then repl ~strict backend durable);
  0

open Cmdliner

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Run the HRQL $(docv) before anything else.")

let interactive_arg =
  Arg.(
    value & flag
    & info [ "i"; "interactive" ]
        ~doc:"Start the REPL even when a script file was given.")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:
          "Durable mode: keep the database in $(docv) (binary snapshot plus \
           write-ahead log; state survives restarts).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Pre-flight every input through the static analyzer: warnings and \
           hints are printed, and inputs with lint errors are rejected \
           without being executed.")

(* ---- the lint subcommand --------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_stdin () =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = input stdin chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let lint_main pos_files opt_files strict format explain_code =
  match explain_code with
  | Some code -> (
    match Hr_analysis.Codes.find code with
    | Some entry ->
      print_string (Hr_analysis.Codes.render entry);
      0
    | None ->
      Printf.eprintf "hrdb lint: unknown diagnostic code %S\nKnown codes:\n" code;
      List.iter
        (fun (e : Hr_analysis.Codes.entry) ->
          Printf.eprintf "  %-5s %-13s %s\n" e.Hr_analysis.Codes.code
            ("(" ^ e.Hr_analysis.Codes.severity ^ ")")
            e.Hr_analysis.Codes.title)
        Hr_analysis.Codes.all;
      2)
  | None -> (
  match opt_files @ pos_files with
  | [] ->
    prerr_endline "hrdb lint: no script given (pass FILE, '-' for stdin, or -f FILE)";
    2
  | files -> (
    match List.filter (fun f -> f <> "-" && not (Sys.file_exists f)) files with
    | missing :: _ ->
      Printf.eprintf "hrdb lint: no such file %s\n" missing;
      2
    | [] ->
      let results =
        List.map
          (fun f ->
            if f = "-" then ("<stdin>", Lint.analyze_script (read_stdin ()))
            else (f, Lint.analyze_script (read_file f)))
          files
      in
      (match format with
      | `Text ->
        List.iter
          (fun (f, ds) ->
            if List.length files > 1 then Printf.printf "%s:\n" f;
            print_string (Diagnostic.render_text ds))
          results
      | `Sarif -> print_string (Hr_analysis.Sarif.render results)
      | `Json -> (
        match results with
        | [ (_, ds) ] -> print_string (Diagnostic.render_json ds)
        | results ->
          print_string
            ("["
            ^ String.concat ","
                (List.map
                   (fun (f, ds) ->
                     Printf.sprintf "{\"file\":%S,\"diagnostics\":%s}" f
                       (String.trim (Diagnostic.render_json ds)))
                   results)
            ^ "]\n")));
      if
        List.exists
          (fun (_, ds) ->
            Diagnostic.has_errors ds || (strict && Diagnostic.has_warnings ds))
          results
      then 1
      else 0))

let lint_pos_files =
  Arg.(value & pos_all string [] & info [] ~docv:"SCRIPT")

let lint_opt_files =
  Arg.(
    value
    & opt_all file []
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Also lint the HRQL $(docv).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (human-readable), $(b,json), or \
           $(b,sarif) (SARIF 2.1.0, for CI annotation upload).")

let lint_strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Also fail (exit 1) when any warning-severity diagnostic is \
           reported. Hints and perf notes never affect the exit code.")

let explain_code_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:
          "Explain a diagnostic code (e.g. $(b,W104), $(b,P301), \
           $(b,F010)): meaning, a triggering example, and the usual fix. \
           No script is linted.")

let lint_cmd =
  let doc = "statically check HRQL scripts without executing them" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses each script and abstractly interprets it against a simulated \
         catalog: schema and hierarchy shape are tracked, no query is \
         evaluated and no data is touched. Diagnostics carry stable codes \
         (see docs/LINT.md) and source spans. A $(b,-) script reads from \
         standard input.";
      `P
        "Exits 1 when any error-severity diagnostic is reported (with \
         $(b,--strict): also on warnings), 0 otherwise. Perf notes \
         (P3xx, docs/COST.md) are always advisory.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      const lint_main $ lint_pos_files $ lint_opt_files $ lint_strict_arg
      $ format_arg $ explain_code_arg)

(* ---- the fsck subcommand ---------------------------------------------- *)

(* SARIF output reuses the lint emitter: each finding becomes one
   result at a dummy span (fsck findings are about files and objects,
   not source lines), grouped by the file/object it concerns so the
   artifact URI is meaningful in CI annotations. *)
let fsck_sarif (report : Hr_check.Fsck.report) =
  let module Fsck = Hr_check.Fsck in
  let diag (f : Fsck.finding) =
    let mk =
      match f.Fsck.severity with
      | Fsck.Critical -> Diagnostic.error
      | Fsck.Warning -> Diagnostic.warning
    in
    (f.Fsck.where, mk ~code:f.Fsck.code Hr_query.Loc.dummy f.Fsck.message)
  in
  let by_where = List.map diag report.Fsck.findings in
  let files = List.sort_uniq String.compare (List.map fst by_where) in
  let results =
    List.map
      (fun w ->
        (w, List.filter_map (fun (w', d) -> if w' = w then Some d else None) by_where))
      files
  in
  Hr_analysis.Sarif.render ~tool:"hrdb-fsck" ~info_uri:"docs/FSCK.md" results

let fsck_main dir against format =
  let module Fsck = Hr_check.Fsck in
  let report = Fsck.run ?against dir in
  (match format with
  | `Text -> print_string (Fsck.render_text report)
  | `Json -> print_string (Fsck.render_json report)
  | `Sarif -> print_string (fsck_sarif report));
  if Fsck.has_critical report then 2 else if not (Fsck.clean report) then 1 else 0

let fsck_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"The database directory to verify.")

let fsck_against_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "against" ] ~docv:"DIR|MAP"
        ~doc:
          "With a directory: also verify this peer (e.g. a replica of the \
           first) and cross-check the two for divergence at their greatest \
           common LSN. With a regular file: load it as a shard map and \
           verify the whole sharded deployment's placement invariants \
           (docs/SHARDING.md).")

let fsck_cmd =
  let doc = "verify the durable invariants of a database directory" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Opens the directory read-only (no lock is taken, nothing is written) \
         and checks WAL framing and LSN continuity, snapshot decode and \
         round-trip, hierarchy DAG acyclicity and irredundancy, the \
         graphs.bin subsumption sidecar, the ambiguity constraint, and — \
         with $(b,--against) — primary/replica convergence, or, when the \
         argument is a shard-map file, sharded placement (misplaced tuples, \
         cross-subtree replicas, DDL agreement). Finding codes \
         (F001..F024) are stable; see docs/FSCK.md.";
      `P
        "Exits 0 when the directory is clean, 1 when only warning-severity \
         findings were reported, 2 on any critical finding.";
    ]
  in
  Cmd.v
    (Cmd.info "fsck" ~doc ~man)
    Term.(const fsck_main $ fsck_dir_arg $ fsck_against_arg $ format_arg)

(* ---- the exec subcommand (network client) ----------------------------- *)

let exec_main host port timeout stats scripts =
  let module Client = Hr_server.Server.Client in
  let timeout = match timeout with Some s when s <= 0.0 -> None | t -> t in
  match Client.connect ~host ?timeout ~port () with
  | exception Failure msg ->
    Printf.eprintf "hrdb exec: %s\n" msg;
    2
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "hrdb exec: cannot reach %s:%d: %s\n" host port (Unix.error_message e);
    2
  | conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        let request () =
          if stats then Client.stats conn
          else Client.exec conn (String.concat " " scripts)
        in
        if (not stats) && scripts = [] then begin
          prerr_endline "hrdb exec: no script given (pass 'STATEMENTS;' or --stats)";
          2
        end
        else
          match request () with
          | Ok out ->
            if out <> "" then print_endline out;
            0
          | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1)

let exec_host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "H"; "host" ] ~docv:"HOST" ~doc:"Server address.")

let exec_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server TCP port.")

let exec_timeout_arg =
  Arg.(
    value
    & opt (some float) (Some 5.0)
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Bound the TCP connect and each reply read. Pass a non-positive \
           value to wait forever.")

let exec_stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Fetch the server's metrics snapshot instead of running a script.")

let exec_scripts_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"SCRIPT")

let exec_cmd =
  let doc = "run an HRQL script against a running server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to an hrdb_server (or a read-only hrdb_replica), sends the \
         script as one EXEC frame, and prints the reply. Exits 1 on a server \
         error, 2 on a connection failure.";
    ]
  in
  Cmd.v
    (Cmd.info "exec" ~doc ~man)
    Term.(
      const exec_main $ exec_host_arg $ exec_port_arg $ exec_timeout_arg
      $ exec_stats_arg $ exec_scripts_arg)

(* ---- the replica subcommand ------------------------------------------- *)

let replica_main primary_host primary_port dir port backoff_max checkpoint_every
    verify apply_domains =
  let module Replica = Hr_repl.Replica in
  (* --verify: fsck the local directory before serving from it. A dir
     that does not hold a database yet (first bootstrap) is skipped. *)
  let looks_like_db d =
    Sys.file_exists (Filename.concat d "wal.log")
    || Sys.file_exists (Filename.concat d "meta")
  in
  if verify && looks_like_db dir then begin
    let report = Hr_check.Fsck.run dir in
    if not (Hr_check.Fsck.clean report) then
      print_string (Hr_check.Fsck.render_text report);
    if Hr_check.Fsck.has_critical report then begin
      prerr_endline
        "hrdb replica: --verify found critical findings; refusing to serve \
         from this directory";
      exit 2
    end
  end;
  let cfg =
    Replica.config ~primary_host ~primary_port ~dir ~port ~backoff_max
      ~checkpoint_every ~apply_domains ()
  in
  let replica = Replica.create cfg in
  Printf.printf
    "hrdb replica listening on 127.0.0.1:%d (read-only; dir: %s; primary: %s:%d; \
     resume LSN %d)\n\
     %!"
    (Replica.port replica) dir primary_host primary_port
    (Replica.applied_lsn replica);
  Replica.run replica;
  0

let replica_primary_host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "H"; "primary-host" ] ~docv:"HOST" ~doc:"Primary's address.")

let replica_primary_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "P"; "primary-port" ] ~docv:"PORT" ~doc:"Primary's TCP port.")

let replica_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:"The replica's own database directory (snapshot + WAL + LSN).")

let replica_port_arg =
  Arg.(
    value & opt int 0
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Local TCP port for read-only queries (0 = ephemeral).")

let replica_backoff_max_arg =
  Arg.(
    value & opt float 2.0
    & info [ "backoff-max" ] ~docv:"SECONDS"
        ~doc:"Reconnect backoff ceiling (doubles from 50ms).")

let replica_checkpoint_every_arg =
  Arg.(
    value & opt int 512
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint the local database every $(docv) applied records.")

let replica_apply_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "apply-domains" ] ~docv:"K"
        ~doc:
          "Apply commuting groups of replicated records across $(docv) OCaml \
           5 domains (docs/EFFECTS.md). 1 (the default) applies records \
           sequentially.")

let replica_verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Run $(b,hrdb fsck) over the local directory before serving from \
           it; refuse to start (exit 2) on any critical finding. A directory \
           holding no database yet is skipped.")

let replica_cmd =
  let doc = "run a read-only replica of a durable primary" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Subscribes to the primary's logical WAL stream (REPL_SUBSCRIBE with \
         the last durably applied LSN), bootstraps from a snapshot when too \
         far behind, applies records to its own directory, serves read-only \
         HRQL locally, and reconnects with exponential backoff. See \
         docs/REPLICATION.md.";
    ]
  in
  Cmd.v
    (Cmd.info "replica" ~doc ~man)
    Term.(
      const replica_main $ replica_primary_host_arg $ replica_primary_port_arg
      $ replica_dir_arg $ replica_port_arg $ replica_backoff_max_arg
      $ replica_checkpoint_every_arg $ replica_verify_arg
      $ replica_apply_domains_arg)

let shell_term = Term.(const main $ file_arg $ interactive_arg $ dir_arg $ strict_arg)

let cmd =
  let doc = "interactive shell for the hierarchical relational model" in
  Cmd.group ~default:shell_term
    (Cmd.info "hrdb" ~version:"1.0.0" ~doc)
    [ lint_cmd; fsck_cmd; exec_cmd; replica_cmd ]

let () = exit (Cmd.eval' cmd)
