(* hrdb_server — serve a hierarchical relational database over TCP.

   Usage:
     dune exec bin/hrdb_server.exe -- -p 7799            # in-memory
     dune exec bin/hrdb_server.exe -- -p 7799 -d ./mydb  # durable
     dune exec bin/hrdb_server.exe -- -p 7799 --router --shard-map map.txt

   Protocol (see lib/server/server.mli): length-framed HRQL scripts.
   A quick manual client:
     printf 'EXEC 16\nSHOW RELATIONS;' | nc 127.0.0.1 7799

   Router mode (see docs/SHARDING.md) stores nothing locally: it routes
   every mutation to the backend shards named by the shard map and
   evaluates queries scatter-gather over them. *)

module Server = Hr_server.Server
module Router = Hr_shard.Router

let run_router port shard_map shard_timeout =
  match Hr_check.Shard_map.load shard_map with
  | Error msg ->
    Printf.eprintf "hrdb_server: cannot load shard map %s: %s\n%!" shard_map msg;
    exit 2
  | Ok map ->
    let router = Router.create ~port ~map ~timeout:shard_timeout () in
    Printf.printf
      "hrdb_server routing on 127.0.0.1:%d over %d shard(s) (map: %s)\n%!"
      (Router.port router)
      (List.length (Hr_check.Shard_map.ids map))
      shard_map;
    Router.serve_forever router

let main port dir group_commit_window max_batch no_fsync reader_domains router
    shard_map shard_timeout =
  match (router, shard_map) with
  | true, None ->
    Printf.eprintf "hrdb_server: --router requires --shard-map FILE\n%!";
    exit 2
  | true, Some shard_map -> run_router port shard_map shard_timeout
  | false, Some _ ->
    Printf.eprintf "hrdb_server: --shard-map only makes sense with --router\n%!";
    exit 2
  | false, None ->
    let server =
      match dir with
      | Some dir ->
        Server.create_durable ~port ~dir ~group_commit_window ~max_batch ~reader_domains
          ~fsync:(not no_fsync) ()
      | None -> Server.create_memory ~port ~group_commit_window ~max_batch ~reader_domains ()
    in
    Printf.printf "hrdb_server listening on 127.0.0.1:%d%s%s%s\n%!" (Server.port server)
      (match dir with Some d -> Printf.sprintf " (durable: %s)" d | None -> " (in-memory)")
      (if no_fsync then " [no-fsync: commits are NOT crash-durable]" else "")
      (if reader_domains > 0 then
         Printf.sprintf " [%d reader domain(s), snapshot-isolated reads]" reader_domains
       else "");
    Server.serve_forever server

open Cmdliner

let port_arg =
  Arg.(
    value & opt int 7799
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Durable mode: database directory.")

let window_arg =
  Arg.(
    value & opt float 0.0
    & info [ "group-commit-window" ] ~docv:"SECONDS"
        ~doc:
          "Hold a commit batch open up to $(docv) after its first buffered \
           statement so more statements can share one WAL write+fsync. 0 \
           (the default) commits at the end of every event-loop tick; acks \
           are always withheld until the shared sync completes.")

let max_batch_arg =
  Arg.(
    value & opt int 64
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Close an open group-commit window early once $(docv) statements are buffered.")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:
          "Skip the real fsync at each commit (channel flush to the OS only). \
           Benchmark escape hatch: a machine crash can lose acknowledged \
           statements. Never use in production.")

let reader_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "reader-domains" ] ~docv:"K"
        ~doc:
          "Execute read-only frames (queries, LINT, ESTIMATE, STATS) on $(docv) \
           OCaml 5 reader domains instead of the event loop. Each read pins the \
           catalog version published at the last group commit, so reads are \
           snapshot-isolated, never block writes, and never observe \
           not-yet-durable state. 0 (the default) keeps the fully \
           single-threaded loop.")

let router_arg =
  Arg.(
    value & flag
    & info [ "router" ]
        ~doc:
          "Router mode: store nothing locally; route mutations to the backend \
           shards declared in $(b,--shard-map) by hierarchy subtree, replicate \
           cross-subtree tuples to every covered shard, and evaluate queries \
           scatter-gather. See docs/SHARDING.md.")

let shard_map_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-map" ] ~docv:"FILE"
        ~doc:
          "The shard map (format in docs/SHARDING.md): shard endpoints, \
           subtree-root assignments and the default shard. Required with \
           $(b,--router); the same file drives $(b,hrdb fsck --against).")

let shard_timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "shard-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Router mode: per-shard connect and per-frame read deadline. A shard \
           that misses it is marked down and answered around — the router \
           never blocks indefinitely on a dead backend.")

let cmd =
  let doc = "TCP server for the hierarchical relational model" in
  Cmd.v
    (Cmd.info "hrdb_server" ~version:"1.0.0" ~doc)
    Term.(
      const main $ port_arg $ dir_arg $ window_arg $ max_batch_arg $ no_fsync_arg
      $ reader_domains_arg $ router_arg $ shard_map_arg $ shard_timeout_arg)

let () = exit (Cmd.eval cmd)
