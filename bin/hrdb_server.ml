(* hrdb_server — serve a hierarchical relational database over TCP.

   Usage:
     dune exec bin/hrdb_server.exe -- -p 7799            # in-memory
     dune exec bin/hrdb_server.exe -- -p 7799 -d ./mydb  # durable

   Protocol (see lib/server/server.mli): length-framed HRQL scripts.
   A quick manual client:
     printf 'EXEC 16\nSHOW RELATIONS;' | nc 127.0.0.1 7799 *)

module Server = Hr_server.Server

let main port dir group_commit_window max_batch no_fsync reader_domains =
  let server =
    match dir with
    | Some dir ->
      Server.create_durable ~port ~dir ~group_commit_window ~max_batch ~reader_domains
        ~fsync:(not no_fsync) ()
    | None -> Server.create_memory ~port ~group_commit_window ~max_batch ~reader_domains ()
  in
  Printf.printf "hrdb_server listening on 127.0.0.1:%d%s%s%s\n%!" (Server.port server)
    (match dir with Some d -> Printf.sprintf " (durable: %s)" d | None -> " (in-memory)")
    (if no_fsync then " [no-fsync: commits are NOT crash-durable]" else "")
    (if reader_domains > 0 then
       Printf.sprintf " [%d reader domain(s), snapshot-isolated reads]" reader_domains
     else "");
  Server.serve_forever server

open Cmdliner

let port_arg =
  Arg.(
    value & opt int 7799
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Durable mode: database directory.")

let window_arg =
  Arg.(
    value & opt float 0.0
    & info [ "group-commit-window" ] ~docv:"SECONDS"
        ~doc:
          "Hold a commit batch open up to $(docv) after its first buffered \
           statement so more statements can share one WAL write+fsync. 0 \
           (the default) commits at the end of every event-loop tick; acks \
           are always withheld until the shared sync completes.")

let max_batch_arg =
  Arg.(
    value & opt int 64
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Close an open group-commit window early once $(docv) statements are buffered.")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:
          "Skip the real fsync at each commit (channel flush to the OS only). \
           Benchmark escape hatch: a machine crash can lose acknowledged \
           statements. Never use in production.")

let reader_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "reader-domains" ] ~docv:"K"
        ~doc:
          "Execute read-only frames (queries, LINT, ESTIMATE, STATS) on $(docv) \
           OCaml 5 reader domains instead of the event loop. Each read pins the \
           catalog version published at the last group commit, so reads are \
           snapshot-isolated, never block writes, and never observe \
           not-yet-durable state. 0 (the default) keeps the fully \
           single-threaded loop.")

let cmd =
  let doc = "TCP server for the hierarchical relational model" in
  Cmd.v
    (Cmd.info "hrdb_server" ~version:"1.0.0" ~doc)
    Term.(
      const main $ port_arg $ dir_arg $ window_arg $ max_batch_arg $ no_fsync_arg
      $ reader_domains_arg)

let () = exit (Cmd.eval cmd)
