(* hrdb_replica — a read-only replica of an hrdb_server primary.

   Usage:
     dune exec bin/hrdb_server.exe  -- -p 7799 -d ./primary   # the primary
     dune exec bin/hrdb_replica.exe -- -P 7799 -d ./replica -p 7800

   The replica subscribes to the primary's logical WAL stream, applies
   it to its own durable directory, serves read-only HRQL on its own
   port, and reconnects with exponential backoff when the primary goes
   away (resuming from its last durably applied LSN). Protocol in
   docs/REPLICATION.md. *)

module Replica = Hr_repl.Replica

let main primary_host primary_port dir port backoff_max checkpoint_every verify
    apply_domains =
  (* --verify: fsck the local directory before serving from it. A dir
     that does not hold a database yet (first bootstrap) is skipped. *)
  let looks_like_db d =
    Sys.file_exists (Filename.concat d "wal.log")
    || Sys.file_exists (Filename.concat d "meta")
  in
  if verify && looks_like_db dir then begin
    let report = Hr_check.Fsck.run dir in
    if not (Hr_check.Fsck.clean report) then
      print_string (Hr_check.Fsck.render_text report);
    if Hr_check.Fsck.has_critical report then begin
      prerr_endline
        "hrdb_replica: --verify found critical findings; refusing to serve \
         from this directory";
      exit 2
    end
  end;
  let cfg =
    Replica.config ~primary_host ~primary_port ~dir ~port ~backoff_max
      ~checkpoint_every ~apply_domains ()
  in
  let replica = Replica.create cfg in
  Printf.printf
    "hrdb_replica listening on 127.0.0.1:%d (read-only; dir: %s; primary: %s:%d; \
     resume LSN %d)\n\
     %!"
    (Replica.port replica) dir primary_host primary_port
    (Replica.applied_lsn replica);
  Replica.run replica

open Cmdliner

let primary_host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "H"; "primary-host" ] ~docv:"HOST" ~doc:"Primary's address.")

let primary_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "P"; "primary-port" ] ~docv:"PORT" ~doc:"Primary's TCP port.")

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:"The replica's own database directory (snapshot + WAL + LSN).")

let port_arg =
  Arg.(
    value & opt int 0
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Local TCP port for read-only queries (0 = ephemeral).")

let backoff_max_arg =
  Arg.(
    value & opt float 2.0
    & info [ "backoff-max" ] ~docv:"SECONDS"
        ~doc:"Reconnect backoff ceiling (doubles from 50ms).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 512
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint the local database every $(docv) applied records.")

let apply_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "apply-domains" ] ~docv:"K"
        ~doc:
          "Apply commuting groups of replicated records across $(docv) OCaml \
           5 domains (docs/EFFECTS.md). 1 (the default) applies records \
           sequentially.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Run $(b,hrdb fsck) over the local directory before serving from \
           it; refuse to start (exit 2) on any critical finding. A directory \
           holding no database yet is skipped.")

let cmd =
  let doc = "read-only replica for the hierarchical relational model" in
  Cmd.v
    (Cmd.info "hrdb_replica" ~version:"1.0.0" ~doc)
    Term.(
      const main $ primary_host_arg $ primary_port_arg $ dir_arg $ port_arg
      $ backoff_max_arg $ checkpoint_every_arg $ verify_arg $ apply_domains_arg)

let () = exit (Cmd.eval cmd)
