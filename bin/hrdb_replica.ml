(* hrdb_replica — a read-only replica of an hrdb_server primary.

   Usage:
     dune exec bin/hrdb_server.exe  -- -p 7799 -d ./primary   # the primary
     dune exec bin/hrdb_replica.exe -- -P 7799 -d ./replica -p 7800

   The replica subscribes to the primary's logical WAL stream, applies
   it to its own durable directory, serves read-only HRQL on its own
   port, and reconnects with exponential backoff when the primary goes
   away (resuming from its last durably applied LSN). Protocol in
   docs/REPLICATION.md. *)

module Replica = Hr_repl.Replica

let main primary_host primary_port dir port backoff_max checkpoint_every =
  let cfg =
    Replica.config ~primary_host ~primary_port ~dir ~port ~backoff_max
      ~checkpoint_every ()
  in
  let replica = Replica.create cfg in
  Printf.printf
    "hrdb_replica listening on 127.0.0.1:%d (read-only; dir: %s; primary: %s:%d; \
     resume LSN %d)\n\
     %!"
    (Replica.port replica) dir primary_host primary_port
    (Replica.applied_lsn replica);
  Replica.run replica

open Cmdliner

let primary_host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "H"; "primary-host" ] ~docv:"HOST" ~doc:"Primary's address.")

let primary_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "P"; "primary-port" ] ~docv:"PORT" ~doc:"Primary's TCP port.")

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:"The replica's own database directory (snapshot + WAL + LSN).")

let port_arg =
  Arg.(
    value & opt int 0
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Local TCP port for read-only queries (0 = ephemeral).")

let backoff_max_arg =
  Arg.(
    value & opt float 2.0
    & info [ "backoff-max" ] ~docv:"SECONDS"
        ~doc:"Reconnect backoff ceiling (doubles from 50ms).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 512
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint the local database every $(docv) applied records.")

let cmd =
  let doc = "read-only replica for the hierarchical relational model" in
  Cmd.v
    (Cmd.info "hrdb_replica" ~version:"1.0.0" ~doc)
    Term.(
      const main $ primary_host_arg $ primary_port_arg $ dir_arg $ port_arg
      $ backoff_max_arg $ checkpoint_every_arg)

let () = exit (Cmd.eval cmd)
