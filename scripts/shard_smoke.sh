#!/usr/bin/env bash
# Sharding smoke test: three durable backend shards, a router over a
# hierarchy-partitioned shard map, a mixed DDL/mutation/query workload
# through the router checked byte-identical against a single-node
# control server, kill -9 one shard (degraded reads: confined queries
# keep answering, fan-out queries fail loudly), then offline placement
# verification of every shard with `hrdb fsck --against MAP` — including
# a seeded misplacement that F020 must catch. Run from the repository
# root after `dune build`; CI runs it as the shard-smoke job.
set -euo pipefail

HRDB=${HRDB:-_build/default/bin/hrdb.exe}
SERVER=${SERVER:-_build/default/bin/hrdb_server.exe}
S0PORT=${S0PORT:-7471}
S1PORT=${S1PORT:-7472}
S2PORT=${S2PORT:-7473}
RPORT=${RPORT:-7474}
CPORT=${CPORT:-7475}

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "shard_smoke: FAIL: $*" >&2; exit 1; }

on() { "$HRDB" exec -p "$1" --timeout 10 "$2"; }

metric() { # metric PORT NAME
  "$HRDB" exec -p "$1" --timeout 10 --stats | awk -v n="$2" '$1 == n { print $2 }'
}

wait_ready() { # wait_ready PORT LABEL
  for _ in $(seq 1 100); do
    if on "$1" "SHOW RELATIONS;" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "$2 on port $1 never became ready"
}

echo "== start three durable shards"
"$SERVER" -p "$S0PORT" -d "$WORK/s0" & PIDS+=($!)
"$SERVER" -p "$S1PORT" -d "$WORK/s1" & PIDS+=($!)
S2PID_INDEX=${#PIDS[@]}
"$SERVER" -p "$S2PORT" -d "$WORK/s2" & PIDS+=($!)
wait_ready "$S0PORT" "shard 0"
wait_ready "$S1PORT" "shard 1"
wait_ready "$S2PORT" "shard 2"

echo "== write the shard map and start the router (port $RPORT)"
cat > "$WORK/shards.map" <<EOF
shard 0 127.0.0.1:$S0PORT $WORK/s0
shard 1 127.0.0.1:$S1PORT $WORK/s1
shard 2 127.0.0.1:$S2PORT $WORK/s2
subtree penguin 1
subtree sparrow 2
default 0
EOF
"$SERVER" -p "$RPORT" --router --shard-map "$WORK/shards.map" --shard-timeout 5 & PIDS+=($!)
wait_ready "$RPORT" router

echo "== single-node control server (port $CPORT)"
"$SERVER" -p "$CPORT" & PIDS+=($!)
wait_ready "$CPORT" control

echo "== mixed workload through the router, byte-identical to the control"
run_both() { # every statement must produce identical output on both
  local r c
  r=$(on "$RPORT" "$1" 2>&1) || true
  c=$(on "$CPORT" "$1" 2>&1) || true
  if [ "$r" != "$c" ]; then
    fail "divergent reply for [$1]:
router:  $r
control: $c"
  fi
}
run_both "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;
          CREATE CLASS penguin UNDER bird; CREATE CLASS sparrow UNDER bird;
          CREATE INSTANCE tweety OF penguin; CREATE INSTANCE opus OF penguin;
          CREATE INSTANCE jack OF sparrow; CREATE INSTANCE rex OF animal;
          CREATE RELATION flies (who: animal);"
run_both "INSERT INTO flies VALUES (+ ALL bird), (+ rex);"
run_both "INSERT INTO flies VALUES (- tweety);"
run_both "SELECT * FROM flies;"
run_both "SELECT * FROM flies WHERE who = tweety;"
run_both "SELECT * FROM flies WHERE who = ALL bird;"
run_both "ASK flies (opus);"
run_both "ASK flies (tweety);"
run_both "EXPLAIN flies (jack);"
run_both "LET grounded = SELECT flies WHERE who = ALL penguin;"
run_both "SELECT * FROM grounded;"
run_both "CONSOLIDATE flies;"
run_both "SELECT * FROM flies;"
run_both "DELETE FROM flies VALUES (rex);"
run_both "SELECT * FROM nosuch;"
run_both "SHOW RELATIONS;"

echo "== routing counters moved"
routed=$(metric "$RPORT" shard.mutations_routed)
pulls=$(metric "$RPORT" shard.pulls)
[ -n "$routed" ] && [ "$routed" -gt 0 ] || fail "shard.mutations_routed=$routed"
[ -n "$pulls" ] && [ "$pulls" -gt 0 ] || fail "shard.pulls=$pulls"

echo "== kill -9 shard 2 (sparrow subtree): degraded reads"
on "$RPORT" "INSERT INTO flies VALUES (+ opus);" >/dev/null
kill -9 "${PIDS[$S2PID_INDEX]}"
wait "${PIDS[$S2PID_INDEX]}" 2>/dev/null || true
out=$(on "$RPORT" "SELECT * FROM flies WHERE who = opus;") \
  || fail "query confined to live shards failed after shard death"
case "$out" in
  *opus*) ;;
  *) fail "degraded read lost the penguin subtree: $out" ;;
esac
if out=$(on "$RPORT" "SELECT * FROM flies WHERE who = jack;" 2>&1); then
  fail "fan-out query to the dead shard unexpectedly succeeded: $out"
fi
case "$out" in
  *unreachable*) ;;
  *) fail "expected an 'unreachable' error, got: $out" ;;
esac
on "$RPORT" "DELETE FROM flies VALUES (opus);" >/dev/null \
  || fail "write to a live subtree failed after shard death"

echo "== stop everything; offline placement verification of every shard"
for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; wait "$p" 2>/dev/null || true; done
PIDS=()
for d in s0 s1 s2; do
  "$HRDB" fsck "$WORK/$d" >/dev/null || fail "fsck $d (exit $?)"
done
"$HRDB" fsck --against "$WORK/shards.map" "$WORK/s0" \
  || fail "fsck --against shard map on the healthy deployment (exit $?)"

echo "== seed a misplaced tuple on shard 1; fsck must catch it (F020)"
"$SERVER" -p "$S1PORT" -d "$WORK/s1" & PIDS+=($!)
wait_ready "$S1PORT" "shard 1 (restarted)"
on "$S1PORT" "INSERT INTO flies VALUES (+ jack);" >/dev/null
kill -9 "${PIDS[0]}"; wait "${PIDS[0]}" 2>/dev/null || true
PIDS=()
if out=$("$HRDB" fsck --against "$WORK/shards.map" "$WORK/s0" 2>&1); then
  fail "fsck missed the seeded misplacement: $out"
fi
case "$out" in
  *F020*) ;;
  *) fail "expected an F020 finding, got: $out" ;;
esac

echo "shard_smoke: OK (mutations_routed=$routed pulls=$pulls)"
