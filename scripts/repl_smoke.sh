#!/usr/bin/env bash
# Replication smoke test: durable primary, replica attach, mutation
# workload, kill -9 the primary mid-stream, restart it, then assert the
# replica reconnected and reconverged (byte-identical query output) and
# that the replication counters moved. Run from the repository root
# after `dune build`; CI runs it as the repl-smoke job.
set -euo pipefail

HRDB=${HRDB:-_build/default/bin/hrdb.exe}
SERVER=${SERVER:-_build/default/bin/hrdb_server.exe}
REPLICA=${REPLICA:-_build/default/bin/hrdb_replica.exe}
PPORT=${PPORT:-7461}
RPORT=${RPORT:-7462}

WORK=$(mktemp -d)
PRIMARY_PID=
REPLICA_PID=
cleanup() {
  [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
  [ -n "$REPLICA_PID" ] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "repl_smoke: FAIL: $*" >&2; exit 1; }

on_primary() { "$HRDB" exec -p "$PPORT" --timeout 10 "$@"; }
on_replica() { "$HRDB" exec -p "$RPORT" --timeout 10 "$@"; }

# metric NODE NAME -> prints the counter/gauge value from STATS output
metric() {
  "$HRDB" exec -p "$1" --timeout 10 --stats | awk -v n="$2" '$1 == n { print $2 }'
}

wait_ready() { # wait_ready PORT LABEL
  for _ in $(seq 1 100); do
    if "$HRDB" exec -p "$1" --timeout 2 "SHOW RELATIONS;" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "$2 on port $1 never became ready"
}

start_primary() {
  "$SERVER" -p "$PPORT" -d "$WORK/primary" &
  PRIMARY_PID=$!
  wait_ready "$PPORT" primary
}

echo "== start durable primary (port $PPORT)"
start_primary
on_primary "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;
            CREATE CLASS penguin UNDER bird;
            CREATE INSTANCE tweety OF bird; CREATE INSTANCE paul OF penguin;
            CREATE RELATION flies (creature: animal);
            INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin);" >/dev/null

echo "== attach replica (port $RPORT)"
"$REPLICA" -P "$PPORT" -d "$WORK/replica" -p "$RPORT" --backoff-max 0.5 --verify &
REPLICA_PID=$!
wait_ready "$RPORT" replica

converged() {
  local p r
  p=$(on_primary "SELECT * FROM flies;") || return 1
  r=$(on_replica "SELECT * FROM flies;") || return 1
  [ -n "$p" ] && [ "$p" = "$r" ]
}

wait_converged() {
  for _ in $(seq 1 100); do
    if converged; then return 0; fi
    sleep 0.1
  done
  on_primary "SELECT * FROM flies;" >&2 || true
  on_replica "SELECT * FROM flies;" >&2 || true
  fail "replica never converged ($1)"
}

echo "== mutation workload, then convergence"
on_primary "CREATE PREFERENCE penguin OVER bird;
            INSERT INTO flies VALUES (+ paul); CONSOLIDATE flies;" >/dev/null
wait_converged "initial catch-up"

echo "== mutations on the replica are refused"
if out=$(on_replica "INSERT INTO flies VALUES (+ tweety);" 2>&1); then
  fail "replica accepted a mutation: $out"
fi
case "$out" in
  *"read-only replica"*) ;;
  *) fail "unexpected rejection message: $out" ;;
esac

echo "== kill -9 the primary mid-stream"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=
sleep 1
[ "$(metric "$RPORT" repl.connected)" = "0" ] || fail "replica still claims to be connected"

echo "== restart the primary, more mutations, reconvergence"
start_primary
on_primary "INSERT INTO flies VALUES (- tweety); CONSOLIDATE flies;" >/dev/null
wait_converged "after primary restart"

echo "== replication counters moved"
shipped=$(metric "$PPORT" repl.records_shipped)
applied=$(metric "$RPORT" repl.records_applied)
reconnects=$(metric "$RPORT" repl.reconnects)
[ -n "$shipped" ] && [ "$shipped" -gt 0 ] || fail "repl.records_shipped=$shipped"
[ -n "$applied" ] && [ "$applied" -gt 0 ] || fail "repl.records_applied=$applied"
[ -n "$reconnects" ] && [ "$reconnects" -gt 0 ] || fail "repl.reconnects=$reconnects"

echo "== kill -9 the primary during sustained batched load"
# Four concurrent client loops keep the group-commit path busy (several
# frames per event-loop tick sharing one fsync); the primary dies
# mid-load.  Every statement a client saw acked must survive recovery.
LOAD_PIDS=()
for c in 1 2 3 4; do
  (
    for _ in $(seq 1 200); do
      on_primary "INSERT INTO flies VALUES (+ tweety);" >/dev/null 2>&1 || exit 0
    done
  ) &
  LOAD_PIDS+=($!)
done
sleep 0.7
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=
for p in "${LOAD_PIDS[@]}"; do wait "$p" 2>/dev/null || true; done
# let the replica notice the outage and go quiescent before stopping it
sleep 1
kill -9 "$REPLICA_PID" 2>/dev/null || true
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=

echo "== offline fsck of both crashed directories, then the divergence cross-check"
"$HRDB" fsck "$WORK/primary" || fail "fsck primary after kill-during-load (exit $?)"
"$HRDB" fsck "$WORK/replica" || fail "fsck replica after kill-during-load (exit $?)"
"$HRDB" fsck --against "$WORK/primary" "$WORK/replica" \
  || fail "fsck divergence cross-check (exit $?)"

echo "== both nodes restart from the crashed directories and reconverge"
start_primary
"$REPLICA" -P "$PPORT" -d "$WORK/replica" -p "$RPORT" --backoff-max 0.5 --verify &
REPLICA_PID=$!
wait_ready "$RPORT" replica
on_primary "INSERT INTO flies VALUES (- tweety); CONSOLIDATE flies;" >/dev/null
wait_converged "after crash-under-load restart"

echo "repl_smoke: OK (shipped=$shipped applied=$applied reconnects=$reconnects)"
