(* Multicore snapshot-isolation torture harness (docs/CONCURRENCY.md).

   A pool server ([reader_domains = K]) runs read-only frames on OCaml 5
   reader domains, each pinning the catalog version published at the
   last group commit. This harness races N reader connections against a
   writer replaying randomized mutation scripts and checks, for every
   single read reply, the strongest statement the design makes:

   - {b exact equality}: the reply must be byte-identical to a
     single-threaded replay of the WAL prefix [1..lsn] named by the
     reply's version tag, running the same read script;
   - {b no partial batches}: the pinned LSN must be a commit boundary —
     the WAL head as it stood after some whole writer script — never a
     mid-script LSN;
   - {b monotone pins}: version ids seen by one connection never go
     backwards;
   - {b durability floor}: a pinned LSN never exceeds the WAL head the
     writer has proven durable.

   The harness must also be able to {e fail}: with the deliberately
   seeded isolation bug ([~unsafe_publish:true] — the commit point
   publishes the live mutable catalog instead of a frozen snapshot) it
   has to detect a violation within a bounded number of rounds.

   Reproducibility: the random workload derives from one integer seed,
   printed in every failure message and overridable with
   [HRDB_TEST_SEED=n dune runtest]. *)

module Server = Hr_server.Server
module Client = Server.Client
module Eval = Hr_query.Eval
module Catalog = Hierel.Catalog
module Wal = Hr_storage.Wal

let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None ->
    (* varies run to run so CI keeps exploring; every failure message
       carries the value needed to replay it *)
    Int64.to_int (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      Alcotest.failf "%s\n(reproduce with HRDB_TEST_SEED=%d dune runtest)" msg seed)
    fmt

let with_temp_dir f =
  let dir = Filename.temp_file "hrmc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* ---- workload ---------------------------------------------------------- *)

let instances = Array.init 12 (fun i -> Printf.sprintf "i%d" i)
let relations = [| "r0"; "r1"; "r2" |]

let setup_script =
  String.concat " "
    ("CREATE DOMAIN d;"
     :: "CREATE CLASS c0 UNDER d; CREATE CLASS c1 UNDER d; CREATE CLASS c2 UNDER c0;"
     :: (Array.to_list instances
        |> List.mapi (fun i inst ->
               Printf.sprintf "CREATE INSTANCE %s OF c%d;" inst (i mod 3)))
    @ (Array.to_list relations
      |> List.map (fun r -> Printf.sprintf "CREATE RELATION %s (v: d);" r)))

let pick st arr = arr.(Random.State.int st (Array.length arr))

(* One writer script: a handful of signed-item inserts and deletes.
   Only instance-level items, and each (relation, instance) pair keeps
   one polarity forever, so statements never trip the contradiction
   checks: every one succeeds and is WAL-logged, which keeps commit
   boundaries exactly the per-script WAL heads the harness reads back. *)
let polarity rel inst = if Hashtbl.hash (rel, inst) land 1 = 0 then "+" else "-"

let gen_write st =
  let stmts = 2 + Random.State.int st 5 in
  String.concat " "
    (List.init stmts (fun _ ->
         let rel = pick st relations and inst = pick st instances in
         match Random.State.int st 3 with
         | 0 | 1 ->
           Printf.sprintf "INSERT INTO %s VALUES (%s %s);" rel (polarity rel inst) inst
         | _ -> Printf.sprintf "DELETE FROM %s VALUES (%s);" rel inst))

(* One read-only script (always offloaded on a pool server). *)
let gen_read st =
  match Random.State.int st 4 with
  | 0 -> Printf.sprintf "SELECT * FROM %s;" (pick st relations)
  | 1 -> Printf.sprintf "ASK %s (%s);" (pick st relations) (pick st instances)
  | 2 ->
    Printf.sprintf "SELECT * FROM %s WHERE v = %s;" (pick st relations)
      (pick st instances)
  | _ ->
    Printf.sprintf "SELECT * FROM %s; ASK %s (%s);" (pick st relations)
      (pick st relations) (pick st instances)

(* ---- driving the event loop from the test thread ---------------------- *)

(* The server runs in-process: the test thread pumps [Server.poll] (so
   mutations execute on this thread — the single writer) while the pool
   evaluates offloaded reads on its own domains. Client fds are checked
   with a zero-timeout select before a blocking recv. *)
let pump server = ignore (Server.poll server 0.002)

let readable fd = match Unix.select [ fd ] [] [] 0.0 with [ _ ], _, _ -> true | _ -> false

let await_replies server conns ~count ~what =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let replies = Array.make (Array.length conns) [] in
  let got = ref 0 in
  let want = Array.fold_left (fun acc c -> acc + count c) 0 conns in
  while !got < want do
    if Unix.gettimeofday () > deadline then
      failf "%s: only %d of %d replies after 30s (event loop wedged?)" what !got want;
    pump server;
    Array.iteri
      (fun i conn ->
        while
          List.length (replies.(i)) < count conn && readable (Client.fd conn)
        do
          match Client.recv_versioned conn with
          | Ok reply ->
            replies.(i) <- replies.(i) @ [ reply ];
            incr got
          | Error msg -> failf "%s: transport error: %s" what msg
        done)
      conns
  done;
  replies

(* ---- the oracle -------------------------------------------------------- *)

(* Single-threaded replay: a fresh catalog advanced strictly forward
   through the server's own WAL records. [advance_to oracle lsn] brings
   it to exactly the prefix [1..lsn]; reads are then answered by the
   very same [Eval.run_script] the reader domains use, so the expected
   reply is byte-comparable. *)
type oracle = { cat : Catalog.t; mutable at : int; mutable log : (int * string) list }
(* [log] is the not-yet-replayed WAL suffix, ascending. *)

let oracle_create () = { cat = Catalog.create (); at = 0; log = [] }

let oracle_refresh o dir =
  let records = Wal.records (Filename.concat dir "wal.log") in
  let fresh =
    List.filter_map
      (fun { Wal.lsn; stmt } -> if lsn > o.at then Some (lsn, stmt) else None)
      records
  in
  let known = match o.log with [] -> o.at | l -> fst (List.hd (List.rev l)) in
  List.iter (fun (lsn, stmt) -> if lsn > known then o.log <- o.log @ [ (lsn, stmt) ]) fresh

let advance_to o lsn =
  if lsn < o.at then failf "oracle asked to rewind: at %d, pinned %d" o.at lsn;
  let rec go () =
    match o.log with
    | (l, stmt) :: rest when l <= lsn ->
      (match Eval.run_script o.cat stmt with
      | Ok _ -> ()
      | Error msg -> failf "oracle replay of logged statement %d failed: %s" l msg);
      o.at <- l;
      o.log <- rest;
      go ()
    | _ -> ()
  in
  go ();
  if o.at < lsn then failf "oracle cannot reach lsn %d (WAL only covers %d)" lsn o.at

let expected o script =
  match Eval.run_script o.cat script with
  | Ok outputs -> (true, String.concat "\n" outputs)
  | Error msg -> (false, msg)

(* ---- the harness ------------------------------------------------------- *)

type violation = string option

(* Run [rounds] writer-vs-readers rounds against a pool server; returns
   [Some msg] on the first isolation violation (the unsafe arm wants
   one), [None] if every reply checked out. [check] failing hard is the
   safe arms' behavior; the unsafe arm collects instead. *)
let torture ~readers ~reader_domains ~rounds ~unsafe_publish () : violation =
  with_temp_dir (fun dir ->
      let server =
        Server.create_durable ~port:0 ~dir ~fsync:false ~reader_domains ~unsafe_publish ()
      in
      Fun.protect
        ~finally:(fun () -> Server.close server)
        (fun () ->
          let port = Server.port server in
          let st = Random.State.make [| seed; reader_domains; Bool.to_int unsafe_publish |] in
          let violation = ref None in
          let note_violation msg = if !violation = None then violation := Some msg in
          let check cond fmt =
            Printf.ksprintf (fun msg -> if not cond then note_violation msg) fmt
          in
          (* connect readers first, writer last: the event loop services
             newest connections first, so each round's mutation executes
             before the reads offload — the sharpest race against the
             just-published version *)
          let reader_conns =
            Array.init readers (fun _ ->
                let c = Client.connect ~timeout:30.0 ~port () in
                pump server;
                c)
          in
          let writer = Client.connect ~timeout:30.0 ~port () in
          Fun.protect
            ~finally:(fun () ->
              Array.iter Client.close reader_conns;
              Client.close writer)
            (fun () ->
              let oracle = oracle_create () in
              let boundaries = Hashtbl.create 64 in
              Hashtbl.replace boundaries 0 ();
              let wal_head () =
                List.fold_left
                  (fun acc { Wal.lsn; _ } -> max acc lsn)
                  0
                  (Wal.records (Filename.concat dir "wal.log"))
              in
              (* setup is itself a commit boundary *)
              Client.send writer "EXEC" setup_script;
              (match await_replies server [| writer |] ~count:(fun _ -> 1) ~what:"setup" with
              | [| [ (_, true, _) ] |] -> ()
              | [| [ (_, false, msg) ] |] -> failf "setup failed: %s" msg
              | _ -> failf "setup: unexpected replies");
              Hashtbl.replace boundaries (wal_head ()) ();
              let last_id = Array.make readers 0 in
              let reads_per_conn = 2 in
              for round = 1 to rounds do
                if !violation = None then begin
                  let wscript = gen_write st in
                  let rscripts =
                    Array.init readers (fun _ ->
                        Array.init reads_per_conn (fun _ -> gen_read st))
                  in
                  (* one burst: mutation + every read land in the same
                     event-loop tick whenever the kernel permits *)
                  Client.send writer "EXEC" wscript;
                  Array.iteri
                    (fun i conn ->
                      Array.iter (fun s -> Client.send conn "EXEC" s) rscripts.(i)
                      |> ignore;
                      ignore conn)
                    reader_conns;
                  (* writer ack first: once it arrives the batch is
                     synced, so the WAL covers every pin this round *)
                  (match
                     await_replies server [| writer |] ~count:(fun _ -> 1)
                       ~what:(Printf.sprintf "round %d writer" round)
                   with
                  | [| [ (_, true, _) ] |] -> ()
                  | [| [ (_, false, msg) ] |] ->
                    failf "round %d: writer script %S failed: %s" round wscript msg
                  | _ -> failf "round %d: unexpected writer replies" round);
                  let head = wal_head () in
                  Hashtbl.replace boundaries head ();
                  oracle_refresh oracle dir;
                  let replies =
                    await_replies server reader_conns
                      ~count:(fun _ -> reads_per_conn)
                      ~what:(Printf.sprintf "round %d readers" round)
                  in
                  (* verify in ascending pin order so the oracle only
                     ever replays forward *)
                  let tagged = ref [] in
                  Array.iteri
                    (fun i conn_replies ->
                      List.iteri
                        (fun j reply ->
                          match reply with
                          | Some (id, lsn), ok, body ->
                            tagged := (lsn, id, i, j, ok, body) :: !tagged
                          | None, _, _ ->
                            note_violation
                              (Printf.sprintf
                                 "round %d: reader %d reply %d was answered inline \
                                  (no version tag) on a pool server"
                                 round i j))
                        conn_replies)
                    replies;
                  List.iter
                    (fun (lsn, id, i, j, ok, body) ->
                      check (Hashtbl.mem boundaries lsn)
                        "round %d: reader %d pinned lsn %d which is not a commit \
                         boundary — a partially applied batch was visible"
                        round i lsn;
                      check (lsn <= head)
                        "round %d: reader %d pinned lsn %d beyond the durable head %d"
                        round i lsn head;
                      check (id >= last_id.(i))
                        "round %d: reader %d saw version id %d after %d — pins went \
                         backwards"
                        round i id last_id.(i);
                      last_id.(i) <- max last_id.(i) id;
                      if !violation = None then begin
                        advance_to oracle lsn;
                        let exp_ok, exp_body = expected oracle rscripts.(i).(j) in
                        check (ok = exp_ok && String.equal body exp_body)
                          "round %d: reader %d read %S at version lsn=%d diverged \
                           from single-threaded replay\n  expected (%s): %S\n  got      \
                           (%s): %S"
                          round i
                          rscripts.(i).(j)
                          lsn
                          (if exp_ok then "OK" else "ERR")
                          exp_body
                          (if ok then "OK" else "ERR")
                          body
                      end)
                    (List.sort compare !tagged)
                end
              done;
              !violation)))

(* ---- cases ------------------------------------------------------------- *)

let test_snapshot_isolation k () =
  match torture ~readers:3 ~reader_domains:k ~rounds:30 ~unsafe_publish:false () with
  | None -> ()
  | Some msg -> failf "%s" msg

(* The seeded-bug arm: with unsafe publication the harness must catch a
   violation within the time budget — if it cannot, the harness itself
   is too weak to trust. *)
let test_detects_seeded_bug () =
  let rec hunt attempts =
    if attempts = 0 then
      failf
        "unsafe_publish ran 5 x 40 rounds without a detected isolation violation — \
         the harness has lost its teeth";
    match torture ~readers:3 ~reader_domains:4 ~rounds:40 ~unsafe_publish:true () with
    | Some _ -> () (* caught, as required *)
    | None -> hunt (attempts - 1)
  in
  hunt 5

(* The PR 2 soak, extended with concurrent readers: a long run of the
   same torture harness — more readers than domains (so jobs queue), a
   longer script stream — checking every reply along the way. Lives here
   rather than in test_soak.ml because spawning a domain forbids
   [Unix.fork] for the rest of the process, and the suites after soak
   fork. The CI race lane stretches it via [HRDB_SOAK_ROUNDS]. *)
let test_soak_concurrent_readers () =
  let rounds =
    match Option.bind (Sys.getenv_opt "HRDB_SOAK_ROUNDS") int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> 60
  in
  match torture ~readers:5 ~reader_domains:2 ~rounds ~unsafe_publish:false () with
  | None -> ()
  | Some msg -> failf "soak (%d rounds): %s" rounds msg

(* Two domains evaluating the same frozen snapshot concurrently must
   answer byte-identically to a sequential run — the evaluator may keep
   no hidden mutable state that cross-domain interleaving could skew. *)
let test_domains_match_sequential () =
  let cat = Catalog.create () in
  (match Eval.run_script cat setup_script with
  | Ok _ -> ()
  | Error msg -> failf "setup: %s" msg);
  let st = Random.State.make [| seed; 77 |] in
  (match
     Eval.run_script cat
       (String.concat " "
          (List.init 30 (fun _ ->
               Printf.sprintf "INSERT INTO %s VALUES (+ %s);" (pick st relations)
                 (pick st instances))))
   with
  | Ok _ -> ()
  | Error msg -> failf "populate: %s" msg);
  Catalog.freeze cat;
  let snap = Catalog.snapshot cat in
  let scripts = Array.init 40 (fun _ -> gen_read st) in
  let run_all () =
    Array.map
      (fun s ->
        match Eval.run_script snap s with
        | Ok outs -> String.concat "\n" outs
        | Error msg -> "ERR " ^ msg)
      scripts
  in
  let sequential = run_all () in
  let d1 = Domain.spawn run_all and d2 = Domain.spawn run_all in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  Array.iteri
    (fun i s ->
      if not (String.equal sequential.(i) r1.(i) && String.equal sequential.(i) r2.(i))
      then
        failf "read %S: concurrent domains diverged from sequential\n  seq: %S\n  d1: %S\n  d2: %S"
          s sequential.(i) r1.(i) r2.(i))
    scripts

let suite =
  [
    Alcotest.test_case "snapshot isolation, 1 reader domain" `Quick
      (test_snapshot_isolation 1);
    Alcotest.test_case "snapshot isolation, 2 reader domains" `Quick
      (test_snapshot_isolation 2);
    Alcotest.test_case "snapshot isolation, 4 reader domains" `Quick
      (test_snapshot_isolation 4);
    Alcotest.test_case "detects the seeded unsafe-publish bug" `Quick
      test_detects_seeded_bug;
    Alcotest.test_case "soak with concurrent readers" `Slow
      test_soak_concurrent_readers;
    Alcotest.test_case "two domains match sequential evaluation" `Quick
      test_domains_match_sequential;
  ]
