(* Network layer tests: a forked server process, a real TCP round trip. *)

module Server = Hr_server.Server

(* Fork a process that serves [connections] clients then exits. Returns
   (port, pid). *)
let spawn_server ?dir connections =
  let server =
    match dir with
    | Some dir -> Server.create_durable ~port:0 ~dir ()
    | None -> Server.create_memory ~port:0 ()
  in
  let port = Server.port server in
  match Unix.fork () with
  | 0 ->
    (* child: serve then exit hard (no test-runner teardown) *)
    for _ = 1 to connections do
      (try Server.serve_one_connection server with _ -> ())
    done;
    Server.close server;
    Unix._exit 0
  | pid ->
    (* parent: the child owns the listening socket's accept loop; the
       parent's copy of the fd is closed to avoid interference *)
    (port, pid)

let wait_child pid = ignore (Unix.waitpid [] pid)

let test_round_trip () =
  let port, pid = spawn_server 1 in
  let conn = Server.Client.connect ~timeout:10.0 ~port () in
  (match Server.Client.exec conn "CREATE DOMAIN d;" with
  | Ok out -> Alcotest.(check string) "created" "domain d created" out
  | Error e -> Alcotest.failf "exec: %s" e);
  (match Server.Client.exec conn "CREATE INSTANCE x OF d; CREATE RELATION r (v: d); INSERT INTO r VALUES (+ x);" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "multi: %s" e);
  (match Server.Client.exec conn "ASK r (x);" with
  | Ok out -> Alcotest.(check string) "verdict over the wire" "+ (by (x))" out
  | Error e -> Alcotest.failf "ask: %s" e);
  Server.Client.close conn;
  wait_child pid

let test_errors_propagate () =
  let port, pid = spawn_server 1 in
  let conn = Server.Client.connect ~timeout:10.0 ~port () in
  (match Server.Client.exec conn "SELECT * FROM nope;" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> Alcotest.(check bool) "message" true (String.length msg > 0));
  (* the connection survives an error *)
  (match Server.Client.exec conn "CREATE DOMAIN d;" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "after error: %s" e);
  Server.Client.close conn;
  wait_child pid

let test_durable_backend () =
  let dir = Filename.temp_file "hrsrv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let port, pid = spawn_server ~dir 1 in
      let conn = Server.Client.connect ~timeout:10.0 ~port () in
      (match
         Server.Client.exec conn
           "CREATE DOMAIN d; CREATE INSTANCE x OF d; CREATE RELATION r (v: d); INSERT INTO r VALUES (+ x);"
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "exec: %s" e);
      Server.Client.close conn;
      wait_child pid;
      (* state survived in the directory: reopen directly *)
      let db = Hr_storage.Db.open_dir dir in
      (match Hr_storage.Db.exec db "ASK r (x);" with
      | Ok [ out ] -> Alcotest.(check string) "durable over the wire" "+ (by (x))" out
      | Ok _ | Error _ -> Alcotest.fail "reopen failed");
      Hr_storage.Db.close db)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_lint_over_the_wire () =
  let port, pid = spawn_server 1 in
  let conn = Server.Client.connect ~timeout:10.0 ~port () in
  (match Server.Client.exec conn "CREATE DOMAIN d; CREATE INSTANCE x OF d; CREATE RELATION r (v: d); INSERT INTO r VALUES (+ x);" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup: %s" e);
  (* the analyzer sees the live catalog... *)
  (match Server.Client.lint conn "DELETE FROM r VALUES (x);" with
  | Ok payload -> Alcotest.(check string) "clean script" "[]\n" payload
  | Error e -> Alcotest.failf "lint: %s" e);
  (match Server.Client.lint conn "SELECT * FROM nosuch;" with
  | Ok payload ->
    Alcotest.(check bool) "diagnostic in payload" true
      (contains ~needle:"E001" payload)
  | Error e -> Alcotest.failf "lint: %s" e);
  (* ...but linting DROP RELATION must not have dropped anything *)
  (match Server.Client.lint conn "DROP RELATION r;" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lint drop: %s" e);
  (match Server.Client.exec conn "ASK r (x);" with
  | Ok out -> Alcotest.(check string) "relation still there" "+ (by (x))" out
  | Error e -> Alcotest.failf "ask after lint: %s" e);
  Server.Client.close conn;
  wait_child pid

let test_fsck_over_the_wire () =
  (* in-memory backends refuse the frame *)
  let port, pid = spawn_server 1 in
  let conn = Server.Client.connect ~timeout:10.0 ~port () in
  (match Server.Client.fsck conn with
  | Ok _ -> Alcotest.fail "memory backend should refuse FSCK"
  | Error msg ->
    Alcotest.(check bool) "says durable" true (contains ~needle:"durable" msg));
  Server.Client.close conn;
  wait_child pid;
  (* a durable backend verifies its own directory *)
  let dir = Filename.temp_file "hrsrv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let port, pid = spawn_server ~dir 1 in
      let conn = Server.Client.connect ~timeout:10.0 ~port () in
      (match Server.Client.exec conn "CREATE DOMAIN d; CREATE INSTANCE x OF d;" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "setup: %s" e);
      (match Server.Client.fsck conn with
      | Ok body -> Alcotest.(check bool) "clean" true (contains ~needle:"clean" body)
      | Error e -> Alcotest.failf "fsck: %s" e);
      (match Server.Client.fsck ~json:true conn with
      | Ok body ->
        Alcotest.(check bool) "json clean" true
          (contains ~needle:"\"clean\":true" body)
      | Error e -> Alcotest.failf "fsck json: %s" e);
      Server.Client.close conn;
      wait_child pid)

let suite =
  [
    Alcotest.test_case "tcp round trip" `Quick test_round_trip;
    Alcotest.test_case "errors propagate, connection survives" `Quick test_errors_propagate;
    Alcotest.test_case "durable backend over tcp" `Quick test_durable_backend;
    Alcotest.test_case "lint over the wire" `Quick test_lint_over_the_wire;
    Alcotest.test_case "fsck over the wire" `Quick test_fsck_over_the_wire;
  ]
