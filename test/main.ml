let () =
  Alcotest.run "hierel"
    [
      ("util", Test_util.suite);
      ("dag", Test_dag.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("schema", Test_schema.suite);
      ("item", Test_item.suite);
      ("relation", Test_relation.suite);
      ("subsumption", Test_subsumption.suite);
      ("binding", Test_binding.suite);
      ("index", Test_index.suite);
      ("integrity", Test_integrity.suite);
      ("consolidate", Test_consolidate.suite);
      ("explicate", Test_explicate.suite);
      ("ops", Test_ops.suite);
      ("txn", Test_txn.suite);
      ("rel_diff", Test_rel_diff.suite);
      ("flat", Test_flat.suite);
      ("csv", Test_csv.suite);
      ("frontend", Test_frontend.suite);
      ("query", Test_query.suite);
      ("optimizer", Test_optimizer.suite);
      ("aggregate", Test_aggregate.suite);
      ("datalog", Test_datalog.suite);
      ("mine", Test_mine.suite);
      ("workload", Test_workload.suite);
      ("threeval", Test_threeval.suite);
      ("threeval-props", Test_threeval_props.suite);
      ("persist", Test_persist.suite);
      ("frames", Test_frames.suite);
      ("storage", Test_storage.suite);
      ("pager", Test_pager.suite);
      ("btree", Test_btree.suite);
      ("properties", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("obs", Test_obs.suite);
      ("analysis", Test_analysis.suite);
      ("estimate", Test_estimate.suite);
      ("render", Test_render.suite);
      ("soak", Test_soak.suite);
      ("fsck", Test_fsck.suite);
      ("server", Test_server.suite);
      ("repl", Test_repl.suite);
      ("shard", Test_shard.suite);
      (* the rest spawn OCaml 5 domains, and Unix.fork — which the
         server/repl/shard suites use — is forbidden for the rest of
         the process once any domain has ever been created *)
      ("effect", Test_effect.suite);
      ("mc", Test_mc.suite);
    ]
