(* Pager and heap-file tests: page I/O, buffer pool behaviour, slotted
   rows, persistence across reopen. *)

module Pager = Hr_storage.Pager
module Heap_file = Hr_storage.Heap_file

let with_temp_file f =
  let path = Filename.temp_file "hrpage" ".db" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_allocate_and_rw () =
  with_temp_file (fun path ->
      let p = Pager.create path in
      Alcotest.(check int) "empty file" 0 (Pager.page_count p);
      let a = Pager.allocate p in
      let b = Pager.allocate p in
      Alcotest.(check int) "page numbers" 0 a;
      Alcotest.(check int) "page numbers" 1 b;
      let page = Bytes.make Pager.page_size 'x' in
      Pager.write_page p a page;
      Alcotest.(check char) "written" 'x' (Bytes.get (Pager.read_page p a) 0);
      Alcotest.(check char) "other page untouched" '\000' (Bytes.get (Pager.read_page p b) 0);
      Pager.close p)

let test_persistence_across_reopen () =
  with_temp_file (fun path ->
      let p = Pager.create path in
      let a = Pager.allocate p in
      let page = Bytes.make Pager.page_size 'z' in
      Pager.write_page p a page;
      Pager.close p;
      let p2 = Pager.create path in
      Alcotest.(check int) "page survives" 1 (Pager.page_count p2);
      Alcotest.(check char) "data survives" 'z' (Bytes.get (Pager.read_page p2 a) 0);
      Pager.close p2)

let test_pool_hits_and_eviction () =
  with_temp_file (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let pages = List.init 4 (fun _ -> Pager.allocate p) in
      (* touch all four: pool holds only 2, so re-reading the first is a
         disk read again *)
      List.iter (fun n -> ignore (Pager.read_page p n)) pages;
      let before = Pager.reads_from_disk p in
      ignore (Pager.read_page p (List.nth pages 0));
      Alcotest.(check bool) "evicted page re-read from disk" true
        (Pager.reads_from_disk p > before);
      let hit_before = Pager.hits p in
      ignore (Pager.read_page p (List.nth pages 0));
      Alcotest.(check bool) "hot page hits the pool" true (Pager.hits p > hit_before);
      Pager.close p)

let test_dirty_eviction_writes_back () =
  with_temp_file (fun path ->
      let p = Pager.create ~pool_pages:1 path in
      let a = Pager.allocate p in
      let b = Pager.allocate p in
      let page = Bytes.make Pager.page_size 'd' in
      Pager.write_page p a page;
      (* touching b evicts dirty a *)
      ignore (Pager.read_page p b);
      Alcotest.(check char) "write-back preserved the data" 'd'
        (Bytes.get (Pager.read_page p a) 0);
      Pager.close p)

let test_evictions_counted () =
  with_temp_file (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let pages = List.init 6 (fun _ -> Pager.allocate p) in
      Alcotest.(check int) "fresh pool, no evictions" 0 (Pager.evictions p);
      List.iter (fun n -> ignore (Pager.read_page p n)) pages;
      (* 6 distinct pages through a 2-slot pool: at least 4 evictions *)
      Alcotest.(check bool) "evictions counted" true (Pager.evictions p >= 4);
      let e = Pager.evictions p in
      ignore (Pager.read_page p (List.nth pages 5));
      Alcotest.(check int) "resident page evicts nothing" e (Pager.evictions p);
      Pager.close p)

(* The LRU must evict the least-recently-used slot, not an arbitrary
   one: with a 2-slot pool, touching a keeps it resident while b ages
   out. *)
let test_lru_order () =
  with_temp_file (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let a = Pager.allocate p in
      let b = Pager.allocate p in
      let c = Pager.allocate p in
      ignore (Pager.read_page p a);
      ignore (Pager.read_page p b);
      ignore (Pager.read_page p a);
      (* pool = {a, b}, a most recent; c must evict b *)
      ignore (Pager.read_page p c);
      let hits = Pager.hits p in
      ignore (Pager.read_page p a);
      Alcotest.(check bool) "recently-touched page survived eviction" true
        (Pager.hits p > hits);
      let reads = Pager.reads_from_disk p in
      ignore (Pager.read_page p b);
      Alcotest.(check bool) "least-recently-used page was the one evicted" true
        (Pager.reads_from_disk p > reads);
      Pager.close p)

let test_with_page_mutates_in_place () =
  with_temp_file (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let a = Pager.allocate p in
      let w = Pager.writes_to_disk p in
      Pager.with_page p a (fun b -> Bytes.set b 0 'm');
      Alcotest.(check int) "mutation buffered, not written through" w
        (Pager.writes_to_disk p);
      Pager.flush p;
      Alcotest.(check bool) "flush wrote the dirty page" true (Pager.writes_to_disk p > w);
      Pager.close p;
      let p2 = Pager.create path in
      Alcotest.(check char) "in-place mutation durable" 'm'
        (Bytes.get (Pager.read_page p2 a) 0);
      Pager.close p2)

let test_repair_partial_truncates () =
  with_temp_file (fun path ->
      let p = Pager.create path in
      let a = Pager.allocate p in
      Pager.write_page p a (Bytes.make Pager.page_size 'k');
      Pager.close p;
      (* simulate a crash mid-extension: half a page of trailing garbage *)
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      ignore (Unix.write_substring fd (String.make 100 'g') 0 100);
      Unix.close fd;
      let p2 = Pager.create ~repair_partial:true path in
      Alcotest.(check int) "partial page truncated away" 1 (Pager.page_count p2);
      Alcotest.(check char) "whole pages intact" 'k' (Bytes.get (Pager.read_page p2 a) 0);
      Pager.close p2)

let test_out_of_range () =
  with_temp_file (fun path ->
      let p = Pager.create path in
      (try
         ignore (Pager.read_page p 0);
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ());
      Pager.close p)

let test_heap_append_scan () =
  with_temp_file (fun path ->
      let h = Heap_file.create path in
      let rows = List.init 100 (fun i -> Printf.sprintf "row-%04d" i) in
      List.iter (Heap_file.append h) rows;
      Alcotest.(check int) "count" 100 (Heap_file.row_count h);
      Alcotest.(check (list string)) "order preserved" rows (Heap_file.rows h);
      Heap_file.close h)

let test_heap_spills_pages () =
  with_temp_file (fun path ->
      let h = Heap_file.create path in
      let big = String.make 1000 'r' in
      for _ = 1 to 20 do
        Heap_file.append h big
      done;
      Alcotest.(check bool) "several pages" true (Heap_file.page_count h > 1);
      Alcotest.(check int) "all rows" 20 (Heap_file.row_count h);
      Heap_file.close h)

let test_heap_oversize_rejected () =
  with_temp_file (fun path ->
      let h = Heap_file.create path in
      (try
         Heap_file.append h (String.make 5000 'x');
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ());
      Heap_file.close h)

let test_heap_persistence () =
  with_temp_file (fun path ->
      let h = Heap_file.create path in
      Heap_file.append h "alpha";
      Heap_file.append h "beta";
      Heap_file.close h;
      let h2 = Heap_file.create path in
      Alcotest.(check (list string)) "rows survive" [ "alpha"; "beta" ] (Heap_file.rows h2);
      Heap_file.close h2)

let test_heap_empty_rows_ok () =
  with_temp_file (fun path ->
      let h = Heap_file.create path in
      Heap_file.append h "";
      Heap_file.append h "x";
      Alcotest.(check (list string)) "empty row kept" [ ""; "x" ] (Heap_file.rows h);
      Heap_file.close h)

let suite =
  [
    Alcotest.test_case "allocate / read / write" `Quick test_allocate_and_rw;
    Alcotest.test_case "persistence across reopen" `Quick test_persistence_across_reopen;
    Alcotest.test_case "pool hits and eviction" `Quick test_pool_hits_and_eviction;
    Alcotest.test_case "dirty eviction writes back" `Quick test_dirty_eviction_writes_back;
    Alcotest.test_case "evictions counted" `Quick test_evictions_counted;
    Alcotest.test_case "LRU evicts the coldest slot" `Quick test_lru_order;
    Alcotest.test_case "with_page mutates in place" `Quick test_with_page_mutates_in_place;
    Alcotest.test_case "repair_partial truncates a torn page" `Quick
      test_repair_partial_truncates;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "heap append/scan" `Quick test_heap_append_scan;
    Alcotest.test_case "heap spills across pages" `Quick test_heap_spills_pages;
    Alcotest.test_case "oversize row rejected" `Quick test_heap_oversize_rejected;
    Alcotest.test_case "heap persistence" `Quick test_heap_persistence;
    Alcotest.test_case "empty rows" `Quick test_heap_empty_rows_ok;
  ]
