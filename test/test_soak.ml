(* Randomized end-to-end soak test: a stream of structurally valid HRQL
   statements hammers a catalog; after every statement the catalog's
   relations must satisfy the ambiguity constraint (rejected updates
   included — rejection must leave no trace). Exercises the parser,
   evaluator, optimizer, transactions and integrity machinery together.

   The runs double as consistency checks of the metrics registry
   (lib/obs): statement and WAL counters must account for exactly the
   work submitted, the pager must read back at least what it wrote back,
   and a server must serve exactly as many frames as the client sent.

   The concurrent-reader arm of the soak lives in test_mc.ml ("soak with
   concurrent readers"): spawning an OCaml 5 domain forbids Unix.fork for
   the rest of the process, and suites registered after this one fork. *)

module Eval = Hr_query.Eval
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
module Metrics = Hr_obs.Metrics
open Hierel

type state = {
  cat : Catalog.t;
  g : Prng.t;
  mutable classes : string list;
  mutable instances : string list;
  mutable relations : string list;
  mutable executed : int;
  mutable rejected : int;
}

let fresh_name state prefix =
  Printf.sprintf "%s%d" prefix (Prng.int state.g 1_000_000_000)

let pick_opt state = function
  | [] -> None
  | xs -> Some (Prng.pick state.g (Array.of_list xs))

let random_value state =
  if Prng.bool state.g then
    Option.map (fun c -> "ALL " ^ c) (pick_opt state state.classes)
  else pick_opt state state.instances

let random_statement state =
  match Prng.int state.g 10 with
  | 0 ->
    let name = fresh_name state "c" in
    let parent = Option.value ~default:"soak" (pick_opt state state.classes) in
    state.classes <- name :: state.classes;
    Some (Printf.sprintf "CREATE CLASS %s UNDER %s;" name parent)
  | 1 ->
    let name = fresh_name state "i" in
    let parent = Option.value ~default:"soak" (pick_opt state state.classes) in
    state.instances <- name :: state.instances;
    Some (Printf.sprintf "CREATE INSTANCE %s OF %s;" name parent)
  | 2 ->
    let name = fresh_name state "r" in
    state.relations <- name :: state.relations;
    Some (Printf.sprintf "CREATE RELATION %s (v: soak);" name)
  | 3 | 4 | 5 -> (
    match pick_opt state state.relations, random_value state with
    | Some rel, Some v ->
      let sign = if Prng.bernoulli state.g 0.3 then "-" else "+" in
      Some (Printf.sprintf "INSERT INTO %s VALUES (%s %s);" rel sign v)
    | _ -> None)
  | 6 -> (
    match pick_opt state state.relations, pick_opt state state.instances with
    | Some rel, Some i -> Some (Printf.sprintf "ASK %s (%s);" rel i)
    | _ -> None)
  | 7 ->
    Option.map (fun rel -> Printf.sprintf "CONSOLIDATE %s;" rel)
      (pick_opt state state.relations)
  | 8 -> (
    match state.relations with
    | a :: b :: _ -> Some (Printf.sprintf "LET u%d = %s UNION %s;" (Prng.int state.g 1000) a b)
    | _ -> None)
  | _ ->
    Option.map (fun rel -> Printf.sprintf "CHECK %s;" rel)
      (pick_opt state state.relations)

let run_soak seed steps =
  let cat = Catalog.create () in
  (match Eval.run_script cat "CREATE DOMAIN soak;" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let state =
    {
      cat;
      g = Prng.create (Int64.of_int seed);
      classes = [ "soak" ];
      instances = [];
      relations = [];
      executed = 0;
      rejected = 0;
    }
  in
  for _ = 1 to steps do
    match random_statement state with
    | None -> ()
    | Some stmt -> (
      match Eval.run_script state.cat stmt with
      | Ok _ -> state.executed <- state.executed + 1
      | Error _ ->
        (* duplicate names, direct contradictions, ambiguity rejections:
           all fine — but they must leave the catalog consistent *)
        state.rejected <- state.rejected + 1)
  done;
  state

let check_invariants state =
  List.iter
    (fun rel ->
      Alcotest.(check bool)
        (Printf.sprintf "%s satisfies the ambiguity constraint" (Relation.name rel))
        true
        (Integrity.is_consistent rel);
      (* consolidation remains extension-preserving on live data *)
      Alcotest.(check bool)
        (Printf.sprintf "%s consolidates without changing meaning" (Relation.name rel))
        true
        (Flatten.equal_extension rel (Consolidate.consolidate rel)))
    (Catalog.relations state.cat)

let test_soak_small () =
  let state = run_soak 42 150 in
  Alcotest.(check bool) "made progress" true (state.executed > 50);
  check_invariants state

let test_soak_negative_heavy () =
  let state = run_soak 1337 150 in
  check_invariants state

let test_soak_durable () =
  (* the same stream through the durable engine, with a mid-way
     checkpoint and a reopen at the end; the registry must account for
     exactly the statements submitted and the WAL discipline *)
  let dir = Filename.temp_file "hrsoak" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Metrics.with_enabled true (fun () ->
          let statements0 = Metrics.counter_value "storage.db.statements" in
          let appends0 = Metrics.counter_value "storage.wal.appends" in
          let fsyncs0 = Metrics.counter_value "storage.wal.fsyncs" in
          let checkpoints0 = Metrics.counter_value "storage.db.checkpoints" in
          let db = Hr_storage.Db.open_dir dir in
          (match Hr_storage.Db.exec db "CREATE DOMAIN soak;" with
          | Ok _ -> ()
          | Error e -> failwith e);
          let state =
            {
              cat = Hr_storage.Db.catalog db;
              g = Prng.create 777L;
              classes = [ "soak" ];
              instances = [];
              relations = [];
              executed = 0;
              rejected = 0;
            }
          in
          for step = 1 to 100 do
            (match random_statement state with
            | None -> ()
            | Some stmt -> (
              match Hr_storage.Db.exec db stmt with
              | Ok _ -> state.executed <- state.executed + 1
              | Error _ -> state.rejected <- state.rejected + 1));
            if step = 50 then Hr_storage.Db.checkpoint db
          done;
          (* end-of-run registry consistency: every submitted statement
             (accepted or rejected, plus the initial CREATE DOMAIN) was
             counted.  [Db.exec] syncs after every statement, so on this
             path each append gets its own fsync — the group-commit
             batching (fsyncs < appends) only appears under the server's
             event loop, and is asserted by bench C14 / the CI report. *)
          Alcotest.(check int) "storage.db.statements accounts for the run"
            (state.executed + state.rejected + 1)
            (Metrics.counter_value "storage.db.statements" - statements0);
          Alcotest.(check int) "one checkpoint recorded" 1
            (Metrics.counter_value "storage.db.checkpoints" - checkpoints0);
          let appends = Metrics.counter_value "storage.wal.appends" - appends0 in
          Alcotest.(check int) "per-statement exec: wal fsyncs = wal appends" appends
            (Metrics.counter_value "storage.wal.fsyncs" - fsyncs0);
          Alcotest.(check bool) "the run appended to the wal" true (appends > 0);
          let dump_before = Hr_query.Persist.dump_catalog (Hr_storage.Db.catalog db) in
          Hr_storage.Db.close db;
          let db2 = Hr_storage.Db.open_dir dir in
          Alcotest.(check string) "recovered state identical" dump_before
            (Hr_query.Persist.dump_catalog (Hr_storage.Db.catalog db2));
          Hr_storage.Db.close db2))

(* A controlled pager workload for which "pages read >= pages written
   back" is a hard invariant: every page becomes dirty only after being
   faulted in, is flushed exactly once, and is read back afterwards. *)
let test_pager_registry () =
  Metrics.with_enabled true (fun () ->
      let file = Filename.temp_file "hrsoakpager" ".pages" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          let reads0 = Metrics.counter_value "storage.pager.disk_reads" in
          let writebacks0 = Metrics.counter_value "storage.pager.writebacks" in
          let hits0 = Metrics.counter_value "storage.pager.pool_hits" in
          let module Pager = Hr_storage.Pager in
          let pager = Pager.create ~pool_pages:8 file in
          let pages = 20 (* > pool: forces real evictions and writebacks *) in
          let ids = List.init pages (fun _ -> Pager.allocate pager) in
          List.iteri
            (fun i id ->
              Pager.write_page pager id
                (Bytes.make Pager.page_size (Char.chr (65 + (i mod 26)))))
            ids;
          Pager.flush pager;
          List.iteri
            (fun i id ->
              Alcotest.(check char)
                (Printf.sprintf "page %d content survives" id)
                (Char.chr (65 + (i mod 26)))
                (Bytes.get (Pager.read_page pager id) 0))
            ids;
          (* an immediate re-read of the hottest page must hit the pool
             (the sequential scan above thrashes LRU by design) *)
          ignore (Pager.read_page pager (List.nth ids (pages - 1)));
          Pager.close pager;
          let reads = Metrics.counter_value "storage.pager.disk_reads" - reads0 in
          let writebacks = Metrics.counter_value "storage.pager.writebacks" - writebacks0 in
          Alcotest.(check int) "every page written back exactly once" pages writebacks;
          Alcotest.(check bool) "pages read >= pages written back" true
            (reads >= writebacks);
          Alcotest.(check bool) "the pool served some hits" true
            (Metrics.counter_value "storage.pager.pool_hits" > hits0)))

(* Frames served must equal requests sent. Single-threaded dance: the
   client connects (the handshake completes via the listen backlog),
   pipelines a handful of small frames into the socket buffer and
   half-closes; the sequential server then drains the connection, and
   the client collects the buffered replies. *)
let test_server_frames_registry () =
  let module Server = Hr_server.Server in
  Metrics.with_enabled true (fun () ->
      let server = Server.create_memory ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Server.close server)
        (fun () ->
          let frames0 = Metrics.counter_value "server.frames_served" in
          let connections0 = Metrics.counter_value "server.connections" in
          let conn = Server.Client.connect ~timeout:10.0 ~port:(Server.port server) () in
          let requests =
            [
              ("EXEC", "CREATE DOMAIN srvsoak;");
              ("EXEC", "CREATE INSTANCE srvx OF srvsoak;");
              ("EXEC", "CREATE RELATION srvr (v: srvsoak);");
              ("EXEC", "INSERT INTO srvr VALUES (+ srvx);");
              ("EXEC", "ASK srvr (srvx);");
              ("EXEC", "EXPLAIN ANALYZE SELECT srvr WHERE v = srvx;");
              ("STATS", "");
              ("STATS", "json");
            ]
          in
          List.iter (fun (tag, payload) -> Server.Client.send conn tag payload) requests;
          Server.Client.shutdown_send conn;
          Server.serve_one_connection server;
          List.iter
            (fun (tag, payload) ->
              match Server.Client.recv conn with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "reply to %s %S: %s" tag payload e)
            requests;
          Server.Client.close conn;
          Alcotest.(check int) "frames served = requests sent" (List.length requests)
            (Metrics.counter_value "server.frames_served" - frames0);
          Alcotest.(check int) "one connection counted" 1
            (Metrics.counter_value "server.connections" - connections0)))

let suite =
  [
    Alcotest.test_case "soak: 150 random statements" `Quick test_soak_small;
    Alcotest.test_case "soak: second seed" `Quick test_soak_negative_heavy;
    Alcotest.test_case "soak: durable engine with checkpoint + recovery" `Quick
      test_soak_durable;
    Alcotest.test_case "soak: pager registry consistency" `Quick test_pager_registry;
    Alcotest.test_case "soak: server frames = client requests" `Quick
      test_server_frames_registry;
  ]
