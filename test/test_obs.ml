(* Properties and golden output for the observability layer (lib/obs):

   - counters are monotonic whatever update sequence is applied;
   - histograms conserve the observation count across their buckets;
   - trace spans are well-nested, both hand-built and as produced by the
     evaluator's instrumentation;
   - a disabled sink is semantically invisible: the same script yields
     byte-identical output, and no counter moves;
   - EXPLAIN ANALYZE's plan tree is pinned by a golden file (timings
     normalized, counters exact — the engine is deterministic). *)

module Metrics = Hr_obs.Metrics
module Trace = Hr_obs.Trace
module Eval = Hr_query.Eval
open Hierel

(* ---- counters --------------------------------------------------------- *)

(* A random update program: 0 means [incr], anything else is an [add]
   delta (negative and zero deltas must be ignored). *)
let updates_gen = QCheck2.Gen.(list_size (int_range 0 60) (int_range (-10) 20))

let apply_update c = function 0 -> Metrics.incr c | d -> Metrics.add c d

let prop_counters_monotonic =
  QCheck2.Test.make ~name:"counters never decrease" ~count:200 updates_gen (fun updates ->
      Metrics.with_enabled true (fun () ->
          let reg = Metrics.create () in
          let c = Metrics.counter ~registry:reg "test.c" in
          List.for_all
            (fun u ->
              let before = Metrics.value c in
              apply_update c u;
              Metrics.value c >= before)
            updates))

let prop_counter_value_exact =
  QCheck2.Test.make ~name:"counter value = sum of positive deltas" ~count:200 updates_gen
    (fun updates ->
      Metrics.with_enabled true (fun () ->
          let reg = Metrics.create () in
          let c = Metrics.counter ~registry:reg "test.c" in
          List.iter (apply_update c) updates;
          let expected =
            List.fold_left
              (fun acc -> function 0 -> acc + 1 | d when d > 0 -> acc + d | _ -> acc)
              0 updates
          in
          Metrics.value c = expected
          (* registration is idempotent: the name reads the same count *)
          && Metrics.counter_value ~registry:reg "test.c" = expected
          && Metrics.counter_value ~registry:reg "test.never_registered" = 0))

(* ---- histograms ------------------------------------------------------- *)

let obs_gen = QCheck2.Gen.(list_size (int_range 0 80) (int_range (-100) 2_000_000))

let prop_histogram_conserves_count =
  QCheck2.Test.make ~name:"histogram buckets conserve the observation count" ~count:200
    obs_gen (fun ns_list ->
      Metrics.with_enabled true (fun () ->
          let reg = Metrics.create () in
          let h = Metrics.histogram ~registry:reg "test.h" in
          List.iter (Metrics.observe h) ns_list;
          let snap = Metrics.snapshot ~registry:reg () in
          match snap.Metrics.histograms with
          | [ st ] ->
            let bucket_total =
              List.fold_left (fun acc (_, n) -> acc + n) 0 st.Metrics.nonzero_buckets
            in
            st.Metrics.count = List.length ns_list
            && bucket_total = st.Metrics.count
            && Metrics.observations h = st.Metrics.count
            && (st.Metrics.count = 0 || st.Metrics.min <= st.Metrics.max)
            && st.Metrics.sum
               = List.fold_left (fun acc ns -> acc + max 0 ns) 0 ns_list
          | _ -> false))

let prop_bucket_of_sane =
  QCheck2.Test.make ~name:"bucket_of is a magnitude index" ~count:200
    QCheck2.Gen.(int_range 0 61)
    (fun e ->
      let b = Metrics.bucket_of (1 lsl e) in
      b = max 0 e
      (* and every value lands in a real bucket *)
      && Metrics.bucket_of max_int < 64
      && Metrics.bucket_of 0 = 0)

(* ---- trace spans ------------------------------------------------------ *)

(* Build a random span tree from a shape seed; every root must come back
   well-nested and tracing must restore its previous state. *)
let rec build_spans depth g =
  let n = Hr_util.Prng.int g 3 in
  for i = 0 to n - 1 do
    Trace.with_span
      (Printf.sprintf "span.d%d.%d" depth i)
      (fun () ->
        Trace.note "i" i;
        if depth < 3 then build_spans (depth + 1) g)
  done

let prop_spans_well_nested =
  QCheck2.Test.make ~name:"collected spans are well-nested" ~count:100
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let was_enabled = Trace.enabled () in
      let (), roots =
        Trace.collect (fun () ->
            let g = Hr_util.Prng.create (Int64.of_int seed) in
            Trace.with_span "root" (fun () -> build_spans 0 g))
      in
      Trace.enabled () = was_enabled
      && List.length roots = 1
      && List.for_all Trace.well_nested roots)

let eval_spans_well_nested () =
  let cat = Catalog.create () in
  let script =
    {|CREATE DOMAIN span_being;
      CREATE CLASS span_bird UNDER span_being;
      CREATE INSTANCE span_tweety OF span_bird;
      CREATE RELATION span_flies (creature: span_being);
      INSERT INTO span_flies VALUES (+ ALL span_bird);|}
  in
  (match Eval.run_script cat script with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup failed: %s" e);
  let result, roots =
    Trace.collect (fun () ->
        Eval.run_script cat "LET span_sel = SELECT span_flies WHERE creature = span_tweety;")
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "query failed: %s" e);
  Alcotest.(check bool) "evaluator produced spans" true (roots <> []);
  Alcotest.(check bool) "all roots well-nested" true (List.for_all Trace.well_nested roots);
  Alcotest.(check bool)
    "rows note attached somewhere" true
    (let rec has_note s =
       List.mem_assoc "rows" (Trace.notes s) || List.exists has_note (Trace.children s)
     in
     List.exists has_note roots)

(* ---- a disabled sink changes nothing ---------------------------------- *)

let quiet_script =
  {|CREATE DOMAIN quiet_being;
    CREATE CLASS quiet_bird UNDER quiet_being;
    CREATE CLASS quiet_penguin UNDER quiet_bird;
    CREATE INSTANCE quiet_tweety OF quiet_bird;
    CREATE INSTANCE quiet_opus OF quiet_penguin;
    CREATE RELATION quiet_flies (creature: quiet_being);
    INSERT INTO quiet_flies VALUES (+ ALL quiet_bird), (- ALL quiet_penguin);
    SELECT * FROM quiet_flies;
    SELECT * FROM quiet_flies WHERE creature = quiet_tweety;
    ASK quiet_flies (quiet_opus);
    COUNT quiet_flies;
    CHECK quiet_flies;|}

let run_quiet () =
  (* Same names in a fresh catalog each time: outputs must be identical. *)
  match Eval.run_script (Catalog.create ()) quiet_script with
  | Ok outputs -> String.concat "\n" outputs
  | Error e -> Alcotest.failf "script failed: %s" e

let disabled_sink_identical () =
  let enabled_out = Metrics.with_enabled true run_quiet in
  let verdicts_before = Metrics.counter_value "core.binding.verdicts" in
  let subs_before = Metrics.counter_value "hierarchy.subsumption_checks" in
  let disabled_out = Metrics.with_enabled false run_quiet in
  Alcotest.(check string) "byte-identical output" enabled_out disabled_out;
  Alcotest.(check int) "no verdict counted while disabled" verdicts_before
    (Metrics.counter_value "core.binding.verdicts");
  Alcotest.(check int) "no subsumption counted while disabled" subs_before
    (Metrics.counter_value "hierarchy.subsumption_checks")

(* ---- EXPLAIN ANALYZE golden ------------------------------------------- *)

(* Timings vary run to run; everything else (plan shape, row counts,
   counter deltas) is deterministic. Normalize [time=...ms] only. *)
let normalize_times s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  let starts_with at prefix =
    at + String.length prefix <= n && String.sub s at (String.length prefix) = prefix
  in
  while !i < n do
    if starts_with !i "time=" then begin
      Buffer.add_string buf "time=_ms";
      i := !i + 5;
      while !i < n && not (starts_with !i "ms") do
        Stdlib.incr i
      done;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      Stdlib.incr i
    end
  done;
  Buffer.contents buf

let golden_setup =
  {|CREATE DOMAIN gold_being;
    CREATE CLASS gold_bird UNDER gold_being;
    CREATE CLASS gold_penguin UNDER gold_bird;
    CREATE INSTANCE gold_tweety OF gold_bird;
    CREATE INSTANCE gold_opus OF gold_penguin;
    CREATE INSTANCE gold_rex OF gold_being;
    CREATE RELATION gold_flies (creature: gold_being);
    CREATE RELATION gold_swims (creature: gold_being);
    INSERT INTO gold_flies VALUES (+ ALL gold_bird), (- ALL gold_penguin);
    INSERT INTO gold_swims VALUES (+ ALL gold_penguin), (+ gold_rex);|}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let explain_analyze_golden () =
  let cat = Catalog.create () in
  (match Eval.run_script cat golden_setup with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup failed: %s" e);
  let got =
    match
      Eval.run_script cat
        "EXPLAIN ANALYZE SELECT (gold_flies UNION gold_swims) WHERE creature = gold_bird;"
    with
    | Ok [ out ] -> normalize_times out ^ "\n"
    | Ok outs -> Alcotest.failf "expected one output, got %d" (List.length outs)
    | Error e -> Alcotest.failf "EXPLAIN ANALYZE failed: %s" e
  in
  let expected = read_file "fixtures/explain_analyze.expected" in
  Alcotest.(check string) "golden EXPLAIN ANALYZE" expected got

(* ---- STATS statements ------------------------------------------------- *)

let stats_statement () =
  let cat = Catalog.create () in
  (match Eval.run_script cat "STATS;" with
  | Ok [ out ] ->
    Alcotest.(check bool) "text STATS mentions counters" true
      (out = "no metrics recorded\n"
      || String.length out > 9 && String.sub out 0 9 = "counters:")
  | Ok _ | Error _ -> Alcotest.fail "STATS; did not return one output");
  match Eval.run_script cat "STATS JSON;" with
  | Ok [ out ] ->
    Alcotest.(check bool) "JSON STATS has schema_version" true
      (let needle = "\"schema_version\":1" in
       let rec find i =
         i + String.length needle <= String.length out
         && (String.sub out i (String.length needle) = needle || find (i + 1))
       in
       find 0)
  | Ok _ | Error _ -> Alcotest.fail "STATS JSON; did not return one output"

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_counters_monotonic;
      prop_counter_value_exact;
      prop_histogram_conserves_count;
      prop_bucket_of_sane;
      prop_spans_well_nested;
    ]
  @ [
      Alcotest.test_case "evaluator spans are well-nested" `Quick eval_spans_well_nested;
      Alcotest.test_case "disabled sink is byte-identical" `Quick disabled_sink_identical;
      Alcotest.test_case "EXPLAIN ANALYZE golden output" `Quick explain_analyze_golden;
      Alcotest.test_case "STATS text and JSON" `Quick stats_statement;
    ]
