(* The static analyzer: one positive and one negative case per
   diagnostic code, the all-codes golden fixture, span correctness,
   purity (analysis never mutates the live catalog), and totality. *)

module Lint = Hr_analysis.Lint
module Diagnostic = Hr_analysis.Diagnostic
module Sim_catalog = Hr_analysis.Sim_catalog
module Lexer = Hr_query.Lexer
module Parser = Hr_query.Parser
module Loc = Hr_query.Loc
module Eval = Hr_query.Eval
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let codes ?catalog script =
  List.map (fun d -> d.Diagnostic.code) (Lint.analyze_script ?catalog script)

let check_codes name expected script =
  Alcotest.(check (list string)) name expected (codes script)

(* A world most cases build on: birds and penguins, and a place domain. *)
let world =
  {|CREATE DOMAIN animal;
CREATE CLASS bird UNDER animal;
CREATE CLASS penguin UNDER bird;
CREATE INSTANCE tweety OF bird;
CREATE INSTANCE opus OF penguin;
CREATE INSTANCE rex OF animal;
CREATE DOMAIN place;
CREATE INSTANCE antarctica OF place;
CREATE RELATION flies (who: animal);
|}

let test_clean_world () = check_codes "world is clean" [] world

(* -- one positive and one negative case per code ----------------------- *)

let test_e000 () =
  check_codes "garbage is a syntax error" [ "E000" ] "CREATE NONSENSE;";
  check_codes "valid statement is clean" [] "CREATE DOMAIN d;"

let test_e001 () =
  check_codes "unknown relation" [ "E001" ] "SELECT * FROM nosuch;";
  check_codes "known relation" [] (world ^ "SELECT * FROM flies;")

let test_e002 () =
  check_codes "arity mismatch" [ "E002" ]
    (world ^ "INSERT INTO flies VALUES (+ tweety, rex);");
  check_codes "right arity" [] (world ^ "INSERT INTO flies VALUES (+ tweety);")

let test_e003 () =
  check_codes "value from the wrong domain" [ "E003" ]
    (world ^ "INSERT INTO flies VALUES (+ antarctica);");
  check_codes "value from the right domain" []
    (world ^ "INSERT INTO flies VALUES (+ rex);")

let test_e004 () =
  check_codes "ALL on an instance" [ "E004" ]
    (world ^ "INSERT INTO flies VALUES (+ ALL tweety);");
  check_codes "ALL on a class" [] (world ^ "INSERT INTO flies VALUES (+ ALL bird);")

let test_e005 () =
  check_codes "isa cycle" [ "E005" ] (world ^ "CREATE ISA animal UNDER penguin;");
  check_codes "fresh isa edge is clean" []
    (world ^ "CREATE CLASS swimmer UNDER animal; CREATE ISA penguin UNDER swimmer;")

let test_e006 () =
  check_codes "union of different schemas" [ "E006" ]
    (world
   ^ "CREATE RELATION lives (who: animal, where_at: place);\n\
      SELECT * FROM flies UNION lives;");
  check_codes "union of identical schemas" []
    (world ^ "CREATE RELATION flew (who: animal); SELECT * FROM flies UNION flew;")

let test_e007 () =
  check_codes "join on disjoint domains" [ "E007" ]
    (world
   ^ "CREATE RELATION guards (who: place);\nSELECT * FROM flies JOIN guards;");
  check_codes "join on a shared domain" []
    (world
   ^ "CREATE RELATION eats (who: animal);\nSELECT * FROM flies JOIN eats;")

let test_e008 () =
  check_codes "unknown attribute in selection" [ "E008" ]
    (world ^ "SELECT * FROM flies WHERE nope = tweety;");
  check_codes "known attribute" [] (world ^ "SELECT * FROM flies WHERE who = tweety;")

let test_e009 () =
  check_codes "duplicate relation" [ "E009" ]
    (world ^ "CREATE RELATION flies (who: animal);");
  check_codes "duplicate class name" [ "E009" ] (world ^ "CREATE CLASS bird UNDER animal;");
  check_codes "fresh names are clean" []
    (world ^ "CREATE RELATION flew (who: animal); CREATE CLASS fish UNDER animal;")

let test_e010 () =
  check_codes "children under an instance" [ "E010" ]
    (world ^ "CREATE CLASS chick UNDER tweety;");
  check_codes "children under a class" [] (world ^ "CREATE CLASS chick UNDER bird;")

let test_w101 () =
  check_codes "redundant isa edge" [ "W101" ]
    (world ^ "CREATE ISA penguin UNDER animal;");
  check_codes "non-redundant isa edge" []
    (world ^ "CREATE CLASS swimmer UNDER animal; CREATE ISA penguin UNDER swimmer;")

let test_w102 () =
  check_codes "row implied by a more general one" [ "W102" ]
    (world
   ^ "INSERT INTO flies VALUES (+ ALL bird);\nINSERT INTO flies VALUES (+ opus);");
  (* an intersecting negation makes the subsumed row load-bearing: it is
     the disambiguating assertion, exactly the paper's Respects example —
     the W104 on the negation is expected (plus W110: the incomparable
     opposite writes are also order-sensitive), the resolving row is
     NOT dead *)
  check_codes "subsumed row that resolves a conflict is not dead"
    [ "W104"; "W110" ]
    (world
   ^ "CREATE CLASS swimmer UNDER animal; CREATE ISA penguin UNDER swimmer;\n\
      INSERT INTO flies VALUES (+ ALL bird);\n\
      INSERT INTO flies VALUES (- ALL swimmer);\n\
      INSERT INTO flies VALUES (+ ALL penguin);")

let test_w103 () =
  check_codes "negation fully re-covered by closer positives" [ "W103" ]
    (world
   ^ "INSERT INTO flies VALUES (+ opus);\n\
      INSERT INTO flies VALUES (+ ALL bird);\n\
      INSERT INTO flies VALUES (- ALL penguin);");
  check_codes "negation that wins somewhere" []
    (world
   ^ "CREATE INSTANCE pingu OF penguin;\n\
      INSERT INTO flies VALUES (+ opus);\n\
      INSERT INTO flies VALUES (+ ALL bird);\n\
      INSERT INTO flies VALUES (- ALL penguin);")

let test_w104 () =
  (* the same incomparable pair is order-sensitive, so the effect pass
     adds W110 *)
  check_codes "incomparable opposite rows over a shared descendant"
    [ "W104"; "W110" ]
    (world
   ^ "CREATE CLASS swimmer UNDER animal; CREATE ISA penguin UNDER swimmer;\n\
      INSERT INTO flies VALUES (+ ALL bird);\n\
      INSERT INTO flies VALUES (- ALL swimmer);");
  check_codes "comparable opposite rows are fine" []
    (world
   ^ "INSERT INTO flies VALUES (+ ALL bird);\n\
      INSERT INTO flies VALUES (- ALL penguin);\n\
      INSERT INTO flies VALUES (+ opus);")

let test_w105 () =
  check_codes "contradictory ANDed selections" [ "W105" ]
    (world ^ "SELECT * FROM flies WHERE who = rex AND who = tweety;");
  check_codes "narrowing ANDed selections" []
    (world ^ "SELECT * FROM flies WHERE who = bird AND who = tweety;")

let seeded_catalog () =
  let cat = Catalog.create () in
  match Eval.run_script cat world with
  | Ok _ -> cat
  | Error e -> Alcotest.failf "world script failed: %s" e

let test_w106 () =
  check_codes "write deleted before any read" [ "W106" ]
    (world
   ^ "INSERT INTO flies VALUES (+ rex);\nDELETE FROM flies VALUES (rex);");
  check_codes "write destroyed by DROP RELATION" [ "W106" ]
    (world ^ "INSERT INTO flies VALUES (+ rex);\nDROP RELATION flies;");
  check_codes "a read in between keeps the write live" []
    (world
   ^ "INSERT INTO flies VALUES (+ rex);\n\
      SELECT * FROM flies;\n\
      DELETE FROM flies VALUES (rex);")

let test_w106_no_provenance () =
  (* rows that pre-exist in a live catalog were not written by the
     script, so deleting them is not a dead write *)
  let cat = seeded_catalog () in
  (match Eval.run_script cat "INSERT INTO flies VALUES (+ tweety);" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed insert failed: %s" e);
  Alcotest.(check (list string))
    "no W106 on pre-existing rows" []
    (codes ~catalog:cat "DELETE FROM flies VALUES (tweety);")

let test_w107 () =
  check_codes "patchwork of narrower tuples makes the row a no-op" [ "W107" ]
    (world
   ^ "INSERT INTO flies VALUES (+ ALL penguin), (+ tweety);\n\
      INSERT INTO flies VALUES (+ ALL bird);");
  check_codes "exact same-sign duplicate is a no-op" [ "W107" ]
    (world
   ^ "INSERT INTO flies VALUES (+ ALL bird);\nINSERT INTO flies VALUES (+ ALL bird);");
  check_codes "an uncovered instance keeps the row live" []
    (world
   ^ "INSERT INTO flies VALUES (+ ALL penguin);\n\
      INSERT INTO flies VALUES (+ ALL bird);")

let test_w108 () =
  check_codes "cross-statement contradiction" [ "W108" ]
    (world
   ^ "INSERT INTO flies VALUES (+ rex);\nINSERT INTO flies VALUES (- rex);");
  (* within one statement the overwrite is a plain direct contradiction *)
  check_codes "same-statement contradiction stays W104" [ "W104" ]
    (world ^ "INSERT INTO flies VALUES (+ rex), (- rex);")

let test_w108_no_provenance () =
  (* contradicting a tuple the script did not assert is W104, not W108 *)
  let cat = seeded_catalog () in
  (match Eval.run_script cat "INSERT INTO flies VALUES (+ rex);" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed insert failed: %s" e);
  Alcotest.(check (list string))
    "contradiction against catalog data is W104" [ "W104" ]
    (codes ~catalog:cat "INSERT INTO flies VALUES (- rex);")

let test_w109 () =
  check_codes "exception covering the whole generalization" [ "W109" ]
    (world
   ^ "INSERT INTO flies VALUES (+ ALL penguin);\n\
      INSERT INTO flies VALUES (- opus);");
  check_codes "exception carving a strict subset is fine" []
    (world
   ^ "INSERT INTO flies VALUES (+ ALL bird);\nINSERT INTO flies VALUES (- opus);")

let test_h203 () =
  check_codes "CONSOLIDATE replays from source" [ "H203" ]
    (world ^ "CONSOLIDATE flies;");
  check_codes "EXPLICATE replays from source" [ "H203" ]
    (world ^ "INSERT INTO flies VALUES (+ ALL bird);\nEXPLICATE flies;");
  check_codes "CONSOLIDATE of an unknown relation is E001" [ "E001" ]
    (world ^ "CONSOLIDATE nosuch;")

let test_h201 () =
  check_codes "bare class in an insert row" [ "H201" ]
    (world ^ "INSERT INTO flies VALUES (+ bird);");
  check_codes "explicit ALL" [] (world ^ "INSERT INTO flies VALUES (+ ALL bird);")

let test_h202 () =
  check_codes "projection drops the exception-carrying attribute" [ "H202" ]
    (world
   ^ "CREATE RELATION lives (who: animal, where_at: place);\n\
      INSERT INTO lives VALUES (+ ALL bird, antarctica);\n\
      INSERT INTO lives VALUES (- ALL penguin, antarctica);\n\
      SELECT * FROM PROJECT lives ON (where_at);");
  check_codes "projection keeping the attribute" []
    (world
   ^ "CREATE RELATION lives (who: animal, where_at: place);\n\
      INSERT INTO lives VALUES (+ ALL bird, antarctica);\n\
      INSERT INTO lives VALUES (- ALL penguin, antarctica);\n\
      SELECT * FROM PROJECT lives ON (who);")

(* -- cascading-error suppression --------------------------------------- *)

let test_poisoning () =
  check_codes "a bad LET poisons its name" [ "E001" ]
    "LET x = nosuch;\nSELECT * FROM x;\nSELECT * FROM x JOIN x;";
  check_codes "a failed CREATE RELATION poisons its name" [ "E008" ]
    "CREATE RELATION r (v: nodomain);\nINSERT INTO r VALUES (+ x);\nSELECT * FROM r;"

(* -- spans -------------------------------------------------------------- *)

let test_spans () =
  let script = world ^ "SELECT * FROM nosuch;" in
  match Lint.analyze_script script with
  | [ d ] ->
    Alcotest.(check string) "code" "E001" d.Diagnostic.code;
    (* [world] is 9 statements ending in a newline, so the SELECT is
       line 10 and the relation name starts at column 15 *)
    Alcotest.(check (pair int int))
      "start" (10, 15)
      (d.Diagnostic.loc.Loc.lo.Loc.line, d.Diagnostic.loc.Loc.lo.Loc.col);
    Alcotest.(check (pair int int))
      "end" (10, 21)
      (d.Diagnostic.loc.Loc.hi.Loc.line, d.Diagnostic.loc.Loc.hi.Loc.col)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_lexer_spans () =
  (match Lexer.tokenize "CREATE\n  ? DOMAIN" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Lexer.Lex_error { loc; _ } ->
    Alcotest.(check (pair int int))
      "garbled char position" (2, 3)
      (loc.Loc.lo.Loc.line, loc.Loc.lo.Loc.col));
  match Lint.analyze_script "CREATE DOMAIN d;\n\x01;" with
  | [ d ] ->
    Alcotest.(check string) "lex error surfaces as E000" "E000" d.Diagnostic.code;
    Alcotest.(check (pair int int))
      "at the bad byte" (2, 1)
      (d.Diagnostic.loc.Loc.lo.Loc.line, d.Diagnostic.loc.Loc.lo.Loc.col)
  | ds -> Alcotest.failf "expected one E000, got %d diagnostics" (List.length ds)

(* -- the all-codes golden fixture --------------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  let script = read_file "fixtures/lint_all_codes.hrql" in
  let expected = read_file "fixtures/lint_all_codes.expected" in
  let actual = Diagnostic.render_text (Lint.analyze_script script) in
  Alcotest.(check string) "full report matches" expected actual;
  let all_codes = codes script in
  (* report order: the effect pass (W110 / P306) interleaves with the
     per-statement codes — P306 first fires on the seeding block, W110
     rides along with the W104 pair, and later P306 runs straddle the
     W/H sections *)
  Alcotest.(check (list string))
    "all thirty codes, in order"
    [
      "P306"; "E001"; "E002"; "E003"; "E004"; "E005"; "E006"; "E007"; "E008";
      "E009"; "E010"; "W101"; "W102"; "W103"; "W104"; "W110"; "W105"; "W106";
      "W107"; "P306"; "W108"; "W109"; "P306"; "H201"; "H202"; "H203"; "P306";
      "P300"; "P301"; "P302"; "P303"; "P304"; "P305"; "P306";
    ]
    all_codes

(* -- analysis against a live catalog ------------------------------------ *)

let test_catalog_seeding () =
  let cat = seeded_catalog () in
  Alcotest.(check (list string))
    "catalog relations are visible" []
    (codes ~catalog:cat "INSERT INTO flies VALUES (+ tweety);");
  Alcotest.(check (list string))
    "catalog contents are visible" [ "W102" ]
    (codes ~catalog:cat
       "INSERT INTO flies VALUES (+ ALL bird);\nINSERT INTO flies VALUES (+ opus);")

let test_purity () =
  let cat = seeded_catalog () in
  (match Eval.run_script cat "INSERT INTO flies VALUES (+ ALL bird);" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed insert failed: %s" e);
  let before_card = Relation.cardinality (Catalog.relation cat "flies") in
  let before_nodes = Hierarchy.node_count (Catalog.hierarchy cat "animal") in
  (* a script full of DDL and DML: none of it may leak into the catalog *)
  let script =
    "CREATE DOMAIN fish;\n\
     CREATE CLASS seabird UNDER animal;\n\
     CREATE ISA penguin UNDER seabird;\n\
     CREATE RELATION eats (who: animal);\n\
     INSERT INTO flies VALUES (+ rex), (- ALL penguin);\n\
     DROP RELATION flies;\n\
     SELECT * FROM nosuch;"
  in
  ignore (Lint.analyze_script ~catalog:cat script);
  Alcotest.(check int)
    "relation untouched" before_card
    (Relation.cardinality (Catalog.relation cat "flies"));
  Alcotest.(check int)
    "hierarchy untouched" before_nodes
    (Hierarchy.node_count (Catalog.hierarchy cat "animal"));
  Alcotest.(check bool)
    "no new domain appeared" false
    (Option.is_some (Catalog.find_hierarchy cat "fish"));
  Alcotest.(check bool)
    "no new relation appeared" false
    (Option.is_some (Catalog.find_relation cat "eats"))

(* -- totality: the analyzer never raises -------------------------------- *)

let printable_gen =
  QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 120))

let prop_analyzer_total =
  QCheck2.Test.make ~name:"analyze_script never raises" ~count:500 printable_gen
    (fun input ->
      match Lint.analyze_script input with _ -> true)

(* Statement-shaped inputs reach much deeper than uniform strings do. *)
let statement_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "animal"; "bird"; "tweety"; "flies"; "nosuch"; "x" ] in
  let value = oneof [ map (fun n -> "ALL " ^ n) name; name ] in
  oneof
    [
      map (fun n -> Printf.sprintf "CREATE DOMAIN %s;" n) name;
      map2 (fun a b -> Printf.sprintf "CREATE CLASS %s UNDER %s;" a b) name name;
      map2 (fun a b -> Printf.sprintf "CREATE ISA %s UNDER %s;" a b) name name;
      map2 (fun r v -> Printf.sprintf "INSERT INTO %s VALUES (+ %s);" r v) name value;
      map2 (fun r v -> Printf.sprintf "INSERT INTO %s VALUES (- %s);" r v) name value;
      map (fun r -> Printf.sprintf "SELECT * FROM %s;" r) name;
      map2
        (fun a b -> Printf.sprintf "SELECT * FROM %s JOIN %s;" a b)
        name name;
      map2 (fun n r -> Printf.sprintf "LET %s = %s;" n r) name name;
      map (fun r -> Printf.sprintf "CONSOLIDATE %s;" r) name;
      map (fun r -> Printf.sprintf "DROP RELATION %s;" r) name;
    ]

let script_gen =
  QCheck2.Gen.(map (String.concat "\n") (list_size (int_range 0 12) statement_gen))

let prop_analyzer_total_on_scripts =
  QCheck2.Test.make ~name:"analyze_script never raises on statement soup"
    ~count:300 script_gen (fun input ->
      match Lint.analyze_script input with _ -> true)

let suite =
  [
    Alcotest.test_case "clean world" `Quick test_clean_world;
    Alcotest.test_case "E000 syntax error" `Quick test_e000;
    Alcotest.test_case "E001 unknown relation" `Quick test_e001;
    Alcotest.test_case "E002 arity mismatch" `Quick test_e002;
    Alcotest.test_case "E003 domain mismatch" `Quick test_e003;
    Alcotest.test_case "E004 ALL on instance" `Quick test_e004;
    Alcotest.test_case "E005 isa cycle" `Quick test_e005;
    Alcotest.test_case "E006 incompatible schemas" `Quick test_e006;
    Alcotest.test_case "E007 join on disjoint domains" `Quick test_e007;
    Alcotest.test_case "E008 unknown name" `Quick test_e008;
    Alcotest.test_case "E009 duplicate definition" `Quick test_e009;
    Alcotest.test_case "E010 invalid hierarchy edit" `Quick test_e010;
    Alcotest.test_case "W101 redundant isa edge" `Quick test_w101;
    Alcotest.test_case "W102 dead row" `Quick test_w102;
    Alcotest.test_case "W103 shadowed negation" `Quick test_w103;
    Alcotest.test_case "W104 ambiguity conflict" `Quick test_w104;
    Alcotest.test_case "W105 unsatisfiable selection" `Quick test_w105;
    Alcotest.test_case "W106 dead write" `Quick test_w106;
    Alcotest.test_case "W106 needs script provenance" `Quick test_w106_no_provenance;
    Alcotest.test_case "W107 no-op under flattening" `Quick test_w107;
    Alcotest.test_case "W108 cross-statement contradiction" `Quick test_w108;
    Alcotest.test_case "W108 needs script provenance" `Quick test_w108_no_provenance;
    Alcotest.test_case "W109 exception erases generalization" `Quick test_w109;
    Alcotest.test_case "H201 bare class value" `Quick test_h201;
    Alcotest.test_case "H202 projection drops exceptions" `Quick test_h202;
    Alcotest.test_case "H203 replica replay advisory" `Quick test_h203;
    Alcotest.test_case "cascade suppression" `Quick test_poisoning;
    Alcotest.test_case "diagnostic spans" `Quick test_spans;
    Alcotest.test_case "lexer positions" `Quick test_lexer_spans;
    Alcotest.test_case "all-codes golden fixture" `Quick test_golden;
    Alcotest.test_case "live-catalog seeding" `Quick test_catalog_seeding;
    Alcotest.test_case "analysis never mutates the catalog" `Quick test_purity;
    QCheck_alcotest.to_alcotest prop_analyzer_total;
    QCheck_alcotest.to_alcotest prop_analyzer_total_on_scripts;
  ]
