(* Optimizer tests: rewrite shapes, and extension-equivalence of the
   optimized plan against the naive one. *)

module Ast = Hr_query.Ast
module Optimizer = Hr_query.Optimizer
module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
open Hierel

let d = Optimizer.describe

(* Located-node helpers: programmatic trees carry dummy spans. *)
let at node = Ast.at node
let rel name = at (Ast.Rel name)
let sel e attr v = at (Ast.Select (e, attr, Ast.Atom v))

let test_pushdown_union () =
  let e = sel (at (Ast.Union (rel "a", rel "b"))) "x" "v" in
  Alcotest.(check string) "pushed" "union(select[x=v](a), select[x=v](b))"
    (d (Optimizer.optimize e))

let test_pushdown_except () =
  let e = sel (at (Ast.Except (rel "a", rel "b"))) "x" "v" in
  Alcotest.(check string) "pushed" "except(select[x=v](a), select[x=v](b))"
    (d (Optimizer.optimize e))

let test_join_pushdown_by_projection_evidence () =
  (* only the left side provably carries "x" *)
  let left = at (Ast.Project (rel "a", [ "x"; "y" ])) in
  let right = at (Ast.Project (rel "b", [ "z" ])) in
  let e = sel (at (Ast.Join (left, right))) "x" "v" in
  Alcotest.(check string) "pushed left only"
    "join(select[x=v](project[x,y](a)), project[z](b))"
    (d (Optimizer.optimize e))

let test_join_no_evidence_stays () =
  let e = sel (at (Ast.Join (rel "a", rel "b"))) "x" "v" in
  Alcotest.(check string) "stays above" "select[x=v](join(a, b))" (d (Optimizer.optimize e))

let test_select_fusion () =
  let e = sel (sel (rel "a") "x" "v") "x" "v" in
  Alcotest.(check string) "fused" "select[x=v](a)" (d (Optimizer.optimize e))

let test_different_selects_not_fused () =
  let e = sel (sel (rel "a") "x" "w") "x" "v" in
  Alcotest.(check string) "kept" "select[x=v](select[x=w](a))" (d (Optimizer.optimize e))

let test_project_fusion () =
  let e = at (Ast.Project (at (Ast.Project (rel "a", [ "x"; "y"; "z" ])), [ "x" ])) in
  Alcotest.(check string) "fused" "project[x](a)" (d (Optimizer.optimize e))

let test_project_widening_not_fused () =
  (* outer asks for a column the inner dropped: must not fuse *)
  let e = at (Ast.Project (at (Ast.Project (rel "a", [ "x" ])), [ "x"; "y" ])) in
  Alcotest.(check string) "kept" "project[x,y](project[x](a))" (d (Optimizer.optimize e))

let test_inner_consolidated_elided () =
  let e = at (Ast.Union (at (Ast.Consolidated (rel "a")), rel "b")) in
  Alcotest.(check string) "elided" "union(a, b)" (d (Optimizer.optimize e))

let test_top_level_consolidated_kept () =
  let e = at (Ast.Consolidated (at (Ast.Union (rel "a", rel "b")))) in
  Alcotest.(check string) "kept" "consolidated(union(a, b))" (d (Optimizer.optimize e))

let test_top_level_explicated_kept () =
  let e = at (Ast.Explicated (rel "a", None)) in
  Alcotest.(check string) "kept" "explicated(a)" (d (Optimizer.optimize e))

(* extension equivalence on a real catalog *)

let catalog () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN animal;
    CREATE CLASS bird UNDER animal;
    CREATE CLASS penguin UNDER bird;
    CREATE CLASS afp UNDER penguin;
    CREATE INSTANCE tweety OF bird;
    CREATE INSTANCE paul OF penguin;
    CREATE INSTANCE pamela OF afp;
    CREATE RELATION jack (creature: animal);
    CREATE RELATION jill (creature: animal);
    INSERT INTO jack VALUES (+ ALL bird), (- ALL penguin);
    INSERT INTO jill VALUES (+ ALL penguin);
    |}
  in
  match Eval.run_script cat script with Ok _ -> cat | Error e -> failwith e

let exprs_under_test =
  [
    "SELECT * FROM SELECT (jack UNION jill) WHERE creature = penguin;";
    "SELECT * FROM SELECT (jack EXCEPT jill) WHERE creature = bird;";
    "SELECT * FROM SELECT SELECT jack WHERE creature = bird WHERE creature = bird;";
    "SELECT * FROM CONSOLIDATED (jack UNION jill);";
    "SELECT * FROM (CONSOLIDATED jack) INTERSECT jill;";
    "SELECT * FROM EXPLICATED (jack UNION jill);";
  ]

let test_extension_equivalence () =
  List.iter
    (fun q ->
      match (Parser.parse_statement q).Ast.stmt with
      | Ast.Select_query { expr; _ } ->
        let cat = catalog () in
        let naive =
          (* evaluate without optimization by rebuilding the evaluator's
             steps through LETs would be circular; instead compare the
             optimized evaluation against the unoptimized tree evaluated
             as sub-LETs *)
          let rec naive_eval e =
            match e.Ast.expr with
            | Ast.Rel name -> Catalog.relation cat name
            | Ast.Select (e, attr, v) ->
              Ops.select (naive_eval e) ~attr ~value:(Ast.value_name v)
            | Ast.Project (e, attrs) -> Ops.project (naive_eval e) attrs
            | Ast.Join (a, b) -> Ops.join (naive_eval a) (naive_eval b)
            | Ast.Union (a, b) -> Ops.union (naive_eval a) (naive_eval b)
            | Ast.Intersect (a, b) -> Ops.inter (naive_eval a) (naive_eval b)
            | Ast.Except (a, b) -> Ops.diff (naive_eval a) (naive_eval b)
            | Ast.Rename (e, o, n) -> Ops.rename (naive_eval e) ~old_name:o ~new_name:n
            | Ast.Consolidated e -> Consolidate.consolidate (naive_eval e)
            | Ast.Explicated (e, over) -> Explicate.explicate ?over (naive_eval e)
          in
          naive_eval expr
        in
        let optimized = Eval.eval_expr cat expr in
        Alcotest.(check bool)
          (Printf.sprintf "extension equal for %s" q)
          true
          (Flatten.equal_extension naive optimized)
      | _ -> Alcotest.fail "expected a SELECT")
    exprs_under_test

let suite =
  [
    Alcotest.test_case "pushdown through union" `Quick test_pushdown_union;
    Alcotest.test_case "pushdown through except" `Quick test_pushdown_except;
    Alcotest.test_case "join pushdown with schema evidence" `Quick
      test_join_pushdown_by_projection_evidence;
    Alcotest.test_case "join pushdown without evidence stays" `Quick
      test_join_no_evidence_stays;
    Alcotest.test_case "selection fusion" `Quick test_select_fusion;
    Alcotest.test_case "distinct selections kept" `Quick test_different_selects_not_fused;
    Alcotest.test_case "projection fusion" `Quick test_project_fusion;
    Alcotest.test_case "projection widening kept" `Quick test_project_widening_not_fused;
    Alcotest.test_case "inner consolidated elided" `Quick test_inner_consolidated_elided;
    Alcotest.test_case "top-level consolidated kept" `Quick test_top_level_consolidated_kept;
    Alcotest.test_case "top-level explicated kept" `Quick test_top_level_explicated_kept;
    Alcotest.test_case "extension equivalence" `Quick test_extension_equivalence;
  ]
