(* The commutativity oracle on trial (docs/EFFECTS.md).

   The centerpiece is a differential soundness harness: generate random
   worlds and random statement pairs, and whenever [Effect.commutes]
   answers [Commute], apply the pair in both orders against snapshots
   of the same world — the flattened states and the per-statement
   outcomes must be identical. The oracle carries a test-only seeded
   bug ([~unsound_oracle]) that wrongly commutes overlapping
   opposite-sign writes; the same harness must catch it, which is what
   makes a clean sweep evidence rather than absence of assertions.

   Also here: widening edge cases (DDL, CONSOLIDATE, unresolved
   values), the {!Hr_repl.Apply} partitioner, and parallel-vs-serial
   apply equivalence across OCaml 5 domains. This suite spawns domains,
   so it must run after every suite that forks (server, repl, shard). *)

module Effect = Hr_analysis.Effect
module Footprint = Hr_analysis.Footprint
module Apply = Hr_repl.Apply
module Db = Hr_storage.Db
module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Symbol = Hr_util.Symbol
module Hierarchy = Hr_hierarchy.Hierarchy
module Traditional = Hr_flat.Traditional
module Flat_relation = Hr_flat.Flat_relation
open Hierel

(* Same replay contract as test_fuzz: one integer seed drives every
   random choice, printed so a failing run replays exactly with
   [HRDB_TEST_SEED=n dune runtest]. *)
let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None ->
      failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None ->
    Int64.to_int
      (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let () =
  Printf.eprintf
    "test_effect: differential harness seed %d (replay with HRDB_TEST_SEED=%d)\n%!"
    seed seed

let stmt_of src =
  match Parser.parse src with
  | [ { Hr_query.Ast.stmt; _ } ] -> stmt
  | _ -> Alcotest.failf "expected exactly one statement: %s" src

let must_exec cat src =
  match Eval.run_script cat src with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "world setup failed: %s (script: %s)" m src

(* ---- the differential harness ----------------------------------------- *)

(* A random world: one DAG-shaped hierarchy and two consistent
   single-attribute relations over it, so generated pairs land on the
   same relation often enough to exercise every verdict. *)
let build_world rng =
  let h =
    Workload.random_hierarchy rng
      {
        Workload.name = "d";
        classes = 5;
        instances = 6;
        multi_parent_prob = 0.25;
      }
  in
  let cat = Catalog.create () in
  Catalog.define_hierarchy cat h;
  let schema = Schema.make [ ("who", h) ] in
  List.iter
    (fun rel_name ->
      Catalog.define_relation cat
        (Workload.consistent_random_relation rng schema
           {
             Workload.default_relation_spec with
             Workload.rel_name;
             tuples = 6;
             neg_fraction = 0.3;
           }))
    [ "r"; "s" ];
  (cat, h)

let gen_value rng h =
  if Prng.bernoulli rng 0.55 then
    let classes = Array.of_list (Hierarchy.classes h) in
    "ALL " ^ Symbol.name (Hierarchy.node_name h (Prng.pick rng classes))
  else
    let instances = Array.of_list (Hierarchy.instances h) in
    Symbol.name (Hierarchy.node_name h (Prng.pick rng instances))

let gen_stmt rng h =
  let rel = if Prng.bernoulli rng 0.6 then "r" else "s" in
  let n = 1 + Prng.int rng 2 in
  if Prng.bernoulli rng 0.75 then
    Printf.sprintf "INSERT INTO %s VALUES %s;" rel
      (String.concat ", "
         (List.init n (fun _ ->
              Printf.sprintf "(%s %s)"
                (if Prng.bernoulli rng 0.7 then "+" else "-")
                (gen_value rng h))))
  else
    Printf.sprintf "DELETE FROM %s VALUES %s;" rel
      (String.concat ", "
         (List.init n (fun _ -> Printf.sprintf "(%s)" (gen_value rng h))))

type outcome = {
  r1 : string;  (* how the first-listed statement fared *)
  r2 : string;
  state : (string * Flat_relation.t) list;  (* flattened, by name *)
}

let apply cat src =
  match Eval.run_script cat src with
  | Ok _ -> "ok"
  | Error m -> "error: " ^ m
  | exception e -> "raised: " ^ Printexc.to_string e

let flatten cat =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun r -> (Relation.name r, Traditional.extension_relation r))
       (Catalog.relations cat))

(* Run [s1; s2] and [s2; s1] against two snapshots of the same world.
   Statements execute independently (one failing must not mask the
   other), exactly like WAL records on a replica. *)
let both_orders world s1 s2 =
  let a = Catalog.snapshot world and b = Catalog.snapshot world in
  let a1 = apply a s1 in
  let a2 = apply a s2 in
  let b2 = apply b s2 in
  let b1 = apply b s1 in
  ({ r1 = a1; r2 = a2; state = flatten a }, { r1 = b1; r2 = b2; state = flatten b })

let same_outcome a b =
  a.r1 = b.r1 && a.r2 = b.r2
  && List.length a.state = List.length b.state
  && List.for_all2
       (fun (n1, f1) (n2, f2) -> n1 = n2 && Flat_relation.equal f1 f2)
       a.state b.state

let trials = 300

let test_differential () =
  let commute = ref 0 and conflict = ref 0 and unknown = ref 0 in
  for i = 0 to trials - 1 do
    let rng = Prng.create (Int64.of_int ((seed * 1_000_003) + i)) in
    let world, h = build_world rng in
    let s1 = gen_stmt rng h and s2 = gen_stmt rng h in
    let find = Catalog.find_relation world in
    match Effect.commutes ~find (stmt_of s1) (stmt_of s2) with
    | Effect.Conflict _ -> incr conflict
    | Effect.Unknown _ -> incr unknown
    | Effect.Commute ->
      incr commute;
      let a, b = both_orders world s1 s2 in
      if not (same_outcome a b) then
        Alcotest.failf
          "oracle unsound (seed %d, trial %d): declared Commute but orders \
           diverge\n  s1: %s\n  s2: %s\n  s1-first: %s / %s\n  s2-first: %s / %s"
          seed i s1 s2 a.r1 a.r2 b.r1 b.r2
  done;
  (* a sweep that never reaches the Commute arm proves nothing *)
  if !commute = 0 then
    Alcotest.failf "degenerate sweep (seed %d): 0 Commute in %d trials" seed
      trials;
  if !conflict + !unknown = 0 then
    Alcotest.failf "degenerate sweep (seed %d): every pair commuted" seed

(* The ambiguity counterexample behind the oracle's sign-blindness:
   penguin inherits from both bird and swimmer, so [+ ALL bird] and
   [- ALL swimmer] overlap on an item neither subsumes via the other.
   Whichever lands first is accepted and the second is rejected as
   ambiguous — the final state depends on the order. *)
let counterexample_world () =
  let cat = Catalog.create () in
  must_exec cat
    "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
     CREATE CLASS swimmer UNDER animal; CREATE CLASS penguin UNDER bird;\n\
     CREATE ISA penguin UNDER swimmer; CREATE INSTANCE pingu OF penguin;\n\
     CREATE INSTANCE rex OF animal;\n\
     CREATE RELATION r (who: animal); CREATE RELATION q (who: animal);";
  cat

let test_seeded_bug () =
  let world = counterexample_world () in
  let find = Catalog.find_relation world in
  let s1 = "INSERT INTO r VALUES (+ ALL bird);" in
  let s2 = "INSERT INTO r VALUES (- ALL swimmer);" in
  (match Effect.commutes ~find (stmt_of s1) (stmt_of s2) with
  | Effect.Commute ->
    Alcotest.fail "sound oracle wrongly commutes the ambiguity counterexample"
  | Effect.Conflict _ | Effect.Unknown _ -> ());
  (match Effect.commutes ~unsound_oracle:true ~find (stmt_of s1) (stmt_of s2) with
  | Effect.Commute -> ()
  | v ->
    Alcotest.failf "seeded bug did not fire: expected Commute, got %s"
      (Effect.verdict_label v));
  (* ... and the differential check sees through it, so a harness run
     over the unsound oracle cannot pass silently *)
  let a, b = both_orders world s1 s2 in
  Alcotest.(check bool) "orders diverge on the counterexample" false
    (same_outcome a b)

(* ---- widening edge cases ---------------------------------------------- *)

let is_commute = function Effect.Commute -> true | _ -> false
let is_unknown = function Effect.Unknown _ -> true | _ -> false

let test_widening () =
  let world = counterexample_world () in
  let find = Catalog.find_relation world in
  let v a b = Effect.commutes ~find (stmt_of a) (stmt_of b) in
  (* DDL footprints are opaque: everything across them is Unknown *)
  Alcotest.(check bool) "DDL never commutes" true
    (is_unknown (v "CREATE CLASS fish UNDER animal;" "INSERT INTO r VALUES (+ pingu);"));
  Alcotest.(check bool) "DDL opaque even against a read" true
    (is_unknown (v "DROP RELATION q;" "SELECT * FROM r;"));
  (* CONSOLIDATE/EXPLICATE read and rewrite their whole relation *)
  Alcotest.(check bool) "CONSOLIDATE conflicts with a same-relation write" false
    (is_commute (v "CONSOLIDATE r;" "INSERT INTO r VALUES (+ pingu);"));
  Alcotest.(check bool) "CONSOLIDATE commutes across relations" true
    (is_commute (v "CONSOLIDATE r;" "INSERT INTO q VALUES (+ pingu);"));
  (* an unresolvable value widens its cone to the whole hierarchy: the
     pair must come back Unknown (conservative), never Commute *)
  Alcotest.(check bool) "unresolved value widens to Unknown" true
    (is_unknown (v "INSERT INTO r VALUES (+ nosuch);" "INSERT INTO r VALUES (+ pingu);"));
  (* reads only block on overlapping writes *)
  Alcotest.(check bool) "read commutes with a disjoint-relation write" true
    (is_commute (v "SELECT * FROM r;" "INSERT INTO q VALUES (+ pingu);"));
  Alcotest.(check bool) "read conflicts with a same-relation write" false
    (is_commute (v "SELECT * FROM r;" "INSERT INTO r VALUES (+ pingu);"));
  (* provably disjoint cones on the same relation commute... *)
  Alcotest.(check bool) "disjoint same-relation cones commute" true
    (is_commute (v "INSERT INTO r VALUES (+ rex);" "INSERT INTO r VALUES (+ ALL bird);"));
  (* ...but overlapping incomparable ones never do *)
  Alcotest.(check bool) "incomparable overlapping cones do not commute" false
    (is_commute
       (v "INSERT INTO r VALUES (+ ALL bird);" "INSERT INTO r VALUES (- ALL swimmer);"))

(* ---- the Apply partitioner -------------------------------------------- *)

let rcd lsn stmt = { Apply.lsn; stmt }

let lsns = function
  | Apply.Serial rs -> [ List.map (fun r -> r.Apply.lsn) rs ]
  | Apply.Parallel groups ->
    List.map (fun g -> List.map (fun r -> r.Apply.lsn) g) groups

let test_partition () =
  let world = counterexample_world () in
  let find = Catalog.find_relation world in
  let records =
    [
      rcd 1 "INSERT INTO r VALUES (+ pingu);";
      rcd 2 "INSERT INTO q VALUES (+ pingu);";
      rcd 3 "CREATE DOMAIN z;";
      rcd 4 "INSERT INTO r VALUES (+ ALL bird);";
      rcd 5 "INSERT INTO r VALUES (- pingu);";
    ]
  in
  match Apply.partition ~find records with
  | [ seg1; seg2; seg3 ] ->
    (* name-disjoint run splits in two; DDL is a barrier; a same-name
       run stays one group and is not worth a domain *)
    Alcotest.(check (list (list int))) "commuting run groups by relation"
      [ [ 1 ]; [ 2 ] ] (lsns seg1);
    Alcotest.(check bool) "first segment is parallel" true
      (match seg1 with Apply.Parallel _ -> true | Apply.Serial _ -> false);
    Alcotest.(check (list (list int))) "DDL barrier" [ [ 3 ] ] (lsns seg2);
    Alcotest.(check bool) "barrier is serial" true
      (match seg2 with Apply.Serial _ -> true | Apply.Parallel _ -> false);
    Alcotest.(check (list (list int))) "single-group run stays serial, in order"
      [ [ 4; 5 ] ] (lsns seg3);
    Alcotest.(check bool) "tail is serial" true
      (match seg3 with Apply.Serial _ -> true | Apply.Parallel _ -> false)
  | segs -> Alcotest.failf "expected 3 segments, got %d" (List.length segs)

(* ---- parallel apply == serial apply ----------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "hrdb_effect" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let replica_world =
  "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
   CREATE CLASS penguin UNDER bird; CREATE INSTANCE tweety OF bird;\n\
   CREATE INSTANCE opus OF penguin; CREATE INSTANCE rex OF animal;\n\
   CREATE RELATION a (who: animal); CREATE RELATION b (who: animal);\n\
   CREATE RELATION c (who: animal);"

(* Commuting groups, a CONSOLIDATE (single-group run), and a second
   commuting burst: enough to drive both Serial and Parallel segments
   through real domains. *)
let replica_stmts =
  [
    "INSERT INTO a VALUES (+ ALL bird);";
    "INSERT INTO b VALUES (+ rex);";
    "INSERT INTO c VALUES (+ ALL penguin);";
    "INSERT INTO a VALUES (- opus);";
    "CONSOLIDATE a;";
    "INSERT INTO b VALUES (+ tweety), (+ opus);";
    "INSERT INTO c VALUES (- opus);";
    "DELETE FROM b VALUES (rex);";
  ]

let test_apply_equivalence () =
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          let db1 = Db.open_dir d1 and db2 = Db.open_dir d2 in
          Fun.protect
            ~finally:(fun () ->
              Db.close db1;
              Db.close db2)
            (fun () ->
              (match (Db.exec db1 replica_world, Db.exec db2 replica_world) with
              | Ok _, Ok _ -> ()
              | Error m, _ | _, Error m ->
                Alcotest.failf "world setup failed: %s" m);
              let base = Db.lsn db1 in
              Alcotest.(check int) "same base LSN" base (Db.lsn db2);
              let records =
                List.mapi (fun i stmt -> rcd (base + i + 1) stmt) replica_stmts
              in
              (match Apply.apply_batch ~domains:1 db1 records with
              | Ok () -> ()
              | Error m -> Alcotest.failf "serial apply failed: %s" m);
              (match Apply.apply_batch ~domains:3 db2 records with
              | Ok () -> ()
              | Error m -> Alcotest.failf "parallel apply failed: %s" m);
              Db.sync db1;
              Db.sync db2;
              Alcotest.(check int) "same head LSN" (Db.lsn db1) (Db.lsn db2);
              let f1 = flatten (Db.catalog db1)
              and f2 = flatten (Db.catalog db2) in
              Alcotest.(check int) "same relation count" (List.length f1)
                (List.length f2);
              List.iter2
                (fun (n1, x1) (n2, x2) ->
                  Alcotest.(check string) "same relation" n1 n2;
                  Alcotest.(check bool)
                    (Printf.sprintf "flattened %s agrees" n1)
                    true (Flat_relation.equal x1 x2))
                f1 f2)))

let test_apply_errors () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Db.close db)
        (fun () ->
          (match Db.exec db replica_world with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "world setup failed: %s" m);
          let base = Db.lsn db in
          (* a record that cannot evaluate is divergence, parallel or not *)
          (match
             Apply.apply_batch ~domains:3 db
               [
                 rcd (base + 1) "INSERT INTO nosuch VALUES (+ rex);";
                 rcd (base + 2) "INSERT INTO a VALUES (+ rex);";
               ]
           with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "bad record must fail the batch");
          (* a stale LSN is refused like the sequential path *)
          match Apply.apply_batch ~domains:1 db [ rcd base "CONSOLIDATE a;" ] with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "stale LSN must be refused"))

let suite =
  [
    Alcotest.test_case "oracle soundness: both orders agree on Commute" `Quick
      test_differential;
    Alcotest.test_case "seeded unsound oracle is caught" `Quick test_seeded_bug;
    Alcotest.test_case "widening edge cases" `Quick test_widening;
    Alcotest.test_case "Apply.partition: barriers, grouping, order" `Quick
      test_partition;
    Alcotest.test_case "parallel apply equals serial apply" `Quick
      test_apply_equivalence;
    Alcotest.test_case "apply batch error paths" `Quick test_apply_errors;
  ]
