(* The static cost & cardinality estimator (lib/analysis/cost_model,
   lib/analysis/estimate): exactness on flat relations, monotonicity
   under added exceptions, symbolic-vs-live agreement, EXPLAIN ANALYZE
   feedback and its snapshot persistence, and the no-side-effect
   guarantee of EXPLAIN ESTIMATE — in the storage path and over the
   wire. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Cost_model = Hr_analysis.Cost_model
module Estimate = Hr_analysis.Estimate
module Sim_catalog = Hr_analysis.Sim_catalog
module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
module Ast = Hr_query.Ast
module Metrics = Hr_obs.Metrics
module Db = Hr_storage.Db
module Snapshot = Hr_storage.Snapshot
module Server = Hr_server.Server
open Hierel

(* the EXPLAIN ESTIMATE hook registers at Estimate's module init *)
let () = Estimate.ensure_registered ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

let run cat script =
  match Eval.run_script cat script with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup: %s" e

let expr_of q =
  match (Parser.parse_statement ("EXPLAIN ESTIMATE " ^ q)).Ast.stmt with
  | Ast.Explain_estimate e -> e
  | _ -> Alcotest.fail "not a query expression"

let estimate cat q =
  match Cost_model.plan (Cost_model.of_catalog cat) (expr_of q) with
  | Ok (_, root) -> root
  | Error msg -> Alcotest.failf "plan %s: %s" q msg

(* -- exact counts on flat relations ------------------------------------- *)

let flat_catalog () =
  let cat = Catalog.create () in
  run cat
    {|
    CREATE DOMAIN d;
    CREATE INSTANCE x1 OF d; CREATE INSTANCE x2 OF d;
    CREATE INSTANCE x3 OF d; CREATE INSTANCE x4 OF d;
    CREATE RELATION r (v: d);
    CREATE RELATION s (v: d);
    INSERT INTO r VALUES (+ x1), (+ x2), (+ x3);
    INSERT INTO s VALUES (+ x2), (+ x3), (+ x4);
    |};
  cat

let test_flat_exact () =
  let cat = flat_catalog () in
  let scan = estimate cat "r" in
  Alcotest.(check bool) "scan is exact" true scan.Cost_model.n_exact;
  Alcotest.(check (float 0.0)) "scan rows" 3.0 scan.Cost_model.n_rows;
  let sel = estimate cat "SELECT r WHERE v = x1" in
  Alcotest.(check bool) "instance select over flat is exact" true
    sel.Cost_model.n_exact;
  Alcotest.(check (float 0.0)) "select rows" 1.0 sel.Cost_model.n_rows;
  let empty = estimate cat "SELECT r WHERE v = x4" in
  Alcotest.(check (float 0.0)) "empty select rows" 0.0
    empty.Cost_model.n_rows

(* -- monotonicity under added exceptions -------------------------------- *)

let test_monotone_exceptions () =
  let cat = Catalog.create () in
  run cat
    {|
    CREATE DOMAIN wide;
    CREATE CLASS big UNDER wide;
    CREATE INSTANCE w1 OF big; CREATE INSTANCE w2 OF big;
    CREATE INSTANCE w3 OF big; CREATE INSTANCE w4 OF big;
    CREATE RELATION pe (u: wide);
    INSERT INTO pe VALUES (+ ALL big);
    |};
  let explicated () = (estimate cat "EXPLICATED pe").Cost_model.n_rows in
  let scanned () = (estimate cat "pe").Cost_model.n_rows in
  let flat0 = explicated () and rows0 = scanned () in
  run cat "INSERT INTO pe VALUES (- w1);";
  let flat1 = explicated () and rows1 = scanned () in
  run cat "INSERT INTO pe VALUES (- w2);";
  let flat2 = explicated () and rows2 = scanned () in
  Alcotest.(check bool) "stored rows nondecreasing" true
    (rows0 <= rows1 && rows1 <= rows2);
  Alcotest.(check bool) "explicated estimate nonincreasing" true
    (flat0 >= flat1 && flat1 >= flat2);
  Alcotest.(check bool) "exceptions actually shrink the estimate" true
    (flat2 < flat0)

(* -- symbolic (lint-time) vs live statistics ---------------------------- *)

let rec same_tree (a : Cost_model.node) (b : Cost_model.node) =
  Alcotest.(check string) "label" a.Cost_model.n_label b.Cost_model.n_label;
  Alcotest.(check (float 1e-9)) "rows" a.Cost_model.n_rows b.Cost_model.n_rows;
  Alcotest.(check (float 1e-9)) "cost" a.Cost_model.n_cost b.Cost_model.n_cost;
  List.iter2 same_tree a.Cost_model.n_children b.Cost_model.n_children

let test_symbolic_vs_live () =
  let script =
    {|
    CREATE DOMAIN animal;
    CREATE CLASS bird UNDER animal;
    CREATE CLASS penguin UNDER bird;
    CREATE INSTANCE tweety OF bird;
    CREATE INSTANCE paul OF penguin;
    CREATE RELATION jack (creature: animal);
    CREATE RELATION jill (creature: animal);
    INSERT INTO jack VALUES (+ ALL bird), (- ALL penguin);
    INSERT INTO jill VALUES (+ ALL penguin);
    |}
  in
  let cat = Catalog.create () in
  run cat script;
  let sim = Sim_catalog.empty () in
  List.iter
    (fun ls -> Hr_analysis.Stmt_check.check sim ~emit:(fun _ -> ()) ls)
    (Parser.parse script);
  let live = Cost_model.of_catalog cat and sym = Cost_model.of_sim sim in
  List.iter
    (fun q ->
      let price src =
        match Cost_model.plan src (expr_of q) with
        | Ok (_, root) -> root
        | Error msg -> Alcotest.failf "plan %s: %s" q msg
      in
      same_tree (price live) (price sym))
    [
      "jack";
      "SELECT jack WHERE creature = penguin";
      "jack UNION jill";
      "EXPLICATED jack";
      "jack JOIN jill";
    ]

(* -- EXPLAIN ANALYZE feedback and snapshot persistence ------------------ *)

let feedback_catalog () =
  let cat = Catalog.create () in
  run cat
    {|
    CREATE DOMAIN d;
    CREATE CLASS c UNDER d;
    CREATE INSTANCE i1 OF c; CREATE INSTANCE i2 OF c; CREATE INSTANCE i3 OF c;
    CREATE INSTANCE j1 OF d; CREATE INSTANCE j2 OF d;
    CREATE RELATION r (v: d);
    INSERT INTO r VALUES (+ i1), (+ j1), (+ j2), (+ ALL c);
    |};
  cat

let test_feedback () =
  let cat = feedback_catalog () in
  let q = "SELECT r WHERE v = c" in
  (* cold: the class selection is priced by the selectivity heuristic *)
  let cold = (estimate cat q).Cost_model.n_rows in
  Alcotest.(check bool) "no observed stats yet" true
    (Catalog.observed_stat cat ~rel:"r" ~label:"v=c" = None);
  run cat ("EXPLAIN ANALYZE " ^ q ^ ";");
  (* the measured row counts flowed back into the catalog... *)
  let observed =
    match Catalog.observed_stat cat ~rel:"r" ~label:"v=c" with
    | Some n -> n
    | None -> Alcotest.fail "EXPLAIN ANALYZE did not record the selection"
  in
  Alcotest.(check int) "whole-extension stat too" 4
    (Option.get (Catalog.observed_stat cat ~rel:"r" ~label:"*"));
  (* ...and the estimator now quotes the actual *)
  let warm = (estimate cat q).Cost_model.n_rows in
  Alcotest.(check (float 0.0)) "estimate equals the observed actual"
    (float_of_int observed) warm;
  Alcotest.(check bool) "the feedback changed the estimate" true
    (cold <> warm);
  (* observed statistics survive an encode/decode round trip *)
  let decoded = Snapshot.decode (Snapshot.encode cat) in
  Alcotest.(check (option int)) "persisted across snapshot"
    (Some observed)
    (Catalog.observed_stat decoded ~rel:"r" ~label:"v=c");
  Alcotest.(check (float 0.0)) "decoded catalog estimates identically" warm
    (estimate decoded q).Cost_model.n_rows

(* -- EXPLAIN ESTIMATE: no execution side effects ------------------------ *)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let test_no_side_effects_db () =
  let dir = temp_dir "hrest" in
  let db = Db.open_dir dir in
  (match
     Db.exec db
       "CREATE DOMAIN d; CREATE CLASS c UNDER d;\n\
        CREATE INSTANCE i1 OF c; CREATE INSTANCE i2 OF c;\n\
        CREATE RELATION r (v: d);\n\
        INSERT INTO r VALUES (+ ALL c), (+ i1);"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup: %s" e);
  let lsn0 = Db.lsn db in
  let wal0 = Db.wal_records db in
  let appends0 = Metrics.counter_value "storage.wal.appends" in
  (* a cold plan: this query was never executed *)
  (match Db.exec db "EXPLAIN ESTIMATE SELECT r WHERE v = c;" with
  | Ok [ out ] ->
    Alcotest.(check bool) "estimate output" true
      (String.length out > 0
      && contains ~affix:"estimated cost" out)
  | Ok outs -> Alcotest.failf "expected one output, got %d" (List.length outs)
  | Error e -> Alcotest.failf "estimate: %s" e);
  Alcotest.(check int) "lsn unchanged" lsn0 (Db.lsn db);
  Alcotest.(check int) "wal records unchanged" wal0 (Db.wal_records db);
  Alcotest.(check int) "wal appends unchanged" appends0
    (Metrics.counter_value "storage.wal.appends");
  Db.close db

(* One request over a real TCP connection against an in-process server,
   driving the server's own event loop from this thread. *)
let request_via_poll server conn tag payload =
  Server.Client.send conn tag payload;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec await () =
    ignore (Server.poll server 0.01);
    match Unix.select [ Server.Client.fd conn ] [] [] 0.0 with
    | [ _ ], _, _ -> Server.Client.recv conn
    | _ ->
      if Unix.gettimeofday () > deadline then Error "no reply"
      else await ()
  in
  await ()

let test_estimate_over_wire () =
  let dir = temp_dir "hrestw" in
  let server = Server.create_durable ~port:0 ~dir () in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      let conn = Server.Client.connect ~timeout:10.0 ~port:(Server.port server) () in
      (match
         request_via_poll server conn "EXEC"
           "CREATE DOMAIN d; CREATE CLASS c UNDER d;\n\
            CREATE INSTANCE i1 OF c; CREATE INSTANCE i2 OF c;\n\
            CREATE RELATION r (v: d);\n\
            INSERT INTO r VALUES (+ ALL c), (+ i1);"
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "setup: %s" e);
      let stmts0 = Metrics.counter_value "storage.db.statements" in
      let appends0 = Metrics.counter_value "storage.wal.appends" in
      (match request_via_poll server conn "ESTIMATE" "SELECT r WHERE v = c" with
      | Ok out ->
        Alcotest.(check bool) "annotated plan over the wire" true
          (contains ~affix:"est-rows=" out
          && contains ~affix:"estimated cost" out)
      | Error e -> Alcotest.failf "estimate frame: %s" e);
      Alcotest.(check int) "statement counter unchanged" stmts0
        (Metrics.counter_value "storage.db.statements");
      Alcotest.(check int) "wal appends unchanged" appends0
        (Metrics.counter_value "storage.wal.appends");
      (match request_via_poll server conn "ESTIMATE" "nosuch" with
      | Ok out -> Alcotest.failf "expected an error, got: %s" out
      | Error _ -> ());
      (* the connection survives the error and still executes *)
      (match request_via_poll server conn "EXEC" "ASK r (i2);" with
      | Ok out -> Alcotest.(check string) "verdict" "+ (by (V c))" out
      | Error e -> Alcotest.failf "after estimate: %s" e);
      Server.Client.close conn)

let suite =
  [
    Alcotest.test_case "flat relations price exactly" `Quick test_flat_exact;
    Alcotest.test_case "estimates are monotone under exceptions" `Quick
      test_monotone_exceptions;
    Alcotest.test_case "symbolic and live statistics agree" `Quick
      test_symbolic_vs_live;
    Alcotest.test_case "EXPLAIN ANALYZE feedback persists" `Quick
      test_feedback;
    Alcotest.test_case "EXPLAIN ESTIMATE leaves the WAL untouched" `Quick
      test_no_side_effects_db;
    Alcotest.test_case "ESTIMATE frame over the wire" `Quick
      test_estimate_over_wire;
  ]
