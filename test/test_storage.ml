(* Storage engine tests: codec, binary snapshots, WAL discipline, crash
   recovery. *)

module Codec = Hr_storage.Codec
module Snapshot = Hr_storage.Snapshot
module Wal = Hr_storage.Wal
module Db = Hr_storage.Db
module Persist = Hr_query.Persist
module Eval = Hr_query.Eval
open Hierel

let with_temp_dir f =
  let dir = Filename.temp_file "hrdb" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---- codec ---------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 42;
  Codec.Writer.u32 w 123456;
  Codec.Writer.u64 w 0x1122334455667788L;
  Codec.Writer.string w "hello";
  Codec.Writer.list w Codec.Writer.string [ "a"; "bb"; "" ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 42 (Codec.Reader.u8 r);
  Alcotest.(check int) "u32" 123456 (Codec.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Codec.Reader.u64 r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] (Codec.Reader.list r Codec.Reader.string);
  Alcotest.(check bool) "at end" true (Codec.Reader.at_end r)

let test_codec_truncation_detected () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello world";
  let full = Codec.Writer.contents w in
  let torn = String.sub full 0 (String.length full - 3) in
  let r = Codec.Reader.of_string torn in
  try
    ignore (Codec.Reader.string r);
    Alcotest.fail "expected Corrupt"
  with Codec.Reader.Corrupt _ -> ()

let test_crc32_known_value () =
  (* standard test vector *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Codec.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Codec.crc32 "")

(* ---- snapshots ------------------------------------------------------- *)

let sample_catalog () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN pets;
    CREATE CLASS dog UNDER pets;
    CREATE CLASS puppy UNDER dog;
    CREATE INSTANCE rex OF puppy;
    CREATE INSTANCE muttley OF dog;
    CREATE CLASS cat UNDER pets;
    CREATE PREFERENCE dog OVER cat;
    CREATE RELATION barks (pet: pets);
    INSERT INTO barks VALUES (+ ALL dog), (- ALL puppy), (+ rex);
    |}
  in
  (match Eval.run_script cat script with Ok _ -> () | Error e -> failwith e);
  cat

let test_snapshot_roundtrip () =
  let cat = sample_catalog () in
  let cat2 = Snapshot.decode (Snapshot.encode cat) in
  (* compare through the canonical HRQL dump *)
  Alcotest.(check string) "same dump" (Persist.dump_catalog cat) (Persist.dump_catalog cat2)

let test_snapshot_corruption_detected () =
  let cat = sample_catalog () in
  let data = Snapshot.encode cat in
  let tampered = Bytes.of_string data in
  Bytes.set tampered (String.length data / 2) 'X';
  (try
     ignore (Snapshot.decode (Bytes.to_string tampered));
     Alcotest.fail "expected Corrupt_snapshot"
   with Snapshot.Corrupt_snapshot _ -> ());
  try
    ignore (Snapshot.decode "not a snapshot at all");
    Alcotest.fail "expected Corrupt_snapshot on garbage"
  with Snapshot.Corrupt_snapshot _ -> ()

let test_snapshot_file_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.bin" in
      let cat = sample_catalog () in
      Snapshot.write_file cat path;
      let cat2 = Snapshot.read_file path in
      Alcotest.(check string) "same dump" (Persist.dump_catalog cat)
        (Persist.dump_catalog cat2))

(* ---- WAL ------------------------------------------------------------- *)

let stmts records = List.map (fun r -> r.Wal.stmt) records

let test_wal_append_replay () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN d;";
      Wal.append w ~lsn:2 "CREATE INSTANCE x OF d;";
      Wal.close w;
      let records = Wal.records path in
      Alcotest.(check (list string)) "replay in order"
        [ "CREATE DOMAIN d;"; "CREATE INSTANCE x OF d;" ]
        (stmts records);
      Alcotest.(check (list int)) "lsns preserved" [ 1; 2 ]
        (List.map (fun r -> r.Wal.lsn) records))

let test_wal_torn_tail_dropped () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN d;";
      Wal.append w ~lsn:2 "CREATE DOMAIN e;";
      Wal.close w;
      (* tear the last record *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 5));
      close_out oc;
      let records, torn = Wal.replay path in
      Alcotest.(check (list string)) "tail dropped" [ "CREATE DOMAIN d;" ] (stmts records);
      match torn with
      | None -> Alcotest.fail "expected a torn-tail report"
      | Some { Wal.dropped_bytes; dropped_records } ->
        Alcotest.(check bool) "dropped bytes counted" true (dropped_bytes > 0);
        Alcotest.(check int) "one torn record" 1 dropped_records)

let test_wal_missing_file () =
  Alcotest.(check (list string)) "no file, no records" []
    (stmts (Wal.records "/nonexistent/wal.log"))

(* ---- Db: recovery ----------------------------------------------------- *)

let setup_script =
  {|
  CREATE DOMAIN animal;
  CREATE CLASS bird UNDER animal;
  CREATE CLASS penguin UNDER bird;
  CREATE INSTANCE tweety OF bird;
  CREATE INSTANCE paul OF penguin;
  CREATE RELATION flies (creature: animal);
  INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin);
  |}

let ask db q =
  match Db.exec db q with
  | Ok [ out ] -> out
  | Ok _ -> Alcotest.fail "expected one output"
  | Error e -> Alcotest.failf "query failed: %s" e

let test_db_recovers_from_wal () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Alcotest.(check bool) "wal has records" true (Db.wal_records db > 0);
      Db.close db;
      (* no checkpoint: everything must come back from the log *)
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "verdict survives" "+ (by (V bird))" (ask db2 "ASK flies (tweety);");
      Alcotest.(check string) "exception survives" "- (by (V penguin))"
        (ask db2 "ASK flies (paul);");
      Db.close db2)

let test_db_checkpoint_then_recover () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      Alcotest.(check int) "wal empty after checkpoint" 0 (Db.wal_records db);
      (* post-checkpoint update goes to the fresh log *)
      (match Db.exec db "INSERT INTO flies VALUES (+ paul);" with
      | Ok _ -> ()
      | Error e -> failwith e);
      Db.close db;
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "snapshot + wal merge" "+ (by (paul))" (ask db2 "ASK flies (paul);");
      Db.close db2)

let test_db_rejected_update_not_logged () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      let before = Db.wal_records db in
      (* direct contradiction: rejected *)
      (match Db.exec db "INSERT INTO flies VALUES (- ALL bird);" with
      | Ok _ -> Alcotest.fail "expected rejection"
      | Error _ -> ());
      Alcotest.(check int) "nothing logged" before (Db.wal_records db);
      Db.close db;
      (* and recovery still works *)
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "state intact" "+ (by (V bird))" (ask db2 "ASK flies (tweety);");
      Db.close db2)

let test_db_torn_wal_recovery () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Db.close db;
      (* simulate a crash mid-append *)
      let path = Filename.concat dir "wal.log" in
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      (* the torn record was the INSERT; everything before it survives *)
      let db2 = Db.open_dir dir in
      Alcotest.(check bool) "relation exists" true
        (Option.is_some (Catalog.find_relation (Db.catalog db2) "flies"));
      Alcotest.(check int) "insert lost with the torn tail" 0
        (Relation.cardinality (Catalog.relation (Db.catalog db2) "flies"));
      Db.close db2)

let test_db_lock_released_on_close () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Db.close db;
      (* reopen after close works; the LOCK file itself remains *)
      let db2 = Db.open_dir dir in
      Db.close db2;
      Alcotest.(check bool) "lock file exists" true
        (Sys.file_exists (Filename.concat dir "LOCK")))

let test_db_reads_not_logged () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      let before = Db.wal_records db in
      ignore (ask db "ASK flies (tweety);");
      ignore (ask db "COUNT flies;");
      Alcotest.(check int) "reads leave no trace" before (Db.wal_records db);
      Db.close db)

(* random catalogs round-trip through the binary format *)
let prop_snapshot_random_roundtrip =
  QCheck2.Test.make ~name:"binary snapshot round trip on random catalogs" ~count:25
    (QCheck2.Gen.int_range 1 100_000)
    (fun seed ->
      let module Workload = Hr_workload.Workload in
      let module Prng = Hr_util.Prng in
      let g = Prng.create (Int64.of_int seed) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "sc%d" seed;
            classes = 10;
            instances = 15;
            multi_parent_prob = 0.25;
          }
      in
      let cat = Catalog.create () in
      Catalog.define_hierarchy cat h;
      let schema = Schema.make [ ("v", h) ] in
      Catalog.define_relation cat
        (Workload.consistent_random_relation g schema
           { Workload.default_relation_spec with rel_name = Printf.sprintf "sr%d" seed });
      let cat2 = Snapshot.decode (Snapshot.encode cat) in
      Persist.dump_catalog cat2 = Persist.dump_catalog cat)

let test_db_full_paper_script () =
  (* the complete paper script runs durably, checkpoints, and survives a
     reopen with nothing but the binary snapshot *)
  with_temp_dir (fun dir ->
      let script =
        let ic = open_in "../../../examples/paper.hrql" in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let db = Db.open_dir dir in
      (match Db.exec db script with Ok _ -> () | Error e -> Alcotest.failf "script: %s" e);
      Db.checkpoint db;
      Db.close db;
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "verdicts survive checkpointed restart" "+ (by (V bird))"
        (ask db2 "ASK flies (tweety);");
      Alcotest.(check bool) "derived relations survive" true
        (Option.is_some (Catalog.find_relation (Db.catalog db2) "between_them"));
      Db.close db2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_snapshot_random_roundtrip;
    Alcotest.test_case "db runs the full paper script durably" `Quick
      test_db_full_paper_script;
    Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncation detected" `Quick test_codec_truncation_detected;
    Alcotest.test_case "crc32 test vector" `Quick test_crc32_known_value;
    Alcotest.test_case "snapshot round trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot corruption detected" `Quick test_snapshot_corruption_detected;
    Alcotest.test_case "snapshot file round trip" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "wal append and replay" `Quick test_wal_append_replay;
    Alcotest.test_case "wal torn tail dropped" `Quick test_wal_torn_tail_dropped;
    Alcotest.test_case "wal missing file" `Quick test_wal_missing_file;
    Alcotest.test_case "db recovers from wal" `Quick test_db_recovers_from_wal;
    Alcotest.test_case "db checkpoint then recover" `Quick test_db_checkpoint_then_recover;
    Alcotest.test_case "db rejected update not logged" `Quick test_db_rejected_update_not_logged;
    Alcotest.test_case "db torn wal recovery" `Quick test_db_torn_wal_recovery;
    Alcotest.test_case "db reads not logged" `Quick test_db_reads_not_logged;
    Alcotest.test_case "db lock released on close" `Quick test_db_lock_released_on_close;
  ]
