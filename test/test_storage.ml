(* Storage engine tests: codec, binary snapshots, WAL discipline, crash
   recovery. *)

module Codec = Hr_storage.Codec
module Snapshot = Hr_storage.Snapshot
module Wal = Hr_storage.Wal
module Db = Hr_storage.Db
module Persist = Hr_query.Persist
module Eval = Hr_query.Eval
open Hierel

let with_temp_dir f =
  let dir = Filename.temp_file "hrdb" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---- codec ---------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 42;
  Codec.Writer.u32 w 123456;
  Codec.Writer.u64 w 0x1122334455667788L;
  Codec.Writer.string w "hello";
  Codec.Writer.list w Codec.Writer.string [ "a"; "bb"; "" ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 42 (Codec.Reader.u8 r);
  Alcotest.(check int) "u32" 123456 (Codec.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Codec.Reader.u64 r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] (Codec.Reader.list r Codec.Reader.string);
  Alcotest.(check bool) "at end" true (Codec.Reader.at_end r)

let test_codec_truncation_detected () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello world";
  let full = Codec.Writer.contents w in
  let torn = String.sub full 0 (String.length full - 3) in
  let r = Codec.Reader.of_string torn in
  try
    ignore (Codec.Reader.string r);
    Alcotest.fail "expected Corrupt"
  with Codec.Reader.Corrupt _ -> ()

let test_crc32_known_value () =
  (* standard test vector *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Codec.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Codec.crc32 "")

(* ---- snapshots ------------------------------------------------------- *)

let sample_catalog () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN pets;
    CREATE CLASS dog UNDER pets;
    CREATE CLASS puppy UNDER dog;
    CREATE INSTANCE rex OF puppy;
    CREATE INSTANCE muttley OF dog;
    CREATE CLASS cat UNDER pets;
    CREATE PREFERENCE dog OVER cat;
    CREATE RELATION barks (pet: pets);
    INSERT INTO barks VALUES (+ ALL dog), (- ALL puppy), (+ rex);
    |}
  in
  (match Eval.run_script cat script with Ok _ -> () | Error e -> failwith e);
  cat

let test_snapshot_roundtrip () =
  let cat = sample_catalog () in
  let cat2 = Snapshot.decode (Snapshot.encode cat) in
  (* compare through the canonical HRQL dump *)
  Alcotest.(check string) "same dump" (Persist.dump_catalog cat) (Persist.dump_catalog cat2)

let test_snapshot_corruption_detected () =
  let cat = sample_catalog () in
  let data = Snapshot.encode cat in
  let tampered = Bytes.of_string data in
  Bytes.set tampered (String.length data / 2) 'X';
  (try
     ignore (Snapshot.decode (Bytes.to_string tampered));
     Alcotest.fail "expected Corrupt_snapshot"
   with Snapshot.Corrupt_snapshot _ -> ());
  try
    ignore (Snapshot.decode "not a snapshot at all");
    Alcotest.fail "expected Corrupt_snapshot on garbage"
  with Snapshot.Corrupt_snapshot _ -> ()

let test_snapshot_file_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.bin" in
      let cat = sample_catalog () in
      Snapshot.write_file cat path;
      let cat2 = Snapshot.read_file path in
      Alcotest.(check string) "same dump" (Persist.dump_catalog cat)
        (Persist.dump_catalog cat2))

(* ---- WAL ------------------------------------------------------------- *)

let stmts records = List.map (fun r -> r.Wal.stmt) records

let test_wal_append_replay () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN d;";
      Wal.append w ~lsn:2 "CREATE INSTANCE x OF d;";
      Wal.close w;
      let records = Wal.records path in
      Alcotest.(check (list string)) "replay in order"
        [ "CREATE DOMAIN d;"; "CREATE INSTANCE x OF d;" ]
        (stmts records);
      Alcotest.(check (list int)) "lsns preserved" [ 1; 2 ]
        (List.map (fun r -> r.Wal.lsn) records))

let test_wal_torn_tail_dropped () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN d;";
      Wal.append w ~lsn:2 "CREATE DOMAIN e;";
      Wal.close w;
      (* tear the last record *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 5));
      close_out oc;
      let records, torn = Wal.replay path in
      Alcotest.(check (list string)) "tail dropped" [ "CREATE DOMAIN d;" ] (stmts records);
      match torn with
      | None -> Alcotest.fail "expected a torn-tail report"
      | Some { Wal.dropped_bytes; dropped_records } ->
        Alcotest.(check bool) "dropped bytes counted" true (dropped_bytes > 0);
        Alcotest.(check int) "one torn record" 1 dropped_records)

let test_wal_missing_file () =
  Alcotest.(check (list string)) "no file, no records" []
    (stmts (Wal.records "/nonexistent/wal.log"))

(* ---- Db: recovery ----------------------------------------------------- *)

let setup_script =
  {|
  CREATE DOMAIN animal;
  CREATE CLASS bird UNDER animal;
  CREATE CLASS penguin UNDER bird;
  CREATE INSTANCE tweety OF bird;
  CREATE INSTANCE paul OF penguin;
  CREATE RELATION flies (creature: animal);
  INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin);
  |}

let ask db q =
  match Db.exec db q with
  | Ok [ out ] -> out
  | Ok _ -> Alcotest.fail "expected one output"
  | Error e -> Alcotest.failf "query failed: %s" e

let test_db_recovers_from_wal () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Alcotest.(check bool) "wal has records" true (Db.wal_records db > 0);
      Db.close db;
      (* no checkpoint: everything must come back from the log *)
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "verdict survives" "+ (by (V bird))" (ask db2 "ASK flies (tweety);");
      Alcotest.(check string) "exception survives" "- (by (V penguin))"
        (ask db2 "ASK flies (paul);");
      Db.close db2)

let test_db_checkpoint_then_recover () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      Alcotest.(check int) "wal empty after checkpoint" 0 (Db.wal_records db);
      (* post-checkpoint update goes to the fresh log *)
      (match Db.exec db "INSERT INTO flies VALUES (+ paul);" with
      | Ok _ -> ()
      | Error e -> failwith e);
      Db.close db;
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "snapshot + wal merge" "+ (by (paul))" (ask db2 "ASK flies (paul);");
      Db.close db2)

let test_db_rejected_update_not_logged () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      let before = Db.wal_records db in
      (* direct contradiction: rejected *)
      (match Db.exec db "INSERT INTO flies VALUES (- ALL bird);" with
      | Ok _ -> Alcotest.fail "expected rejection"
      | Error _ -> ());
      Alcotest.(check int) "nothing logged" before (Db.wal_records db);
      Db.close db;
      (* and recovery still works *)
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "state intact" "+ (by (V bird))" (ask db2 "ASK flies (tweety);");
      Db.close db2)

let test_db_torn_wal_recovery () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      Db.close db;
      (* simulate a crash mid-append *)
      let path = Filename.concat dir "wal.log" in
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      (* the torn record was the INSERT; everything before it survives *)
      let db2 = Db.open_dir dir in
      Alcotest.(check bool) "relation exists" true
        (Option.is_some (Catalog.find_relation (Db.catalog db2) "flies"));
      Alcotest.(check int) "insert lost with the torn tail" 0
        (Relation.cardinality (Catalog.relation (Db.catalog db2) "flies"));
      Db.close db2)

let test_db_lock_released_on_close () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Db.close db;
      (* reopen after close works; the LOCK file itself remains *)
      let db2 = Db.open_dir dir in
      Db.close db2;
      Alcotest.(check bool) "lock file exists" true
        (Sys.file_exists (Filename.concat dir "LOCK")))

let test_db_reads_not_logged () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db setup_script with Ok _ -> () | Error e -> failwith e);
      let before = Db.wal_records db in
      ignore (ask db "ASK flies (tweety);");
      ignore (ask db "COUNT flies;");
      Alcotest.(check int) "reads leave no trace" before (Db.wal_records db);
      Db.close db)

(* random catalogs round-trip through the binary format *)
let prop_snapshot_random_roundtrip =
  QCheck2.Test.make ~name:"binary snapshot round trip on random catalogs" ~count:25
    (QCheck2.Gen.int_range 1 100_000)
    (fun seed ->
      let module Workload = Hr_workload.Workload in
      let module Prng = Hr_util.Prng in
      let g = Prng.create (Int64.of_int seed) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "sc%d" seed;
            classes = 10;
            instances = 15;
            multi_parent_prob = 0.25;
          }
      in
      let cat = Catalog.create () in
      Catalog.define_hierarchy cat h;
      let schema = Schema.make [ ("v", h) ] in
      Catalog.define_relation cat
        (Workload.consistent_random_relation g schema
           { Workload.default_relation_spec with rel_name = Printf.sprintf "sr%d" seed });
      let cat2 = Snapshot.decode (Snapshot.encode cat) in
      Persist.dump_catalog cat2 = Persist.dump_catalog cat)

let test_db_full_paper_script () =
  (* the complete paper script runs durably, checkpoints, and survives a
     reopen with nothing but the binary snapshot *)
  with_temp_dir (fun dir ->
      let script =
        (* cwd is the test dir under `dune runtest` but the repo root
           under `dune exec test/main.exe` (the CI seed-sweep lanes), so
           walk up until the examples dir appears *)
        let rec find base depth =
          let candidate = Filename.concat base "examples/paper.hrql" in
          if Sys.file_exists candidate then candidate
          else if depth = 0 then candidate
          else find (Filename.concat base Filename.parent_dir_name) (depth - 1)
        in
        let ic = open_in (find Filename.current_dir_name 4) in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let db = Db.open_dir dir in
      (match Db.exec db script with Ok _ -> () | Error e -> Alcotest.failf "script: %s" e);
      Db.checkpoint db;
      Db.close db;
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "verdicts survive checkpointed restart" "+ (by (V bird))"
        (ask db2 "ASK flies (tweety);");
      Alcotest.(check bool) "derived relations survive" true
        (Option.is_some (Catalog.find_relation (Db.catalog db2) "between_them"));
      Db.close db2)

(* ---- paged store: incremental checkpoints, TID reuse, crash safety ---- *)

module Page_store = Hr_storage.Page_store
module Pager = Hr_storage.Pager
module Hierarchy = Hr_hierarchy.Hierarchy

(* Deterministic replay for the randomized workload below. *)
let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None -> Int64.to_int (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let () =
  Printf.eprintf "test_storage: RNG seed %d (replay with HRDB_TEST_SEED=%d)\n%!" seed seed

(* Process-independent, order-independent state image: every relation's
   flattened extension, rendered to labels and sorted. *)
let rendered_state cat =
  Catalog.relations cat
  |> List.map (fun rel ->
         let schema = Relation.schema rel in
         ( Relation.name rel,
           Flatten.extension_list rel
           |> List.map (Item.to_string schema)
           |> List.sort compare ))
  |> List.sort compare

let bulk_world n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "CREATE DOMAIN things; CREATE CLASS gadget UNDER things;\n";
  Buffer.add_string b "CREATE RELATION owns (what: things);\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "CREATE INSTANCE item%04d OF gadget;\n" i)
  done;
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "INSERT INTO owns VALUES (+ item%04d);\n" i)
  done;
  Buffer.contents b

let test_incremental_checkpoint_cost () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db (bulk_world 800) with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      let full, total1 = Db.last_checkpoint_pages db in
      Alcotest.(check bool) "first checkpoint writes many pages" true (full > 10);
      (match Db.exec db "DELETE FROM owns VALUES (item0001); INSERT INTO owns VALUES (+ item0001);" with
      | Ok _ -> ()
      | Error e -> failwith e);
      Db.checkpoint db;
      let incr, total2 = Db.last_checkpoint_pages db in
      Alcotest.(check bool) "incremental checkpoint is proportional to the delta" true
        (incr * 3 <= full);
      Alcotest.(check bool) "store did not balloon" true (total2 <= total1 + 4);
      (* nothing changed: only the page table + meta root are rewritten *)
      Db.checkpoint db;
      let idle, _ = Db.last_checkpoint_pages db in
      Alcotest.(check bool) "idle checkpoint is O(metadata)" true (idle <= 4);
      Db.close db)

(* The paged store reports its work through the metrics registry (and so
   through STATS / STATS JSON): B-tree maintenance counters move when
   tuples land, and the checkpoint gauges mirror last_checkpoint_pages. *)
let test_storage_metrics_wired () =
  with_temp_dir (fun dir ->
      let module M = Hr_obs.Metrics in
      let ins0 = M.counter_value "storage.btree.inserts" in
      let del0 = M.counter_value "storage.btree.deletes" in
      let db = Db.open_dir dir in
      (match Db.exec db (bulk_world 50) with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      Alcotest.(check bool) "btree inserts counted" true
        (M.counter_value "storage.btree.inserts" >= ins0 + 50);
      (match Db.exec db "DELETE FROM owns VALUES (item0001);" with
      | Ok _ -> ()
      | Error e -> failwith e);
      Db.checkpoint db;
      Alcotest.(check bool) "btree deletes counted" true
        (M.counter_value "storage.btree.deletes" > del0);
      let written, total = Db.last_checkpoint_pages db in
      Alcotest.(check int) "dirty-pages gauge mirrors the checkpoint" written
        (M.gauge_value "storage.checkpoint.dirty_pages");
      Alcotest.(check int) "pages-total gauge mirrors the store" total
        (M.gauge_value "storage.checkpoint.pages_total");
      Db.close db)

let test_tid_reuse_after_delete () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db (bulk_world 300) with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      let _, total1 = Db.last_checkpoint_pages db in
      (* retract and re-assert everything: the tombstoned slots must be
         reused, not appended after *)
      let b = Buffer.create 1024 in
      for i = 1 to 300 do
        Buffer.add_string b (Printf.sprintf "DELETE FROM owns VALUES (item%04d);\n" i)
      done;
      (match Db.exec db (Buffer.contents b) with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      let b = Buffer.create 1024 in
      for i = 1 to 300 do
        Buffer.add_string b (Printf.sprintf "INSERT INTO owns VALUES (+ item%04d);\n" i)
      done;
      (match Db.exec db (Buffer.contents b) with Ok _ -> () | Error e -> failwith e);
      Db.checkpoint db;
      let _, total3 = Db.last_checkpoint_pages db in
      (* shadow paging keeps a second physical for every page touched in a
         cycle, so one full rewrite can grow the file once; with slots and
         logical pages reused, repeating the cycle must not grow it again *)
      Alcotest.(check bool)
        (Printf.sprintf "bounded growth: %d pages grew to %d" total1 total3)
        true
        (total3 <= (total1 * 2) + 4);
      let cycle del =
        let b = Buffer.create 1024 in
        for i = 1 to 300 do
          Buffer.add_string b
            (if del then Printf.sprintf "DELETE FROM owns VALUES (item%04d);\n" i
             else Printf.sprintf "INSERT INTO owns VALUES (+ item%04d);\n" i)
        done;
        (match Db.exec db (Buffer.contents b) with Ok _ -> () | Error e -> failwith e);
        Db.checkpoint db
      in
      cycle true;
      cycle false;
      let _, total5 = Db.last_checkpoint_pages db in
      Alcotest.(check bool)
        (Printf.sprintf "steady state: %d pages settled at %d" total3 total5)
        true
        (total5 <= total3 + 2);
      Db.close db;
      (* and the state is right after recovery from pages alone *)
      let db2 = Db.open_dir dir in
      Alcotest.(check string) "reasserted tuple survives" "+ (by (item0007))"
        (ask db2 "ASK owns (item0007);");
      Db.close db2)

(* A store several times larger than the pager pool: every page falls
   out of cache and comes back from disk, and the state is still exact. *)
let test_data_larger_than_pool () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "pages.db" in
      let cat = Catalog.create () in
      (match Eval.run_script cat (bulk_world 600) with Ok _ -> () | Error e -> failwith e);
      let s = Page_store.create ~pool_pages:8 path in
      Page_store.apply_catalog s cat;
      Page_store.set_ddl s cat;
      ignore (Page_store.commit s ~base_lsn:0 ());
      Page_store.close s;
      let s = Page_store.open_ ~pool_pages:8 path in
      Alcotest.(check bool) "store spans more pages than the pool" true
        (Pager.page_count (Page_store.pager s) > 8);
      let cat2 = Page_store.to_catalog s in
      Alcotest.(check bool) "evictions actually happened" true
        (Pager.evictions (Page_store.pager s) > 0);
      Alcotest.(check (list string)) "page-store faults" []
        (List.map (fun f -> f.Page_store.detail) (Page_store.check s));
      Page_store.close s;
      Alcotest.(check bool) "state identical through an 8-page pool" true
        (rendered_state cat = rendered_state cat2))

(* kill -9 between the data flush and the meta-root swap: the directory
   must come back as if the checkpoint never started — prior pages plus
   full WAL replay — with fsck clean. *)
let test_kill_mid_checkpoint () =
  with_temp_dir (fun dir ->
      let followup = "DELETE FROM owns VALUES (item0003); INSERT INTO owns VALUES (+ item0005);" in
      (match Unix.fork () with
      | 0 ->
        (try
           let db = Db.open_dir dir in
           (match Db.exec db (bulk_world 120) with Ok _ -> () | Error _ -> Unix._exit 2);
           Db.checkpoint db;
           (match Db.exec db followup with Ok _ -> () | Error _ -> Unix._exit 2);
           Page_store.Testing.crash_before_meta := true;
           Db.checkpoint db;
           (* the crash hook fires inside commit; never reached *)
           Unix._exit 4
         with _ -> Unix._exit 3)
      | pid -> (
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 137 -> ()
        | _, status ->
          Alcotest.failf "child did not die at the crash hook: %s"
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
            | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)));
      let r = Hr_check.Fsck.run dir in
      Alcotest.(check (list string)) "fsck clean after mid-checkpoint kill" []
        (List.map (fun f -> f.Hr_check.Fsck.code) r.Hr_check.Fsck.findings);
      let expected = Catalog.create () in
      (match Eval.run_script expected (bulk_world 120) with Ok _ -> () | Error e -> failwith e);
      (match Eval.run_script expected followup with Ok _ -> () | Error e -> failwith e);
      let db = Db.open_dir dir in
      Alcotest.(check bool) "recovered state identical to the uncrashed run" true
        (rendered_state (Db.catalog db) = rendered_state expected);
      (* and the directory is fully functional: the interrupted
         checkpoint can simply be retried *)
      Db.checkpoint db;
      Db.close db;
      let db2 = Db.open_dir dir in
      Alcotest.(check bool) "re-checkpoint after the crash sticks" true
        (rendered_state (Db.catalog db2) = rendered_state expected);
      Db.close db2)

(* Randomized, seed-replayable workload: the durable engine (with
   random checkpoints and reopens) must track a plain in-memory catalog
   fed the same statements. *)
let test_randomized_durability_vs_oracle () =
  let rng = Random.State.make [| seed |] in
  with_temp_dir (fun dir ->
      let control = Catalog.create () in
      let setup =
        "CREATE DOMAIN d; CREATE CLASS c UNDER d;"
        ^ String.concat ""
            (List.init 16 (fun i -> Printf.sprintf " CREATE INSTANCE x%02d OF c;" i))
        ^ " CREATE RELATION r (v: d);"
      in
      (match Eval.run_script control setup with Ok _ -> () | Error e -> failwith e);
      let db = ref (Db.open_dir dir) in
      (match Db.exec !db setup with Ok _ -> () | Error e -> failwith e);
      for _step = 1 to 300 do
        let target =
          if Random.State.int rng 4 = 0 then "ALL c"
          else Printf.sprintf "x%02d" (Random.State.int rng 16)
        in
        let sign = if Random.State.bool rng then "+" else "-" in
        let stmt = Printf.sprintf "INSERT INTO r VALUES (%s %s);" sign target in
        let a = Db.exec !db stmt in
        let b = Eval.run_script control stmt in
        (match (a, b) with
        | Ok _, Ok _ | Error _, Error _ -> ()
        | Ok _, Error e ->
          Alcotest.failf "seed %d: db accepted %S, control rejected: %s" seed stmt e
        | Error e, Ok _ ->
          Alcotest.failf "seed %d: db rejected %S (%s), control accepted" seed stmt e);
        if Random.State.int rng 40 = 0 then Db.checkpoint !db;
        if Random.State.int rng 60 = 0 then begin
          Db.close !db;
          db := Db.open_dir dir
        end
      done;
      Db.close !db;
      let db2 = Db.open_dir dir in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: durable state equals the in-memory oracle" seed)
        true
        (rendered_state (Db.catalog db2) = rendered_state control);
      Db.close db2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_snapshot_random_roundtrip;
    Alcotest.test_case "db runs the full paper script durably" `Quick
      test_db_full_paper_script;
    Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncation detected" `Quick test_codec_truncation_detected;
    Alcotest.test_case "crc32 test vector" `Quick test_crc32_known_value;
    Alcotest.test_case "snapshot round trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot corruption detected" `Quick test_snapshot_corruption_detected;
    Alcotest.test_case "snapshot file round trip" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "wal append and replay" `Quick test_wal_append_replay;
    Alcotest.test_case "wal torn tail dropped" `Quick test_wal_torn_tail_dropped;
    Alcotest.test_case "wal missing file" `Quick test_wal_missing_file;
    Alcotest.test_case "db recovers from wal" `Quick test_db_recovers_from_wal;
    Alcotest.test_case "db checkpoint then recover" `Quick test_db_checkpoint_then_recover;
    Alcotest.test_case "db rejected update not logged" `Quick test_db_rejected_update_not_logged;
    Alcotest.test_case "db torn wal recovery" `Quick test_db_torn_wal_recovery;
    Alcotest.test_case "db reads not logged" `Quick test_db_reads_not_logged;
    Alcotest.test_case "db lock released on close" `Quick test_db_lock_released_on_close;
    Alcotest.test_case "incremental checkpoint cost tracks the delta" `Quick
      test_incremental_checkpoint_cost;
    Alcotest.test_case "storage metrics wired to the registry" `Quick
      test_storage_metrics_wired;
    Alcotest.test_case "TIDs reused after tombstoning" `Quick test_tid_reuse_after_delete;
    Alcotest.test_case "data larger than the pager pool" `Quick test_data_larger_than_pool;
    Alcotest.test_case "kill -9 mid-checkpoint recovers exactly" `Quick
      test_kill_mid_checkpoint;
    Alcotest.test_case "randomized durability vs in-memory oracle" `Slow
      test_randomized_durability_vs_oracle;
  ]
