(* B-tree unit and randomized tests. The tree runs over an in-memory
   page provider here, exercising exactly the node code the page store
   uses on disk: splits, merges, redistribution, root growth/collapse,
   duplicate keys, and a seeded randomized insert/delete workload
   checked against a sorted-assoc oracle. *)

module Btree = Hr_storage.Btree
module Pager = Hr_storage.Pager

(* Deterministic replay: seed printed up front, pinned with
   [HRDB_TEST_SEED=n dune runtest]. *)
let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None -> Int64.to_int (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let () =
  Printf.eprintf "test_btree: RNG seed %d (replay with HRDB_TEST_SEED=%d)\n%!" seed seed

(* ---- in-memory page provider ------------------------------------------ *)

type mem = {
  mutable store : bytes array;
  mutable free : int list;
  mutable live : int; (* allocated minus freed, for leak checks *)
}

let mem_pages () =
  let m = { store = [||]; free = []; live = 0 } in
  let pages =
    {
      Btree.read =
        (fun id ->
          if id < 0 || id >= Array.length m.store then
            invalid_arg (Printf.sprintf "mem read: bad page %d" id);
          m.store.(id));
      modify = (fun id f -> f m.store.(id));
      alloc =
        (fun () ->
          m.live <- m.live + 1;
          match m.free with
          | id :: rest ->
            m.free <- rest;
            m.store.(id) <- Bytes.make Pager.page_size '\000';
            id
          | [] ->
            let id = Array.length m.store in
            m.store <- Array.append m.store [| Bytes.make Pager.page_size '\000' |];
            id);
      free =
        (fun id ->
          m.live <- m.live - 1;
          m.free <- id :: m.free);
    }
  in
  (m, pages)

(* ---- oracle ------------------------------------------------------------ *)

module Oracle = Map.Make (struct
  type t = string * int

  let compare (k1, t1) (k2, t2) =
    match String.compare k1 k2 with 0 -> compare t1 t2 | c -> c
end)

let entries pages root =
  let acc = ref [] in
  Btree.iter pages ~root (fun k t -> acc := (k, t) :: !acc);
  List.rev !acc

let assert_matches_oracle pages root oracle label =
  let got = entries pages root in
  let want = List.map fst (Oracle.bindings oracle) in
  Alcotest.(check (list (pair string int))) label want got;
  match Btree.check pages ~root with
  | [] -> ()
  | faults -> Alcotest.failf "%s: structural faults: %s" label (String.concat "; " faults)

(* ---- unit tests -------------------------------------------------------- *)

let test_empty () =
  let _, pages = mem_pages () in
  let root = Btree.create pages in
  Alcotest.(check (list int)) "lookup on empty" [] (Btree.lookup pages ~root "x");
  Alcotest.(check int) "depth" 1 (Btree.depth pages ~root);
  Alcotest.(check (list string)) "check clean" [] (Btree.check pages ~root)

let test_insert_lookup () =
  let _, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  List.iteri
    (fun i k -> root := Btree.insert pages ~root:!root ~key:k ~tid:(100 + i))
    [ "delta"; "alpha"; "charlie"; "bravo" ];
  Alcotest.(check (list int)) "alpha" [ 101 ] (Btree.lookup pages ~root:!root "alpha");
  Alcotest.(check (list int)) "delta" [ 100 ] (Btree.lookup pages ~root:!root "delta");
  Alcotest.(check (list int)) "missing" [] (Btree.lookup pages ~root:!root "zulu");
  Alcotest.(check (list (pair string int)))
    "in order"
    [ ("alpha", 101); ("bravo", 103); ("charlie", 102); ("delta", 100) ]
    (entries pages !root)

let test_duplicate_keys () =
  let _, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  for tid = 1 to 50 do
    root := Btree.insert pages ~root:!root ~key:"same" ~tid
  done;
  (* re-inserting an existing pair is a no-op *)
  root := Btree.insert pages ~root:!root ~key:"same" ~tid:7;
  Alcotest.(check (list int))
    "all tids ascending"
    (List.init 50 (fun i -> i + 1))
    (Btree.lookup pages ~root:!root "same");
  root := Btree.delete pages ~root:!root ~key:"same" ~tid:25;
  Alcotest.(check int) "one removed" 49 (List.length (Btree.lookup pages ~root:!root "same"))

let test_split_grows_depth () =
  let _, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  let key i = Printf.sprintf "key-%06d-%s" i (String.make 60 'p') in
  let n = 3000 in
  for i = 1 to n do
    root := Btree.insert pages ~root:!root ~key:(key i) ~tid:i
  done;
  Alcotest.(check bool) "tree grew levels" true (Btree.depth pages ~root:!root >= 3);
  Alcotest.(check (list string)) "structure sound" [] (Btree.check pages ~root:!root);
  for i = 1 to n do
    Alcotest.(check (list int)) "every key findable" [ i ] (Btree.lookup pages ~root:!root (key i))
  done

let test_delete_collapses_root () =
  let m, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  let key i = Printf.sprintf "key-%06d-%s" i (String.make 60 'q') in
  let n = 3000 in
  for i = 1 to n do
    root := Btree.insert pages ~root:!root ~key:(key i) ~tid:i
  done;
  let deep = Btree.depth pages ~root:!root in
  Alcotest.(check bool) "grew first" true (deep >= 3);
  for i = 1 to n do
    root := Btree.delete pages ~root:!root ~key:(key i) ~tid:i
  done;
  Alcotest.(check (list (pair string int))) "empty again" [] (entries pages !root);
  Alcotest.(check int) "root collapsed to a lone leaf" 1 (Btree.depth pages ~root:!root);
  (* merges and root collapses must return pages, not leak them *)
  Alcotest.(check int) "all pages but the root freed" 1 m.live

let test_underflow_rebalances () =
  let _, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  let key i = Printf.sprintf "%06d-%s" i (String.make 100 'u') in
  let n = 300 in
  for i = 1 to n do
    root := Btree.insert pages ~root:!root ~key:(key i) ~tid:i
  done;
  (* carve out every other entry: forces underflow in interior leaves *)
  for i = 1 to n do
    if i mod 2 = 0 then root := Btree.delete pages ~root:!root ~key:(key i) ~tid:i
  done;
  Alcotest.(check (list string)) "sound after rebalancing" [] (Btree.check pages ~root:!root);
  for i = 1 to n do
    let want = if i mod 2 = 0 then [] else [ i ] in
    Alcotest.(check (list int)) "survivors intact" want (Btree.lookup pages ~root:!root (key i))
  done

let test_oversize_key_rejected () =
  let _, pages = mem_pages () in
  let root = Btree.create pages in
  try
    ignore (Btree.insert pages ~root ~key:(String.make (Btree.max_key + 1) 'k') ~tid:1);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---- randomized vs oracle ---------------------------------------------- *)

let random_key rng =
  let len = 1 + Random.State.int rng 24 in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Random.State.int rng 8))

let run_randomized ~ops ~case_seed () =
  let rng = Random.State.make [| case_seed |] in
  let _, pages = mem_pages () in
  let root = ref (Btree.create pages) in
  let oracle = ref Oracle.empty in
  for step = 1 to ops do
    let k = random_key rng in
    let tid = Random.State.int rng 64 in
    if Random.State.int rng 100 < 60 then begin
      root := Btree.insert pages ~root:!root ~key:k ~tid;
      oracle := Oracle.add (k, tid) () !oracle
    end
    else begin
      (* bias deletes toward keys that exist so merges actually happen *)
      let k, tid =
        if Random.State.bool rng && not (Oracle.is_empty !oracle) then begin
          let bindings = Oracle.bindings !oracle in
          fst (List.nth bindings (Random.State.int rng (List.length bindings)))
        end
        else (k, tid)
      in
      root := Btree.delete pages ~root:!root ~key:k ~tid;
      oracle := Oracle.remove (k, tid) !oracle
    end;
    if step mod 500 = 0 || step = ops then
      assert_matches_oracle pages !root !oracle
        (Printf.sprintf "seed %d after %d ops" case_seed step)
  done

let test_randomized_vs_oracle () =
  (* a few derived sub-seeds widen coverage; all replay from one seed *)
  for sub = 0 to 2 do
    run_randomized ~ops:2000 ~case_seed:(seed + (7919 * sub)) ()
  done

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "insert and lookup" `Quick test_insert_lookup;
    Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
    Alcotest.test_case "splits grow depth" `Quick test_split_grows_depth;
    Alcotest.test_case "deletes collapse root and free pages" `Quick test_delete_collapses_root;
    Alcotest.test_case "underflow rebalances" `Quick test_underflow_rebalances;
    Alcotest.test_case "oversize key rejected" `Quick test_oversize_key_rejected;
    Alcotest.test_case "randomized vs sorted-assoc oracle" `Slow test_randomized_vs_oracle;
  ]
