(* Fuzz-style safety properties: parsers must fail only with their
   declared exceptions, whatever the input — plus a differential sweep
   pitting random operator pipelines against the flat (traditional)
   baseline: flattening the hierarchical result must equal running the
   plain relational operators on the flattened inputs (paper §3.4). *)

module Lexer = Hr_query.Lexer
module Parser = Hr_query.Parser
module Datalog = Hr_datalog.Datalog
module Csv = Hr_flat.Csv
module Flat_relation = Hr_flat.Flat_relation
module Traditional = Hr_flat.Traditional
module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
module Metrics = Hr_obs.Metrics
open Hierel

(* Deterministic replay: every property's random state derives from one
   integer seed, printed up front so a failing CI run can be replayed
   locally with [HRDB_TEST_SEED=n dune runtest]. Unset, the seed varies
   run to run so repeated runs keep exploring new inputs. *)
let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None -> Int64.to_int (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let () =
  Printf.eprintf "test_fuzz: property RNG seed %d (replay with HRDB_TEST_SEED=%d)\n%!" seed
    seed

let printable_gen = QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 120))

let prop_lexer_total =
  QCheck2.Test.make ~name:"lexer is total up to Lex_error" ~count:500 printable_gen
    (fun input ->
      match Lexer.tokenize input with
      | _ -> true
      | exception Lexer.Lex_error _ -> true)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser is total up to Parse/Lex errors" ~count:500 printable_gen
    (fun input ->
      match Parser.parse input with
      | _ -> true
      | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> true)

let prop_datalog_parser_total =
  QCheck2.Test.make ~name:"datalog rule parser is total up to Datalog_error" ~count:500
    printable_gen (fun input ->
      match Datalog.parse_rule input with
      | _ -> true
      | exception Datalog.Datalog_error _ -> true)

let prop_csv_parser_total =
  QCheck2.Test.make ~name:"csv parser is total up to Csv_error" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '~') (int_range 0 200))
    (fun input ->
      match Csv.parse input with
      | _ -> true
      | exception Csv.Csv_error _ -> true)

let prop_snapshot_decoder_total =
  QCheck2.Test.make ~name:"snapshot decoder is total up to Corrupt_snapshot" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 300))
    (fun input ->
      match Hr_storage.Snapshot.decode input with
      | _ -> true
      | exception Hr_storage.Snapshot.Corrupt_snapshot _ -> true)

(* ---- differential sweep: lifted operators vs the flat baseline -------- *)

(* Fresh name prefixes per seed keep hierarchies independent of the other
   test modules' workloads (symbols are global). *)
let hierarchy_of_seed seed =
  let g = Prng.create (Int64.of_int seed) in
  Workload.random_hierarchy g
    {
      Workload.name = Printf.sprintf "fz%d" seed;
      classes = 8;
      instances = 12;
      multi_parent_prob = 0.25;
    }

let relation_of_seed ?(tuples = 8) schema seed =
  let g = Prng.create (Int64.of_int ((seed * 7919) + 1)) in
  Workload.consistent_random_relation g schema
    {
      Workload.rel_name = Printf.sprintf "fzr%d" seed;
      tuples;
      neg_fraction = 0.35;
      instance_fraction = 0.3;
    }

(* The flat witness of a class: the labels of its atomic extension,
   computed by [leaves_under] — a different algorithm than the
   subsumption machinery the lifted select exercises. *)
module String_set = Set.Make (String)

let member_labels h v =
  List.fold_left
    (fun acc node -> String_set.add (Hierarchy.node_label h node) acc)
    String_set.empty (Hierarchy.leaves_under h v)

(* A pipeline is a list of stage codes, each applied simultaneously to
   the hierarchical relation and to its flat (fully explicated) mirror:

     0  select on a random class   (flat: filter by extension membership)
     1  consolidate                (flat: identity — extension preserved)
     2  explicate                  (flat: identity — extension produced)
     3  union with r2              4  intersect with r2     5  except r2

   Plain [project] is deliberately absent: it is not extension-preserving
   in general (which is why [Ops.project_exact] exists), so it has no
   flat mirror to test against. *)
let pipeline_gen =
  QCheck2.Gen.(pair (int_range 1 100_000) (list_size (int_range 1 5) (int_range 0 5)))

let apply_stage h r2 flat2 g (rel, flat) = function
  | 0 ->
    let v = Prng.pick g (Array.of_list (Hierarchy.classes h)) in
    let value = Hierarchy.node_label h v in
    let members = member_labels h v in
    ( Ops.select rel ~attr:"v" ~value,
      Flat_relation.select_by flat (fun row ->
          String_set.mem (List.hd row) members) )
  | 1 -> (Consolidate.consolidate rel, flat)
  | 2 -> (Explicate.explicate rel, flat)
  | 3 -> (Ops.union rel r2, Flat_relation.union flat flat2)
  | 4 -> (Ops.inter rel r2, Flat_relation.inter flat flat2)
  | _ -> (Ops.diff rel r2, Flat_relation.diff flat flat2)

let prop_pipeline_differential =
  QCheck2.Test.make ~name:"random pipelines agree with the flat baseline" ~count:60
    pipeline_gen (fun (seed, stages) ->
      Metrics.with_enabled true (fun () ->
          let h = hierarchy_of_seed seed in
          let schema = Schema.make [ ("v", h) ] in
          let r1 = relation_of_seed schema (seed * 2) in
          let r2 = Relation.with_name (relation_of_seed schema ((seed * 2) + 1)) "fz_r2" in
          let subs0 = Metrics.counter_value "hierarchy.subsumption_checks" in
          let flat1 = Traditional.extension_relation r1 in
          let flat2 = Traditional.extension_relation r2 in
          let g = Prng.create (Int64.of_int (seed + 13)) in
          let rel, flat =
            List.fold_left (apply_stage h r2 flat2 g) (r1, flat1) stages
          in
          let agreed = Flat_relation.equal (Traditional.extension_relation rel) flat in
          (* a non-trivial run must have exercised the subsumption path *)
          let counted =
            Relation.cardinality r1 = 0
            || Metrics.counter_value "hierarchy.subsumption_checks" > subs0
          in
          agreed && counted))

let prop_select_over_join_differential =
  QCheck2.Test.make ~name:"select over join agrees with the flat baseline" ~count:25
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      Metrics.with_enabled true (fun () ->
          let h1 = hierarchy_of_seed (seed + 200_000) in
          let h2 = hierarchy_of_seed (seed + 300_000) in
          let s1 = Schema.make [ ("a", h1); ("b", h2) ] in
          let s2 = Schema.make [ ("b", h2); ("c", h1) ] in
          let r1 = relation_of_seed ~tuples:5 s1 (seed * 11) in
          let r2 = Relation.with_name (relation_of_seed ~tuples:5 s2 ((seed * 11) + 7)) "fzj2" in
          let verdicts0 = Metrics.counter_value "core.binding.verdicts" in
          let g = Prng.create (Int64.of_int (seed + 29)) in
          let v = Prng.pick g (Array.of_list (Hierarchy.classes h1)) in
          let members = member_labels h1 v in
          let lifted =
            Ops.select (Ops.join r1 r2) ~attr:"a" ~value:(Hierarchy.node_label h1 v)
          in
          let flat =
            Flat_relation.select_by
              (Flat_relation.join (Traditional.extension_relation r1)
                 (Traditional.extension_relation r2))
              (fun row -> String_set.mem (List.hd row) members)
          in
          let agreed = Flat_relation.equal (Traditional.extension_relation lifted) flat in
          let counted =
            Relation.cardinality r1 = 0
            || Metrics.counter_value "core.binding.verdicts" > verdicts0
          in
          agreed && counted))

let suite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]))
    [
      prop_lexer_total;
      prop_parser_total;
      prop_datalog_parser_total;
      prop_csv_parser_total;
      prop_snapshot_decoder_total;
      prop_pipeline_differential;
      prop_select_over_join_differential;
    ]
