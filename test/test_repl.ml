(* Logical replication tests: LSN-addressed WAL, replication hooks in
   Db, the client timeout option, and the full primary/replica loop —
   snapshot bootstrap mid-workload, byte-identical flattened relations,
   and backoff-reconnect across a primary kill. *)

module Wal = Hr_storage.Wal
module Db = Hr_storage.Db
module Server = Hr_server.Server
module Replica = Hr_repl.Replica
module Metrics = Hr_obs.Metrics
open Hierel

let with_temp_dir f =
  let dir = Filename.temp_file "hrrepl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let exec_ok db script =
  match Db.exec db script with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "exec %S: %s" script msg

(* The paper's yardstick: two catalogs agree iff every relation's
   equivalent flat relation is identical. Rendered to a string so the
   comparison is byte-for-byte. *)
let flat_fingerprint catalog =
  Catalog.relations catalog
  |> List.map (fun rel ->
         let schema = Relation.schema rel in
         let items =
           Flatten.extension_list rel |> List.map (Item.to_string schema)
         in
         Relation.name rel ^ ":\n" ^ String.concat "\n" items)
  |> List.sort compare
  |> String.concat "\n---\n"

(* ---- WAL: LSN addressing --------------------------------------------- *)

let test_wal_stream_from () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:5 "CREATE DOMAIN a;";
      Wal.append w ~lsn:6 "CREATE DOMAIN b;";
      Wal.append w ~lsn:7 "CREATE DOMAIN c;";
      let lsns from = List.map (fun r -> r.Wal.lsn) (List.of_seq (Wal.stream_from w from)) in
      Alcotest.(check (list int)) "from 0" [ 5; 6; 7 ] (lsns 0);
      Alcotest.(check (list int)) "from 5" [ 6; 7 ] (lsns 5);
      Alcotest.(check (list int)) "from 7" [] (lsns 7);
      Wal.close w)

let test_wal_torn_tail_metrics () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN a;";
      Wal.append w ~lsn:2 "CREATE DOMAIN b;";
      Wal.close w;
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      let bytes_before = Metrics.counter_value "storage.wal.torn_tail_bytes" in
      let records_before = Metrics.counter_value "storage.wal.torn_tail_records" in
      let records, torn = Wal.replay path in
      Alcotest.(check (list int)) "intact prefix survives" [ 1 ]
        (List.map (fun r -> r.Wal.lsn) records);
      (match torn with
      | None -> Alcotest.fail "expected torn tail"
      | Some { Wal.dropped_bytes; dropped_records } ->
        Alcotest.(check int) "metric counts the bytes"
          (bytes_before + dropped_bytes)
          (Metrics.counter_value "storage.wal.torn_tail_bytes");
        Alcotest.(check int) "metric counts the records"
          (records_before + dropped_records)
          (Metrics.counter_value "storage.wal.torn_tail_records");
        Alcotest.(check int) "one torn record" 1 dropped_records))

(* ---- Db: LSN threading ------------------------------------------------ *)

let test_db_lsn_monotone () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Alcotest.(check int) "fresh lsn" 0 (Db.lsn db);
      exec_ok db "CREATE DOMAIN d; CREATE INSTANCE x OF d;";
      Alcotest.(check int) "two statements" 2 (Db.lsn db);
      Alcotest.(check int) "no checkpoint yet" 0 (Db.base_lsn db);
      Db.checkpoint db;
      Alcotest.(check int) "base catches up" 2 (Db.base_lsn db);
      exec_ok db "CREATE RELATION r (v: d);";
      Alcotest.(check int) "keeps counting past checkpoints" 3 (Db.lsn db);
      let since = Db.records_since db 2 in
      Alcotest.(check (list int)) "wal holds base+1..lsn" [ 3 ]
        (List.map (fun r -> r.Wal.lsn) since);
      Db.close db;
      (* reopen: LSN recovered from meta + wal, not reset *)
      let db2 = Db.open_dir dir in
      Alcotest.(check int) "lsn survives reopen" 3 (Db.lsn db2);
      Alcotest.(check int) "base survives reopen" 2 (Db.base_lsn db2);
      Db.close db2)

let test_db_replication_hooks () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          let primary = Db.open_dir pdir in
          exec_ok primary
            "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal; CREATE CLASS \
             penguin UNDER bird; CREATE INSTANCE paul OF penguin; CREATE RELATION \
             flies (c: animal); INSERT INTO flies VALUES (+ ALL bird), (- ALL \
             penguin);";
          let cut = Db.lsn primary in
          let image = Db.snapshot_image primary in
          exec_ok primary "INSERT INTO flies VALUES (+ paul);";
          (* replica: bootstrap from the image, then catch up record by record *)
          let replica = Db.open_dir rdir in
          (match Db.install_snapshot replica ~lsn:cut image with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "install: %s" msg);
          Alcotest.(check int) "image lsn installed" cut (Db.lsn replica);
          List.iter
            (fun { Wal.lsn; stmt } ->
              match Db.apply_replicated replica ~lsn stmt with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "apply %d: %s" lsn msg)
            (Db.records_since primary cut);
          Alcotest.(check int) "caught up" (Db.lsn primary) (Db.lsn replica);
          (* duplicates are refused *)
          (match Db.apply_replicated replica ~lsn:(Db.lsn replica) "CREATE DOMAIN dup;" with
          | Ok () -> Alcotest.fail "expected duplicate rejection"
          | Error _ -> ());
          Alcotest.(check string) "flat fingerprints agree"
            (flat_fingerprint (Db.catalog primary))
            (flat_fingerprint (Db.catalog replica));
          (* the replica's state is durable: reopen and re-compare *)
          Db.close replica;
          let replica2 = Db.open_dir rdir in
          Alcotest.(check string) "durable across reopen"
            (flat_fingerprint (Db.catalog primary))
            (flat_fingerprint (Db.catalog replica2));
          Db.close replica2;
          Db.close primary))

(* ---- client timeouts -------------------------------------------------- *)

let test_client_timeout () =
  (* a listener that accepts but never replies *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 4;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Fun.protect
    ~finally:(fun () -> Unix.close sock)
    (fun () ->
      let conn = Server.Client.connect ~timeout:0.2 ~port () in
      let t0 = Unix.gettimeofday () in
      (match Server.Client.exec conn "SHOW RELATIONS;" with
      | Ok _ -> Alcotest.fail "expected a timeout"
      | Error msg ->
        Alcotest.(check bool) "timeout error mentions it" true
          (contains ~needle:"timed out" msg));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "came back promptly" true (elapsed < 5.0);
      Server.Client.close conn)

(* ---- end-to-end: snapshot bootstrap, mid-workload attach, kill and
   reconnect ------------------------------------------------------------ *)

(* Fork a multiplexed server over [dir] on [port] (0 = ephemeral).
   Returns (port, pid); the parent's copies of the listening socket and
   database are closed so the child is the only owner. *)
let spawn_primary ~dir ~port =
  let server = Server.create_durable ~port ~dir () in
  let bound = Server.port server in
  match Unix.fork () with
  | 0 ->
    (try Server.serve_forever server with _ -> ());
    Unix._exit 0
  | pid ->
    Server.close server;
    (bound, pid)

let rec drive replica ~deadline ~until =
  if until () then ()
  else if Unix.gettimeofday () > deadline then
    Alcotest.failf "replica did not converge (applied LSN %d)"
      (Replica.applied_lsn replica)
  else begin
    Replica.step replica 0.05;
    drive replica ~deadline ~until
  end

let workload_setup =
  "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal; CREATE CLASS penguin \
   UNDER bird; CREATE INSTANCE tweety OF bird; CREATE INSTANCE paul OF penguin; \
   CREATE RELATION flies (creature: animal); INSERT INTO flies VALUES (+ ALL \
   bird), (- ALL penguin);"

(* negated tuples, a preference edge, a consolidation — the paper's
   exception machinery, all statement-replayed on the replica *)
let workload_mid =
  "CREATE PREFERENCE penguin OVER bird; INSERT INTO flies VALUES (+ paul); \
   CONSOLIDATE flies; CREATE RELATION swims (creature: animal); INSERT INTO \
   swims VALUES (+ ALL penguin), (- tweety);"

let workload_after_restart =
  "INSERT INTO swims VALUES (+ paul); DELETE FROM swims VALUES (tweety); \
   CONSOLIDATE swims;"

let count_mutations script =
  String.split_on_char ';' script
  |> List.filter (fun s -> String.trim s <> "")
  |> List.length

let test_end_to_end () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          (* seed + checkpoint first, so a fresh replica (LSN 0 < base)
             must bootstrap via REPL_SNAPSHOT *)
          let db = Db.open_dir pdir in
          exec_ok db workload_setup;
          Db.checkpoint db;
          let base = Db.lsn db in
          Db.close db;

          let port, pid = spawn_primary ~dir:pdir ~port:0 in
          let client = Server.Client.connect ~timeout:5.0 ~port () in
          let bootstraps_before = Metrics.counter_value "repl.snapshots_installed" in

          (* attach the replica mid-workload *)
          let replica =
            Replica.create
              (Replica.config ~primary_port:port ~dir:rdir ~backoff_min:0.02
                 ~backoff_max:0.2 ())
          in
          let expect1 = base + count_mutations workload_mid in
          (match Server.Client.exec client workload_mid with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "mid workload: %s" msg);
          drive replica
            ~deadline:(Unix.gettimeofday () +. 10.0)
            ~until:(fun () -> Replica.applied_lsn replica >= expect1);
          Alcotest.(check int) "bootstrapped via snapshot" (bootstraps_before + 1)
            (Metrics.counter_value "repl.snapshots_installed");

          (* the replica answers reads, refuses writes *)
          let rconn = Server.Client.connect ~timeout:5.0 ~port:(Replica.port replica) () in
          Server.Client.send rconn "EXEC" "ASK flies (paul);";
          let read_reply () =
            let deadline = Unix.gettimeofday () +. 10.0 in
            let rec loop () =
              Replica.step replica 0.05;
              match Unix.select [ Server.Client.fd rconn ] [] [] 0.0 with
              | [ _ ], _, _ -> Server.Client.recv rconn
              | _ ->
                if Unix.gettimeofday () > deadline then Error "no reply from replica"
                else loop ()
            in
            loop ()
          in
          (match read_reply () with
          | Ok out -> Alcotest.(check string) "read on replica" "+ (by (paul))" out
          | Error msg -> Alcotest.failf "replica read: %s" msg);
          Server.Client.send rconn "EXEC" "INSERT INTO flies VALUES (+ tweety);";
          (match read_reply () with
          | Ok _ -> Alcotest.fail "replica accepted a mutation"
          | Error msg ->
            Alcotest.(check bool) "clear read-only error" true
              (contains ~needle:"read-only replica" msg));
          Server.Client.close rconn;

          (* kill the primary mid-stream; the replica must reconnect with
             backoff and resume from its durable offset *)
          Server.Client.close client;
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          let reconnects_before = Metrics.counter_value "repl.reconnects" in
          (* a few steps while the primary is down: backoff, no progress *)
          for _ = 1 to 5 do
            Replica.step replica 0.02
          done;
          Alcotest.(check bool) "down after kill" false (Replica.connected replica);

          let port', pid' = spawn_primary ~dir:pdir ~port in
          Alcotest.(check int) "rebound the same port" port port';
          let client' = Server.Client.connect ~timeout:5.0 ~port () in
          let expect2 = expect1 + count_mutations workload_after_restart in
          (match Server.Client.exec client' workload_after_restart with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "post-restart workload: %s" msg);
          drive replica
            ~deadline:(Unix.gettimeofday () +. 10.0)
            ~until:(fun () -> Replica.applied_lsn replica >= expect2);
          Alcotest.(check bool) "reconnect was counted" true
            (Metrics.counter_value "repl.reconnects" > reconnects_before);

          (* convergence: equivalent flat relations, byte-identical *)
          let replica_print = flat_fingerprint (Db.catalog (Replica.db replica)) in
          Server.Client.close client';
          Unix.kill pid' Sys.sigkill;
          ignore (Unix.waitpid [] pid');
          let pdb = Db.open_dir pdir in
          Alcotest.(check string) "flattened relations byte-identical"
            (flat_fingerprint (Db.catalog pdb))
            replica_print;
          Db.close pdb;

          (* the acceptance metrics moved *)
          Alcotest.(check bool) "records applied" true
            (Metrics.counter_value "repl.records_applied" > 0);
          Replica.close replica))

let suite =
  [
    Alcotest.test_case "wal stream_from by lsn" `Quick test_wal_stream_from;
    Alcotest.test_case "wal torn tail is measured" `Quick test_wal_torn_tail_metrics;
    Alcotest.test_case "db lsn is monotone and durable" `Quick test_db_lsn_monotone;
    Alcotest.test_case "db snapshot/apply replication hooks" `Quick test_db_replication_hooks;
    Alcotest.test_case "client timeout" `Quick test_client_timeout;
    Alcotest.test_case "bootstrap, catch-up, kill, reconnect, converge" `Quick
      test_end_to_end;
  ]
