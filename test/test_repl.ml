(* Logical replication tests: LSN-addressed WAL, replication hooks in
   Db, the client timeout option, and the full primary/replica loop —
   snapshot bootstrap mid-workload, byte-identical flattened relations,
   and backoff-reconnect across a primary kill. *)

module Wal = Hr_storage.Wal
module Db = Hr_storage.Db
module Server = Hr_server.Server
module Replica = Hr_repl.Replica
module Metrics = Hr_obs.Metrics
module Fsck = Hr_check.Fsck
module Wire = Hr_frames.Wire
open Hierel

let with_temp_dir f =
  let dir = Filename.temp_file "hrrepl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let exec_ok db script =
  match Db.exec db script with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "exec %S: %s" script msg

(* The paper's yardstick: two catalogs agree iff every relation's
   equivalent flat relation is identical. Rendered to a string so the
   comparison is byte-for-byte. *)
let flat_fingerprint catalog =
  Catalog.relations catalog
  |> List.map (fun rel ->
         let schema = Relation.schema rel in
         let items =
           Flatten.extension_list rel |> List.map (Item.to_string schema)
         in
         Relation.name rel ^ ":\n" ^ String.concat "\n" items)
  |> List.sort compare
  |> String.concat "\n---\n"

(* ---- WAL: LSN addressing --------------------------------------------- *)

let test_wal_stream_from () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:5 "CREATE DOMAIN a;";
      Wal.append w ~lsn:6 "CREATE DOMAIN b;";
      Wal.append w ~lsn:7 "CREATE DOMAIN c;";
      let lsns from = List.map (fun r -> r.Wal.lsn) (List.of_seq (Wal.stream_from w from)) in
      Alcotest.(check (list int)) "from 0" [ 5; 6; 7 ] (lsns 0);
      Alcotest.(check (list int)) "from 5" [ 6; 7 ] (lsns 5);
      Alcotest.(check (list int)) "from 7" [] (lsns 7);
      Wal.close w)

let test_wal_torn_tail_metrics () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.open_ path in
      Wal.append w ~lsn:1 "CREATE DOMAIN a;";
      Wal.append w ~lsn:2 "CREATE DOMAIN b;";
      Wal.close w;
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      let bytes_before = Metrics.counter_value "storage.wal.torn_tail_bytes" in
      let records_before = Metrics.counter_value "storage.wal.torn_tail_records" in
      let records, torn = Wal.replay path in
      Alcotest.(check (list int)) "intact prefix survives" [ 1 ]
        (List.map (fun r -> r.Wal.lsn) records);
      (match torn with
      | None -> Alcotest.fail "expected torn tail"
      | Some { Wal.dropped_bytes; dropped_records } ->
        Alcotest.(check int) "metric counts the bytes"
          (bytes_before + dropped_bytes)
          (Metrics.counter_value "storage.wal.torn_tail_bytes");
        Alcotest.(check int) "metric counts the records"
          (records_before + dropped_records)
          (Metrics.counter_value "storage.wal.torn_tail_records");
        Alcotest.(check int) "one torn record" 1 dropped_records))

(* ---- wire decoder: incremental feeds, no quadratic copying ------------ *)

let test_decoder_chunked () =
  let dec = Wire.Decoder.create () in
  let payload = String.init (300 * 1024) (fun i -> Char.chr (i mod 256)) in
  let data =
    Wire.frame "REPL_SNAPSHOT" payload
    ^ Wire.frame "OK" ""
    ^ Wire.frame "REPL_RECORD" "7\nCREATE DOMAIN d;"
  in
  let got = ref [] in
  let rec drain () =
    match Wire.Decoder.next dec with
    | Ok (Some frame) ->
      got := frame :: !got;
      drain ()
    | Ok None -> ()
    | Error msg -> Alcotest.failf "decode: %s" msg
  in
  (* feed in small chunks so every boundary (mid-header, mid-payload,
     frame-straddling) is exercised *)
  let total = String.length data in
  let off = ref 0 in
  while !off < total do
    let n = min 1000 (total - !off) in
    Wire.Decoder.feed dec (Bytes.of_string (String.sub data !off n)) n;
    drain ();
    off := !off + n
  done;
  match List.rev !got with
  | [ (t1, p1); (t2, p2); (t3, p3) ] ->
    Alcotest.(check string) "tag 1" "REPL_SNAPSHOT" t1;
    Alcotest.(check bool) "payload 1 intact" true (p1 = payload);
    Alcotest.(check string) "tag 2" "OK" t2;
    Alcotest.(check string) "payload 2 empty" "" p2;
    Alcotest.(check string) "tag 3" "REPL_RECORD" t3;
    Alcotest.(check string) "payload 3" "7\nCREATE DOMAIN d;" p3
  | frames -> Alcotest.failf "expected 3 frames, got %d" (List.length frames)

let test_decoder_byte_at_a_time () =
  let dec = Wire.Decoder.create () in
  let data = Wire.frame "OK" "abc" in
  let result = ref None in
  String.iter
    (fun c ->
      Wire.Decoder.feed dec (Bytes.make 1 c) 1;
      match Wire.Decoder.next dec with
      | Ok (Some frame) -> result := Some frame
      | Ok None -> ()
      | Error msg -> Alcotest.failf "decode: %s" msg)
    data;
  match !result with
  | Some (tag, payload) ->
    Alcotest.(check string) "tag" "OK" tag;
    Alcotest.(check string) "payload" "abc" payload
  | None -> Alcotest.fail "frame never completed"

(* ---- Db: LSN threading ------------------------------------------------ *)

let test_db_lsn_monotone () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Alcotest.(check int) "fresh lsn" 0 (Db.lsn db);
      exec_ok db "CREATE DOMAIN d; CREATE INSTANCE x OF d;";
      Alcotest.(check int) "two statements" 2 (Db.lsn db);
      Alcotest.(check int) "no checkpoint yet" 0 (Db.base_lsn db);
      Db.checkpoint db;
      Alcotest.(check int) "base catches up" 2 (Db.base_lsn db);
      exec_ok db "CREATE RELATION r (v: d);";
      Alcotest.(check int) "keeps counting past checkpoints" 3 (Db.lsn db);
      let since = Db.records_since db 2 in
      Alcotest.(check (list int)) "wal holds base+1..lsn" [ 3 ]
        (List.map (fun r -> r.Wal.lsn) since);
      (* the in-memory tail keeps checkpointed records addressable, so a
         subscriber slightly behind the snapshot base still catches up
         without a bootstrap *)
      Alcotest.(check (list int)) "tail survives the checkpoint" [ 1; 2; 3 ]
        (List.map (fun r -> r.Wal.lsn) (Db.records_since db 0));
      Db.close db;
      (* reopen: LSN recovered from meta + wal, not reset *)
      let db2 = Db.open_dir dir in
      Alcotest.(check int) "lsn survives reopen" 3 (Db.lsn db2);
      Alcotest.(check int) "base survives reopen" 2 (Db.base_lsn db2);
      Db.close db2)

let test_db_replication_hooks () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          let primary = Db.open_dir pdir in
          exec_ok primary
            "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal; CREATE CLASS \
             penguin UNDER bird; CREATE INSTANCE paul OF penguin; CREATE RELATION \
             flies (c: animal); INSERT INTO flies VALUES (+ ALL bird), (- ALL \
             penguin);";
          let cut = Db.lsn primary in
          let image = Db.snapshot_image primary in
          exec_ok primary "INSERT INTO flies VALUES (+ paul);";
          (* replica: bootstrap from the image, then catch up record by record *)
          let replica = Db.open_dir rdir in
          (match Db.install_snapshot replica ~lsn:cut image with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "install: %s" msg);
          Alcotest.(check int) "image lsn installed" cut (Db.lsn replica);
          List.iter
            (fun { Wal.lsn; stmt } ->
              match Db.apply_replicated replica ~lsn stmt with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "apply %d: %s" lsn msg)
            (Db.records_since primary cut);
          Alcotest.(check int) "caught up" (Db.lsn primary) (Db.lsn replica);
          (* duplicates are refused *)
          (match Db.apply_replicated replica ~lsn:(Db.lsn replica) "CREATE DOMAIN dup;" with
          | Ok () -> Alcotest.fail "expected duplicate rejection"
          | Error _ -> ());
          Alcotest.(check string) "flat fingerprints agree"
            (flat_fingerprint (Db.catalog primary))
            (flat_fingerprint (Db.catalog replica));
          (* the replica's state is durable: reopen and re-compare *)
          Db.close replica;
          let replica2 = Db.open_dir rdir in
          Alcotest.(check string) "durable across reopen"
            (flat_fingerprint (Db.catalog primary))
            (flat_fingerprint (Db.catalog replica2));
          Db.close replica2;
          Db.close primary))

(* a crash after a checkpoint wrote snapshot.bin + meta but before the
   WAL was truncated leaves already-snapshotted records in the log; the
   reopen must skip them instead of double-applying (which would fail
   outright on the duplicate CREATEs) *)
let test_reopen_after_interrupted_checkpoint () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      exec_ok db
        "CREATE DOMAIN d; CREATE INSTANCE x OF d; CREATE RELATION r (v: d); INSERT \
         INTO r VALUES (+ x);";
      Db.close db;
      let wal_path = Filename.concat dir "wal.log" in
      let ic = open_in_bin wal_path in
      let wal_bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let db = Db.open_dir dir in
      Db.checkpoint db;
      Db.close db;
      (* reconstruct the crash window: restore the pre-checkpoint log *)
      let oc = open_out_bin wal_path in
      output_string oc wal_bytes;
      close_out oc;
      let db = Db.open_dir dir in
      Alcotest.(check int) "lsn preserved" 4 (Db.lsn db);
      Alcotest.(check int) "stale records not re-applied" 0 (Db.wal_records db);
      (match Db.exec db "ASK r (x);" with
      | Ok [ out ] -> Alcotest.(check string) "state intact" "+ (by (x))" out
      | Ok _ | Error _ -> Alcotest.fail "ask after recovery failed");
      Db.close db)

(* lexically invalid input must surface as an Error/None everywhere the
   server feeds it attacker-controlled payloads — an escaping Lex_error
   would kill the whole event loop *)
let test_lex_error_is_contained () =
  Alcotest.(check (option string)) "garbage is not a mutation" None
    (Db.script_mutation "@");
  Alcotest.(check (option string)) "mutation behind garbage still found"
    (Some "CREATE DOMAIN d")
    (Db.script_mutation "@; CREATE DOMAIN d");
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      (match Db.exec db "@" with
      | Error msg ->
        Alcotest.(check bool) "lex error is an Error reply" true
          (contains ~needle:"lex error" msg)
      | Ok _ -> Alcotest.fail "expected a lex error");
      Db.close db)

let test_auto_checkpoint () =
  with_temp_dir (fun dir ->
      let db = Db.open_dir ~auto_checkpoint_every:5 dir in
      exec_ok db "CREATE DOMAIN d;";
      Alcotest.(check int) "below threshold: no checkpoint" 0 (Db.base_lsn db);
      exec_ok db
        "CREATE INSTANCE a OF d; CREATE INSTANCE b OF d; CREATE INSTANCE c OF d; \
         CREATE INSTANCE e OF d;";
      Alcotest.(check int) "threshold reached: checkpointed" 5 (Db.base_lsn db);
      Alcotest.(check int) "wal drained" 0 (Db.wal_records db);
      Alcotest.(check (list int)) "records stay addressable for catch-up" [ 3; 4; 5 ]
        (List.map (fun r -> r.Wal.lsn) (Db.records_since db 2));
      Db.close db)

(* ---- client timeouts -------------------------------------------------- *)

let test_client_timeout () =
  (* a listener that accepts but never replies *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 4;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Fun.protect
    ~finally:(fun () -> Unix.close sock)
    (fun () ->
      let conn = Server.Client.connect ~timeout:0.2 ~port () in
      let t0 = Unix.gettimeofday () in
      (match Server.Client.exec conn "SHOW RELATIONS;" with
      | Ok _ -> Alcotest.fail "expected a timeout"
      | Error msg ->
        Alcotest.(check bool) "timeout error mentions it" true
          (contains ~needle:"timed out" msg));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "came back promptly" true (elapsed < 5.0);
      Server.Client.close conn)

(* ---- backpressure: a stalled subscriber must not wedge the loop ------- *)

let test_stalled_subscriber_dropped () =
  with_temp_dir (fun dir ->
      let server = Server.create_durable ~port:0 ~max_backlog:1024 ~dir () in
      Fun.protect
        ~finally:(fun () -> Server.close server)
        (fun () ->
          let port = Server.port server in
          (* a subscriber that never reads, with a tiny receive window so
             the kernel absorbs as little as possible *)
          let sub = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt_int sub Unix.SO_RCVBUF 4096;
          Unix.connect sub (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          Wire.send sub Wire.repl_subscribe "0";
          for _ = 1 to 5 do
            ignore (Server.poll server 0.01)
          done;
          Alcotest.(check int) "subscribed" 1 (Metrics.gauge_value "repl.subscribers");
          let drops_before = Metrics.counter_value "repl.backlog_drops" in
          let client = Server.Client.connect ~timeout:5.0 ~port () in
          (* drive the server's own event loop from this thread: pump the
             request bytes non-blockingly (a multi-megabyte frame doesn't
             fit the socket buffer, and nobody else drains it), then poll
             until the reply arrives *)
          let exec_via_poll script =
            let fd = Server.Client.fd client in
            let frame = Wire.frame "EXEC" script in
            Unix.set_nonblock fd;
            let len = String.length frame in
            let off = ref 0 in
            while !off < len do
              match Unix.write_substring fd frame !off (len - !off) with
              | n -> off := !off + n
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ignore (Server.poll server 0.01)
            done;
            Unix.clear_nonblock fd;
            let deadline = Unix.gettimeofday () +. 10.0 in
            let rec await () =
              ignore (Server.poll server 0.01);
              match Unix.select [ Server.Client.fd client ] [] [] 0.0 with
              | [ _ ], _, _ -> Server.Client.recv client
              | _ ->
                if Unix.gettimeofday () > deadline then
                  Error "no reply (event loop wedged?)"
                else await ()
            in
            await ()
          in
          (* each INSERT is a ~2 MiB statement (its reply is one short
             line, so the client itself stays under the bound) shipped as
             a REPL_RECORD the subscriber never drains; with a 1 KiB
             backlog bound the subscriber must be cut off while EXECs
             keep answering *)
          let name = "inst_" ^ String.make 95 'x' in
          (match
             exec_via_poll
               (Printf.sprintf
                  "CREATE DOMAIN d; CREATE INSTANCE %s OF d; CREATE RELATION r (v: d);"
                  name)
           with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "setup under stalled subscriber: %s" msg);
          let big_insert =
            "INSERT INTO r VALUES "
            ^ String.concat ", " (List.init 20_000 (fun _ -> Printf.sprintf "(+ %s)" name))
            ^ ";"
          in
          for i = 1 to 3 do
            match exec_via_poll big_insert with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "exec %d under stalled subscriber: %s" i msg
          done;
          Alcotest.(check bool) "stalled subscriber was dropped" true
            (Metrics.counter_value "repl.backlog_drops" > drops_before);
          Alcotest.(check int) "no subscribers left" 0
            (Metrics.gauge_value "repl.subscribers");
          Server.Client.close client;
          Unix.close sub))

(* ---- end-to-end: snapshot bootstrap, mid-workload attach, kill and
   reconnect ------------------------------------------------------------ *)

(* Fork a multiplexed server over [dir] on [port] (0 = ephemeral).
   Returns (port, pid); the parent's copies of the listening socket and
   database are closed so the child is the only owner. *)
let spawn_primary ~dir ~port =
  let server = Server.create_durable ~port ~dir () in
  let bound = Server.port server in
  match Unix.fork () with
  | 0 ->
    (try Server.serve_forever server with _ -> ());
    Unix._exit 0
  | pid ->
    Server.close server;
    (bound, pid)

let rec drive replica ~deadline ~until =
  if until () then ()
  else if Unix.gettimeofday () > deadline then
    Alcotest.failf "replica did not converge (applied LSN %d)"
      (Replica.applied_lsn replica)
  else begin
    Replica.step replica 0.05;
    drive replica ~deadline ~until
  end

let workload_setup =
  "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal; CREATE CLASS penguin \
   UNDER bird; CREATE INSTANCE tweety OF bird; CREATE INSTANCE paul OF penguin; \
   CREATE RELATION flies (creature: animal); INSERT INTO flies VALUES (+ ALL \
   bird), (- ALL penguin);"

(* negated tuples, a preference edge, a consolidation — the paper's
   exception machinery, all statement-replayed on the replica *)
let workload_mid =
  "CREATE PREFERENCE penguin OVER bird; INSERT INTO flies VALUES (+ paul); \
   CONSOLIDATE flies; CREATE RELATION swims (creature: animal); INSERT INTO \
   swims VALUES (+ ALL penguin), (- tweety);"

let workload_after_restart =
  "INSERT INTO swims VALUES (+ paul); DELETE FROM swims VALUES (tweety); \
   CONSOLIDATE swims;"

let count_mutations script =
  String.split_on_char ';' script
  |> List.filter (fun s -> String.trim s <> "")
  |> List.length

let test_end_to_end () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          (* seed + checkpoint first, so a fresh replica (LSN 0 < base)
             must bootstrap via REPL_SNAPSHOT *)
          let db = Db.open_dir pdir in
          exec_ok db workload_setup;
          Db.checkpoint db;
          let base = Db.lsn db in
          Db.close db;

          let port, pid = spawn_primary ~dir:pdir ~port:0 in
          let client = Server.Client.connect ~timeout:5.0 ~port () in
          let bootstraps_before = Metrics.counter_value "repl.snapshots_installed" in

          (* attach the replica mid-workload *)
          let replica =
            Replica.create
              (Replica.config ~primary_port:port ~dir:rdir ~backoff_min:0.02
                 ~backoff_max:0.2 ())
          in
          let expect1 = base + count_mutations workload_mid in
          (match Server.Client.exec client workload_mid with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "mid workload: %s" msg);
          drive replica
            ~deadline:(Unix.gettimeofday () +. 10.0)
            ~until:(fun () -> Replica.applied_lsn replica >= expect1);
          Alcotest.(check int) "bootstrapped via snapshot" (bootstraps_before + 1)
            (Metrics.counter_value "repl.snapshots_installed");

          (* the replica answers reads, refuses writes *)
          let rconn = Server.Client.connect ~timeout:5.0 ~port:(Replica.port replica) () in
          Server.Client.send rconn "EXEC" "ASK flies (paul);";
          let read_reply () =
            let deadline = Unix.gettimeofday () +. 10.0 in
            let rec loop () =
              Replica.step replica 0.05;
              match Unix.select [ Server.Client.fd rconn ] [] [] 0.0 with
              | [ _ ], _, _ -> Server.Client.recv rconn
              | _ ->
                if Unix.gettimeofday () > deadline then Error "no reply from replica"
                else loop ()
            in
            loop ()
          in
          (match read_reply () with
          | Ok out -> Alcotest.(check string) "read on replica" "+ (by (paul))" out
          | Error msg -> Alcotest.failf "replica read: %s" msg);
          Server.Client.send rconn "EXEC" "INSERT INTO flies VALUES (+ tweety);";
          (match read_reply () with
          | Ok _ -> Alcotest.fail "replica accepted a mutation"
          | Error msg ->
            Alcotest.(check bool) "clear read-only error" true
              (contains ~needle:"read-only replica" msg));
          (* a lexically invalid payload must come back as ERR — before
             the read-only guard caught Lex_error, this killed the whole
             replica process *)
          Server.Client.send rconn "EXEC" "@";
          (match read_reply () with
          | Ok _ -> Alcotest.fail "replica accepted garbage"
          | Error msg ->
            Alcotest.(check bool) "lex error reported over the wire" true
              (contains ~needle:"lex" msg));
          (* and the connection (and replica) survived it *)
          Server.Client.send rconn "EXEC" "ASK flies (paul);";
          (match read_reply () with
          | Ok out ->
            Alcotest.(check string) "replica still serving" "+ (by (paul))" out
          | Error msg -> Alcotest.failf "replica read after garbage: %s" msg);
          Server.Client.close rconn;

          (* kill the primary mid-stream; the replica must reconnect with
             backoff and resume from its durable offset *)
          Server.Client.close client;
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          let reconnects_before = Metrics.counter_value "repl.reconnects" in
          (* a few steps while the primary is down: backoff, no progress *)
          for _ = 1 to 5 do
            Replica.step replica 0.02
          done;
          Alcotest.(check bool) "down after kill" false (Replica.connected replica);

          let port', pid' = spawn_primary ~dir:pdir ~port in
          Alcotest.(check int) "rebound the same port" port port';
          let client' = Server.Client.connect ~timeout:5.0 ~port () in
          let expect2 = expect1 + count_mutations workload_after_restart in
          (match Server.Client.exec client' workload_after_restart with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "post-restart workload: %s" msg);
          drive replica
            ~deadline:(Unix.gettimeofday () +. 10.0)
            ~until:(fun () -> Replica.applied_lsn replica >= expect2);
          Alcotest.(check bool) "reconnect was counted" true
            (Metrics.counter_value "repl.reconnects" > reconnects_before);

          (* convergence: equivalent flat relations, byte-identical *)
          let replica_print = flat_fingerprint (Db.catalog (Replica.db replica)) in
          Server.Client.close client';
          Unix.kill pid' Sys.sigkill;
          ignore (Unix.waitpid [] pid');
          let pdb = Db.open_dir pdir in
          Alcotest.(check string) "flattened relations byte-identical"
            (flat_fingerprint (Db.catalog pdb))
            replica_print;
          Db.close pdb;

          (* the acceptance metrics moved *)
          Alcotest.(check bool) "records applied" true
            (Metrics.counter_value "repl.records_applied" > 0);
          Replica.close replica))

(* ---- crash window: kill -9 the primary under pipelined load ----------- *)

(* A primary killed while a pipelined client is mid-burst and a replica
   is chasing the stream must leave BOTH directories verifiable: the
   primary fsck-clean with every client-acked statement durable, and the
   replica a strict prefix of it (no divergence at the greatest common
   LSN) — the replica can never have applied a record the primary lost,
   because the primary ships nothing above its synced LSN and the
   replica syncs before acking. *)
let test_kill_during_pipelined_load () =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          let db = Db.open_dir pdir in
          exec_ok db workload_setup;
          let base = Db.lsn db in
          Db.close db;
          let port, pid = spawn_primary ~dir:pdir ~port:0 in
          let replica =
            Replica.create
              (Replica.config ~primary_port:port ~dir:rdir ~backoff_min:0.02
                 ~backoff_max:0.2 ())
          in
          (* pipeline a burst of durable mutations without awaiting acks *)
          let burst = 64 in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let frame = Wire.frame "EXEC" "INSERT INTO flies VALUES (+ tweety);" in
          let bytes = String.concat "" (List.init burst (fun _ -> frame)) in
          let off = ref 0 in
          Unix.set_nonblock fd;
          (try
             while !off < String.length bytes do
               off := !off + Unix.write_substring fd bytes !off (String.length bytes - !off)
             done
           with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
          (* chase the stream briefly, counting acks as they land, then
             kill mid-load *)
          let dec = Wire.Decoder.create () in
          let acked = ref 0 in
          let buf = Bytes.create 65536 in
          let drain_acks () =
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> ()
            | n ->
              Wire.Decoder.feed dec buf n;
              let rec loop () =
                match Wire.Decoder.next dec with
                | Ok (Some _) ->
                  incr acked;
                  loop ()
                | Ok None | Error _ -> ()
              in
              loop ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          in
          let deadline = Unix.gettimeofday () +. 2.0 in
          while Unix.gettimeofday () < deadline && !acked < burst / 2 do
            Replica.step replica 0.02;
            drain_acks ()
          done;
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Unix.close fd;
          Replica.close replica;
          (* both nodes verify; the cross-check finds no divergence *)
          let r = Fsck.run ~against:rdir pdir in
          Alcotest.(check (list string)) "both nodes fsck-clean, no divergence" []
            (List.map (fun f -> f.Fsck.code) r.Fsck.findings);
          (* every statement acked to the client survived the crash *)
          let pdb = Db.open_dir pdir in
          Alcotest.(check bool)
            (Printf.sprintf "acked statements durable (%d acked, head %d, base %d)"
               !acked (Db.lsn pdb) base)
            true
            (Db.lsn pdb >= base + !acked);
          Db.close pdb))

let suite =
  [
    Alcotest.test_case "wire decoder across chunk boundaries" `Quick test_decoder_chunked;
    Alcotest.test_case "wire decoder byte at a time" `Quick test_decoder_byte_at_a_time;
    Alcotest.test_case "wal stream_from by lsn" `Quick test_wal_stream_from;
    Alcotest.test_case "wal torn tail is measured" `Quick test_wal_torn_tail_metrics;
    Alcotest.test_case "db lsn is monotone and durable" `Quick test_db_lsn_monotone;
    Alcotest.test_case "db snapshot/apply replication hooks" `Quick test_db_replication_hooks;
    Alcotest.test_case "reopen after interrupted checkpoint" `Quick
      test_reopen_after_interrupted_checkpoint;
    Alcotest.test_case "lex errors are contained" `Quick test_lex_error_is_contained;
    Alcotest.test_case "auto checkpoint bounds the wal" `Quick test_auto_checkpoint;
    Alcotest.test_case "client timeout" `Quick test_client_timeout;
    Alcotest.test_case "stalled subscriber is dropped, loop stays live" `Quick
      test_stalled_subscriber_dropped;
    Alcotest.test_case "bootstrap, catch-up, kill, reconnect, converge" `Quick
      test_end_to_end;
    Alcotest.test_case "kill -9 under pipelined load: both nodes verify" `Quick
      test_kill_during_pipelined_load;
  ]
