(* Sharding tests: the shard map's cover rule, and a real 3-shard
   deployment — forked shard servers plus a forked router — checked for
   routing determinism, cross-subtree replication fan-out, byte-identity
   with a single-node server, degraded reads after a shard dies, and the
   offline placement verifier ([hrdb fsck --against MAP], F020/F021). *)

module Server = Hr_server.Server
module Client = Server.Client
module Router = Hr_shard.Router
module Shard_map = Hr_check.Shard_map
module Fsck = Hr_check.Fsck
module Wire = Hr_frames.Wire
module Hierarchy = Hr_hierarchy.Hierarchy
module Eval = Hr_query.Eval
module Prng = Hr_util.Prng
open Hierel

(* Replay contract shared with test_fuzz/test_effect: one integer seed
   drives the randomized byte-identity workload below; replay a failure
   exactly with [HRDB_TEST_SEED=n dune runtest]. *)
let seed =
  match Sys.getenv_opt "HRDB_TEST_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None ->
      failwith (Printf.sprintf "HRDB_TEST_SEED must be an integer, got %S" s))
  | None ->
    Int64.to_int
      (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e6)) 0xFFFFFFL)

let () =
  Printf.eprintf
    "test_shard: workload RNG seed %d (replay with HRDB_TEST_SEED=%d)\n%!" seed
    seed

(* ---- shard map unit tests -------------------------------------------- *)

let sample_map =
  "# comment\n\
   shard 0 127.0.0.1:7800 /tmp/s0\n\
   shard 1 127.0.0.1:7801\n\
   shard 2 127.0.0.1:7802 /tmp/s2\n\
   subtree penguin 1\n\
   subtree sparrow 2\n\
   default 0\n"

let test_map_parse () =
  match Shard_map.parse sample_map with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok map ->
    Alcotest.(check (list int)) "ids" [ 0; 1; 2 ] (Shard_map.ids map);
    Alcotest.(check int) "default" 0 map.Shard_map.default;
    Alcotest.(check (list (pair string int)))
      "subtrees"
      [ ("penguin", 1); ("sparrow", 2) ]
      map.Shard_map.subtrees;
    (match Shard_map.shard map 1 with
    | Some s ->
      Alcotest.(check int) "port" 7801 s.Shard_map.port;
      Alcotest.(check bool) "no dir" true (s.Shard_map.dir = None)
    | None -> Alcotest.fail "shard 1 missing");
    (* render round-trips *)
    (match Shard_map.parse (Shard_map.render map) with
    | Ok map' ->
      Alcotest.(check string) "round trip" (Shard_map.render map)
        (Shard_map.render map')
    | Error e -> Alcotest.failf "re-parse: %s" e)

let test_map_rejects () =
  let bad text = match Shard_map.parse text with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "no shards" true (bad "default 0\n");
  Alcotest.(check bool) "dup id" true
    (bad "shard 0 h:1\nshard 0 h:2\n");
  Alcotest.(check bool) "undeclared subtree owner" true
    (bad "shard 0 h:1\nsubtree x 9\n");
  Alcotest.(check bool) "undeclared default" true (bad "shard 0 h:1\ndefault 9\n");
  Alcotest.(check bool) "garbage" true (bad "shard zero h:1\n")

let test_cover () =
  let cat = Catalog.create () in
  (match
     Eval.run_script cat
       "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
        CREATE CLASS penguin UNDER bird; CREATE CLASS sparrow UNDER bird;\n\
        CREATE INSTANCE tweety OF penguin; CREATE INSTANCE jack OF sparrow;\n\
        CREATE INSTANCE rex OF animal;"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed: %s" e);
  let h = Catalog.hierarchy cat "animal" in
  let map =
    match Shard_map.parse sample_map with
    | Ok m -> m
    | Error e -> Alcotest.failf "map: %s" e
  in
  let cover name = Shard_map.cover map h (Hierarchy.find_exn h name) in
  (* exception locality: subtree members live on exactly one shard *)
  Alcotest.(check (list int)) "tweety" [ 1 ] (cover "tweety");
  Alcotest.(check (list int)) "penguin" [ 1 ] (cover "penguin");
  Alcotest.(check (list int)) "jack" [ 2 ] (cover "jack");
  (* nothing subsumes rex: the default shard owns it *)
  Alcotest.(check (list int)) "rex" [ 0 ] (cover "rex");
  (* a cross-subtree generalization replicates everywhere it reaches *)
  Alcotest.(check (list int)) "bird" [ 0; 1; 2 ] (cover "bird");
  Alcotest.(check (list int)) "animal" [ 0; 1; 2 ] (cover "animal");
  (* determinism *)
  Alcotest.(check (list int)) "stable" (cover "bird") (cover "bird")

(* ---- forked 3-shard deployment --------------------------------------- *)

let spawn_server ?dir () =
  let server =
    match dir with
    | Some dir -> Server.create_durable ~port:0 ~dir ()
    | None -> Server.create_memory ~port:0 ()
  in
  let port = Server.port server in
  match Unix.fork () with
  | 0 ->
    (try Server.serve_forever server with _ -> ());
    Unix._exit 0
  | pid -> (port, pid)

let spawn_router map =
  let router = Router.create ~port:0 ~timeout:5.0 ~map () in
  let port = Router.port router in
  match Unix.fork () with
  | 0 ->
    (try Router.serve_forever router with _ -> ());
    Unix._exit 0
  | pid -> (port, pid)

let kill pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let temp_dir tag =
  let d = Filename.temp_file ("hrshard_" ^ tag) "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* A 3-shard deployment over the penguin/sparrow split. Returns
   (map, map_file, router port, shard ports, all pids, dirs). *)
let deploy ?(durable = false) () =
  let dirs =
    if durable then List.map temp_dir [ "s0"; "s1"; "s2" ] else []
  in
  let shards =
    if durable then List.map (fun d -> spawn_server ~dir:d ()) dirs
    else List.init 3 (fun _ -> spawn_server ())
  in
  let ports = List.map fst shards in
  let map_text =
    String.concat "\n"
      (List.concat
         [
           List.mapi
             (fun i p ->
               Printf.sprintf "shard %d 127.0.0.1:%d%s" i p
                 (if durable then " " ^ List.nth dirs i else ""))
             ports;
           [ "subtree penguin 1"; "subtree sparrow 2"; "default 0"; "" ];
         ])
  in
  let map =
    match Shard_map.parse map_text with
    | Ok m -> m
    | Error e -> Alcotest.failf "deploy map: %s" e
  in
  let map_file = Filename.temp_file "hrshard" ".map" in
  let oc = open_out map_file in
  output_string oc map_text;
  close_out oc;
  let rport, rpid = spawn_router map in
  (map, map_file, rport, ports, rpid :: List.map snd shards, dirs)

let ddl =
  "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
   CREATE CLASS penguin UNDER bird; CREATE CLASS sparrow UNDER bird;\n\
   CREATE INSTANCE tweety OF penguin; CREATE INSTANCE opus OF penguin;\n\
   CREATE INSTANCE jack OF sparrow; CREATE INSTANCE rex OF animal;\n\
   CREATE RELATION flies (who: animal);"

let exec_ok conn script =
  match Client.exec conn script with
  | Ok out -> out
  | Error e -> Alcotest.failf "exec %S: %s" script e

let contains haystack needle =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* The stored tuples of [rel] on one shard, via the router's own pull
   frame: "<sign> <comma-joined node ids>" lines, sorted. *)
let pull_tuples port rel =
  let conn = Client.connect ~timeout:10.0 ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      Client.send conn Wire.shard_pull rel;
      match Client.recv_any conn with
      | Error e -> Alcotest.failf "pull %s: %s" rel e
      | Ok (tag, payload) ->
        Alcotest.(check string) "pull reply tag" Wire.shard_part tag;
        let body =
          match String.index_opt payload '\n' with
          | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
          | None -> Alcotest.failf "pull %s: no LSN prefix in %S" rel payload
        in
        String.split_on_char '\n' body
        |> List.filter (fun l -> l <> "")
        |> List.sort compare)

let test_routing_and_fanout () =
  let _, _, rport, ports, pids, _ = deploy () in
  Fun.protect
    ~finally:(fun () -> List.iter kill pids)
    (fun () ->
      let conn = Client.connect ~timeout:10.0 ~port:rport () in
      ignore (exec_ok conn ddl);
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ tweety);");
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ jack);");
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ rex);");
      ignore (exec_ok conn "INSERT INTO flies VALUES (- ALL bird);");
      Client.close conn;
      let t0, t1, t2 =
        match List.map (fun p -> pull_tuples p "flies") ports with
        | [ a; b; c ] -> (a, b, c)
        | _ -> assert false
      in
      (* exception locality: each instance tuple is stored on exactly
         the shard owning its subtree, nowhere else *)
      Alcotest.(check int) "default shard: rex + replica" 2 (List.length t0);
      Alcotest.(check int) "penguin shard: tweety + replica" 2 (List.length t1);
      Alcotest.(check int) "sparrow shard: jack + replica" 2 (List.length t2);
      (* the cross-subtree (- ALL bird) replicated to all three: its
         line is the one common to every shard *)
      let common =
        List.filter (fun l -> List.mem l t1 && List.mem l t2) t0
      in
      Alcotest.(check int) "one replicated tuple" 1 (List.length common);
      Alcotest.(check bool) "the replica is the negation" true
        (String.length (List.hd common) > 0 && (List.hd common).[0] = '-'))

(* Every statement answered by the router must be byte-identical to a
   single-node server running the same script — including errors,
   cross-subtree queries, and repartitioned LET/CONSOLIDATE results. *)
let test_byte_identity () =
  let _, _, rport, _, pids, _ = deploy () in
  let sport, spid = spawn_server () in
  Fun.protect
    ~finally:(fun () -> List.iter kill (spid :: pids))
    (fun () ->
      let r = Client.connect ~timeout:10.0 ~port:rport () in
      let s = Client.connect ~timeout:10.0 ~port:sport () in
      let statements =
        [
          ddl;
          "INSERT INTO flies VALUES (+ ALL bird), (+ rex);";
          "INSERT INTO flies VALUES (- tweety);";
          "SELECT * FROM flies;";
          "SELECT * FROM flies WHERE who = tweety;";
          "SELECT * FROM flies WHERE who = jack;";
          "SELECT * FROM flies WHERE who = ALL bird;";
          "ASK flies (tweety);";
          "ASK flies (opus);";
          "ASK flies (rex);";
          "EXPLAIN flies (tweety);";
          "CHECK flies;";
          "SHOW RELATIONS;";
          "SHOW HIERARCHY animal;";
          "LET grounded = SELECT flies WHERE who = ALL penguin;";
          "SELECT * FROM grounded;";
          "CONSOLIDATE flies;";
          "SELECT * FROM flies;";
          "EXPLICATE grounded;";
          "SELECT * FROM grounded;";
          "DELETE FROM flies VALUES (rex);";
          "SELECT * FROM flies WHERE who = rex;";
          "DROP RELATION grounded;";
          "SELECT * FROM nosuch;";
          "INSERT INTO flies VALUES (+ nope);";
          "EXPLAIN ESTIMATE flies;";
        ]
      in
      List.iter
        (fun stmt ->
          let got = Client.exec r stmt in
          let want = Client.exec s stmt in
          match (got, want) with
          | Ok g, Ok w ->
            Alcotest.(check string) (Printf.sprintf "OK %S" stmt) w g
          | Error g, Error w ->
            Alcotest.(check string) (Printf.sprintf "ERR %S" stmt) w g
          | Ok g, Error w ->
            Alcotest.failf "%S: router Ok %S, single node Error %S" stmt g w
          | Error g, Ok w ->
            Alcotest.failf "%S: router Error %S, single node Ok %S" stmt g w)
        statements;
      (* EXPLAIN ANALYZE is the one deliberate departure: the router
         appends its per-shard breakdown *)
      (match Client.exec r "EXPLAIN ANALYZE flies;" with
      | Ok out ->
        Alcotest.(check bool) "per-shard breakdown" true
          (contains out "per-shard breakdown")
      | Error e -> Alcotest.failf "analyze: %s" e);
      Client.close r;
      Client.close s)

(* Randomized byte-identity under the router's commutativity-driven
   write pipelining: batches of several mutations per round-trip are
   exactly what the oracle overlaps across shards, so any unsound
   admission shows up as a divergence from the single node. The final
   SELECT after every batch forces a synchronizing read, so per-batch
   state is compared, not just the end state. *)
let test_randomized_identity () =
  let _, _, rport, _, pids, _ = deploy () in
  let sport, spid = spawn_server () in
  Fun.protect
    ~finally:(fun () -> List.iter kill (spid :: pids))
    (fun () ->
      let r = Client.connect ~timeout:10.0 ~port:rport () in
      let s = Client.connect ~timeout:10.0 ~port:sport () in
      let rng = Prng.create (Int64.of_int (seed lxor 0x5AD)) in
      let instances = [| "tweety"; "opus"; "jack"; "rex" |] in
      let classes = [| "bird"; "penguin"; "sparrow"; "animal" |] in
      let value () =
        if Prng.bernoulli rng 0.4 then "ALL " ^ Prng.pick rng classes
        else Prng.pick rng instances
      in
      let mutation () =
        if Prng.bernoulli rng 0.75 then
          Printf.sprintf "INSERT INTO flies VALUES (%s %s);"
            (if Prng.bernoulli rng 0.7 then "+" else "-")
            (value ())
        else Printf.sprintf "DELETE FROM flies VALUES (%s);" (value ())
      in
      let compare_exec stmt =
        match (Client.exec r stmt, Client.exec s stmt) with
        | Ok g, Ok w ->
          Alcotest.(check string)
            (Printf.sprintf "OK (seed %d) %S" seed stmt)
            w g
        | Error g, Error w ->
          Alcotest.(check string)
            (Printf.sprintf "ERR (seed %d) %S" seed stmt)
            w g
        | Ok g, Error w ->
          Alcotest.failf "(seed %d) %S: router Ok %S, single node Error %S"
            seed stmt g w
        | Error g, Ok w ->
          Alcotest.failf "(seed %d) %S: router Error %S, single node Ok %S"
            seed stmt g w
      in
      compare_exec ddl;
      for _ = 1 to 12 do
        (* one burst of single-statement EXEC frames sent back-to-back
           before any reply is read: this is the shape the router's
           phase-A admission pipelines (Singles ride per-shard FIFOs,
           Scatters join only when the oracle proves Commute) *)
        let batch = List.init (2 + Prng.int rng 4) (fun _ -> mutation ()) in
        List.iter
          (fun stmt ->
            Client.send r "EXEC" stmt;
            Client.send s "EXEC" stmt)
          batch;
        List.iter
          (fun stmt ->
            let got = Client.recv r and want = Client.recv s in
            if got <> want then
              Alcotest.failf
                "(seed %d) pipelined %S: router %s, single node %s" seed stmt
                (match got with
                | Ok g -> Printf.sprintf "Ok %S" g
                | Error g -> Printf.sprintf "Error %S" g)
                (match want with
                | Ok w -> Printf.sprintf "Ok %S" w
                | Error w -> Printf.sprintf "Error %S" w))
          batch;
        compare_exec "SELECT * FROM flies;"
      done;
      compare_exec "CONSOLIDATE flies;";
      compare_exec "SELECT * FROM flies;";
      Client.close r;
      Client.close s)

let test_degraded_reads () =
  let _, _, rport, _, pids, _ = deploy () in
  Fun.protect
    ~finally:(fun () -> List.iter kill pids)
    (fun () ->
      let conn = Client.connect ~timeout:10.0 ~port:rport () in
      ignore (exec_ok conn ddl);
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ tweety), (+ jack);");
      (* kill the sparrow shard (index 2 of [router; s0; s1; s2]) *)
      kill (List.nth pids 3);
      (* reads confined to live shards keep answering *)
      Alcotest.(check bool) "penguin subtree still answers" true
        (contains (exec_ok conn "SELECT * FROM flies WHERE who = tweety;")
           "tweety");
      (* reads that need the dead shard fail loudly, naming it *)
      (match Client.exec conn "SELECT * FROM flies WHERE who = jack;" with
      | Ok out -> Alcotest.failf "expected degraded error, got %S" out
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "names the dead shard: %s" msg)
          true
          (contains msg "unreachable"));
      (* and writes to the surviving subtree still commit *)
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ opus);");
      Alcotest.(check string) "write after partial failure"
        "+ (by (opus))"
        (exec_ok conn "ASK flies (opus);");
      Client.close conn)

(* Seeded misplacement: fsck in shard-map mode must pass on the healthy
   deployment and catch tuples planted on the wrong shard. *)
let test_fsck_placement () =
  let _, map_file, rport, ports, pids, dirs = deploy ~durable:true () in
  Fun.protect
    ~finally:(fun () -> List.iter kill pids)
    (fun () ->
      let conn = Client.connect ~timeout:10.0 ~port:rport () in
      ignore (exec_ok conn ddl);
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ tweety), (+ jack), (+ rex);");
      ignore (exec_ok conn "INSERT INTO flies VALUES (+ ALL bird);");
      Client.close conn;
      let codes report =
        List.map (fun f -> f.Fsck.code) report.Fsck.findings
        |> List.sort_uniq compare
      in
      (* healthy: no placement findings *)
      let clean = Fsck.run ~against:map_file (List.hd dirs) in
      Alcotest.(check (list string)) "healthy deployment is clean" []
        (codes clean);
      (* plant a misplaced tuple: jack (sparrow subtree, shard 2) stored
         directly on shard 1, bypassing the router *)
      let s1 = Client.connect ~timeout:10.0 ~port:(List.nth ports 1) () in
      ignore (exec_ok s1 "INSERT INTO flies VALUES (+ jack);");
      Client.close s1;
      (* drop a replicated tuple on shard 0 only: the (+ ALL bird)
         replica set is now incomplete *)
      let s0 = Client.connect ~timeout:10.0 ~port:(List.hd ports) () in
      ignore (exec_ok s0 "DELETE FROM flies VALUES (ALL bird);");
      Client.close s0;
      let report = Fsck.run ~against:map_file (List.hd dirs) in
      let cs = codes report in
      Alcotest.(check bool) "F020 misplacement caught" true
        (List.mem "F020" cs);
      Alcotest.(check bool) "F021 divergence caught" true (List.mem "F021" cs);
      Alcotest.(check bool) "criticals" true (Fsck.has_critical report))

let test_fsck_map_errors () =
  let bad = Filename.temp_file "hrshard" ".map" in
  let oc = open_out bad in
  output_string oc "shard zero nonsense\n";
  close_out oc;
  let dir = temp_dir "fsck" in
  let report = Fsck.run ~against:bad dir in
  Alcotest.(check bool) "F022 on an unparsable map" true
    (List.exists (fun f -> f.Fsck.code = "F022") report.Fsck.findings)

let suite =
  [
    Alcotest.test_case "shard map parses and round-trips" `Quick test_map_parse;
    Alcotest.test_case "shard map rejects malformed input" `Quick test_map_rejects;
    Alcotest.test_case "cover rule: locality and replication" `Quick test_cover;
    Alcotest.test_case "routing and cross-subtree fan-out" `Quick
      test_routing_and_fanout;
    Alcotest.test_case "scatter-gather is byte-identical to one node" `Quick
      test_byte_identity;
    Alcotest.test_case "randomized pipelined writes match one node" `Quick
      test_randomized_identity;
    Alcotest.test_case "degraded reads around a dead shard" `Quick
      test_degraded_reads;
    Alcotest.test_case "fsck --against map catches misplacement" `Quick
      test_fsck_placement;
    Alcotest.test_case "fsck --against rejects a bad map" `Quick
      test_fsck_map_errors;
  ]
