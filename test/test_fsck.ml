(* hrdb fsck: offline verification of a database directory. Each
   seeded-corruption test plants one specific fault and asserts the one
   finding code that names it; the clean tests pin the zero-findings
   guarantee on freshly produced directories. *)

module Db = Hr_storage.Db
module Wal = Hr_storage.Wal
module Fsck = Hr_check.Fsck

let with_temp_dir f =
  let dir = Filename.temp_file "hrfsck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let with_two_dirs f = with_temp_dir (fun a -> with_temp_dir (fun b -> f a b))

let exec db script =
  match Db.exec db script with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "exec failed: %s" e

(* Statements sent one per [exec] so each becomes its own WAL record. *)
let world =
  [
    "CREATE DOMAIN animal;";
    "CREATE CLASS bird UNDER animal;";
    "CREATE CLASS penguin UNDER bird;";
    "CREATE INSTANCE tweety OF bird;";
    "CREATE INSTANCE opus OF penguin;";
    "CREATE RELATION flies (who: animal);";
    "INSERT INTO flies VALUES (+ ALL bird);";
  ]

let seed dir =
  let db = Db.open_dir dir in
  List.iter (exec db) world;
  db

let codes (r : Fsck.report) = List.map (fun f -> f.Fsck.code) r.Fsck.findings

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let copy_file src dst = write_bytes dst (read_bytes src)

let wal dir = Filename.concat dir "wal.log"
let meta dir = Filename.concat dir "meta"
let graphs dir = Filename.concat dir "graphs.bin"

(* ---- clean directories ------------------------------------------------ *)

let test_clean_checkpointed () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.checkpoint db;
      Db.close db;
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "no findings" [] (codes r);
      Alcotest.(check bool) "clean" true (Fsck.clean r);
      Alcotest.(check int) "wal truncated" 0 r.Fsck.wal_records;
      Alcotest.(check int) "base = head" r.Fsck.head_lsn r.Fsck.base_lsn;
      Alcotest.(check int) "head advanced" (List.length world) r.Fsck.head_lsn;
      Alcotest.(check int) "hierarchies counted" 1 r.Fsck.hierarchies;
      Alcotest.(check int) "relations counted" 1 r.Fsck.relations)

let test_clean_wal_only () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "no findings" [] (codes r);
      Alcotest.(check int) "all records intact" (List.length world) r.Fsck.wal_records;
      Alcotest.(check int) "no snapshot yet" 0 r.Fsck.base_lsn)

let test_not_a_db_dir () =
  let r = Fsck.run "/nonexistent/path/to/nowhere" in
  Alcotest.(check (list string)) "F001" [ "F001" ] (codes r);
  Alcotest.(check bool) "critical" true (Fsck.has_critical r)

(* ---- the four seeded corruptions -------------------------------------- *)

(* Flip one byte inside the first record's statement: the record's CRC
   no longer matches, and every intact-looking record after it is
   unreachable — mid-log corruption, not a crash-torn tail. *)
let test_flipped_byte_mid_wal () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      let data = read_bytes (wal dir) in
      (* record layout: u64 lsn ++ u32 len ++ stmt ++ u32 crc; byte 12 is
         the first byte of record 1's statement *)
      let b = Bytes.of_string data in
      Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xff));
      write_bytes (wal dir) (Bytes.to_string b);
      let r = Fsck.run dir in
      Alcotest.(check bool) "F006 reported" true (List.mem "F006" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_redundant_isa_edge () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      (* penguin -> animal is implied via bird; the evaluator accepts it
         and the WAL faithfully records it *)
      exec db "CREATE ISA penguin UNDER animal;";
      Db.close db;
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F012 and nothing else" [ "F012" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

(* Checkpoints are paged now, so the legacy-format checks (F003/F004,
   F014/F015) construct by hand exactly what a pre-paged build's
   checkpoint left behind: snapshot.bin + graphs.bin + truncated WAL. *)
let build_catalog stmts =
  let cat = Hierel.Catalog.create () in
  List.iter
    (fun s ->
      match Hr_query.Eval.run_script cat s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "build_catalog: %s" e)
    stmts;
  cat

let write_legacy dir cat =
  Hr_storage.Snapshot.write_file cat (Filename.concat dir "snapshot.bin");
  Hr_storage.Graph_store.write_file cat (graphs dir);
  write_bytes (wal dir) "";
  write_bytes (meta dir) "base_lsn=0\npublished_lsn=0\n"

let test_stale_graphs_sidecar () =
  with_temp_dir (fun dir ->
      write_legacy dir (build_catalog (world @ [ "INSERT INTO flies VALUES (- ALL penguin);" ]));
      (* a sidecar from before the negation no longer matches the
         snapshot's subsumption graphs *)
      Hr_storage.Graph_store.write_file (build_catalog world) (graphs dir);
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F014 and nothing else" [ "F014" ] (codes r);
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_legacy_meta_without_snapshot () =
  with_temp_dir (fun dir ->
      write_bytes (wal dir) "";
      write_bytes (meta dir) "base_lsn=5\n";
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F009 and nothing else" [ "F009" ] (codes r);
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_mismatched_base_lsn () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.checkpoint db;
      exec db "INSERT INTO flies VALUES (+ opus);";
      Db.close db;
      (* meta claiming coverage past what the page store committed is
         corruption; the reverse (meta one checkpoint behind, the crash
         window between the page commit and the meta rewrite) is
         tolerated by design. *)
      let base = List.length world in
      write_bytes (meta dir) (Printf.sprintf "base_lsn=%d\n" (base + 2));
      let r = Fsck.run dir in
      Alcotest.(check bool) "F009 reported" true (List.mem "F009" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r);
      write_bytes (meta dir) (Printf.sprintf "base_lsn=%d\n" (base - 2));
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "stale meta tolerated" [] (codes r))

(* The published-version watermark claims visibility beyond the durable
   head: a reader could have been served state that a crash then lost.
   Seeded by rewriting meta with a published_lsn past every WAL record. *)
let test_published_beyond_durable () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.checkpoint db;
      Db.close db;
      let head = List.length world in
      write_bytes (meta dir)
        (Printf.sprintf "base_lsn=%d\npublished_lsn=%d\n" head (head + 5));
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F019 and nothing else" [ "F019" ] (codes r);
      Alcotest.(check bool) "critical" true (Fsck.has_critical r);
      (* a watermark at the durable head is exactly right *)
      write_bytes (meta dir)
        (Printf.sprintf "base_lsn=%d\npublished_lsn=%d\n" head head);
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "watermark at head is clean" [] (codes r))

(* ---- tails, sidecars, semantic state ----------------------------------- *)

let test_torn_tail_is_warning () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      let data = read_bytes (wal dir) in
      write_bytes (wal dir) (String.sub data 0 (String.length data - 3));
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F005 and nothing else" [ "F005" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r);
      Alcotest.(check int) "intact prefix replayed"
        (List.length world - 1)
        r.Fsck.wal_records)

(* Regression for the recovery repair: before [Db.open_dir] truncated
   torn tails, a record appended after the garbage was stranded behind
   it and silently lost at the next recovery. *)
let test_torn_tail_truncated_on_reopen () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      let data = read_bytes (wal dir) in
      write_bytes (wal dir) (String.sub data 0 (String.length data - 3));
      let db = Db.open_dir dir in
      exec db "INSERT INTO flies VALUES (- ALL penguin);";
      Db.close db;
      let scan = Wal.scan (wal dir) in
      Alcotest.(check bool) "no torn tail left" true (scan.Wal.tail = None);
      Alcotest.(check int) "append after repair survives" (List.length world)
        (List.length scan.Wal.records);
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "clean after repair" [] (codes r);
      (* and the appended record is really part of the replayed state *)
      let db = Db.open_dir dir in
      (match Db.exec db "ASK flies (opus);" with
      | Ok [ out ] ->
        Alcotest.(check string) "negation applied" "- (by (V penguin))" out
      | Ok _ | Error _ -> Alcotest.fail "ask after reopen failed");
      Db.close db)

let test_missing_graphs_sidecar () =
  with_temp_dir (fun dir ->
      write_legacy dir (build_catalog world);
      Sys.remove (graphs dir);
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F015 and nothing else" [ "F015" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

(* ---- seeded page-store corruption (F025–F029) -------------------------- *)

module Page_store = Hr_storage.Page_store

(* Each injection edits the committed pages of a closed store (through
   the Testing hooks, which re-seal CRCs where the fault is not the CRC
   itself), so exactly one page-level invariant breaks at a time. *)
let with_injected_fault inject f =
  with_temp_dir (fun dir ->
      let db = seed dir in
      (* a couple more tuples so the first leaf has several entries *)
      exec db "INSERT INTO flies VALUES (+ opus);";
      exec db "INSERT INTO flies VALUES (- tweety);";
      Db.checkpoint db;
      Db.close db;
      let s = Page_store.open_ (Filename.concat dir "pages.db") in
      inject s;
      Page_store.close s;
      f (Fsck.run dir))

let test_page_checksum () =
  with_injected_fault Page_store.Testing.corrupt_page (fun r ->
      Alcotest.(check bool) "F025 reported" true (List.mem "F025" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_dangling_tid () =
  with_injected_fault
    (fun s -> ignore (Page_store.Testing.kill_slot s))
    (fun r ->
      Alcotest.(check bool) "F026 reported" true (List.mem "F026" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_duplicate_tid () =
  with_injected_fault Page_store.Testing.dup_btree_ref (fun r ->
      Alcotest.(check bool) "F027 reported" true (List.mem "F027" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_btree_order () =
  with_injected_fault Page_store.Testing.swap_btree_keys (fun r ->
      Alcotest.(check bool) "F028 reported" true (List.mem "F028" (codes r));
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_freemap_skew () =
  with_injected_fault Page_store.Testing.skew_freemap (fun r ->
      Alcotest.(check (list string)) "F029 and nothing else" [ "F029" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

let test_partial_trailing_page () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.checkpoint db;
      Db.close db;
      let pages = Filename.concat dir "pages.db" in
      write_bytes pages (read_bytes pages ^ String.make 100 '\x7f');
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F025 and nothing else" [ "F025" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

let test_ambiguous_relation () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      (* swimmer and bird end up incomparable over penguin: the paper's
         ambiguity pattern. The evaluator rejects an INSERT that would
         create it directly, so the conflict is smuggled in through a
         later hierarchy edit — exactly the latent corruption fsck is
         for. *)
      exec db "CREATE CLASS swimmer UNDER animal;";
      exec db "INSERT INTO flies VALUES (- ALL swimmer);";
      exec db "CREATE ISA penguin UNDER swimmer;";
      Db.close db;
      let r = Fsck.run dir in
      Alcotest.(check (list string)) "F018 and nothing else" [ "F018" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

(* ---- divergence -------------------------------------------------------- *)

let test_divergence_detected () =
  with_two_dirs (fun a b ->
      let da = seed a and db_ = seed b in
      exec da "INSERT INTO flies VALUES (+ tweety);";
      exec db_ "INSERT INTO flies VALUES (- tweety);";
      Db.close da;
      Db.close db_;
      let r = Fsck.run ~against:b a in
      Alcotest.(check (list string)) "F016 and nothing else" [ "F016" ] (codes r);
      Alcotest.(check bool) "critical" true (Fsck.has_critical r))

let test_caught_up_replica_clean () =
  with_two_dirs (fun a b ->
      let da = seed a in
      Db.close da;
      (* b is a caught-up copy; a then commits one more record — the
         comparison happens at the greatest common LSN *)
      copy_file (wal a) (wal b);
      let da = Db.open_dir a in
      exec da "INSERT INTO flies VALUES (- ALL penguin);";
      Db.close da;
      let r = Fsck.run ~against:b a in
      Alcotest.(check (list string)) "no findings" [] (codes r);
      Alcotest.(check bool) "clean" true (Fsck.clean r))

let test_checkpoint_past_peer_not_comparable () =
  with_two_dirs (fun a b ->
      let da = seed a in
      Db.close da;
      copy_file (wal a) (wal b);
      let da = Db.open_dir a in
      exec da "INSERT INTO flies VALUES (- ALL penguin);";
      exec da "INSERT INTO flies VALUES (+ opus);";
      Db.checkpoint da;
      Db.close da;
      (* a's snapshot now covers LSNs past b's head: no common
         materialization point exists *)
      let r = Fsck.run ~against:b a in
      Alcotest.(check (list string)) "F017 and nothing else" [ "F017" ] (codes r);
      Alcotest.(check bool) "warning only" false (Fsck.has_critical r))

(* ---- crash window: SIGKILL between buffered appends and sync ----------- *)

(* A process killed with a group-commit batch in flight must come back
   with every synced (acked) statement intact, and with the unsynced
   tail applied record-by-record or not at all: the recovered head is a
   clean prefix of the statement sequence, never a half-applied record.
   The child reports its synced LSN over a pipe after buffering the
   unacked tail, then blocks until it is killed. *)
let test_kill_mid_batch () =
  with_temp_dir (fun dir ->
      let acked_stmts = 5 and unacked_stmts = 4 in
      let r_fd, w_fd = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close r_fd;
        (try
           let db = Db.open_dir dir in
           (match Db.exec db "CREATE DOMAIN d;" with
           | Ok _ -> ()
           | Error _ -> Unix._exit 2);
           for i = 1 to acked_stmts do
             match Db.exec db (Printf.sprintf "CREATE INSTANCE acked_%d OF d;" i) with
             | Ok _ -> ()
             | Error _ -> Unix._exit 2
           done;
           (* the unacked tail: buffered, never synced *)
           for i = 1 to unacked_stmts do
             match
               Db.exec_buffered db (Printf.sprintf "CREATE INSTANCE unacked_%d OF d;" i)
             with
             | Ok _ -> ()
             | Error _ -> Unix._exit 2
           done;
           let msg = string_of_int (Db.synced_lsn db) ^ "\n" in
           ignore (Unix.write_substring w_fd msg 0 (String.length msg));
           Unix.sleep 60;
           Unix._exit 0
         with _ -> Unix._exit 3)
      | pid ->
        Unix.close w_fd;
        let buf = Bytes.create 64 in
        let n = Unix.read r_fd buf 0 64 in
        Unix.close r_fd;
        let acked_lsn = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
        Alcotest.(check int) "child synced the acked prefix" (1 + acked_stmts) acked_lsn;
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        (* the dead child's directory must verify clean... *)
        let r = Fsck.run dir in
        Alcotest.(check (list string)) "fsck clean after SIGKILL" [] (codes r);
        (* ...and recover to a prefix: all acked statements, then zero or
           more whole unacked records, nothing else *)
        let db = Db.open_dir dir in
        let lsn = Db.lsn db in
        Alcotest.(check bool) "no acked statement lost" true (lsn >= acked_lsn);
        Alcotest.(check bool) "head within the buffered tail" true
          (lsn <= acked_lsn + unacked_stmts);
        let cat = Db.catalog db in
        let h = Hierel.Catalog.hierarchy cat "d" in
        for i = 1 to acked_stmts do
          Alcotest.(check bool)
            (Printf.sprintf "acked_%d recovered" i)
            true
            (Hr_hierarchy.Hierarchy.mem h (Printf.sprintf "acked_%d" i))
        done;
        let replayed_tail = lsn - acked_lsn in
        for i = 1 to unacked_stmts do
          Alcotest.(check bool)
            (Printf.sprintf "unacked_%d wholly replayed or wholly absent" i)
            (i <= replayed_tail)
            (Hr_hierarchy.Hierarchy.mem h (Printf.sprintf "unacked_%d" i))
        done;
        Db.close db)

(* ---- plumbing ---------------------------------------------------------- *)

let test_metrics_counted () =
  let before = Hr_obs.Metrics.counter_value "fsck.runs" in
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      ignore (Fsck.run dir));
  Alcotest.(check bool) "fsck.runs incremented" true
    (Hr_obs.Metrics.counter_value "fsck.runs" > before)

let test_render_json_shape () =
  with_temp_dir (fun dir ->
      let db = seed dir in
      Db.close db;
      let j = Fsck.render_json (Fsck.run dir) in
      List.iter
        (fun needle ->
          let contains s sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) (needle ^ " present") true (contains j needle))
        [ "\"clean\":true"; "\"findings\":[]"; "\"wal_records\":7" ])

let test_never_raises () =
  (* a file where a directory should be, and a directory of garbage *)
  with_temp_dir (fun dir ->
      let file = Filename.concat dir "afile" in
      write_bytes file "not a database";
      let r = Fsck.run file in
      Alcotest.(check bool) "file: findings, no exception" false (Fsck.clean r);
      write_bytes (wal dir) "garbage garbage garbage";
      write_bytes (meta dir) "nonsense";
      write_bytes (Filename.concat dir "snapshot.bin") "junk";
      let r = Fsck.run dir in
      Alcotest.(check bool) "garbage dir: findings, no exception" false
        (Fsck.clean r);
      Alcotest.(check bool) "snapshot junk is critical" true (Fsck.has_critical r))

let suite =
  [
    Alcotest.test_case "clean checkpointed db" `Quick test_clean_checkpointed;
    Alcotest.test_case "clean wal-only db" `Quick test_clean_wal_only;
    Alcotest.test_case "not a db dir" `Quick test_not_a_db_dir;
    Alcotest.test_case "seeded: flipped byte mid-wal" `Quick test_flipped_byte_mid_wal;
    Alcotest.test_case "seeded: redundant isa edge" `Quick test_redundant_isa_edge;
    Alcotest.test_case "seeded: stale graphs sidecar" `Quick test_stale_graphs_sidecar;
    Alcotest.test_case "seeded: mismatched base_lsn" `Quick test_mismatched_base_lsn;
    Alcotest.test_case "legacy meta without snapshot" `Quick
      test_legacy_meta_without_snapshot;
    Alcotest.test_case "seeded: page checksum (F025)" `Quick test_page_checksum;
    Alcotest.test_case "seeded: dangling TID (F026)" `Quick test_dangling_tid;
    Alcotest.test_case "seeded: duplicate TID (F027)" `Quick test_duplicate_tid;
    Alcotest.test_case "seeded: B-tree order (F028)" `Quick test_btree_order;
    Alcotest.test_case "seeded: free-map skew (F029)" `Quick test_freemap_skew;
    Alcotest.test_case "partial trailing page is a warning" `Quick
      test_partial_trailing_page;
    Alcotest.test_case "seeded: published version beyond durable head" `Quick
      test_published_beyond_durable;
    Alcotest.test_case "torn tail is a warning" `Quick test_torn_tail_is_warning;
    Alcotest.test_case "torn tail truncated on reopen" `Quick
      test_torn_tail_truncated_on_reopen;
    Alcotest.test_case "missing graphs sidecar" `Quick test_missing_graphs_sidecar;
    Alcotest.test_case "ambiguity violation" `Quick test_ambiguous_relation;
    Alcotest.test_case "divergence detected" `Quick test_divergence_detected;
    Alcotest.test_case "caught-up replica is clean" `Quick test_caught_up_replica_clean;
    Alcotest.test_case "checkpoint past peer" `Quick
      test_checkpoint_past_peer_not_comparable;
    Alcotest.test_case "kill -9 mid-batch: acked survive, tail is atomic" `Quick
      test_kill_mid_batch;
    Alcotest.test_case "metrics counted" `Quick test_metrics_counted;
    Alcotest.test_case "json rendering" `Quick test_render_json_shape;
    Alcotest.test_case "fsck never raises" `Quick test_never_raises;
  ]
