(* Clyde the royal elephant (Figures 4, 9, 11): explicit cancellation
   through the functional front end, justification, join and projection.

   Run with: dune exec examples/elephants.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Frontend = Hr_frontend.Frontend
open Hierel

let () =
  let animals = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class animals "elephant");
  ignore (Hierarchy.add_class animals ~parents:[ "elephant" ] "african_elephant");
  ignore (Hierarchy.add_class animals ~parents:[ "elephant" ] "indian_elephant");
  ignore (Hierarchy.add_class animals ~parents:[ "elephant" ] "royal_elephant");
  ignore (Hierarchy.add_instance animals ~parents:[ "royal_elephant" ] "clyde");
  ignore
    (Hierarchy.add_instance animals ~parents:[ "royal_elephant"; "indian_elephant" ] "appu");
  let colors = Hierarchy.create "color" in
  List.iter (fun c -> ignore (Hierarchy.add_instance colors c)) [ "grey"; "white"; "dappled" ];

  let schema = Schema.make [ ("animal", animals); ("color", colors) ] in

  (* Build Fig 4 with the functional front end: each positive assertion
     auto-generates the explicit cancellation of the inherited color. *)
  let color = Relation.of_tuples ~name:"color" schema [ (Types.Pos, [ "elephant"; "grey" ]) ] in
  let color =
    Frontend.assert_functional color ~entity_attr:"animal"
      (Item.of_names schema [ "royal_elephant"; "white" ])
  in
  let color =
    Frontend.assert_functional color ~entity_attr:"animal"
      (Item.of_names schema [ "clyde"; "dappled" ])
  in
  Format.printf "Animal-Color (Fig 4, cancellations auto-generated):@.%a@." Relation.pp color;

  (* Appu is both royal and indian; royal binds closer than elephant, and
     indian is silent, so appu is white. *)
  List.iter
    (fun (animal, c) ->
      let item = Item.of_names schema [ animal; c ] in
      Format.printf "%-6s %-8s -> %s@." animal c
        (if Binding.holds color item then "yes" else "no"))
    [ ("clyde", "dappled"); ("clyde", "grey"); ("appu", "white"); ("appu", "grey") ];

  (* Fig 9: a selection and its justification. *)
  let result, applicable = Ops.select_justified color ~attr:"animal" ~value:"appu" in
  Format.printf "@.What do we know about appu? (Fig 9)@.%a@.justified by:@." Relation.pp result;
  List.iter
    (fun (t : Relation.tuple) ->
      Format.printf "  %a%s@." Types.pp_sign t.Relation.sign (Item.to_string schema t.Relation.item))
    applicable;

  (* Fig 11: join with enclosure sizes, then project back. *)
  let sizes = Hierarchy.create "size" in
  ignore (Hierarchy.add_instance sizes "s2000");
  ignore (Hierarchy.add_instance sizes "s3000");
  let enclosure =
    Relation.of_tuples ~name:"enclosure"
      (Schema.make [ ("animal", animals); ("enclosure", sizes) ])
      [
        (Types.Pos, [ "elephant"; "s3000" ]);
        (Types.Neg, [ "indian_elephant"; "s3000" ]);
        (Types.Pos, [ "indian_elephant"; "s2000" ]);
      ]
  in
  let joined = Ops.join enclosure color in
  Format.printf "@.Enclosure joined with Color (Fig 11b):@.%a@." Relation.pp joined;
  let back = Ops.project joined [ "animal"; "color" ] in
  Format.printf "Projected back on Animal-Color (Fig 11c):@.%a@." Relation.pp back;
  Format.printf "no information lost: clyde dappled = %b, appu grey = %b@."
    (Binding.holds back (Item.of_names schema [ "clyde"; "dappled" ]))
    (Binding.holds back (Item.of_names schema [ "appu"; "grey" ]))
