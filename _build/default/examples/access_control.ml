(* Role-based access control with exceptions — a modern workload that maps
   directly onto the paper's model: role and resource hierarchies are
   taxonomies, grants are positive tuples over classes, revocations are
   negated tuples, and the ambiguity constraint catches contradictory
   policy before it ships.

   Run with: dune exec examples/access_control.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let () =
  (* role hierarchy: more powerful roles are SUBclasses (an admin is an
     employee, with more specific policy binding more strongly) *)
  let roles = Hierarchy.create "role" in
  ignore (Hierarchy.add_class roles "employee");
  ignore (Hierarchy.add_class roles ~parents:[ "employee" ] "engineer");
  ignore (Hierarchy.add_class roles ~parents:[ "engineer" ] "admin");
  ignore (Hierarchy.add_class roles ~parents:[ "employee" ] "contractor");
  ignore (Hierarchy.add_instance roles ~parents:[ "admin" ] "alice");
  ignore (Hierarchy.add_instance roles ~parents:[ "engineer" ] "bob");
  ignore (Hierarchy.add_instance roles ~parents:[ "contractor"; "engineer" ] "carol");

  (* resource hierarchy *)
  let resources = Hierarchy.create "resource" in
  ignore (Hierarchy.add_class resources "repo");
  ignore (Hierarchy.add_class resources ~parents:[ "repo" ] "prod_config");
  ignore (Hierarchy.add_instance resources ~parents:[ "repo" ] "website");
  ignore (Hierarchy.add_instance resources ~parents:[ "prod_config" ] "payments");

  let schema = Schema.make [ ("role", roles); ("resource", resources) ] in

  (* policy:
     - employees may read every repo
     - contractors may not touch prod config
     - engineers may touch prod config (grant back for the
       contractor+engineer overlap — required, or the policy is ambiguous
       for carol!) *)
  let can_write =
    Relation.of_tuples ~name:"can_write" schema
      [
        (Types.Pos, [ "engineer"; "repo" ]);
        (Types.Neg, [ "contractor"; "prod_config" ]);
      ]
  in
  (match Integrity.check can_write with
  | [] -> print_endline "policy consistent (unexpectedly!)"
  | conflicts ->
    print_endline "ambiguous policy detected before deployment:";
    List.iter
      (fun c -> Format.printf "  %a@." (Integrity.pp_conflict schema) c)
      conflicts);

  (* resolve the carol case explicitly: engineering contractors may write
     prod config *)
  let can_write =
    Relation.add can_write
      (Item.of_names schema [ "carol"; "prod_config" ])
      Types.Pos
  in
  Format.printf "@.resolved policy:@.%a@." Relation.pp can_write;

  let check who what =
    let item = Item.of_names schema [ who; what ] in
    Format.printf "%-6s writes %-10s -> %s@." who what
      (if Binding.holds can_write item then "ALLOW" else "DENY")
  in
  check "alice" "payments";
  check "bob" "payments";
  check "carol" "payments";
  check "carol" "website";

  (* audit: why is carol allowed on payments? *)
  let item = Item.of_names schema [ "carol"; "payments" ] in
  Format.printf "@.audit trail for carol/payments:@.";
  List.iter
    (fun (t : Relation.tuple) ->
      Format.printf "  %a%s@." Types.pp_sign t.Relation.sign
        (Item.to_string schema t.Relation.item))
    (Binding.justification can_write item);

  (* the whole policy is 3 tuples; the equivalent flat ACL would be *)
  Format.printf "@.stored policy tuples: %d; equivalent flat ACL entries: %d@."
    (Relation.cardinality can_write)
    (Explicate.extension_size can_write)
