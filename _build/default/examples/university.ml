(* The Respects relation of Figures 2, 3, 6, 7 and 8: multi-attribute
   items, conflict detection and resolution, consolidation, selection.

   Run with: dune exec examples/university.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let () =
  let students = Hierarchy.create "student" in
  ignore (Hierarchy.add_class students "obsequious_student");
  ignore (Hierarchy.add_instance students ~parents:[ "obsequious_student" ] "john");
  ignore (Hierarchy.add_instance students "mary");
  let teachers = Hierarchy.create "teacher" in
  ignore (Hierarchy.add_class teachers "incoherent_teacher");
  ignore (Hierarchy.add_instance teachers ~parents:[ "incoherent_teacher" ] "smith");
  ignore (Hierarchy.add_instance teachers "jones");

  let schema = Schema.make [ ("student", students); ("teacher", teachers) ] in

  (* The two facts above the dashed line in Fig 3: obsequious students
     respect all teachers; no student respects an incoherent teacher.
     Together they are ambiguous about obsequious students and incoherent
     teachers. *)
  let unresolved =
    Relation.of_tuples ~name:"respects" schema
      [
        (Types.Pos, [ "obsequious_student"; "teacher" ]);
        (Types.Neg, [ "student"; "incoherent_teacher" ]);
      ]
  in
  Format.printf "Unresolved relation:@.%a@." Relation.pp unresolved;
  (match Integrity.check unresolved with
  | [] -> Format.printf "unexpectedly consistent?!@."
  | conflicts ->
    List.iter
      (fun c -> Format.printf "%a@." (Integrity.pp_conflict schema) c)
      conflicts);

  (* Resolve as the paper does, with an explicit tuple. *)
  let respects =
    Relation.add_named unresolved Types.Pos [ "obsequious_student"; "incoherent_teacher" ]
  in
  Format.printf "@.Resolved (Fig 3):@.%a consistent: %b@." Relation.pp respects
    (Integrity.is_consistent respects);

  (* Fig 7: who do obsequious students respect? *)
  Format.printf "@.Who do obsequious students respect? (Fig 7)@.%a@." Relation.pp
    (Ops.select respects ~attr:"student" ~value:"obsequious_student");

  (* Fig 8: who does John respect? *)
  Format.printf "Who does john respect? (Fig 8)@.%a@." Relation.pp
    (Ops.select respects ~attr:"student" ~value:"john");

  (* Fig 6: consolidation discovers that, extensionally, one tuple is
     enough. *)
  let consolidated, removed = Consolidate.consolidate_verbose respects in
  Format.printf "Consolidation removed %d tuples (Fig 6):@.%a@." (List.length removed)
    Relation.pp consolidated;
  Format.printf "same extension as before: %b@."
    (Flatten.equal_extension respects consolidated)
