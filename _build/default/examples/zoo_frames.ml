(* A frame-based knowledge base on the hierarchical relational back end —
   the paper's §1 pitch, as a zoo management system.

   Run with: dune exec examples/zoo_frames.exe *)

module Frames = Hr_frames.Frames
module Datalog = Hr_datalog.Datalog

let () =
  let kb = Frames.create ~entity_domain:"animal" () in

  (* taxonomy *)
  Frames.define_frame kb "mammal";
  Frames.define_frame kb ~is_a:[ "mammal" ] "elephant";
  Frames.define_frame kb ~is_a:[ "elephant" ] "royal_elephant";
  Frames.define_frame kb ~is_a:[ "elephant" ] "indian_elephant";
  Frames.define_frame kb ~is_a:[ "mammal" ] "big_cat";
  Frames.define_frame kb ~is_a:[ "big_cat" ] "lion";
  Frames.define_individual kb ~is_a:[ "royal_elephant" ] "clyde";
  Frames.define_individual kb ~is_a:[ "royal_elephant"; "indian_elephant" ] "appu";
  Frames.define_individual kb ~is_a:[ "lion" ] "leo";

  (* slots with defaults and exceptions *)
  Frames.define_slot kb ~slot:"color" ~values:[ "grey"; "white"; "dappled"; "tawny" ];
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  Frames.set_slot kb ~frame:"royal_elephant" ~slot:"color" ~value:"white";
  Frames.set_slot kb ~frame:"clyde" ~slot:"color" ~value:"dappled";
  Frames.set_slot kb ~frame:"lion" ~slot:"color" ~value:"tawny";

  Frames.define_slot ~multi:true kb ~slot:"diet" ~values:[ "hay"; "fruit"; "meat" ];
  Frames.set_slot kb ~frame:"elephant" ~slot:"diet" ~value:"hay";
  Frames.set_slot kb ~frame:"elephant" ~slot:"diet" ~value:"fruit";
  Frames.set_slot kb ~frame:"big_cat" ~slot:"diet" ~value:"meat";

  (* query with inheritance + exceptions *)
  List.iter
    (fun individual ->
      Format.printf "%-6s color=%-8s diet=%s@." individual
        (Option.value ~default:"?" (Frames.slot_value kb ~frame:individual ~slot:"color"))
        (String.concat "," (Frames.get_slot kb ~frame:individual ~slot:"diet")))
    (Frames.individuals kb);

  (* explanation: why is appu white? *)
  Format.printf "@.%s@.@." (Frames.explain_slot kb ~frame:"appu" ~slot:"color" ~value:"white");

  (* the same KB through HRQL... *)
  (match Hr_query.Eval.run_script (Frames.catalog kb) "SELECT * FROM color;" with
  | Ok outputs -> List.iter print_endline outputs
  | Error e -> print_endline e);

  (* ...and through Datalog rules on top *)
  let p = Datalog.create (Frames.catalog kb) in
  Datalog.add_rule_str p "herbivore(X) :- diet(X, hay).";
  Datalog.add_rule_str p
    "needs_special_keeper(X) :- member_of(X, elephant), not herbivore(X).";
  Format.printf "herbivores: %s@."
    (String.concat ", "
       (List.map (String.concat " ") (Datalog.query p (Datalog.parse_atom "herbivore(X)"))));
  Format.printf "need a special keeper: %s@."
    (String.concat ", "
       (List.map (String.concat " ")
          (Datalog.query p (Datalog.parse_atom "needs_special_keeper(X)"))))
