(* A small knowledge base driven end to end through HRQL and Datalog —
   the paper's pitch of the model as a back end for frame-based knowledge
   representation systems (§1) with logic-programming inference on top
   (§2.1).

   Run with: dune exec examples/knowledge_base.exe *)

module Eval = Hr_query.Eval
module Datalog = Hr_datalog.Datalog
open Hierel

let script =
  {|
  CREATE DOMAIN animal;
  CREATE CLASS bird UNDER animal;
  CREATE CLASS canary UNDER bird;
  CREATE CLASS penguin UNDER bird;
  CREATE CLASS amazing_flying_penguin UNDER penguin;
  CREATE INSTANCE tweety OF canary;
  CREATE INSTANCE paul OF penguin;
  CREATE INSTANCE pamela OF amazing_flying_penguin;

  CREATE RELATION flies (creature: animal);
  INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin), (+ ALL amazing_flying_penguin);

  CREATE DOMAIN place;
  CREATE INSTANCE antarctica OF place;
  CREATE INSTANCE amazon OF place;
  CREATE RELATION lives_in (creature: animal, place: place);
  INSERT INTO lives_in VALUES (+ ALL penguin, antarctica), (+ tweety, amazon);
  |}

let () =
  let cat = Catalog.create () in
  (match Eval.run_script cat script with
  | Ok _ -> ()
  | Error msg -> failwith msg);

  (* interactive-style queries through the language *)
  List.iter
    (fun q ->
      match Eval.run_script cat q with
      | Ok outputs -> List.iter (fun o -> Format.printf "> %s@.%s@." (String.trim q) o) outputs
      | Error msg -> Format.printf "error: %s@." msg)
    [
      "ASK flies (pamela);";
      "SELECT * FROM flies WHERE creature = paul WITH JUSTIFICATION;";
      "SELECT * FROM lives_in WHERE place = antarctica;";
    ];

  (* Datalog rules on top: taxonomy membership and relations combine. *)
  let p = Datalog.create cat in
  Datalog.add_rule_str p "travels_far(X) :- flies(X).";
  Datalog.add_rule_str p
    "antarctic_flyer(X) :- flies(X), lives_in(X, antarctica).";
  Datalog.add_rule_str p "famous(X) :- antarctic_flyer(X), member_of(X, penguin).";

  Format.printf "@.Datalog on top of the hierarchical EDB:@.";
  List.iter
    (fun pred ->
      let rows = Datalog.query p (Datalog.parse_atom (pred ^ "(X)")) in
      Format.printf "%-16s = {%s}@." pred
        (String.concat ", " (List.map (String.concat " ") rows)))
    [ "travels_far"; "antarctic_flyer"; "famous" ]
