(* Storage compression (claim C1 and the Conclusion's auto-organization):
   store a large class extension as a handful of signed class tuples and
   mechanically organize a flat member list into that form.

   Run with: dune exec examples/compression.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Workload = Hr_workload.Workload
module Mine = Hr_mine.Mine
module Traditional = Hr_flat.Traditional
open Hierel

let () =
  (* a taxonomy of 4^3 = 64 leaf classes with 4 instances each *)
  let h = Workload.tree_hierarchy ~name:"products" ~depth:3 ~fanout:4 ~instances_per_leaf:4 () in
  let instances = Hierarchy.instances h in
  Format.printf "taxonomy: %d classes, %d instances@."
    (List.length (Hierarchy.classes h))
    (List.length instances);

  (* "every product is in stock, except the second quarter of the
     catalog, except its very first item" *)
  let n = List.length instances in
  let members =
    List.filteri (fun i _ -> i < n / 4 || i >= n / 2 || i = n / 4) instances
    |> List.map (Hierarchy.node_label h)
  in
  Format.printf "in-stock instances: %d of %d@." (List.length members) n;

  (* mechanical organization: DP picks the minimal signed tuple set *)
  let stock = Mine.organize ~name:"in_stock" h ~members in
  Format.printf "@.organized hierarchical relation (%d tuples):@.%a@."
    (Relation.cardinality stock) Relation.pp stock;
  Format.printf "compression ratio (extension / stored): %.1fx@."
    (Mine.compression_ratio stock);

  (* versus the traditional flat storage *)
  let flat = Traditional.extension_relation stock in
  Format.printf "@.traditional flat storage: %d rows, ~%d bytes@."
    (Hr_flat.Flat_relation.cardinality flat)
    (Hr_flat.Flat_relation.approx_bytes flat);
  Format.printf "round trip preserved: %b@."
    (List.length (Flatten.extension_list stock) = Hr_flat.Flat_relation.cardinality flat)
