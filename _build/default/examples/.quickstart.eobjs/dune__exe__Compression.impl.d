examples/compression.ml: Flatten Format Hierel Hr_flat Hr_hierarchy Hr_mine Hr_workload List Relation
