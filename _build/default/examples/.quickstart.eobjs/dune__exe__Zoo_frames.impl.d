examples/zoo_frames.ml: Format Hr_datalog Hr_frames Hr_query List Option String
