examples/knowledge_base.ml: Catalog Format Hierel Hr_datalog Hr_query List String
