examples/university.mli:
