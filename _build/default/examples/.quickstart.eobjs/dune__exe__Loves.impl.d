examples/loves.ml: Flatten Format Hierel Hr_hierarchy Item List Ops Relation Schema String Types
