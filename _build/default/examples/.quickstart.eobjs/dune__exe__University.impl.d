examples/university.ml: Consolidate Flatten Format Hierel Hr_hierarchy Integrity List Ops Relation Schema Types
