examples/zoo_frames.mli:
