examples/elephants.mli:
