examples/compression.mli:
