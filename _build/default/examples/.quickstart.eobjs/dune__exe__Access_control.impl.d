examples/access_control.ml: Binding Explicate Format Hierel Hr_hierarchy Integrity Item List Relation Schema Types
