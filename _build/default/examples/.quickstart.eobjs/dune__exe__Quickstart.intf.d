examples/quickstart.mli:
