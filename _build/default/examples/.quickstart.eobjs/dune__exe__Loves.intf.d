examples/loves.mli:
