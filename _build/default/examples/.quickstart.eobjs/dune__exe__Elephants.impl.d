examples/elephants.ml: Binding Format Hierel Hr_frontend Hr_hierarchy Item List Ops Relation Schema Types
