(* Quickstart: the paper's Figure 1 in a dozen calls.

   Build a taxonomy, assert four tuples (one generalization, one
   exception, one exception-to-the-exception, one instance-level fact),
   then query individual creatures.

   Run with: dune exec examples/quickstart.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let () =
  (* 1. A domain hierarchy: classes are sets, instances are leaves. *)
  let animals = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class animals "bird");
  ignore (Hierarchy.add_class animals ~parents:[ "bird" ] "canary");
  ignore (Hierarchy.add_class animals ~parents:[ "bird" ] "penguin");
  ignore (Hierarchy.add_class animals ~parents:[ "penguin" ] "galapagos_penguin");
  ignore (Hierarchy.add_class animals ~parents:[ "penguin" ] "amazing_flying_penguin");
  ignore (Hierarchy.add_instance animals ~parents:[ "canary" ] "tweety");
  ignore (Hierarchy.add_instance animals ~parents:[ "galapagos_penguin" ] "paul");
  ignore (Hierarchy.add_instance animals ~parents:[ "penguin" ] "peter");
  ignore (Hierarchy.add_instance animals ~parents:[ "amazing_flying_penguin" ] "pamela");
  ignore
    (Hierarchy.add_instance animals
       ~parents:[ "amazing_flying_penguin"; "galapagos_penguin" ]
       "patricia");

  (* 2. A single-attribute hierarchical relation: who flies? *)
  let schema = Schema.make [ ("creature", animals) ] in
  let flies =
    Relation.of_tuples ~name:"flies" schema
      [
        (Types.Pos, [ "bird" ]); (* all birds fly... *)
        (Types.Neg, [ "penguin" ]); (* ...except penguins... *)
        (Types.Pos, [ "amazing_flying_penguin" ]); (* ...except amazing ones... *)
        (Types.Pos, [ "peter" ]); (* ...and peter, specifically. *)
      ]
  in
  Format.printf "The hierarchical relation (4 tuples stand for the whole extension):@.%a@."
    Relation.pp flies;

  (* 3. Ask about individuals: binding resolves the exceptions. *)
  List.iter
    (fun name ->
      let item = Item.of_names schema [ name ] in
      Format.printf "does %-8s fly?  %s@." name
        (if Binding.holds flies item then "yes" else "no"))
    [ "tweety"; "paul"; "peter"; "pamela"; "patricia" ];

  (* 4. The equivalent flat relation. *)
  Format.printf "@.The equivalent flat relation (explicate):@.%a@." Relation.pp
    (Explicate.explicate flies);

  (* 5. The database stays consistent by construction. *)
  Format.printf "ambiguity constraint satisfied: %b@." (Integrity.is_consistent flies)
