(* Set operations on hierarchical relations (Figure 10): Jack and Jill.

   Run with: dune exec examples/loves.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let () =
  let animals = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class animals "bird");
  ignore (Hierarchy.add_class animals ~parents:[ "bird" ] "canary");
  ignore (Hierarchy.add_class animals ~parents:[ "bird" ] "penguin");
  ignore (Hierarchy.add_instance animals ~parents:[ "canary" ] "tweety");
  ignore (Hierarchy.add_instance animals ~parents:[ "penguin" ] "peter");
  ignore (Hierarchy.add_instance animals ~parents:[ "penguin" ] "paul");

  let schema = Schema.make [ ("creature", animals) ] in
  let jack =
    Relation.of_tuples ~name:"jack_loves" schema
      [ (Types.Pos, [ "bird" ]); (Types.Neg, [ "penguin" ]) ]
  in
  let jill = Relation.of_tuples ~name:"jill_loves" schema [ (Types.Pos, [ "penguin" ]) ] in

  Format.printf "Jack loves:@.%a@.Jill loves:@.%a@." Relation.pp jack Relation.pp jill;

  let show title rel =
    Format.printf "%s@.%a  extension: {%s}@.@." title Relation.pp rel
      (String.concat ", "
         (List.map (fun it -> Item.to_string schema it) (Flatten.extension_list rel)))
  in
  show "Jack and Jill between them love (Fig 10c):" (Ops.union jack jill);
  show "Jack and Jill both love (Fig 10d):" (Ops.inter jack jill);
  show "Jack loves but Jill does not (Fig 10e):" (Ops.diff jack jill);
  show "Jill loves but Jack does not (Fig 10f):" (Ops.diff jill jack);

  (* The results stay hierarchical: set operations work on the implied
     extensions but the stored form keeps class tuples. *)
  let u = Ops.union jack jill in
  Format.printf "union stored in %d tuples for an extension of %d creatures@."
    (Relation.cardinality u)
    (List.length (Flatten.extension_list u))
