type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next_id = ref 0

let intern name =
  match Hashtbl.find_opt table name with
  | Some sym -> sym
  | None ->
    let sym = { id = !next_id; name } in
    incr next_id;
    Hashtbl.add table name sym;
    sym

let name sym = sym.name
let id sym = sym.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash sym = sym.id
let pp ppf sym = Format.pp_print_string ppf sym.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
