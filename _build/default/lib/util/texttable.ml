type align = Left | Right | Center

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?aligns headers =
  let headers = Array.of_list headers in
  let aligns =
    match aligns with
    | None -> Array.make (Array.length headers) Left
    | Some l ->
      let a = Array.of_list l in
      assert (Array.length a = Array.length headers);
      a
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Texttable.add_row: wrong arity";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let l = (width - n) / 2 in
      String.make l ' ' ^ s ^ String.make (width - n - l) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let widen row =
    Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter widen rows;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) row.(i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let render_rows ~headers rows =
  let t = create headers in
  List.iter (add_row t) rows;
  render t
