type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy g = { state = g.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 g) land max_int in
  r mod bound

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  (* 53 significant bits, matching double precision *)
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L
let bernoulli g p = float g 1.0 < p

let pick g arr =
  assert (Array.length arr > 0);
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split g = { state = mix (next_int64 g) }
