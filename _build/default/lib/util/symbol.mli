(** Interned strings.

    Every distinct string is assigned a small integer id, so symbols can be
    compared, hashed and stored in dense arrays in O(1). Interning is global
    to the process; the table only grows. All names in the hierarchical
    relational model (class names, instance names, attribute names, relation
    names) are symbols. *)

type t
(** An interned string. *)

val intern : string -> t
(** [intern s] returns the unique symbol for [s], creating it on first use. *)

val name : t -> string
(** [name sym] is the string [sym] was interned from. *)

val id : t -> int
(** [id sym] is the dense non-negative integer identifying [sym]. Ids are
    assigned consecutively from 0 in order of first interning. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the symbol's name. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
