(** Deterministic pseudo-random number generation (splitmix64).

    Workload generators and benchmarks must be reproducible across runs and
    machines, so they use this self-contained generator rather than the
    stdlib [Random] module (whose algorithm may change between OCaml
    releases). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0., bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split g] advances [g] and returns a generator with an independent
    stream, for nested deterministic generation. *)
