lib/util/symbol.mli: Format Hashtbl Map Set
