lib/util/prng.mli:
