lib/util/symbol.ml: Format Hashtbl Int Map Set
