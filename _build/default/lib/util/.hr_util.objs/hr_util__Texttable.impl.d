lib/util/texttable.ml: Array Buffer Format List String
