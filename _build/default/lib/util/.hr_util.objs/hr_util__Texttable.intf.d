lib/util/texttable.mli: Format
