(** ASCII table rendering.

    Used by the REPL, the figure regenerator and the benchmark harness to
    print relations the way the paper's figures do. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] is an empty table with the given column headers.
    [aligns] defaults to left alignment for every column; if provided it
    must have the same length as [headers]. *)

val add_row : t -> string list -> unit
(** Appends a row. The row must have as many cells as there are headers. *)

val render : t -> string
(** Renders with box-drawing in plain ASCII ([+-|]). Column widths fit the
    widest cell. *)

val pp : Format.formatter -> t -> unit

val render_rows : headers:string list -> string list list -> string
(** One-shot convenience: build and render. *)
