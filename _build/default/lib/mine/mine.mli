(** Storage-minimizing hierarchical organization of flat data.

    The paper's conclusion proposes, as future work, that "the database
    system could mechanically organize traditional relation(s) given into
    hierarchical relations with classes being defined in such a way that
    storage is minimized." This module implements that for a
    single-attribute relation against a given hierarchy: find the minimal
    set of signed class/instance tuples whose extension equals a given
    instance set.

    On a tree hierarchy the result is exactly optimal, by dynamic
    programming over (node, inherited-sign) states: at each node we either
    assert [+], assert [-], or inherit. On a DAG the same DP runs over a
    first-parent spanning tree, then instances reached through skipped
    edges are patched with explicit tuples — a documented heuristic (the
    general problem includes minimum set cover; paper §3.2 notes
    np-hardness). *)

val organize :
  ?name:string ->
  Hr_hierarchy.Hierarchy.t ->
  members:string list ->
  Hierel.Relation.t
(** [organize h ~members] is a single-attribute relation over [h] whose
    extension is exactly the given instances. Unknown names raise
    {!Hr_hierarchy.Hierarchy.Error}; non-instances raise
    {!Hierel.Types.Model_error}. *)

val compression_ratio : Hierel.Relation.t -> float
(** extension size / stored tuple count — how much the hierarchical form
    saves over flat enumeration (claim C1). *)

val is_tree : Hr_hierarchy.Hierarchy.t -> bool
(** True when every node has at most one parent — the case where
    {!organize} is provably optimal. *)
