lib/mine/mine.mli: Hierel Hr_hierarchy
