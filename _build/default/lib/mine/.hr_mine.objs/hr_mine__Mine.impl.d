lib/mine/mine.ml: Binding Consolidate Explicate Hashtbl Hierel Hr_hierarchy Integrity Item List Option Relation Schema Types
