module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let is_tree h =
  List.for_all
    (fun v -> List.length (Hierarchy.parents h v) <= 1)
    (List.filter (fun v -> v <> Hierarchy.root h) (Hierarchy.nodes h))

(* Children in the first-parent spanning tree: node [c] belongs to the
   child list of the first element of its parent list. On a tree this is
   just [children]. *)
let spanning_children h =
  let table = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Hierarchy.parents h v with
      | [] -> ()
      | first :: _ ->
        Hashtbl.replace table first (v :: (Option.value ~default:[] (Hashtbl.find_opt table first))))
    (Hierarchy.nodes h);
  fun v -> Option.value ~default:[] (Hashtbl.find_opt table v)

let infinity_cost = max_int / 4

(* DP over (node, inherited sign): minimal number of asserted tuples in
   the subtree, and the action at this node realizing it. *)
type action = Inherit | Assert of Types.sign

let organize ?(name = "organized") h ~members =
  let target = Hashtbl.create 64 in
  List.iter
    (fun m ->
      let v = Hierarchy.find_exn h m in
      if not (Hierarchy.is_instance h v) then
        Types.model_error "%S is a class; members must be instances" m;
      Hashtbl.replace target v ())
    members;
  let children = spanning_children h in
  let memo = Hashtbl.create 256 in
  let rec cost v inh =
    match Hashtbl.find_opt memo (v, inh) with
    | Some r -> r
    | None ->
      let result =
        if Hierarchy.is_instance h v then begin
          let required = if Hashtbl.mem target v then Types.Pos else Types.Neg in
          if Types.sign_equal inh required then (0, Inherit) else (1, Assert required)
        end
        else
          let sum s = List.fold_left (fun acc c -> acc + fst (cost c s)) 0 (children v) in
          let keep = sum inh in
          let flip = 1 + sum (Types.negate inh) in
          if keep <= flip then (min keep infinity_cost, Inherit)
          else (min flip infinity_cost, Assert (Types.negate inh))
      in
      Hashtbl.add memo (v, inh) result;
      result
  in
  let schema = Schema.make [ ("v", h) ] in
  let rel = ref (Relation.empty ~name schema) in
  let rec emit v inh =
    let _, action = cost v inh in
    let inh' =
      match action with
      | Inherit -> inh
      | Assert s ->
        rel := Relation.set !rel (Item.make schema [| v |]) s;
        s
    in
    if not (Hierarchy.is_instance h v) then List.iter (fun c -> emit c inh') (children v)
  in
  emit (Hierarchy.root h) Types.Neg;
  (* On a DAG the spanning-tree DP can disagree with full binding
     semantics; patch divergent instances with exact tuples. *)
  let patched = ref !rel in
  List.iter
    (fun inst ->
      let item = Item.make schema [| inst |] in
      let want = Hashtbl.mem target inst in
      let got =
        match Binding.verdict !rel item with
        | Binding.Asserted (s, _) -> Types.bool_of_sign s
        | Binding.Unasserted -> false
        | Binding.Conflict _ -> not want (* force a patch *)
      in
      if got <> want then patched := Relation.set !patched item (Types.sign_of_bool want))
    (Hierarchy.instances h);
  (* Consolidation is only extension-safe on consistent relations; on a
     DAG the class tuples may still conflict at instance-free items, in
     which case the patched relation is returned as is. *)
  let result =
    if Integrity.is_consistent !patched then Consolidate.consolidate !patched
    else !patched
  in
  Relation.with_name result name

let compression_ratio rel =
  let stored = Relation.cardinality rel in
  if stored = 0 then 1.0
  else float_of_int (Explicate.extension_size rel) /. float_of_int stored
