module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type truth3 = True | False | Unknown

let pp_truth3 ppf t =
  Format.pp_print_string ppf
    (match t with True -> "true" | False -> "false" | Unknown -> "unknown")

type mark = Affirmed | Denied | Marked_unknown

module Item_map = Map.Make (Item)
module Item_set = Set.Make (Item)

type t = {
  name : string;
  schema : Schema.t;
  universal : mark Item_map.t;
  existential : Item_set.t;
}

exception Conflict of string

let empty ?(name = "tv") schema =
  { name; schema; universal = Item_map.empty; existential = Item_set.empty }

let name r = r.name
let schema r = r.schema
let cardinality r = Item_map.cardinal r.universal
let existential_count r = Item_set.cardinal r.existential

let check_item r item =
  if Item.arity item <> Schema.arity r.schema then
    Types.model_error "item arity mismatch in %S" r.name

let set_mark r item mark =
  check_item r item;
  { r with universal = Item_map.add item mark r.universal }

let affirm r item = set_mark r item Affirmed
let deny r item = set_mark r item Denied
let mark_unknown r item = set_mark r item Marked_unknown

let assert_exists r item =
  check_item r item;
  { r with existential = Item_set.add item r.existential }

let retract r item = { r with universal = Item_map.remove item r.universal }

(* Strongest-binding marks for an item: exact mark wins; otherwise the
   minimal relevant marked items under the binding order. *)
let binders r item =
  match Item_map.find_opt item r.universal with
  | Some mark -> [ (item, mark) ]
  | None ->
    let relevant =
      Item_map.fold
        (fun i mark acc ->
          if Item.strictly_subsumes r.schema i item then (i, mark) :: acc else acc)
        r.universal []
    in
    List.filter
      (fun (i, _) ->
        not
          (List.exists
             (fun (i', _) ->
               (not (Item.equal i i')) && Item.binds_below r.schema i i')
             relevant))
      relevant

let truth r item =
  check_item r item;
  let marks = List.map snd (binders r item) in
  let affirmed = List.exists (fun m -> m = Affirmed) marks in
  let denied = List.exists (fun m -> m = Denied) marks in
  match affirmed, denied with
  | true, true ->
    raise
      (Conflict
         (Format.asprintf "affirmed and denied tuples both bind to %s"
            (Item.to_string r.schema item)))
  | true, false -> True
  | false, true -> False
  | false, false -> Unknown
(* a Marked_unknown binder, or no binder at all: Unknown either way —
   the mark's role is to shadow more general Affirmed/Denied tuples *)

let certain r item = truth r item = True
let possible r item = truth r item <> False

let atomic_members r item = Item.atomic_extension r.schema item

let exists_status r item =
  check_item r item;
  let members = atomic_members r item in
  let witnessed_certain =
    Item_set.exists (fun e -> Item.subsumes r.schema item e) r.existential
    || List.exists (fun m -> truth r m = True) members
  in
  if witnessed_certain then `Certain
  else if List.exists (fun m -> truth r m <> False) members then `Possible
  else `Impossible

let is_consistent r =
  let no_binding_conflict =
    (* pairwise witnesses between Affirmed and Denied items, plus every
       atomic item below a denial or an affirmation (cheap and complete
       for the atomic extension) *)
    let marked kind =
      Item_map.fold (fun i m acc -> if m = kind then i :: acc else acc) r.universal []
    in
    let affirmed = marked Affirmed and denied = marked Denied in
    let witnesses =
      List.concat_map
        (fun a ->
          List.concat_map
            (fun d ->
              if Item.comparable r.schema a d then []
              else Item.maximal_common_descendants r.schema a d)
            denied)
        affirmed
      @ List.concat_map (fun d -> atomic_members r d) denied
    in
    List.for_all
      (fun w -> match truth r w with _ -> true | exception Conflict _ -> false)
      witnesses
  in
  let existentials_satisfiable =
    Item_set.for_all
      (fun e ->
        let members = atomic_members r e in
        members = [] || List.exists (fun m -> truth r m <> False) members)
      r.existential
  in
  no_binding_conflict && existentials_satisfiable

let of_relation rel =
  Relation.fold
    (fun (t : Relation.tuple) acc ->
      match t.Relation.sign with
      | Types.Pos -> affirm acc t.Relation.item
      | Types.Neg -> deny acc t.Relation.item)
    rel
    (empty ~name:(Relation.name rel) (Relation.schema rel))

let to_relation ?(closed_world = true) r =
  if not (Item_set.is_empty r.existential) then
    Types.model_error "existential tuples have no two-valued representation";
  Item_map.fold
    (fun item mark acc ->
      match mark with
      | Affirmed -> Relation.add acc item Types.Pos
      | Denied -> Relation.add acc item Types.Neg
      | Marked_unknown ->
        if closed_world then acc
        else
          Types.model_error "unknown mark on %s cannot be exported open-world"
            (Item.to_string r.schema item))
    r.universal
    (Relation.empty ~name:r.name r.schema)

let pp ppf r =
  let rows =
    Item_map.fold
      (fun item mark acc ->
        let m =
          match mark with Affirmed -> "+" | Denied -> "-" | Marked_unknown -> "?"
        in
        [ m; Item.to_string r.schema item ] :: acc)
      r.universal []
    @ Item_set.fold
        (fun item acc -> [ "E"; Item.to_string r.schema item ] :: acc)
        r.existential []
  in
  Format.pp_print_string ppf
    (Hr_util.Texttable.render_rows ~headers:[ ""; "item" ] (List.rev rows))
