lib/threeval/threeval.mli: Format Hierel
