lib/threeval/threeval.ml: Format Hierel Hr_hierarchy Hr_util Item List Map Relation Schema Set Types
