(** Partial information: three-valued assertions and existential
    quantification.

    The paper's conclusion sketches this as future work: "through the use
    of existential rather than universal quantifiers, and the use of
    three-valued (positive, negative, and unknown) rather than two-valued
    assertions, it may be possible to have a sound and conceptually
    pleasing treatment of partial information." This module realizes that
    sketch on top of the core model:

    - a {e universal} tuple carries one of three marks — [Affirmed]
      (every member satisfies the relation), [Denied] (no member does),
      or [Marked_unknown] (the inherited value is explicitly retracted
      for this class: we do not know);
    - inheritance works exactly as in the two-valued model — the
      strongest-binding marks win, [Affirmed]/[Denied] disagreement among
      binders is a conflict, and a [Marked_unknown] binder silences the
      inherited value rather than conflicting with it;
    - the {e open-world} default is [Unknown], not false;
    - an {e existential} tuple on an item asserts that some atomic member
      of the item satisfies the relation, without saying which.

    Queries split into {!certain} and {!possible} modalities, and
    {!exists_status} answers about classes the way a partial-information
    system must: [`Certain], [`Possible] or [`Impossible]. *)

type truth3 = True | False | Unknown

val pp_truth3 : Format.formatter -> truth3 -> unit

type mark = Affirmed | Denied | Marked_unknown

type t
(** An immutable three-valued hierarchical relation. *)

exception Conflict of string
(** Raised by query functions when affirmed and denied tuples bind
    equally strongly to the queried item. *)

val empty : ?name:string -> Hierel.Schema.t -> t
val name : t -> string
val schema : t -> Hierel.Schema.t
val cardinality : t -> int
(** Universal tuples stored (existential tuples counted separately). *)

val existential_count : t -> int

val affirm : t -> Hierel.Item.t -> t
val deny : t -> Hierel.Item.t -> t
val mark_unknown : t -> Hierel.Item.t -> t
(** Each replaces any previous universal mark on the same item. *)

val assert_exists : t -> Hierel.Item.t -> t
(** "Some atomic member of this item satisfies the relation." *)

val retract : t -> Hierel.Item.t -> t
(** Removes the universal mark on the item, if any. *)

val truth : t -> Hierel.Item.t -> truth3
(** Open-world three-valued truth by strongest binding. Raises
    {!Conflict} on an Affirmed/Denied clash. *)

val certain : t -> Hierel.Item.t -> bool
(** [truth = True]. *)

val possible : t -> Hierel.Item.t -> bool
(** [truth <> False] — i.e. not certainly excluded. *)

val exists_status :
  t -> Hierel.Item.t -> [ `Certain | `Possible | `Impossible ]
(** Status of "some atomic member of this item satisfies the relation":
    [`Certain] when an existential tuple sits on a sub-item or some
    atomic member is certainly true; [`Impossible] when every atomic
    member is certainly false and no existential tuple could still hold
    (i.e., none sits on a sub-item); [`Possible] otherwise. *)

val is_consistent : t -> bool
(** No item with clashing Affirmed/Denied strongest binders (checked at
    the pairwise witnesses plus all atomic items below denials), and no
    existential tuple whose item's atomic members are all certainly
    false. *)

val of_relation : Hierel.Relation.t -> t
(** Imports a two-valued relation: positive tuples become [Affirmed],
    negated tuples [Denied]. The closed-world default is {e not}
    imported — what the two-valued relation left unsaid becomes
    [Unknown]. *)

val to_relation : ?closed_world:bool -> t -> Hierel.Relation.t
(** Exports the universal tuples. [Marked_unknown] tuples are dropped
    under [closed_world = true] (the default; unknown collapses to
    false, paper §2 footnote 2) and rejected with
    {!Hierel.Types.Model_error} otherwise. Existential tuples cannot be
    represented and are always rejected if present. *)

val pp : Format.formatter -> t -> unit
(** Rows with [+], [-], [?] and [E] markers. *)
