lib/hierarchy/hierarchy.ml: Array Format Hashtbl Hr_graph Hr_util List Option String
