lib/hierarchy/hierarchy.mli: Format Hr_util
