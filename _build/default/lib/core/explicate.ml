let explicate ?over ?keep_negated rel =
  let schema = Relation.schema rel in
  let positions =
    match over with
    | None -> List.init (Schema.arity schema) Fun.id
    | Some names -> List.map (Schema.index_of schema) names
  in
  let full = List.length positions = Schema.arity schema in
  let keep_negated =
    match keep_negated with
    | Some k -> k || not full
    | None -> not full
  in
  let g = Subsumption.build rel in
  let order =
    List.filter (fun v -> v <> Subsumption.root g) (List.rev (Subsumption.topological g))
  in
  let result = ref (Relation.empty ~name:(Relation.name rel) schema) in
  List.iter
    (fun v ->
      let t = Subsumption.tuple g v in
      List.iter
        (fun item ->
          if not (Relation.mem !result item) then
            result := Relation.set !result item t.Relation.sign)
        (Item.atomic_extension schema ~over:positions t.Relation.item))
    order;
  if keep_negated then !result
  else Relation.filter (fun t -> Types.bool_of_sign t.Relation.sign) !result

let extension_size rel = Relation.cardinality (explicate rel)
