module Dag = Hr_graph.Dag

type t = {
  relation : Relation.t;
  tuples : Relation.tuple array;
  dag : Dag.t;
  root : int;
}

let build relation =
  let schema = Relation.schema relation in
  let tuples = Array.of_list (Relation.tuples relation) in
  let n = Array.length tuples in
  let dag = Dag.create () in
  for _ = 0 to n do
    ignore (Dag.add_node dag)
  done;
  let root = n in
  let item i = tuples.(i).Relation.item in
  let above = Array.make n [] in
  (* ancestors of each tuple among the other tuples *)
  for v = 0 to n - 1 do
    for u = 0 to n - 1 do
      if u <> v && Item.strictly_subsumes schema (item u) (item v) then
        above.(v) <- u :: above.(v)
    done
  done;
  (* immediate predecessor: an ancestor with no other ancestor strictly
     below it *)
  for v = 0 to n - 1 do
    List.iter
      (fun u ->
        let blocked =
          List.exists
            (fun w -> w <> u && Item.strictly_subsumes schema (item u) (item w))
            above.(v)
        in
        if not blocked then Dag.add_edge dag u v)
      above.(v);
    if above.(v) = [] then Dag.add_edge dag root v
  done;
  { relation; tuples; dag; root }

let relation t = t.relation
let tuple_count t = Array.length t.tuples
let tuple t i = t.tuples.(i)
let root t = t.root
let dag t = t.dag

let sign_of_node t i = if i = t.root then Types.Neg else t.tuples.(i).Relation.sign

let topological t = Dag.topo_sort t.dag
let preds t v = Dag.preds t.dag v
let succs t v = Dag.succs t.dag v

let pp ppf t =
  let schema = Relation.schema t.relation in
  let label i =
    if i = t.root then "UNIVERSAL-"
    else
      Format.asprintf "%a%a" Types.pp_sign t.tuples.(i).Relation.sign (Item.pp schema)
        t.tuples.(i).Relation.item
  in
  List.iter
    (fun u ->
      List.iter
        (fun v -> Format.fprintf ppf "%s -> %s@." (label u) (label v))
        (Dag.succs t.dag u))
    (Dag.live_nodes t.dag)
