module Hierarchy = Hr_hierarchy.Hierarchy

let count rel = Explicate.extension_size rel

let count_by rel ~attr =
  let schema = Relation.schema rel in
  let i = Schema.index_of schema attr in
  let tally = Hashtbl.create 32 in
  List.iter
    (fun item ->
      let v = Item.coord item i in
      Hashtbl.replace tally v (1 + Option.value ~default:0 (Hashtbl.find_opt tally v)))
    (Flatten.extension_list rel);
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let count_under rel ~attr ~cls =
  let schema = Relation.schema rel in
  let i = Schema.index_of schema attr in
  let h = Schema.hierarchy schema i in
  let c = Hierarchy.find_exn h cls in
  List.length
    (List.filter
       (fun item -> Hierarchy.subsumes h c (Item.coord item i))
       (Flatten.extension_list rel))

let histogram rel ~attr =
  let schema = Relation.schema rel in
  let i = Schema.index_of schema attr in
  let h = Schema.hierarchy schema i in
  count_by rel ~attr
  |> List.map (fun (v, n) -> (Hierarchy.node_label h v, n))
  |> List.sort (fun (la, na) (lb, nb) ->
         match Int.compare nb na with 0 -> String.compare la lb | c -> c)
