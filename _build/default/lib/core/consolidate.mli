(** The [consolidate] operator (paper, §3.3.1).

    Removes redundant tuples: a tuple is redundant iff it has the same
    truth value as {e all} of its immediate predecessors in the relation's
    subsumption graph (the virtual universal negated tuple standing in for
    absent predecessors, so an uncovered negated tuple is redundant).
    Nodes are examined in topological order and removed with the node
    elimination procedure, which yields the unique minimum relation with
    no redundant tuples (paper's claim, citing [15]; property-tested
    here). Consolidation changes only the stored form — the equivalent
    flat relation is untouched.

    Subsumption here is set inclusion over [isa] edges; preference edges
    play no role, exactly as in the paper. *)

val consolidate : Relation.t -> Relation.t
(** The unique minimal equivalent relation. *)

val consolidate_verbose : Relation.t -> Relation.t * Relation.tuple list
(** Also reports the removed tuples, in removal order. *)

val redundant_tuples : Relation.t -> Relation.tuple list
(** The tuples {!consolidate} would remove (without removing them). *)

val is_consolidated : Relation.t -> bool
