(** Shared elementary types of the hierarchical relational model. *)

type sign = Pos | Neg
(** The truth value of a tuple (paper, §2.1): [Pos] for a normal tuple,
    [Neg] for a negated tuple ("for every element, the relation does not
    hold"). *)

let sign_equal a b =
  match a, b with
  | Pos, Pos | Neg, Neg -> true
  | Pos, Neg | Neg, Pos -> false

let negate = function Pos -> Neg | Neg -> Pos

let sign_of_bool b = if b then Pos else Neg
let bool_of_sign = function Pos -> true | Neg -> false

let pp_sign ppf = function
  | Pos -> Format.pp_print_string ppf "+"
  | Neg -> Format.pp_print_string ppf "-"

type semantics = Off_path | On_path | No_preemption
(** Multiple-inheritance preemption semantics (paper, Appendix).
    [Off_path] is the paper's default: a tuple binds more strongly when it
    is reachable from the other in the (transitively reduced) hierarchy.
    [On_path] preempts only along unavoidable paths. [No_preemption]
    declares a conflict whenever any two relevant tuples disagree. *)

let pp_semantics ppf s =
  Format.pp_print_string ppf
    (match s with
    | Off_path -> "off-path"
    | On_path -> "on-path"
    | No_preemption -> "no-preemption")

exception Model_error of string
(** Raised on misuse of the model API (schema mismatches, unknown
    attributes, arity errors). Integrity violations are reported as data,
    not exceptions — see [Integrity]. *)

let model_error fmt = Format.kasprintf (fun s -> raise (Model_error s)) fmt
