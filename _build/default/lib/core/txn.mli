(** Transactions with commit-time integrity (paper, §3.1).

    A transaction stages new versions of relations against a catalog.
    Intermediate states may violate the ambiguity constraint ("if an
    update creates a conflict, within the same transaction, before the
    update is committed, other updates must be made that resolve the
    conflict"); {!commit} re-checks every touched relation and refuses to
    publish any of them if one is still conflicted. Transactions are not
    concurrent — this is the paper's single-user consistency discipline,
    not an isolation protocol. *)

type t

type violation = { relation_name : string; conflicts : Integrity.conflict list }

val begin_ : Catalog.t -> t

val insert : t -> rel:string -> Types.sign -> string list -> unit
(** Stages the addition of one signed tuple, given by attribute-value
    names. Raises {!Types.Model_error} on a direct contradiction (same
    item, opposite sign). *)

val delete : t -> rel:string -> string list -> unit
(** Stages removal of the exactly-matching tuple; no-op if absent. *)

val insert_item : t -> rel:string -> Types.sign -> Item.t -> unit
val delete_item : t -> rel:string -> Item.t -> unit

val current : t -> string -> Relation.t
(** The staged version of a relation (reads-your-writes). *)

val staged : t -> Relation.t list
(** All touched relations, staged versions. *)

val conflicts : t -> ?semantics:Types.semantics -> string -> Integrity.conflict list
(** Conflicts the named relation would have if committed now — lets a
    front end repair before commit. *)

val commit : ?semantics:Types.semantics -> t -> (unit, violation list) result
(** Publishes every staged relation, atomically, iff all satisfy the
    ambiguity constraint. On [Error] nothing is published and the
    transaction stays open for repair. *)

val abort : t -> unit
(** Discards all staged versions. The transaction can be reused. *)
