module Item_set = Set.Make (Item)

let extension rel =
  Relation.fold
    (fun (t : Relation.tuple) acc -> Item_set.add t.Relation.item acc)
    (Explicate.explicate rel) Item_set.empty

let extension_list rel = Item_set.elements (extension rel)

let equal_extension a b =
  Schema.equal (Relation.schema a) (Relation.schema b)
  && Item_set.equal (extension a) (extension b)

let holds_atomic rel item = Binding.holds rel item
