type conflict = {
  pos : Relation.tuple;
  neg : Relation.tuple;
  witnesses : Item.t list;
}

(* --- Off-path check: pairwise maximal-common-descendant witnesses ---- *)

(* Opposite-sign pairs of incomparable, intersecting tuples; for each, the
   maximal-common-descendant witnesses whose verdict is a conflict. *)
let off_path_conflicts_seq rel =
  let schema = Relation.schema rel in
  let tuples = Array.of_list (Relation.tuples rel) in
  let n = Array.length tuples in
  let pair_conflict i j =
    let ti = tuples.(i) and tj = tuples.(j) in
    if Types.sign_equal ti.Relation.sign tj.Relation.sign then None
    else
      let pos, neg =
        if Types.bool_of_sign ti.Relation.sign then ti, tj else tj, ti
      in
      if Item.comparable schema pos.Relation.item neg.Relation.item then None
      else
        let candidates =
          Item.maximal_common_descendants schema pos.Relation.item neg.Relation.item
        in
        let witnesses =
          List.filter
            (fun w ->
              match Binding.verdict rel w with
              | Binding.Conflict _ -> true
              | Binding.Asserted _ | Binding.Unasserted -> false)
            candidates
        in
        if witnesses = [] then None else Some { pos; neg; witnesses }
  in
  let pairs =
    Seq.concat_map
      (fun i -> Seq.map (fun j -> (i, j)) (Seq.init (n - i - 1) (fun k -> i + 1 + k)))
      (Seq.init n Fun.id)
  in
  Seq.filter_map (fun (i, j) -> pair_conflict i j) pairs

(* --- Stricter semantics: exhaustive witness enumeration -------------- *)

(* Under on-path or no-preemption semantics a conflict can arise below a
   pair of comparable tuples (the more general one is no longer fully
   preempted), so MCD witnesses do not suffice. Every conflicting item has
   a negative binder, hence lies (weakly) below some negated tuple: it is
   enough to test the atomic extension of every negated tuple's item, plus
   the MCD witnesses and the stored items themselves. Conflicts confined
   to instance-free classes are invisible to this enumeration — and to the
   equivalent flat relation. *)
let exhaustive_conflicts_seq ~semantics rel =
  let schema = Relation.schema rel in
  let tuples = Relation.tuples rel in
  let module S = Set.Make (Item) in
  let candidates = ref S.empty in
  let add it = candidates := S.add it !candidates in
  List.iter
    (fun (t : Relation.tuple) ->
      add t.Relation.item;
      if Types.sign_equal t.Relation.sign Types.Neg then
        List.iter add (Item.atomic_extension schema t.Relation.item))
    tuples;
  List.iter
    (fun (a : Relation.tuple) ->
      List.iter
        (fun (b : Relation.tuple) ->
          if
            (not (Types.sign_equal a.Relation.sign b.Relation.sign))
            && not (Item.comparable schema a.Relation.item b.Relation.item)
          then
            List.iter add
              (Item.maximal_common_descendants schema a.Relation.item b.Relation.item))
        tuples)
    tuples;
  Seq.filter_map
    (fun w ->
      match Binding.verdict ~semantics rel w with
      | Binding.Conflict { positive; negative } ->
        Some { pos = List.hd positive; neg = List.hd negative; witnesses = [ w ] }
      | Binding.Asserted _ | Binding.Unasserted -> None)
    (S.to_seq !candidates)

let conflicts_seq ?(semantics = Types.Off_path) rel =
  match semantics with
  | Types.Off_path -> off_path_conflicts_seq rel
  | Types.On_path | Types.No_preemption -> exhaustive_conflicts_seq ~semantics rel

let check ?semantics rel = List.of_seq (conflicts_seq ?semantics rel)

let first_conflict ?semantics rel =
  match (conflicts_seq ?semantics rel) () with
  | Seq.Nil -> None
  | Seq.Cons (c, _) -> Some c

let is_consistent ?semantics rel = Option.is_none (first_conflict ?semantics rel)

let minimal_resolution_set rel a b =
  Item.maximal_common_descendants (Relation.schema rel) a b

let pp_conflict schema ppf { pos; neg; witnesses } =
  Format.fprintf ppf "@[<v>conflict between +%a and -%a at:@,%a@]"
    (Item.pp schema) pos.Relation.item (Item.pp schema) neg.Relation.item
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (Item.pp schema))
    witnesses
