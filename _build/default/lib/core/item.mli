(** Items: one hierarchy node per attribute (paper, §2.2).

    An item is "one member (class or element) from each of D₁, D₂, …"; it
    denotes the cartesian product of the extensions of its coordinates. An
    {e atomic} item has only instances as coordinates; a {e composite} item
    has at least one class. The item hierarchy is the product graph of the
    attribute hierarchies; it is never materialized — subsumption and
    neighborhood queries are computed coordinatewise. *)

type t = private int array
(** Coordinate [i] is a node of [Schema.hierarchy schema i]. Items compare
    structurally; they are immutable by convention (the [private] type
    prevents construction, not mutation of coordinates — do not mutate). *)

val make : Schema.t -> Hr_hierarchy.Hierarchy.node array -> t
(** Validates arity and that each coordinate belongs to its attribute's
    hierarchy. Raises {!Types.Model_error} otherwise. *)

val of_names : Schema.t -> string list -> t
(** Convenience: resolve each class/instance name in its attribute's
    hierarchy, positionally. *)

val coords : t -> Hr_hierarchy.Hierarchy.node array
(** A fresh copy of the coordinates. *)

val coord : t -> int -> Hr_hierarchy.Hierarchy.node
val arity : t -> int

val compare : t -> t -> int
(** Structural (lexicographic) order — a total order for container keys,
    unrelated to subsumption. *)

val equal : t -> t -> bool
val hash : t -> int

val is_atomic : Schema.t -> t -> bool
(** All coordinates are instances. *)

val subsumes : Schema.t -> t -> t -> bool
(** [subsumes schema a b] iff every coordinate of [a] subsumes the
    corresponding coordinate of [b] over [isa] edges: the extension of [b]
    is contained in that of [a]. Reflexive. *)

val strictly_subsumes : Schema.t -> t -> t -> bool

val binds_below : Schema.t -> t -> t -> bool
(** Coordinatewise reachability over [isa] and preference edges — the
    binding-strength order (paper, Appendix). *)

val comparable : Schema.t -> t -> t -> bool
(** One subsumes the other. *)

val intersects : Schema.t -> t -> t -> bool
(** Optimistic intersection: every pair of corresponding coordinates has an
    explicit common descendant. *)

val maximal_common_descendants : Schema.t -> t -> t -> t list
(** The maximal common descendants of two items: the cartesian product of
    the per-coordinate maximal common descendants (maximality in a product
    order is coordinatewise). Empty iff the items do not intersect. These
    are the paper's minimal-conflict-resolution-set items (§3.1). *)

val substitute : t -> int -> Hr_hierarchy.Hierarchy.node -> t
(** Fresh item with one coordinate replaced. The caller must ensure the
    node belongs to the right hierarchy. *)

val project : t -> int list -> t
val concat : t -> t -> t

val atomic_extension : Schema.t -> ?over:int list -> t -> t list
(** All items obtained by replacing each coordinate in [over] (default:
    all coordinates) by one of its instance leaves — the enumeration step
    of explication (paper, §3.3.2). A class coordinate with no instances
    yields no items. *)

val pp : Schema.t -> Format.formatter -> t -> unit
(** Paper style: class coordinates are printed with a [∀] prefix
    (rendered as ["V "]), instances bare. *)

val to_string : Schema.t -> t -> string
