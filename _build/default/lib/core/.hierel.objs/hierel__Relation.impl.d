lib/core/relation.ml: Format Hr_hierarchy Hr_util Item List Map Schema Types
