lib/core/rel_diff.ml: Flatten Format Item List Relation Schema Types
