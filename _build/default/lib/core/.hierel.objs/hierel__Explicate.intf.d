lib/core/explicate.mli: Relation
