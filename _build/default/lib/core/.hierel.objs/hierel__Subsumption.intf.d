lib/core/subsumption.mli: Format Hr_graph Relation Types
