lib/core/catalog.mli: Hr_hierarchy Relation
