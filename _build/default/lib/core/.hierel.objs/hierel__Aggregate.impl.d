lib/core/aggregate.ml: Explicate Flatten Hashtbl Hr_hierarchy Int Item List Option Relation Schema String
