lib/core/rel_diff.mli: Format Item Relation Schema Types
