lib/core/subsumption.ml: Array Format Hr_graph Item List Relation Types
