lib/core/integrity.mli: Format Item Relation Schema Types
