lib/core/schema.mli: Format Hr_hierarchy Hr_util
