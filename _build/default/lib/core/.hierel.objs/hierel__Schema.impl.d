lib/core/schema.ml: Array Format Hashtbl Hr_hierarchy Hr_util List Option Types
