lib/core/ops.ml: Array Binding Consolidate Explicate Fun Hr_hierarchy Item List Option Queue Relation Schema Set Types
