lib/core/explicate.ml: Fun Item List Relation Schema Subsumption Types
