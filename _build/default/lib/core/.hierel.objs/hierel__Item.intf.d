lib/core/item.mli: Format Hr_hierarchy Schema
