lib/core/aggregate.mli: Hr_hierarchy Relation
