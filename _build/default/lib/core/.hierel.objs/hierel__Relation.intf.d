lib/core/relation.mli: Format Item Schema Types
