lib/core/catalog.ml: Hr_hierarchy Hr_util Integrity Relation Types
