lib/core/txn.ml: Catalog Hr_util Integrity Item Relation
