lib/core/integrity.ml: Array Binding Format Fun Item List Option Relation Seq Set Types
