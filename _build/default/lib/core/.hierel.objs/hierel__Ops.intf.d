lib/core/ops.mli: Item Relation Schema Types
