lib/core/item.ml: Array Format Fun Hashtbl Hr_hierarchy List Schema Stdlib Types
