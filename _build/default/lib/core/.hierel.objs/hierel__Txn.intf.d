lib/core/txn.mli: Catalog Integrity Item Relation Types
