lib/core/consolidate.mli: Relation
