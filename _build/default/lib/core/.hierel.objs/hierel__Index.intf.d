lib/core/index.mli: Binding Item Relation Types
