lib/core/flatten.mli: Item Relation Set
