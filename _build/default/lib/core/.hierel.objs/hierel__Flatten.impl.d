lib/core/flatten.ml: Binding Explicate Item Relation Schema Set
