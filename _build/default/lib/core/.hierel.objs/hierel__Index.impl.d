lib/core/index.ml: Array Binding Hashtbl Hr_hierarchy Int Item List Option Relation Schema Types
