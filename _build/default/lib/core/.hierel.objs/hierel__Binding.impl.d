lib/core/binding.ml: Array Format Fun Hashtbl Hr_hierarchy Item List Relation Schema Types
