lib/core/consolidate.ml: Hr_graph List Relation Subsumption Types
