lib/core/binding.mli: Format Item Relation Schema Types
