(** The subsumption graph of a relation (paper, §2.1, §3.2–3.3).

    Nodes are the stored tuples plus the virtual {e universal negated
    tuple} over D⁺ (§3.2); edges are the transitive reduction of strict
    item subsumption ([isa] only — set inclusion, not binding preference),
    with the universal root pointing at every tuple that has no other
    predecessor. Consolidation and explication both traverse this graph. *)

type t

val build : Relation.t -> t

val relation : t -> Relation.t
(** The relation the graph was built from. *)

val tuple_count : t -> int

val tuple : t -> int -> Relation.tuple
(** Tuples are numbered [0 .. tuple_count - 1]. *)

val root : t -> int
(** Node id of the universal negated tuple ([= tuple_count]). *)

val dag : t -> Hr_graph.Dag.t
(** The underlying graph; mutating it is allowed (consolidation eliminates
    nodes in place) and does not affect the source relation. *)

val sign_of_node : t -> int -> Types.sign
(** Sign of a tuple node, or [Neg] for the root. *)

val topological : t -> int list
(** Live nodes, most general first (the root leads). *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val pp : Format.formatter -> t -> unit
(** One line per edge, tuples rendered in paper style. *)
