(** The ambiguity integrity constraint (paper, §3.1).

    "For each item in the cartesian product of the attribute domains of a
    relation, either there should be a tuple associated with the item, or
    every strongest-binding tuple should have the same truth value."

    Checking every item directly is impossible (the item space is the full
    product). Soundness of the pairwise check used here: if any item has
    conflicting strongest binders, two of them are incomparable tuples
    [t⁺], [t⁻] of opposite sign whose items intersect, and the conflict
    reappears at one of the maximal common descendants of their items —
    because every tuple relevant to the original item below such a witness
    would contradict the binders' minimality. Hence checking all
    opposite-sign incomparable pairs at their maximal-common-descendant
    witnesses is sound and complete under the paper's optimistic
    intersection rule ("two sets are disjoint unless there is evidence to
    the contrary").

    The same witnesses are the paper's {e minimal conflict resolution
    set}: asserting one tuple per witness (or fewer, if an item binds more
    closely to several witnesses) always resolves the conflict.

    Under [On_path] and [No_preemption] semantics a conflict can also
    arise below two {e comparable} tuples, so the check falls back to an
    exhaustive enumeration: the atomic extensions of all negated tuples
    plus the stored items and MCD witnesses. (A conflicting item always
    has a negative binder, so it lies below a negated tuple; conflicts
    confined to instance-free classes are invisible both to this
    enumeration and to the equivalent flat relation.) *)

type conflict = {
  pos : Relation.tuple;  (** the positive tuple of the clashing pair *)
  neg : Relation.tuple;  (** the negative tuple *)
  witnesses : Item.t list;
      (** the maximal common descendants at which the verdict is a
          conflict — the minimal conflict resolution set for this pair *)
}

val check : ?semantics:Types.semantics -> Relation.t -> conflict list
(** All unresolved conflicts. Empty iff the relation satisfies the
    ambiguity constraint. *)

val is_consistent : ?semantics:Types.semantics -> Relation.t -> bool

val minimal_resolution_set : Relation.t -> Item.t -> Item.t -> Item.t list
(** [minimal_resolution_set rel a b] — the maximal common descendants of
    two items, i.e. the tuples one of which must be asserted (per item) to
    disambiguate intersecting opposite assertions on [a] and [b]. *)

val first_conflict : ?semantics:Types.semantics -> Relation.t -> conflict option
(** Cheaper than {!check} when only consistency matters but a diagnostic
    is wanted on failure. *)

val pp_conflict : Schema.t -> Format.formatter -> conflict -> unit
