module Item_set = Flatten.Item_set

type t = {
  gained : Item.t list;
  lost : Item.t list;
  added_tuples : Relation.tuple list;
  removed_tuples : Relation.tuple list;
  resigned : (Item.t * Types.sign) list;
}

let diff ~prev ~next =
  if not (Schema.equal (Relation.schema prev) (Relation.schema next)) then
    Types.model_error "cannot diff %S against %S: schemas differ" (Relation.name prev)
      (Relation.name next);
  let ext_prev = Flatten.extension prev and ext_next = Flatten.extension next in
  let gained = Item_set.elements (Item_set.diff ext_next ext_prev) in
  let lost = Item_set.elements (Item_set.diff ext_prev ext_next) in
  let added_tuples, resigned =
    Relation.fold
      (fun (t : Relation.tuple) (added, resigned) ->
        match Relation.find prev t.Relation.item with
        | None -> (t :: added, resigned)
        | Some old_sign when not (Types.sign_equal old_sign t.Relation.sign) ->
          (added, (t.Relation.item, t.Relation.sign) :: resigned)
        | Some _ -> (added, resigned))
      next ([], [])
  in
  let removed_tuples =
    Relation.fold
      (fun (t : Relation.tuple) acc ->
        if Relation.mem next t.Relation.item then acc else t :: acc)
      prev []
  in
  {
    gained;
    lost;
    added_tuples = List.rev added_tuples;
    removed_tuples = List.rev removed_tuples;
    resigned = List.rev resigned;
  }

let is_semantic_noop d = d.gained = [] && d.lost = []

let pp schema ppf d =
  let item ppf it = Item.pp schema ppf it in
  let tuple ppf (t : Relation.tuple) =
    Format.fprintf ppf "%a%a" Types.pp_sign t.Relation.sign item t.Relation.item
  in
  let section name pp_elt = function
    | [] -> ()
    | xs ->
      Format.fprintf ppf "%s:@." name;
      List.iter (fun x -> Format.fprintf ppf "  %a@." pp_elt x) xs
  in
  section "gained (extension)" item d.gained;
  section "lost (extension)" item d.lost;
  section "tuples added" tuple d.added_tuples;
  section "tuples removed" tuple d.removed_tuples;
  section "tuples re-signed"
    (fun ppf (it, sign) -> Format.fprintf ppf "%a now %a" item it Types.pp_sign sign)
    d.resigned;
  if is_semantic_noop d && d.added_tuples = [] && d.removed_tuples = [] && d.resigned = []
  then Format.fprintf ppf "no changes@."
  else if is_semantic_noop d then Format.fprintf ppf "(stored form only; extension unchanged)@."
