module Dag = Hr_graph.Dag

(* Walk the subsumption graph most-general first; a node whose current
   immediate predecessors all carry its own sign is redundant and is
   eliminated (off-path, preserving the transitive reduction) before the
   walk continues. The initial topological order remains valid after
   eliminations because node elimination preserves reachability among the
   surviving nodes. *)
let consolidate_verbose rel =
  let g = Subsumption.build rel in
  let dag = Subsumption.dag g in
  let removed = ref [] in
  let result = ref rel in
  List.iter
    (fun v ->
      if v <> Subsumption.root g then begin
        let t = Subsumption.tuple g v in
        let preds = Dag.preds dag v in
        let agrees u = Types.sign_equal (Subsumption.sign_of_node g u) t.Relation.sign in
        if preds <> [] && List.for_all agrees preds then begin
          removed := t :: !removed;
          result := Relation.remove !result t.Relation.item;
          Dag.eliminate_node dag ~on_path:false v
        end
      end)
    (Subsumption.topological g);
  (!result, List.rev !removed)

let consolidate rel = fst (consolidate_verbose rel)
let redundant_tuples rel = snd (consolidate_verbose rel)
let is_consolidated rel = redundant_tuples rel = []
