module Hierarchy = Hr_hierarchy.Hierarchy

type t = int array

let make schema coords =
  if Array.length coords <> Schema.arity schema then
    Types.model_error "item arity %d does not match schema arity %d"
      (Array.length coords) (Schema.arity schema);
  Array.iteri
    (fun i v ->
      let h = Schema.hierarchy schema i in
      (* node_name checks liveness and raises Hierarchy.Error otherwise *)
      ignore (Hierarchy.node_name h v))
    coords;
  Array.copy coords

let of_names schema names =
  if List.length names <> Schema.arity schema then
    Types.model_error "expected %d values, got %d" (Schema.arity schema) (List.length names);
  Array.of_list
    (List.mapi (fun i name -> Hierarchy.find_exn (Schema.hierarchy schema i) name) names)

let coords t = Array.copy t
let coord t i = t.(i)
let arity = Array.length

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b
let hash (t : t) = Hashtbl.hash t

let is_atomic schema t =
  let ok = ref true in
  Array.iteri (fun i v -> if not (Hierarchy.is_instance (Schema.hierarchy schema i) v) then ok := false) t;
  !ok

let forall2 schema p a b =
  let n = Array.length a in
  let rec loop i = i >= n || (p (Schema.hierarchy schema i) a.(i) b.(i) && loop (i + 1)) in
  loop 0

let subsumes schema a b = forall2 schema Hierarchy.subsumes a b
let strictly_subsumes schema a b = (not (equal a b)) && subsumes schema a b
let binds_below schema a b = forall2 schema Hierarchy.binds_below a b
let comparable schema a b = subsumes schema a b || subsumes schema b a
let intersects schema a b = forall2 schema Hierarchy.intersects a b

(* Cartesian product of per-coordinate choices. *)
let product_map (choices : int list array) : t list =
  let n = Array.length choices in
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        (List.concat_map (fun rest -> List.map (fun v -> v :: rest) choices.(i)) acc)
  in
  List.map Array.of_list (build (n - 1) [ [] ])

let maximal_common_descendants schema a b =
  let n = Array.length a in
  let choices = Array.make n [] in
  let nonempty = ref true in
  for i = 0 to n - 1 do
    let mcd = Hierarchy.maximal_common_descendants (Schema.hierarchy schema i) a.(i) b.(i) in
    if mcd = [] then nonempty := false;
    choices.(i) <- mcd
  done;
  if !nonempty then product_map choices else []

let substitute t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let project t positions = Array.of_list (List.map (fun i -> t.(i)) positions)
let concat = Array.append

let atomic_extension schema ?over t =
  let n = Array.length t in
  let over = match over with None -> List.init n Fun.id | Some l -> l in
  let choices =
    Array.mapi
      (fun i v ->
        if List.mem i over then Hierarchy.leaves_under (Schema.hierarchy schema i) v
        else [ v ])
      t
  in
  if Array.exists (fun c -> c = []) choices then [] else product_map choices

let pp schema ppf t =
  Format.pp_print_string ppf "(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string ppf ", ";
      let h = Schema.hierarchy schema i in
      if Hierarchy.is_class h v then Format.pp_print_string ppf "V ";
      Format.pp_print_string ppf (Hierarchy.node_label h v))
    t;
  Format.pp_print_string ppf ")"

let to_string schema t = Format.asprintf "%a" (pp schema) t
