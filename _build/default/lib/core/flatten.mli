(** The equivalent flat relation (paper, §2.2).

    "Every hierarchical relation must be equivalent to a unique flat
    relation for a given item hierarchy." This module materializes that
    extension; it is the semantic yardstick every operator is tested
    against. *)

module Item_set : Set.S with type elt = Item.t

val extension : Relation.t -> Item_set.t
(** The set of atomic items satisfying the relation (positive tuples of a
    full explication). Finite because class extensions enumerate declared
    instances. *)

val extension_list : Relation.t -> Item.t list

val equal_extension : Relation.t -> Relation.t -> bool
(** Extensional equivalence of two relations over equal schemas. *)

val holds_atomic : Relation.t -> Item.t -> bool
(** Truth of one atomic item, via binding (no materialization). *)
