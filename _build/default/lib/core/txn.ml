module Symbol = Hr_util.Symbol

type violation = { relation_name : string; conflicts : Integrity.conflict list }

type t = { catalog : Catalog.t; staged : Relation.t Symbol.Tbl.t }

let begin_ catalog = { catalog; staged = Symbol.Tbl.create 8 }

let current t name =
  match Symbol.Tbl.find_opt t.staged (Symbol.intern name) with
  | Some r -> r
  | None -> Catalog.relation t.catalog name

let stage t r = Symbol.Tbl.replace t.staged (Symbol.intern (Relation.name r)) r

let insert_item t ~rel sign item = stage t (Relation.add (current t rel) item sign)
let delete_item t ~rel item = stage t (Relation.remove (current t rel) item)

let insert t ~rel sign names =
  let r = current t rel in
  stage t (Relation.add r (Item.of_names (Relation.schema r) names) sign)

let delete t ~rel names =
  let r = current t rel in
  stage t (Relation.remove r (Item.of_names (Relation.schema r) names))

let staged t = Symbol.Tbl.fold (fun _ r acc -> r :: acc) t.staged []

let conflicts t ?semantics name = Integrity.check ?semantics (current t name)

let commit ?semantics t =
  let violations =
    Symbol.Tbl.fold
      (fun _ r acc ->
        match Integrity.check ?semantics r with
        | [] -> acc
        | conflicts -> { relation_name = Relation.name r; conflicts } :: acc)
      t.staged []
  in
  match violations with
  | [] ->
    Symbol.Tbl.iter (fun _ r -> Catalog.replace_relation t.catalog r) t.staged;
    Symbol.Tbl.reset t.staged;
    Ok ()
  | _ :: _ -> Error violations

let abort t = Symbol.Tbl.reset t.staged
