module Hierarchy = Hr_hierarchy.Hierarchy

type t = {
  relation : Relation.t;
  buckets : (int, int list) Hashtbl.t array;
      (** per attribute: hierarchy node -> indexes of tuples whose item has
          that node in this coordinate *)
  tuples : Relation.tuple array;
}

let build relation =
  let schema = Relation.schema relation in
  let arity = Schema.arity schema in
  let tuples = Array.of_list (Relation.tuples relation) in
  let buckets = Array.init arity (fun _ -> Hashtbl.create 64) in
  Array.iteri
    (fun idx (t : Relation.tuple) ->
      for i = 0 to arity - 1 do
        let node = Item.coord t.Relation.item i in
        let existing = Option.value ~default:[] (Hashtbl.find_opt buckets.(i) node) in
        Hashtbl.replace buckets.(i) node (idx :: existing)
      done)
    tuples;
  { relation; buckets; tuples }

let relation t = t.relation

(* Candidate tuples via the cheapest coordinate: those whose coordinate i
   is an ancestor of the query's coordinate i. The other coordinates are
   then checked by full subsumption. *)
let relevant t item =
  let schema = Relation.schema t.relation in
  let arity = Schema.arity schema in
  let candidate_lists =
    List.init arity (fun i ->
        let h = Schema.hierarchy schema i in
        let ancestors = Hierarchy.ancestors h (Item.coord item i) in
        List.concat_map
          (fun node -> Option.value ~default:[] (Hashtbl.find_opt t.buckets.(i) node))
          ancestors)
  in
  let seed =
    List.fold_left
      (fun best l -> if List.length l < List.length best then l else best)
      (List.hd candidate_lists) (List.tl candidate_lists)
  in
  List.sort_uniq Int.compare seed
  |> List.filter_map (fun idx ->
         let tup = t.tuples.(idx) in
         if Item.strictly_subsumes schema tup.Relation.item item then Some tup else None)

let verdict ?semantics t item =
  Binding.decide ?semantics (Relation.schema t.relation) item
    ~exact:(Relation.find t.relation item) ~relevant:(relevant t item)

let truth ?semantics t item =
  match verdict ?semantics t item with
  | Binding.Asserted (sign, _) -> sign
  | Binding.Unasserted -> Types.Neg
  | Binding.Conflict _ ->
    Types.model_error "conflict at item %s in relation %S"
      (Item.to_string (Relation.schema t.relation) item)
      (Relation.name t.relation)

let holds ?semantics t item = Types.bool_of_sign (truth ?semantics t item)
