(** Standard relational operators lifted to hierarchical relations
    (paper, §3.4) plus the refinement machinery they share.

    Every operator is defined so that it commutes with flattening: the
    equivalent flat relation of the result equals the flat operator
    applied to the equivalent flat relations of the operands ("the
    semantics of relational operators is not altered"). Operands must be
    consistent (satisfy the ambiguity constraint); {!Types.Model_error} is
    raised when a conflict is hit during evaluation.

    The shared construction — {!refine} — takes a set of candidate items,
    closes it under maximal common descendants of incomparable
    intersecting pairs, evaluates a caller-supplied sign for each item,
    and consolidates. Closure makes the minimal relevant candidate for any
    atomic item unique, which makes the construction exact (see DESIGN.md
    §5); the property-based tests in [test/test_ops.ml] check operator
    results against explicated baselines. *)

val refine :
  ?name:string ->
  ?consolidate:bool ->
  Schema.t ->
  (Item.t -> Types.sign) ->
  Item.t list ->
  Relation.t
(** [refine schema eval seeds]: the closure-evaluate-consolidate pipeline.
    [consolidate] defaults to [true]. *)

val select : ?name:string -> Relation.t -> attr:string -> value:string -> Relation.t
(** [select r ~attr ~value] restricts [r] to the region where [attr] lies
    in the extension of [value] (a class or instance name of that
    attribute's hierarchy). Figs. 7–9 of the paper. *)

val select_justified :
  ?name:string ->
  Relation.t ->
  attr:string ->
  value:string ->
  Relation.t * Relation.tuple list
(** Like {!select} but also returns the applicable tuples of the operand —
    the paper's justification facility (Fig. 9b). *)

val project : ?name:string -> Relation.t -> string list -> Relation.t
(** Syntactic projection: drops the other attributes from every stored
    tuple. Negated tuples are retained (as in the paper's Fig. 11c, where
    projecting the join back loses no information). When projected tuples
    of opposite sign collide on one item, the positive wins (existential
    flat semantics). For class values whose extension is partially
    covered, syntactic projection can differ from the flat projection —
    use {!project_exact} when exact existential semantics are required. *)

val project_exact : ?name:string -> Relation.t -> string list -> Relation.t
(** Flat-equivalent projection via full explication: atomic tuples only. *)

val union : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Set union of the extensions (Fig. 10c). Schemas must be equal. *)

val inter : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Fig. 10d. *)

val diff : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Extension of the first minus extension of the second (Figs. 10e–f). *)

val join : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Natural join on the attributes common to both schemas (matched by
    name; the shared attributes must use the same hierarchy). With no
    shared attribute this is the cartesian product. Fig. 11b. *)

val rename : ?name:string -> Relation.t -> old_name:string -> new_name:string -> Relation.t
(** Renames one attribute; the body is unchanged. *)
