(** Semantic differencing of hierarchical relations.

    Two relations over the same schema can differ in stored form without
    differing in meaning (that is the whole point of consolidation), so a
    useful diff has two layers:

    - the {e extensional} diff — atomic items gained and lost, i.e. how
      the equivalent flat relations differ (what a downstream reader
      observes);
    - the {e intensional} diff — stored tuples added, removed, or
      re-signed (what a reviewer of the stored policy/knowledge sees).

    Typical uses: auditing a policy change before commit, showing what a
    transaction would do, and regression-checking imports. *)

type t = {
  gained : Item.t list;  (** atomic items true in [next] but not [prev] *)
  lost : Item.t list;  (** atomic items true in [prev] but not [next] *)
  added_tuples : Relation.tuple list;  (** stored in [next] only *)
  removed_tuples : Relation.tuple list;  (** stored in [prev] only *)
  resigned : (Item.t * Types.sign) list;
      (** same item stored in both with opposite signs; the sign given is
          the new one *)
}

val diff : prev:Relation.t -> next:Relation.t -> t
(** Raises {!Types.Model_error} if the schemas differ. *)

val is_semantic_noop : t -> bool
(** No extensional change (the stored form may still differ — e.g. after
    a consolidation). *)

val pp : Schema.t -> Format.formatter -> t -> unit
