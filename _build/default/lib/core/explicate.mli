(** The [explicate] operator (paper, §3.3.2).

    Flattens a relation to its extension over all or a subset of its
    attributes: every tuple of the result has instances (atomic values) in
    the explicated positions. The algorithm traverses the subsumption
    graph in reverse topological order (most specific tuple first),
    enumerates the membership of each class value to be explicated, and
    inserts each resulting tuple unless one with the same item was already
    inserted — on a consistent relation the first inserter is a strongest
    binder, so first-insertion-wins is exact.

    After a {e full} explication every negated tuple is redundant (the
    paper notes a following consolidate removes them), so they are dropped
    by default; partial explication keeps them, as they are then genuine
    exceptions. *)

val explicate : ?over:string list -> ?keep_negated:bool -> Relation.t -> Relation.t
(** [over] lists the attributes to flatten (default: all).
    [keep_negated] defaults to [false] for full explication and is forced
    to [true] for partial explication. The input must be consistent
    (ambiguity-constraint-satisfying); on a conflicted relation the result
    is unspecified among the conflicting signs. *)

val extension_size : Relation.t -> int
(** Cardinality of the equivalent flat relation ([explicate] then count),
    without retaining the tuples. *)
