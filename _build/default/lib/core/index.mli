(** A secondary index over a relation for fast binding queries.

    {!Binding.verdict} scans every stored tuple per query; for large
    relations the scan dominates. The index buckets tuples by the
    hierarchy node in each coordinate, so the relevant-tuple set for an
    item is gathered by walking the (usually short) ancestor list of one
    coordinate and probing buckets, then filtering on the remaining
    coordinates. The paper's efficiency discussion (§1, §4 "the model
    shows promise of efficient implementation") is the motivation;
    experiment C9 in the benchmark harness measures the gain.

    Like {!Hr_graph.Dag.Reach}, the index is a snapshot of an immutable
    relation value: build it once per relation version. *)

type t

val build : Relation.t -> t

val relation : t -> Relation.t

val relevant : t -> Item.t -> Relation.tuple list
(** Same contract as {!Binding.relevant}: tuples whose item strictly
    subsumes the argument (deterministic order, not necessarily the same
    order as the unindexed scan). *)

val verdict : ?semantics:Types.semantics -> t -> Item.t -> Binding.verdict
(** Same result as {!Binding.verdict} on the underlying relation. *)

val truth : ?semantics:Types.semantics -> t -> Item.t -> Types.sign
val holds : ?semantics:Types.semantics -> t -> Item.t -> bool
