(** Statistical operations over hierarchical relations.

    The paper motivates explication precisely here (§3.3.2): "This
    operator is useful when a count, average, or other statistical
    operation is to be performed over the relation." These helpers
    explicate internally (over the needed attributes only) and compute on
    the resulting atomic tuples, so callers never mistake the stored
    tuple count for the real cardinality. *)

val count : Relation.t -> int
(** Cardinality of the equivalent flat relation. *)

val count_by : Relation.t -> attr:string -> (Hr_hierarchy.Hierarchy.node * int) list
(** Group the extension by the instance in position [attr]: one pair per
    instance with a non-zero count, in instance order. For a
    single-attribute relation this is the membership indicator. *)

val count_under :
  Relation.t -> attr:string -> cls:string -> int
(** Members of the extension whose [attr] coordinate falls under [cls] —
    "how many flying creatures are penguins?". *)

val histogram : Relation.t -> attr:string -> (string * int) list
(** {!count_by} with labels, sorted by descending count then name; ready
    for printing. *)
