(** A frame-based knowledge representation front end.

    The paper's introduction pitches the hierarchical relational model as
    "a back-end for, say, a frame-based knowledge representation system"
    (§1), with class facts stored once and inherited, and exception
    semantics handled in the data model rather than in the reasoner. This
    module is that front end:

    - {e frames} are classes, {e individuals} are instances — both live
      in one entity hierarchy;
    - each {e slot} is a binary hierarchical relation
      [slot(entity, value)] over the entity hierarchy and the slot's
      value domain;
    - {!set_slot} uses functional-slot semantics: asserting a new value
      for a frame automatically asserts the explicit cancellation of any
      inherited value (the paper's "royal elephants are not grey but
      white" idiom, via {!Hr_frontend.Frontend.assert_functional});
    - every update runs in a transaction and is refused if it would
      leave a slot relation violating the ambiguity constraint, with the
      conflict witnesses reported so the caller can resolve them.

    The catalog underneath is ordinary ({!catalog}), so HRQL, Datalog and
    all the relational operators work on a knowledge base directly. *)

type t

exception Kb_error of string

val create : ?entity_domain:string -> unit -> t
(** [create ()] — a knowledge base whose entity hierarchy is rooted at
    [entity_domain] (default ["thing"]). *)

val catalog : t -> Hierel.Catalog.t
val entities : t -> Hr_hierarchy.Hierarchy.t

val define_frame : t -> ?is_a:string list -> string -> unit
(** A class frame, under the given parent frames (default: the root). *)

val define_individual : t -> ?is_a:string list -> string -> unit

val define_slot : ?multi:bool -> t -> slot:string -> values:string list -> unit
(** Declares a slot with the given value vocabulary (a fresh flat value
    hierarchy named after the slot). [multi] (default [false]) controls
    {!set_slot}: functional slots cancel inherited values on update,
    multi-valued slots accumulate. *)

val set_slot : t -> frame:string -> slot:string -> value:string -> unit
(** Asserts [slot(frame) = value] for the frame and everything under it.
    On a functional slot, inherited different values are explicitly
    cancelled. Raises {!Kb_error} if the update cannot be made
    consistent. *)

val forbid_slot : t -> frame:string -> slot:string -> value:string -> unit
(** Negative assertion: the value does {e not} hold for this frame —
    an exception if something more general says otherwise. *)

val get_slot : t -> frame:string -> slot:string -> string list
(** The values that hold for the frame (by binding, i.e. with inheritance
    and exceptions applied), sorted. *)

val slot_value : t -> frame:string -> slot:string -> string option
(** Convenience for functional slots: the single holding value, if any.
    Raises {!Kb_error} when several hold. *)

val explain_slot :
  t -> frame:string -> slot:string -> value:string -> string
(** Human-readable justification: the verdict and the applicable tuples
    (the paper's justification facility applied to frames). *)

val frames : t -> string list
(** All class frames (excluding the root), sorted. *)

val individuals : t -> string list
