lib/frames/frames.ml: Binding Catalog Format Hashtbl Hierel Hr_frontend Hr_hierarchy Integrity Item List Option Relation Schema String Types
