lib/frames/frames.mli: Hierel Hr_hierarchy
