module Hierarchy = Hr_hierarchy.Hierarchy
module Frontend = Hr_frontend.Frontend
open Hierel

exception Kb_error of string

let kb_error fmt = Format.kasprintf (fun s -> raise (Kb_error s)) fmt

type t = {
  catalog : Catalog.t;
  entities : Hierarchy.t;
  multi : (string, bool) Hashtbl.t; (* slot name -> multi-valued? *)
}

let create ?(entity_domain = "thing") () =
  let catalog = Catalog.create () in
  let entities = Hierarchy.create entity_domain in
  Catalog.define_hierarchy catalog entities;
  { catalog; entities; multi = Hashtbl.create 8 }

let catalog kb = kb.catalog
let entities kb = kb.entities

let wrap f = try f () with
  | Hierarchy.Error msg | Types.Model_error msg -> raise (Kb_error msg)

let define_frame kb ?(is_a = []) name =
  wrap (fun () -> ignore (Hierarchy.add_class kb.entities ~parents:is_a name))

let define_individual kb ?(is_a = []) name =
  wrap (fun () -> ignore (Hierarchy.add_instance kb.entities ~parents:is_a name))

let slot_relation kb slot =
  match Catalog.find_relation kb.catalog slot with
  | Some r -> r
  | None -> kb_error "no slot %S" slot

let define_slot ?(multi = false) kb ~slot ~values =
  wrap (fun () ->
      if Option.is_some (Catalog.find_relation kb.catalog slot) then
        kb_error "slot %S already defined" slot;
      let value_hierarchy = Hierarchy.create (slot ^ "_values") in
      List.iter (fun v -> ignore (Hierarchy.add_instance value_hierarchy v)) values;
      Catalog.define_hierarchy kb.catalog value_hierarchy;
      let schema = Schema.make [ ("entity", kb.entities); ("value", value_hierarchy) ] in
      Catalog.define_relation kb.catalog (Relation.empty ~name:slot schema);
      Hashtbl.replace kb.multi slot multi)

let publish kb rel =
  match Integrity.check rel with
  | [] -> Catalog.replace_relation kb.catalog rel
  | conflicts ->
    kb_error "update to slot %S leaves conflicts: %s" (Relation.name rel)
      (String.concat "; "
         (List.map
            (fun c ->
              Format.asprintf "%a" (Integrity.pp_conflict (Relation.schema rel)) c)
            conflicts))

let resolve_item kb rel frame value =
  let schema = Relation.schema rel in
  ignore (Hierarchy.find_exn kb.entities frame);
  Item.of_names schema [ frame; value ]

let set_slot kb ~frame ~slot ~value =
  wrap (fun () ->
      let rel = slot_relation kb slot in
      let item = resolve_item kb rel frame value in
      let updated =
        if Hashtbl.find kb.multi slot then Relation.add rel item Types.Pos
        else Frontend.assert_functional rel ~entity_attr:"entity" item
      in
      publish kb updated)

let forbid_slot kb ~frame ~slot ~value =
  wrap (fun () ->
      let rel = slot_relation kb slot in
      let item = resolve_item kb rel frame value in
      publish kb (Relation.add rel item Types.Neg))

let get_slot kb ~frame ~slot =
  wrap (fun () ->
      let rel = slot_relation kb slot in
      let schema = Relation.schema rel in
      let value_hierarchy = Schema.hierarchy schema 1 in
      List.filter
        (fun v ->
          Binding.holds rel (resolve_item kb rel frame v))
        (List.map (Hierarchy.node_label value_hierarchy)
           (Hierarchy.instances value_hierarchy))
      |> List.sort String.compare)

let slot_value kb ~frame ~slot =
  match get_slot kb ~frame ~slot with
  | [] -> None
  | [ v ] -> Some v
  | vs -> kb_error "slot %S has %d values for %S" slot (List.length vs) frame

let explain_slot kb ~frame ~slot ~value =
  wrap (fun () ->
      let rel = slot_relation kb slot in
      let schema = Relation.schema rel in
      let item = resolve_item kb rel frame value in
      let verdict = Binding.verdict rel item in
      let applicable = Binding.justification rel item in
      Format.asprintf "@[<v>%s.%s = %s: %a@,applicable:%a@]" frame slot value
        (Binding.pp_verdict schema) verdict
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (t : Relation.tuple) ->
             Format.fprintf ppf "  %a%s" Types.pp_sign t.Relation.sign
               (Item.to_string schema t.Relation.item)))
        applicable)

let frames kb =
  List.filter (fun v -> v <> Hierarchy.root kb.entities) (Hierarchy.classes kb.entities)
  |> List.map (Hierarchy.node_label kb.entities)
  |> List.sort String.compare

let individuals kb =
  List.map (Hierarchy.node_label kb.entities) (Hierarchy.instances kb.entities)
  |> List.sort String.compare
