(** Datalog over the hierarchical relational model.

    Section 2.1 of the paper argues that, unlike semantic nets, the
    hierarchical model does not infer "Tweety can travel far because
    flying things can travel far" from the taxonomy — instead "through
    the use of logic programming, such as PROLOG or DATALOG, on top of our
    hierarchical data model, we are able to provide an even more powerful
    inference mechanism with no loss of succinctness." This module is that
    layer: Datalog with {e stratified negation}, evaluated bottom-up,
    whose EDB predicates are

    - the catalog's hierarchical relations (their explicated positive
      extension, computed on demand), and
    - one built-in binary predicate [member_of(x, c)] per registered
      hierarchy, true when instance [x] falls under class [c].

    Rules are pure strings, e.g.
    ["travels_far(X) :- flies(X)."],
    ["respected_peer(X, Y) :- respects(X, Y), respects(Y, X)."] or
    ["grounded(X) :- member_of(X, bird), not flies(X)."]. *)

type term = Var of string | Const of string
type atom = { pred : string; args : term list }
type literal = Positive of atom | Negative of atom
type rule = { head : atom; body : literal list }

exception Datalog_error of string

val parse_rule : string -> rule
(** ["head(X) :- b1(X, y), not b2(X)."] — variables start with an
    uppercase letter, constants with anything else; [not] negates the
    following atom. The trailing period is optional. Raises
    {!Datalog_error} on syntax errors, on range-restriction violations
    (head variables and all variables of negated atoms must occur in a
    positive body atom) and on empty bodies. *)

val parse_atom : string -> atom

type program

val create : Hierel.Catalog.t -> program
(** EDB = the catalog's relations (frozen at the time each predicate is
    first used) plus [member_of]. *)

val add_rule : program -> rule -> unit
(** Raises {!Datalog_error} at evaluation time if the rule set is not
    stratifiable (a negative dependency cycle). *)

val add_rule_str : program -> string -> unit

val add_fact : program -> string -> string list -> unit
(** Extra base facts not derived from any relation. *)

val query : program -> atom -> string list list
(** All ground instantiations of the atom's arguments that hold in the
    stratified least fixpoint, sorted. Constants in the atom act as
    filters. *)

val holds : program -> string -> string list -> bool
(** [holds p pred args] — membership of one ground fact. *)

val derived_count : program -> int
(** Number of IDB facts in the current fixpoint (forces evaluation). *)

val strata : program -> (string * int) list
(** The stratum assigned to each IDB predicate (forces stratification).
    Raises {!Datalog_error} if the program is not stratifiable. *)
