module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type term = Var of string | Const of string
type atom = { pred : string; args : term list }
type literal = Positive of atom | Negative of atom
type rule = { head : atom; body : literal list }

exception Datalog_error of string

let error fmt = Format.kasprintf (fun s -> raise (Datalog_error s)) fmt

(* ---- parsing -------------------------------------------------------- *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let parse_atom_at input pos =
  let n = String.length input in
  let rec skip i = if i < n && (input.[i] = ' ' || input.[i] = '\t') then skip (i + 1) else i in
  let word i =
    let i = skip i in
    let rec stop j = if j < n && is_word_char input.[j] then stop (j + 1) else j in
    let j = stop i in
    if i = j then error "expected a name at offset %d in %S" i input;
    (String.sub input i (j - i), j)
  in
  let name, i = word pos in
  let i = skip i in
  if i >= n || input.[i] <> '(' then error "expected '(' after %S" name;
  let rec args i acc =
    let a, i = word (i + 1) in
    let term = if a.[0] >= 'A' && a.[0] <= 'Z' then Var a else Const a in
    let i = skip i in
    if i < n && input.[i] = ',' then args i (term :: acc)
    else if i < n && input.[i] = ')' then (List.rev (term :: acc), i + 1)
    else error "expected ',' or ')' in argument list of %S" name
  in
  let args, i = args i [] in
  ({ pred = name; args }, i)

let parse_atom input =
  let atom, i = parse_atom_at input 0 in
  let rest = String.trim (String.sub input i (String.length input - i)) in
  if rest <> "" && rest <> "." then error "trailing input %S" rest;
  atom

(* a literal is an atom optionally prefixed by the keyword [not] *)
let parse_literal_at input pos =
  let n = String.length input in
  let rec skip i = if i < n && (input.[i] = ' ' || input.[i] = '\t') then skip (i + 1) else i in
  let i = skip pos in
  if
    i + 4 <= n
    && String.sub input i 3 = "not"
    && (input.[i + 3] = ' ' || input.[i + 3] = '\t')
  then
    let atom, j = parse_atom_at input (i + 4) in
    (Negative atom, j)
  else
    let atom, j = parse_atom_at input i in
    (Positive atom, j)

let vars_of args = List.filter_map (function Var v -> Some v | Const _ -> None) args

let check_safe rule =
  if rule.body = [] then error "rules must have a non-empty body";
  let positive_vars =
    List.concat_map
      (function Positive a -> vars_of a.args | Negative _ -> [])
      rule.body
  in
  let require where v =
    if not (List.mem v positive_vars) then
      error "%s variable %s does not occur in a positive body atom" where v
  in
  List.iter (require "head") (vars_of rule.head.args);
  List.iter
    (function
      | Negative a -> List.iter (require "negated") (vars_of a.args)
      | Positive _ -> ())
    rule.body

let parse_rule input =
  match String.index_opt input ':' with
  | None -> error "missing ':-' in rule %S" input
  | Some i ->
    if i + 1 >= String.length input || input.[i + 1] <> '-' then
      error "missing ':-' in rule %S" input;
    let head = parse_atom (String.sub input 0 i) in
    let rec body pos acc =
      let literal, j = parse_literal_at input pos in
      let rec skip k =
        if k < String.length input && (input.[k] = ' ' || input.[k] = '\t') then skip (k + 1)
        else k
      in
      let j = skip j in
      if j < String.length input && input.[j] = ',' then body (j + 1) (literal :: acc)
      else List.rev (literal :: acc)
    in
    let rule = { head; body = body (i + 2) [] } in
    check_safe rule;
    rule

(* ---- program state --------------------------------------------------- *)

module Fact_set = Set.Make (struct
  type t = string list

  let compare = Stdlib.compare
end)

type program = {
  catalog : Catalog.t;
  mutable rules : rule list;
  base : (string, Fact_set.t ref) Hashtbl.t;
  edb_cache : (string, Fact_set.t) Hashtbl.t;
  mutable derived : (string, Fact_set.t) Hashtbl.t;
  mutable dirty : bool;
}

let create catalog =
  {
    catalog;
    rules = [];
    base = Hashtbl.create 8;
    edb_cache = Hashtbl.create 8;
    derived = Hashtbl.create 8;
    dirty = true;
  }

let add_rule p rule =
  p.rules <- p.rules @ [ rule ];
  p.dirty <- true

let add_rule_str p s = add_rule p (parse_rule s)

let add_fact p pred args =
  let cell =
    match Hashtbl.find_opt p.base pred with
    | Some c -> c
    | None ->
      let c = ref Fact_set.empty in
      Hashtbl.add p.base pred c;
      c
  in
  cell := Fact_set.add args !cell;
  (* the EDB snapshot for this predicate is stale now *)
  Hashtbl.remove p.edb_cache pred;
  p.dirty <- true

(* ---- EDB -------------------------------------------------------------- *)

let member_of_facts p =
  List.fold_left
    (fun acc h ->
      List.fold_left
        (fun acc inst ->
          List.fold_left
            (fun acc cls ->
              Fact_set.add [ Hierarchy.node_label h inst; Hierarchy.node_label h cls ] acc)
            acc
            (Hierarchy.ancestors h inst))
        acc (Hierarchy.instances h))
    Fact_set.empty
    (Catalog.hierarchies p.catalog)

let relation_facts rel =
  let schema = Relation.schema rel in
  List.fold_left
    (fun acc item ->
      Fact_set.add
        (List.init (Schema.arity schema) (fun i ->
             Hierarchy.node_label (Schema.hierarchy schema i) (Item.coord item i)))
        acc)
    Fact_set.empty (Flatten.extension_list rel)

let edb_facts p pred =
  match Hashtbl.find_opt p.edb_cache pred with
  | Some facts -> facts
  | None ->
    let facts =
      let from_base =
        match Hashtbl.find_opt p.base pred with
        | Some c -> !c
        | None -> Fact_set.empty
      in
      let from_catalog =
        if pred = "member_of" then member_of_facts p
        else
          match Catalog.find_relation p.catalog pred with
          | Some rel -> relation_facts rel
          | None -> Fact_set.empty
      in
      Fact_set.union from_base from_catalog
    in
    Hashtbl.add p.edb_cache pred facts;
    facts

let all_facts p pred =
  let idb =
    match Hashtbl.find_opt p.derived pred with
    | Some facts -> facts
    | None -> Fact_set.empty
  in
  Fact_set.union idb (edb_facts p pred)

(* ---- stratification --------------------------------------------------- *)

(* stratum(p) >= stratum(q) for positive deps, > for negative deps.
   Iterate to a fixpoint; overflow beyond the predicate count means a
   cycle through negation. *)
let compute_strata rules =
  let idb = List.sort_uniq String.compare (List.map (fun r -> r.head.pred) rules) in
  let stratum = Hashtbl.create 8 in
  List.iter (fun pred -> Hashtbl.replace stratum pred 0) idb;
  let get pred = Option.value ~default:0 (Hashtbl.find_opt stratum pred) in
  let limit = List.length idb + 1 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        let h = rule.head.pred in
        List.iter
          (fun literal ->
            let required =
              match literal with
              | Positive a -> get a.pred
              | Negative a -> get a.pred + 1
            in
            if get h < required then begin
              if required > limit then
                error "program is not stratifiable: negation cycle through %S" h;
              Hashtbl.replace stratum h required;
              changed := true
            end)
          rule.body)
      rules
  done;
  stratum

(* ---- evaluation ------------------------------------------------------- *)

let match_atom subst args fact =
  let rec loop subst args fact =
    match args, fact with
    | [], [] -> Some subst
    | Const c :: args, v :: fact -> if c = v then loop subst args fact else None
    | Var x :: args, v :: fact -> (
      match List.assoc_opt x subst with
      | Some bound -> if bound = v then loop subst args fact else None
      | None -> loop ((x, v) :: subst) args fact)
    | _, _ -> None
  in
  loop subst args fact

let instantiate subst args =
  List.map
    (function
      | Const c -> c
      | Var x -> (
        match List.assoc_opt x subst with
        | Some v -> v
        | None -> error "unbound variable %s" x))
    args

(* Evaluate strata bottom-up; within each stratum, iterate its rules to a
   fixpoint. Negated literals consult lower strata (already complete) or
   the EDB, so negation-as-failure is sound. Positive literals are joined
   first, then negative ones filter the bindings. *)
let evaluate p =
  let stratum = compute_strata p.rules in
  let rule_stratum r = Hashtbl.find stratum r.head.pred in
  let max_stratum = List.fold_left (fun m r -> max m (rule_stratum r)) 0 p.rules in
  p.derived <- Hashtbl.create 8;
  for level = 0 to max_stratum do
    let level_rules = List.filter (fun r -> rule_stratum r = level) p.rules in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun rule ->
          let positives, negatives =
            List.partition_map
              (function Positive a -> Either.Left a | Negative a -> Either.Right a)
              rule.body
          in
          let rec join substs = function
            | [] -> substs
            | atom :: rest ->
              let facts = all_facts p atom.pred in
              let substs' =
                List.concat_map
                  (fun subst ->
                    Fact_set.fold
                      (fun fact acc ->
                        match match_atom subst atom.args fact with
                        | Some s -> s :: acc
                        | None -> acc)
                      facts [])
                  substs
              in
              join substs' rest
          in
          let substs = join [ [] ] positives in
          let survives subst =
            List.for_all
              (fun (atom : atom) ->
                not (Fact_set.mem (instantiate subst atom.args) (all_facts p atom.pred)))
              negatives
          in
          List.iter
            (fun subst ->
              if survives subst then begin
                let fact = instantiate subst rule.head.args in
                let current =
                  match Hashtbl.find_opt p.derived rule.head.pred with
                  | Some s -> s
                  | None -> Fact_set.empty
                in
                if
                  not
                    (Fact_set.mem fact
                       (Fact_set.union current (edb_facts p rule.head.pred)))
                then begin
                  Hashtbl.replace p.derived rule.head.pred (Fact_set.add fact current);
                  changed := true
                end
              end)
            substs)
        level_rules
    done
  done;
  p.dirty <- false

let ensure p = if p.dirty then evaluate p

let query p atom =
  ensure p;
  let facts = all_facts p atom.pred in
  Fact_set.fold
    (fun fact acc -> match match_atom [] atom.args fact with Some _ -> fact :: acc | None -> acc)
    facts []
  |> List.sort Stdlib.compare

let holds p pred args =
  ensure p;
  Fact_set.mem args (all_facts p pred)

let derived_count p =
  ensure p;
  Hashtbl.fold (fun _ s acc -> acc + Fact_set.cardinal s) p.derived 0

let strata p =
  let table = compute_strata p.rules in
  Hashtbl.fold (fun pred level acc -> (pred, level) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
