lib/datalog/datalog.mli: Hierel
