lib/datalog/datalog.ml: Catalog Either Flatten Format Hashtbl Hierel Hr_hierarchy Item List Option Relation Schema Set Stdlib String
