module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type hierarchy_spec = {
  name : string;
  classes : int;
  instances : int;
  multi_parent_prob : float;
}

let default_hierarchy_spec =
  { name = "domain"; classes = 20; instances = 40; multi_parent_prob = 0.2 }

let random_hierarchy g spec =
  let h = Hierarchy.create spec.name in
  let class_names = Array.make (spec.classes + 1) spec.name in
  for i = 1 to spec.classes do
    let name = Printf.sprintf "%s_c%d" spec.name i in
    let parent = class_names.(Prng.int g i) in
    let parents =
      if i > 1 && Prng.bernoulli g spec.multi_parent_prob then
        let other = class_names.(Prng.int g i) in
        if other = parent then [ parent ] else [ parent; other ]
      else [ parent ]
    in
    (* the root is the implicit parent when [parents] is just the root *)
    let parents = List.filter (fun p -> p <> spec.name) parents in
    ignore (Hierarchy.add_class h ~parents name);
    class_names.(i) <- name
  done;
  for i = 1 to spec.instances do
    let name = Printf.sprintf "%s_i%d" spec.name i in
    let parent = class_names.(Prng.int g (spec.classes + 1)) in
    let parents =
      if Prng.bernoulli g spec.multi_parent_prob then
        let other = class_names.(Prng.int g (spec.classes + 1)) in
        if other = parent then [ parent ] else [ parent; other ]
      else [ parent ]
    in
    let parents = List.filter (fun p -> p <> spec.name) parents in
    ignore (Hierarchy.add_instance h ~parents name)
  done;
  (* multi-parent choices can create redundant edges (an ancestor picked
     alongside its descendant); restore the reduction the model expects *)
  Hierarchy.reduce h;
  h

let tree_hierarchy ?(name = "tree") ~depth ~fanout ~instances_per_leaf () =
  let h = Hierarchy.create name in
  let counter = ref 0 in
  let rec grow parent level =
    if level < depth then
      for _ = 1 to fanout do
        incr counter;
        let cname = Printf.sprintf "c%d_%d" level !counter in
        let parents = if parent = name then [] else [ parent ] in
        ignore (Hierarchy.add_class h ~parents cname);
        grow cname (level + 1)
      done
    else
      for _ = 1 to instances_per_leaf do
        incr counter;
        ignore (Hierarchy.add_instance h ~parents:[ parent ] (Printf.sprintf "i%d" !counter))
      done
  in
  grow name 0;
  h

let chain_hierarchy ?(name = "chain") ~depth () =
  let h = Hierarchy.create name in
  let prev = ref name in
  for level = 0 to depth - 1 do
    let cname = Printf.sprintf "c%d" level in
    let parents = if !prev = name then [] else [ !prev ] in
    ignore (Hierarchy.add_class h ~parents cname);
    prev := cname
  done;
  ignore (Hierarchy.add_instance h ~parents:[ !prev ] "leaf");
  h

type relation_spec = {
  rel_name : string;
  tuples : int;
  neg_fraction : float;
  instance_fraction : float;
}

let default_relation_spec =
  { rel_name = "r"; tuples = 30; neg_fraction = 0.3; instance_fraction = 0.3 }

let random_node g h ~instance_fraction =
  let pool =
    if Prng.bernoulli g instance_fraction then Hierarchy.instances h
    else Hierarchy.classes h
  in
  match pool with
  | [] -> Hierarchy.root h
  | _ -> Prng.pick g (Array.of_list pool)

let random_relation g schema spec =
  let arity = Schema.arity schema in
  let rel = ref (Relation.empty ~name:spec.rel_name schema) in
  let attempts = ref 0 in
  while Relation.cardinality !rel < spec.tuples && !attempts < spec.tuples * 10 do
    incr attempts;
    let coords =
      Array.init arity (fun i ->
          random_node g (Schema.hierarchy schema i)
            ~instance_fraction:spec.instance_fraction)
    in
    let item = Item.make schema coords in
    let sign = if Prng.bernoulli g spec.neg_fraction then Types.Neg else Types.Pos in
    if not (Relation.mem !rel item) then rel := Relation.add !rel item sign
  done;
  !rel

let repair g rel =
  let rel = ref rel in
  let budget = ref 10_000 in
  let rec loop () =
    if !budget <= 0 then
      Types.model_error "Workload.repair: resolution budget exhausted"
    else
      match Integrity.first_conflict !rel with
      | None -> ()
      | Some c ->
        List.iter
          (fun w ->
            if not (Relation.mem !rel w) then begin
              let sign = if Prng.bool g then Types.Pos else Types.Neg in
              rel := Relation.set !rel w sign
            end)
          c.Integrity.witnesses;
        decr budget;
        loop ()
  in
  loop ();
  !rel

let consistent_random_relation g schema spec = repair g (random_relation g schema spec)

let exception_chain ?(name = "chain") ~depth ~instances_per_class () =
  let h = Hierarchy.create name in
  let prev = ref name in
  for level = 0 to depth - 1 do
    let cname = Printf.sprintf "c%d" level in
    let parents = if !prev = name then [] else [ !prev ] in
    ignore (Hierarchy.add_class h ~parents cname);
    for i = 1 to instances_per_class do
      ignore (Hierarchy.add_instance h ~parents:[ cname ] (Printf.sprintf "i%d_%d" level i))
    done;
    prev := cname
  done;
  let schema = Schema.make [ ("v", h) ] in
  let rel = ref (Relation.empty ~name:(name ^ "_rel") schema) in
  for level = 0 to depth - 1 do
    let sign = if level mod 2 = 0 then Types.Pos else Types.Neg in
    rel := Relation.add_named !rel sign [ Printf.sprintf "c%d" level ]
  done;
  (h, !rel)

let redundant_relation g h ~redundancy ~tuples =
  let schema = Schema.make [ ("v", h) ] in
  let classes = Array.of_list (Hierarchy.classes h) in
  let rel = ref (Relation.empty ~name:"redundant" schema) in
  let current_sign item =
    match Binding.verdict !rel item with
    | Binding.Asserted (s, _) -> s
    | Binding.Unasserted -> Types.Neg
    | Binding.Conflict _ -> Types.Neg
  in
  let attempts = ref 0 in
  while Relation.cardinality !rel < tuples && !attempts < tuples * 20 do
    incr attempts;
    if Relation.is_empty !rel || not (Prng.bernoulli g redundancy) then begin
      (* genuine information: an exception to whatever the node currently
         inherits, so consolidation cannot remove it *)
      let node = Prng.pick g classes in
      let item = Item.make schema [| node |] in
      if not (Relation.mem !rel item) then
        rel := Relation.add !rel item (Types.negate (current_sign item))
    end
    else begin
      (* a redundant tuple: restates the sign the node already inherits *)
      let existing = Array.of_list (Relation.tuples !rel) in
      let t = Prng.pick g existing in
      let below = Hierarchy.descendants h (Item.coord t.Relation.item 0) in
      match below with
      | [] -> ()
      | _ ->
        let node = Prng.pick g (Array.of_list below) in
        let item = Item.make schema [| node |] in
        if not (Relation.mem !rel item) then begin
          let sign = current_sign item in
          rel := Relation.add !rel item sign
        end
    end
  done;
  !rel
