lib/workload/workload.mli: Hierel Hr_hierarchy Hr_util
