lib/workload/workload.ml: Array Binding Hierel Hr_hierarchy Hr_util Integrity Item List Printf Relation Schema Types
