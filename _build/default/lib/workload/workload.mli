(** Deterministic synthetic workloads for tests and benchmarks.

    Nothing here depends on wall-clock or global randomness: every
    generator takes a {!Hr_util.Prng.t}, so a seed fully determines the
    workload. The shapes are chosen to exercise the paper's claims:
    class-tuple compression (§1), exception chains (§2.1), multiple
    inheritance clashes (§3.1), and redundancy for consolidation
    (§3.3.1). *)

type hierarchy_spec = {
  name : string;  (** domain (root class) name; also prefixes node names *)
  classes : int;  (** internal classes, excluding the root *)
  instances : int;
  multi_parent_prob : float;
      (** probability that a class or instance receives a second parent
          (multiple inheritance) *)
}

val default_hierarchy_spec : hierarchy_spec

val random_hierarchy : Hr_util.Prng.t -> hierarchy_spec -> Hr_hierarchy.Hierarchy.t
(** A random rooted DAG. Classes arrive one at a time, each choosing
    parents among the earlier classes — acyclic by construction, and kept
    transitively reduced (off-path preemption's precondition). *)

val tree_hierarchy :
  ?name:string -> depth:int -> fanout:int -> instances_per_leaf:int -> unit ->
  Hr_hierarchy.Hierarchy.t
(** A complete [fanout]-ary class tree of the given depth with instances
    under the deepest classes. Class names are [c<level>_<index>],
    instances [i<index>]. *)

val chain_hierarchy : ?name:string -> depth:int -> unit -> Hr_hierarchy.Hierarchy.t
(** A single chain [c0 > c1 > ... > c<depth-1>] with one instance [leaf]
    under the deepest class — the worst case for membership queries in
    the paper's "traditional encoding" baseline (one join per level). *)

type relation_spec = {
  rel_name : string;
  tuples : int;
  neg_fraction : float;  (** fraction of negated tuples *)
  instance_fraction : float;
      (** fraction of coordinates drawn from instances rather than
          classes *)
}

val default_relation_spec : relation_spec

val random_relation :
  Hr_util.Prng.t -> Hierel.Schema.t -> relation_spec -> Hierel.Relation.t
(** Random signed tuples over random nodes. Direct contradictions are
    skipped; the result may violate the ambiguity constraint — pass it
    through {!repair} when consistency is needed. *)

val repair : Hr_util.Prng.t -> Hierel.Relation.t -> Hierel.Relation.t
(** Adds conflict-resolution tuples (random sign, at the paper's
    minimal-conflict-resolution-set witnesses) until the relation
    satisfies the ambiguity constraint. Terminates because each step
    asserts an item that had no tuple. *)

val consistent_random_relation :
  Hr_util.Prng.t -> Hierel.Schema.t -> relation_spec -> Hierel.Relation.t
(** [random_relation] followed by {!repair}. *)

val exception_chain :
  ?name:string -> depth:int -> instances_per_class:int -> unit ->
  Hr_hierarchy.Hierarchy.t * Hierel.Relation.t
(** A chain hierarchy with [depth] nested classes and a single-attribute
    relation asserting alternating signs down the chain — exceptions to
    exceptions of arbitrary depth (§2.1). *)

val redundant_relation :
  Hr_util.Prng.t -> Hr_hierarchy.Hierarchy.t -> redundancy:float -> tuples:int ->
  Hierel.Relation.t
(** Single-attribute relation where roughly [redundancy] of the tuples are
    implied by a more general same-sign tuple — consolidation fodder. *)
