lib/server/server.mli:
