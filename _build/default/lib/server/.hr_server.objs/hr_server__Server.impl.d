lib/server/server.ml: Buffer Bytes Catalog Fun Hierel Hr_query Hr_storage Printf String Unix
