(** Mutable directed acyclic graphs over dense integer node ids.

    This is the substrate under both the hierarchy graphs of the data model
    (Section 2 of the paper) and the subsumption / tuple-binding graphs of
    relations (Sections 2–3). Nodes are allocated by the graph; edges carry
    a kind: [Isa] edges denote set inclusion and participate in membership
    semantics, [Preference] edges only influence binding strength (paper,
    Appendix). Graphs are not forced acyclic on every edge insertion —
    acyclicity (the paper's {e type-irredundancy constraint}) is checked by
    {!has_cycle} / enforced by callers.

    All traversals ignore nodes removed with {!remove_node} or
    {!eliminate_node}. *)

type edge_kind = Isa | Preference

type t

val create : unit -> t

val copy : t -> t
(** Deep copy; subsequent mutations are independent. *)

val add_node : t -> int
(** Allocates a fresh node and returns its id. Ids are consecutive from 0
    and are never reused, even after removal. *)

val capacity : t -> int
(** One more than the largest id ever allocated. *)

val is_alive : t -> int -> bool

val live_nodes : t -> int list
(** All non-removed nodes, in increasing id order. *)

val live_count : t -> int

val add_edge : t -> ?kind:edge_kind -> int -> int -> unit
(** [add_edge g u v] inserts an edge [u -> v] ([kind] defaults to [Isa]).
    Duplicate (same endpoints, same kind) insertions are ignored. Raises
    [Invalid_argument] if either endpoint is dead or [u = v]. *)

val remove_edge : t -> ?kind:edge_kind -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val mem_edge : t -> ?kind:edge_kind -> int -> int -> bool

val succs : t -> ?kinds:(edge_kind -> bool) -> int -> int list
(** Direct successors through edges whose kind satisfies [kinds]
    (default: all kinds). *)

val preds : t -> ?kinds:(edge_kind -> bool) -> int -> int list

val succs_ordered : t -> ?kinds:(edge_kind -> bool) -> int -> int list
(** Like {!succs} but in edge-insertion order rather than id order —
    hierarchies use this to preserve parent declaration order for
    left-precedence front ends. *)

val preds_ordered : t -> ?kinds:(edge_kind -> bool) -> int -> int list

val remove_node : t -> int -> unit
(** Deletes the node and its incident edges, {e without} relinking
    predecessors to successors. Compare {!eliminate_node}. *)

val eliminate_node : t -> on_path:bool -> int -> unit
(** The paper's node elimination procedure (Section 2.1): delete the node
    and its incident edges, then for each former immediate predecessor [j]
    in reverse topological order and each former immediate successor [k] in
    topological order, insert a bypass edge [j -> k] — unless
    [not on_path] and a path [j ->* k] already exists. With
    [on_path:false] this preserves the transitive reduction (off-path
    preemption); with [on_path:true] redundant bypass edges are retained
    (on-path preemption, paper Appendix). Bypass edges are [Isa] edges.
    Requires the graph to be acyclic. *)

val reachable : t -> ?kinds:(edge_kind -> bool) -> int -> int -> bool
(** [reachable g u v] is [true] iff [u = v] or a directed path of live
    edges (with kinds satisfying [kinds]) leads from [u] to [v]. *)

val descendants : t -> ?kinds:(edge_kind -> bool) -> int -> int list
(** All nodes reachable from the argument, including itself. *)

val ancestors : t -> ?kinds:(edge_kind -> bool) -> int -> int list
(** All nodes that reach the argument, including itself. *)

val roots : t -> int list
(** Live nodes with no live [Isa] predecessors. *)

val leaves : t -> int list
(** Live nodes with no live [Isa] successors. *)

val has_cycle : t -> bool
(** Considers all edge kinds. *)

val topo_sort : t -> int list
(** Topological order of live nodes (ancestors first). Raises
    [Invalid_argument] on a cyclic graph. *)

val transitive_reduction : t -> unit
(** Removes every [Isa] edge [u -> v] for which another [u ->* v] path of
    live edges exists. The paper requires hierarchy graphs to be kept
    transitively reduced for off-path preemption (Appendix, footnote 7).
    Requires acyclicity. *)

val redundant_edges : t -> (int * int) list
(** The [Isa] edges that {!transitive_reduction} would delete. *)

val to_dot : ?label:(int -> string) -> t -> string
(** Graphviz rendering, mainly for debugging and documentation. Preference
    edges are dashed. *)

module Reach : sig
  (** Precomputed reachability index: one bitset of descendants per node,
      built in a single reverse-topological pass. Queries are O(1). The
      index is a snapshot — mutations to the graph after {!create} are not
      reflected. *)

  type dag := t
  type t

  val create : ?kinds:(edge_kind -> bool) -> dag -> t
  val mem : t -> int -> int -> bool
  (** [mem r u v] iff [v] was reachable from [u] (reflexively) at snapshot
      time. *)
end
