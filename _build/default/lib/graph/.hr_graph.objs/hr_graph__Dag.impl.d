lib/graph/dag.ml: Array Buffer Bytes Char Int List Option Printf Queue
