lib/graph/dag.mli:
