open Ast

(* Whether a selection on [attr] can reach into this expression — i.e.
   the expression's schema certainly carries the attribute. Conservative:
   when we cannot tell (a bare relation name — the catalog is not
   consulted here), we answer "maybe", and pushdown through joins only
   fires when exactly the operand structure makes it safe. *)
let rec mentions_attr expr attr =
  match expr with
  | Rel _ -> `Maybe
  | Select (e, _, _) -> mentions_attr e attr
  | Project (_, attrs) -> if List.mem attr attrs then `Yes else `No
  | Rename (e, old_name, new_name) ->
    if attr = new_name then `Yes
    else if attr = old_name then `No
    else mentions_attr e attr
  | Join (a, b) -> (
    match mentions_attr a attr, mentions_attr b attr with
    | `Yes, _ | _, `Yes -> `Yes
    | `No, `No -> `No
    | _, _ -> `Maybe)
  | Union (a, _) | Intersect (a, _) | Except (a, _) -> mentions_attr a attr
  | Consolidated e | Explicated (e, _) -> mentions_attr e attr

(* Drop stored-form re-representations in operand position. *)
let rec strip_representation = function
  | Consolidated e | Explicated (e, _) -> strip_representation e
  | e -> e

let rec rewrite inner expr =
  match expr with
  | Rel _ as e -> e
  | Select (e, attr, v) -> (
    let e = rewrite true e in
    match e with
    | Union (a, b) -> Union (rewrite true (Select (a, attr, v)), rewrite true (Select (b, attr, v)))
    | Intersect (a, b) ->
      Intersect (rewrite true (Select (a, attr, v)), rewrite true (Select (b, attr, v)))
    | Except (a, b) ->
      Except (rewrite true (Select (a, attr, v)), rewrite true (Select (b, attr, v)))
    | Join (a, b) -> (
      (* push onto each side that certainly carries the attribute; if
         neither certainly does, leave the selection above the join *)
      match mentions_attr a attr, mentions_attr b attr with
      | `Yes, `Yes ->
        Join (rewrite true (Select (a, attr, v)), rewrite true (Select (b, attr, v)))
      | `Yes, (`No | `Maybe) -> Join (rewrite true (Select (a, attr, v)), b)
      | (`No | `Maybe), `Yes -> Join (a, rewrite true (Select (b, attr, v)))
      | _, _ -> Select (Join (a, b), attr, v))
    | Select (e', attr', v') when attr = attr' && Ast.value_name v = Ast.value_name v' ->
      Select (e', attr, v)
    | e -> Select (e, attr, v))
  | Project (e, attrs) -> (
    let e = rewrite true e in
    match e with
    | Project (e', attrs') when List.for_all (fun a -> List.mem a attrs') attrs ->
      Project (e', attrs)
    | e -> Project (e, attrs))
  | Join (a, b) -> Join (rewrite true a, rewrite true b)
  | Union (a, b) -> Union (rewrite true a, rewrite true b)
  | Intersect (a, b) -> Intersect (rewrite true a, rewrite true b)
  | Except (a, b) -> Except (rewrite true a, rewrite true b)
  | Rename (e, o, n) -> Rename (rewrite true e, o, n)
  | Consolidated e ->
    let e = rewrite true (strip_representation e) in
    if inner then e else Consolidated e
  | Explicated (e, over) ->
    let e = rewrite true (strip_representation e) in
    if inner then e else Explicated (e, over)

let optimize expr = rewrite false expr

let rec describe = function
  | Rel name -> name
  | Select (e, attr, v) ->
    Printf.sprintf "select[%s=%s](%s)" attr (Ast.value_name v) (describe e)
  | Project (e, attrs) -> Printf.sprintf "project[%s](%s)" (String.concat "," attrs) (describe e)
  | Join (a, b) -> Printf.sprintf "join(%s, %s)" (describe a) (describe b)
  | Union (a, b) -> Printf.sprintf "union(%s, %s)" (describe a) (describe b)
  | Intersect (a, b) -> Printf.sprintf "intersect(%s, %s)" (describe a) (describe b)
  | Except (a, b) -> Printf.sprintf "except(%s, %s)" (describe a) (describe b)
  | Rename (e, o, n) -> Printf.sprintf "rename[%s->%s](%s)" o n (describe e)
  | Consolidated e -> Printf.sprintf "consolidated(%s)" (describe e)
  | Explicated (e, None) -> Printf.sprintf "explicated(%s)" (describe e)
  | Explicated (e, Some attrs) ->
    Printf.sprintf "explicated[%s](%s)" (String.concat "," attrs) (describe e)
