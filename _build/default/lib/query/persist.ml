module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

(* Topological order of hierarchy nodes (parents before children) so the
   emitted CREATE statements can be replayed in order. *)
let topological_nodes h =
  let nodes = Hierarchy.nodes h in
  let indegree = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace indegree v (List.length (Hierarchy.parents h v))) nodes;
  let queue = Queue.create () in
  List.iter (fun v -> if Hashtbl.find indegree v = 0 then Queue.add v queue) nodes;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun c ->
        let d = Hashtbl.find indegree c - 1 in
        Hashtbl.replace indegree c d;
        if d = 0 then Queue.add c queue)
      (Hierarchy.children h v)
  done;
  List.rev !order

let dump_hierarchy buf h =
  let label = Hierarchy.node_label h in
  Buffer.add_string buf (Printf.sprintf "CREATE DOMAIN %s;\n" (label (Hierarchy.root h)));
  List.iter
    (fun v ->
      if v <> Hierarchy.root h then begin
        let parents = String.concat ", " (List.map label (Hierarchy.parents h v)) in
        if Hierarchy.is_instance h v then
          Buffer.add_string buf (Printf.sprintf "CREATE INSTANCE %s OF %s;\n" (label v) parents)
        else
          Buffer.add_string buf (Printf.sprintf "CREATE CLASS %s UNDER %s;\n" (label v) parents)
      end)
    (topological_nodes h);
  List.iter
    (fun (weaker, stronger) ->
      Buffer.add_string buf
        (Printf.sprintf "CREATE PREFERENCE %s OVER %s;\n" (label stronger) (label weaker)))
    (Hierarchy.preference_edges h)

let dump_relation buf rel =
  let schema = Relation.schema rel in
  let attrs =
    String.concat ", "
      (List.mapi
         (fun i name ->
           Printf.sprintf "%s: %s" name
             (Hr_util.Symbol.name (Hierarchy.domain (Schema.hierarchy schema i))))
         (Schema.names schema))
  in
  Buffer.add_string buf (Printf.sprintf "CREATE RELATION %s (%s);\n" (Relation.name rel) attrs);
  let row (t : Relation.tuple) =
    let cells =
      List.init (Schema.arity schema) (fun i ->
          let h = Schema.hierarchy schema i in
          let v = Item.coord t.Relation.item i in
          if Hierarchy.is_class h v then "ALL " ^ Hierarchy.node_label h v
          else Hierarchy.node_label h v)
    in
    Printf.sprintf "(%s %s)"
      (match t.Relation.sign with Types.Pos -> "+" | Types.Neg -> "-")
      (String.concat ", " cells)
  in
  match Relation.tuples rel with
  | [] -> ()
  | tuples ->
    (* node ids are reassigned on load, so canonicalize by the rendered
       text, not by the in-memory item order *)
    let rows = List.sort String.compare (List.map row tuples) in
    Buffer.add_string buf
      (Printf.sprintf "INSERT INTO %s VALUES %s;\n" (Relation.name rel)
         (String.concat ",\n  " rows))

let dump_catalog cat =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "-- hrdb catalog dump (HRQL script)\n";
  let hierarchies =
    List.sort
      (fun a b -> Hr_util.Symbol.compare (Hierarchy.domain a) (Hierarchy.domain b))
      (Catalog.hierarchies cat)
  in
  List.iter (fun h -> dump_hierarchy buf h) hierarchies;
  let relations =
    List.sort
      (fun a b -> String.compare (Relation.name a) (Relation.name b))
      (Catalog.relations cat)
  in
  List.iter (fun r -> dump_relation buf r) relations;
  Buffer.contents buf

let save cat path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_catalog cat))

let load_string cat script =
  match Eval.run_script cat script with Ok _ -> Ok () | Error e -> Error e

let load_file cat path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string cat contents
