(** Algebraic optimization of HRQL query expressions.

    All rewrites preserve the {e equivalent flat relation} of the result —
    the semantics the paper assigns to every operator (§3.4) — though the
    stored (intensional) form may differ, which is harmless because every
    extension has a canonical consolidated form anyway. Rules:

    - {b selection pushdown}: [σ(a ∪ b) → σ(a) ∪ σ(b)] and likewise
      through intersection and difference; through a join, onto every
      operand that carries the attribute;
    - {b selection fusion}: a selection repeated with the same attribute
      and value collapses to one;
    - {b projection fusion}: [π_xs(π_ys(e)) → π_xs(e)] when [xs ⊆ ys];
    - {b re-representation elision}: [CONSOLIDATED e] and [EXPLICATED e]
      in {e operand} position change only the stored form, so they are
      dropped there (they are kept at the top level, where the user asked
      for that specific form).

    The evaluator applies {!optimize} before evaluation; tests in
    [test/test_optimizer.ml] verify extension-equivalence of every rule. *)

val optimize : Ast.query_expr -> Ast.query_expr

val describe : Ast.query_expr -> string
(** A compact prefix rendering of the expression tree, for explain-style
    output and for tests. *)
