lib/query/ast.ml: Hierel
