lib/query/optimizer.mli: Ast
