lib/query/persist.mli: Hierel
