lib/query/parser.ml: Ast Format Hierel Lexer List
