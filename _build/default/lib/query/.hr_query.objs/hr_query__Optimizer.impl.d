lib/query/optimizer.ml: Ast List Printf String
