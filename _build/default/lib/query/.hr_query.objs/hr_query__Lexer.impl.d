lib/query/lexer.ml: Format List Printf String
