lib/query/persist.ml: Buffer Catalog Eval Fun Hashtbl Hierel Hr_hierarchy Hr_util Item List Printf Queue Relation Schema String Types
