type token =
  | Ident of string
  | Kw of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Colon
  | Equals
  | Plus
  | Minus
  | Star

exception Lex_error of string

let keywords =
  [
    "CREATE"; "DOMAIN"; "CLASS"; "INSTANCE"; "ISA"; "PREFERENCE"; "OVER";
    "RELATION"; "UNDER"; "OF"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "FROM";
    "SELECT"; "WHERE"; "WITH"; "JUSTIFICATION"; "ALL"; "LET"; "JOIN"; "UNION";
    "INTERSECT"; "EXCEPT"; "PROJECT"; "ON"; "RENAME"; "TO"; "AS"; "ASK";
    "CONSOLIDATE"; "EXPLICATE"; "CHECK"; "SHOW"; "HIERARCHY"; "HIERARCHIES";
    "RELATIONS"; "EXPLAIN"; "DROP"; "OFF-PATH"; "ON-PATH"; "NO-PREEMPTION";
    "CONSOLIDATED"; "EXPLICATED"; "COUNT"; "PLAN"; "BY"; "AND"; "DIFF";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '&' || c = '-'

let tokenize input =
  let n = String.length input in
  let rec skip i =
    if i >= n then i
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec eol j = if j >= n || input.[j] = '\n' then j else eol (j + 1) in
        skip (eol (i + 2))
      | _ -> i
  in
  let rec loop i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else
      match input.[i] with
      | '(' -> loop (i + 1) (Lparen :: acc)
      | ')' -> loop (i + 1) (Rparen :: acc)
      | ',' -> loop (i + 1) (Comma :: acc)
      | ';' -> loop (i + 1) (Semicolon :: acc)
      | ':' -> loop (i + 1) (Colon :: acc)
      | '=' -> loop (i + 1) (Equals :: acc)
      | '+' -> loop (i + 1) (Plus :: acc)
      | '*' -> loop (i + 1) (Star :: acc)
      | '-' when i + 1 >= n || not (is_ident_char input.[i + 1]) ->
        loop (i + 1) (Minus :: acc)
      | c when is_ident_char c || c = '-' ->
        let rec word j = if j < n && is_ident_char input.[j] then word (j + 1) else j in
        let j = word i in
        let s = String.sub input i (j - i) in
        let upper = String.uppercase_ascii s in
        let tok = if List.mem upper keywords then Kw upper else Ident s in
        loop j (tok :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  loop 0 []

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Kw s -> Format.fprintf ppf "keyword %s" s
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Semicolon -> Format.pp_print_string ppf "';'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Equals -> Format.pp_print_string ppf "'='"
  | Plus -> Format.pp_print_string ppf "'+'"
  | Minus -> Format.pp_print_string ppf "'-'"
  | Star -> Format.pp_print_string ppf "'*'"
