(** Catalog persistence, using HRQL itself as the on-disk format.

    A dump is an ordinary HRQL script — hierarchies first (nodes in
    topological order so parents always precede children), then relation
    schemas, then their tuples — so a catalog saved with {!save} can be
    reloaded with {!load_file}, inspected in any editor, replayed
    statement by statement in the REPL, or version-controlled as plain
    text. Round-tripping preserves hierarchies (names, [isa] and
    preference edges), schemas and stored tuples exactly; it does not
    preserve node ids (they are reassigned on load). *)

val dump_catalog : Hierel.Catalog.t -> string
(** The catalog as an HRQL script. Deterministic: hierarchies and
    relations are emitted in name order. *)

val save : Hierel.Catalog.t -> string -> unit
(** [save cat path] writes {!dump_catalog} to [path]. *)

val load_file : Hierel.Catalog.t -> string -> (unit, string) result
(** Replays a script file into the catalog. Fails like
    {!Eval.run_script} on the first bad statement. *)

val load_string : Hierel.Catalog.t -> string -> (unit, string) result
