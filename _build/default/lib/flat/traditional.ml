module Hierarchy = Hr_hierarchy.Hierarchy

type t = { isa : Flat_relation.t }

let of_hierarchy h =
  let isa = Flat_relation.create ~name:"isa" [ "child"; "parent" ] in
  let isa =
    List.fold_left
      (fun isa node ->
        List.fold_left
          (fun isa parent ->
            Flat_relation.insert isa
              [ Hierarchy.node_label h node; Hierarchy.node_label h parent ])
          isa (Hierarchy.parents h node))
      isa (Hierarchy.nodes h)
  in
  { isa }

let isa_relation t = t.isa

let member_join_count t ~instance ~cls =
  let module S = Set.Make (String) in
  let rec climb frontier seen joins =
    if S.mem cls frontier then (true, joins)
    else if S.is_empty frontier then (false, joins)
    else
      (* one join round: frontier ⋈ isa, projected on parent *)
      let next =
        S.fold
          (fun child acc ->
            Flat_relation.fold
              (fun row acc ->
                match row with
                | [ c; p ] when c = child && not (S.mem p seen) -> S.add p acc
                | _ -> acc)
              t.isa acc)
          frontier S.empty
      in
      climb next (S.union seen next) (joins + 1)
  in
  climb (S.singleton instance) (S.singleton instance) 0

let member t ~instance ~cls = fst (member_join_count t ~instance ~cls)

let extension_relation rel =
  let open Hierel in
  let schema = Relation.schema rel in
  let flat = Flat_relation.create ~name:(Relation.name rel) (Schema.names schema) in
  List.fold_left
    (fun acc item ->
      let cells =
        List.init (Schema.arity schema) (fun i ->
            Hierarchy.node_label (Schema.hierarchy schema i) (Item.coord item i))
      in
      Flat_relation.insert acc cells)
    flat
    (Flatten.extension_list rel)

let flat_of_hierarchical = extension_relation
