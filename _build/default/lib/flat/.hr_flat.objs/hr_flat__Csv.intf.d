lib/flat/csv.mli: Flat_relation
