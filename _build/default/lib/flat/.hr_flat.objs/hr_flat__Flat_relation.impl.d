lib/flat/flat_relation.ml: Format Hr_util List Set Stdlib String
