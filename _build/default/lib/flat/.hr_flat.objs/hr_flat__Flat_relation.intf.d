lib/flat/flat_relation.mli: Format
