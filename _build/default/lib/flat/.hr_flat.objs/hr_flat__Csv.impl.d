lib/flat/csv.ml: Buffer Flat_relation Format Fun List String
