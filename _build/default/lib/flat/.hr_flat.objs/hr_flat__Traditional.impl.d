lib/flat/traditional.ml: Flat_relation Flatten Hierel Hr_hierarchy Item List Relation Schema Set String
