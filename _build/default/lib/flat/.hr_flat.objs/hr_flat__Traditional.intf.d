lib/flat/traditional.mli: Flat_relation Hierel Hr_hierarchy
