exception Csv_error of string

let csv_error fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* A small state-machine parser: handles quoted fields with "" escapes
   and both LF and CRLF terminators. *)
let parse_rows input =
  let n = String.length input in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_row ())
    else
      match input.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '\r' when i + 1 < n && input.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then csv_error "unterminated quoted field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let parse input =
  match parse_rows input with
  | [] -> csv_error "empty input"
  | header :: data ->
    let width = List.length header in
    if List.length (List.sort_uniq String.compare header) <> width then
      csv_error "duplicate column names in header";
    List.iteri
      (fun i row ->
        if List.length row <> width then
          csv_error "row %d has %d cells, header has %d" (i + 2) (List.length row) width)
      data;
    Flat_relation.of_rows header data

let needs_quoting cell =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell

let render_cell cell =
  if needs_quoting cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let render_row row = String.concat "," (List.map render_cell row)

let print rel =
  String.concat "\n"
    (render_row (Flat_relation.columns rel) :: List.map render_row (Flat_relation.rows rel))
  ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let write_file rel path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print rel))
