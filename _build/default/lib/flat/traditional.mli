(** The paper's "traditional database approach" (footnote 1, §1).

    Without class-valued attributes, a 1989 relational schema stores
    class membership in a separate [isa(child, parent)] relation and keeps
    facts fully enumerated; asking whether an instance belongs to a class
    then requires one self-join of [isa] per hierarchy level, and keeping
    a class's fact-extension in sync requires an out-of-band integrity
    constraint. This module implements exactly that encoding, so
    benchmarks can measure the repeated-join cost and the storage blow-up
    the paper's model avoids. *)

type t

val of_hierarchy : Hr_hierarchy.Hierarchy.t -> t
(** Encodes the immediate [isa] edges (transitive reduction, as a real
    schema would store them). *)

val isa_relation : t -> Flat_relation.t

val member : t -> instance:string -> cls:string -> bool
(** Upward join loop: joins the frontier with [isa] until the class is
    reached or the frontier is exhausted. *)

val member_join_count : t -> instance:string -> cls:string -> bool * int
(** Like {!member} but also reports how many join rounds were executed —
    the quantity footnote 1 complains about. *)

val extension_relation : Hierel.Relation.t -> Flat_relation.t
(** The traditional storage of a hierarchical relation: its full
    explicated extension as a flat relation (one row per atomic item). *)

val flat_of_hierarchical : Hierel.Relation.t -> Flat_relation.t
(** Alias of {!extension_relation}, emphasising its role as the baseline
    in operator benchmarks. *)
