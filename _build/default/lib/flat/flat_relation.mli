(** A standard (flat) relation: the paper's baseline model.

    Plain named columns over string values, set semantics, and the classic
    operators. This is deliberately the "stark simplicity" model of the
    paper's introduction — no hierarchy, no signs — so benchmarks can
    compare the hierarchical model against what a 1989 relational system
    would store and compute. *)

type t

val create : ?name:string -> string list -> t
(** [create columns] is the empty relation with the given column names.
    Raises [Invalid_argument] on duplicates or an empty list. *)

val name : t -> string
val columns : t -> string list
val arity : t -> int
val cardinality : t -> int
val is_empty : t -> bool

val insert : t -> string list -> t
(** Set semantics: inserting an existing row is a no-op. Raises
    [Invalid_argument] on an arity mismatch. *)

val delete : t -> string list -> t
val mem : t -> string list -> bool
val rows : t -> string list list
(** Sorted, deterministic. *)

val of_rows : ?name:string -> string list -> string list list -> t

val fold : (string list -> 'a -> 'a) -> t -> 'a -> 'a

val select : t -> column:string -> value:string -> t
val select_by : t -> (string list -> bool) -> t
val project : t -> string list -> t
val join : t -> t -> t
(** Natural join on equal column names. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val rename : t -> old_name:string -> new_name:string -> t

val equal : t -> t -> bool
(** Same columns, same rows. *)

val pp : Format.formatter -> t -> unit

val approx_bytes : t -> int
(** Rough storage footprint: the sum of cell lengths plus per-row
    overhead. Used by the storage-compression benchmark (claim C1). *)
