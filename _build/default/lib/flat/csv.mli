(** CSV import/export for flat relations.

    The bridge between this repository and ordinary tabular data: load a
    CSV as a {!Flat_relation.t} (then, e.g., organize it hierarchically
    with [Hr_mine]), or export any flat relation — including the
    explicated extension of a hierarchical one — for downstream tools.

    Dialect: comma separator, double-quote quoting with [""] escapes,
    LF or CRLF line endings, first row is the header. No type inference —
    every cell is a string, exactly like the flat baseline. *)

exception Csv_error of string

val parse : string -> Flat_relation.t
(** Raises {!Csv_error} on ragged rows, an empty input, or malformed
    quoting. Duplicate data rows collapse (set semantics). *)

val print : Flat_relation.t -> string
(** Header plus data rows; cells are quoted when they contain a comma,
    quote or newline. Deterministic row order. *)

val read_file : string -> Flat_relation.t
val write_file : Flat_relation.t -> string -> unit
