module Row_set = Set.Make (struct
  type t = string list

  let compare = Stdlib.compare
end)

type t = { name : string; columns : string list; body : Row_set.t }

let create ?(name = "flat") columns =
  if columns = [] then invalid_arg "Flat_relation.create: no columns";
  let sorted = List.sort_uniq String.compare columns in
  if List.length sorted <> List.length columns then
    invalid_arg "Flat_relation.create: duplicate columns";
  { name; columns; body = Row_set.empty }

let name r = r.name
let columns r = r.columns
let arity r = List.length r.columns
let cardinality r = Row_set.cardinal r.body
let is_empty r = Row_set.is_empty r.body

let check_row r row =
  if List.length row <> arity r then invalid_arg "Flat_relation: arity mismatch"

let insert r row =
  check_row r row;
  { r with body = Row_set.add row r.body }

let delete r row = { r with body = Row_set.remove row r.body }

let mem r row =
  check_row r row;
  Row_set.mem row r.body

let rows r = Row_set.elements r.body

let of_rows ?name columns rs = List.fold_left insert (create ?name columns) rs

let fold f r init = Row_set.fold f r.body init

let column_index r column =
  match List.find_index (String.equal column) r.columns with
  | Some i -> i
  | None -> invalid_arg ("Flat_relation: no column " ^ column)

let select r ~column ~value =
  let i = column_index r column in
  { r with body = Row_set.filter (fun row -> List.nth row i = value) r.body }

let select_by r p = { r with body = Row_set.filter p r.body }

let project r cols =
  let idxs = List.map (column_index r) cols in
  let projected = create ~name:r.name cols in
  fold (fun row acc -> insert acc (List.map (List.nth row) idxs)) r projected

let require_same_columns a b =
  if a.columns <> b.columns then invalid_arg "Flat_relation: column mismatch"

let union a b =
  require_same_columns a b;
  { a with body = Row_set.union a.body b.body }

let inter a b =
  require_same_columns a b;
  { a with body = Row_set.inter a.body b.body }

let diff a b =
  require_same_columns a b;
  { a with body = Row_set.diff a.body b.body }

let join a b =
  let shared = List.filter (fun c -> List.mem c b.columns) a.columns in
  let b_only = List.filter (fun c -> not (List.mem c shared)) b.columns in
  let out = create ~name:(a.name ^ "_" ^ b.name) (a.columns @ b_only) in
  let a_idx c = column_index a c and b_idx c = column_index b c in
  let shared_a = List.map a_idx shared and shared_b = List.map b_idx shared in
  let b_only_idx = List.map b_idx b_only in
  fold
    (fun ra acc ->
      fold
        (fun rb acc ->
          let matches =
            List.for_all2 (fun i j -> List.nth ra i = List.nth rb j) shared_a shared_b
          in
          if matches then insert acc (ra @ List.map (List.nth rb) b_only_idx) else acc)
        b acc)
    a out

let rename r ~old_name ~new_name =
  if List.mem new_name r.columns then invalid_arg "Flat_relation: name taken";
  {
    r with
    columns = List.map (fun c -> if c = old_name then new_name else c) r.columns;
  }

let equal a b = a.columns = b.columns && Row_set.equal a.body b.body

let pp ppf r =
  Format.pp_print_string ppf (Hr_util.Texttable.render_rows ~headers:r.columns (rows r))

let approx_bytes r =
  fold
    (fun row acc -> acc + 16 + List.fold_left (fun n c -> n + String.length c + 8) 0 row)
    r 0
