lib/frontend/frontend.mli: Hierel Hr_hierarchy
