lib/frontend/frontend.ml: Binding Format Fun Hashtbl Hierel Hr_hierarchy Integrity Item List Queue Relation Schema Types
