(** Front-end policies layered over the generic data model.

    The paper keeps the data model application-neutral and repeatedly
    points at "an appropriate front-end" for policy decisions: warning on
    or forbidding exceptions (§2.1), generating explicit cancellations
    automatically when a property is functional (§3.1, the Clyde
    example), compiling left-precedence conflict resolution into
    consistency-preserving transactions (§2.1), and forcing pessimistic
    integrity through empty intersection classes (§3.1). This module
    implements each of those front ends. *)

type exception_policy =
  | Forbid_exceptions
      (** reject any tuple whose sign contradicts the value the item
          currently inherits *)
  | Warn_on_exception  (** accept, but report the overridden tuples *)
  | Allow_exceptions  (** the bare model semantics *)

type warning = {
  message : string;
  overridden : Hierel.Relation.tuple list;
      (** the inherited tuples the new assertion overrides *)
}

val insert :
  policy:exception_policy ->
  Hierel.Relation.t ->
  Hierel.Item.t ->
  Hierel.Types.sign ->
  (Hierel.Relation.t * warning list, string) result
(** Insert under an exception policy. With [Forbid_exceptions], an
    insertion contradicting the inherited verdict returns [Error]. *)

val assert_functional :
  Hierel.Relation.t ->
  entity_attr:string ->
  Hierel.Item.t ->
  Hierel.Relation.t
(** Treats every attribute other than [entity_attr] as jointly functional
    in the entity: asserting the (positive) item automatically asserts the
    explicit cancellation of every distinct positive value currently
    inherited by the same entity region — the paper's "royal elephants
    are not grey but white" idiom. The returned relation contains the new
    positive tuple plus the generated negations. *)

val resolve_left_precedence : Hierel.Relation.t -> Hierel.Relation.t
(** Repairs every ambiguity conflict by asserting, at each witness item,
    the sign of the binder found first by a leftward upward search
    (parents in declaration order, attributes left to right) — the
    deterministic analogue of LISP-Flavors left precedence the paper
    mentions. The result satisfies the ambiguity constraint. *)

val pessimistic_intersection :
  Hr_hierarchy.Hierarchy.t -> string -> string -> string
(** [pessimistic_intersection h a b] declares (if absent) an empty class
    named ["a&b"] under both, making the optimistic checker treat [a] and
    [b] as overlapping from now on. Returns the intersection class
    name. *)
