module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type exception_policy = Forbid_exceptions | Warn_on_exception | Allow_exceptions

type warning = { message : string; overridden : Relation.tuple list }

let insert ~policy rel item sign =
  let inherited = Binding.verdict rel item in
  let clash =
    match inherited with
    | Binding.Asserted (s, binders) when not (Types.sign_equal s sign) -> Some binders
    | Binding.Asserted _ | Binding.Unasserted | Binding.Conflict _ -> None
  in
  match policy, clash with
  | Forbid_exceptions, Some binders ->
    Error
      (Format.asprintf "exception to %d inherited tuple(s) at %s forbidden"
         (List.length binders)
         (Item.to_string (Relation.schema rel) item))
  | Warn_on_exception, Some binders ->
    let warning =
      {
        message =
          Format.asprintf "%a%s overrides inherited value" Types.pp_sign sign
            (Item.to_string (Relation.schema rel) item);
        overridden = binders;
      }
    in
    Ok (Relation.add rel item sign, [ warning ])
  | (Forbid_exceptions | Warn_on_exception | Allow_exceptions), _ ->
    Ok (Relation.add rel item sign, [])

let assert_functional rel ~entity_attr item =
  let schema = Relation.schema rel in
  let e = Schema.index_of schema entity_attr in
  let value_positions =
    List.filter (fun i -> i <> e) (List.init (Schema.arity schema) Fun.id)
  in
  let differs_somewhere (t : Relation.tuple) =
    List.exists (fun i -> Item.coord t.Relation.item i <> Item.coord item i) value_positions
  in
  (* tuples giving the entity region a positive value different from the
     new one: cancel each over the new entity coordinate *)
  let cancellations =
    Relation.fold
      (fun (t : Relation.tuple) acc ->
        if
          Types.sign_equal t.Relation.sign Types.Pos
          && Hierarchy.subsumes (Schema.hierarchy schema e) (Item.coord t.Relation.item e)
               (Item.coord item e)
          && differs_somewhere t
        then Item.substitute t.Relation.item e (Item.coord item e) :: acc
        else acc)
      rel []
  in
  let rel = Relation.add rel item Types.Pos in
  List.fold_left
    (fun rel cancel -> if Relation.mem rel cancel then rel else Relation.add rel cancel Types.Neg)
    rel cancellations

(* Deterministic left precedence: breadth-first upward search from the
   witness item, expanding attribute positions left to right and parents
   in declaration order; the first conflicting binder reached wins. *)
let left_precedence_sign rel witness (positive : Relation.tuple list)
    (negative : Relation.tuple list) =
  let schema = Relation.schema rel in
  let binder_sign it =
    if List.exists (fun (t : Relation.tuple) -> Item.equal t.Relation.item it) positive then
      Some Types.Pos
    else if List.exists (fun (t : Relation.tuple) -> Item.equal t.Relation.item it) negative
    then Some Types.Neg
    else None
  in
  let seen = Hashtbl.create 32 in
  let queue = Queue.create () in
  Queue.add witness queue;
  Hashtbl.add seen (witness : Item.t) ();
  let rec search () =
    if Queue.is_empty queue then Types.Pos (* unreachable for real conflicts *)
    else
      let cur = Queue.pop queue in
      match binder_sign cur with
      | Some sign -> sign
      | None ->
        List.iter
          (fun i ->
            let h = Schema.hierarchy schema i in
            List.iter
              (fun parent ->
                let up = Item.substitute cur i parent in
                if not (Hashtbl.mem seen up) then begin
                  Hashtbl.add seen up ();
                  Queue.add up queue
                end)
              (Hierarchy.parents h (Item.coord cur i)))
          (List.init (Item.arity cur) Fun.id);
        search ()
  in
  search ()

let resolve_left_precedence rel =
  let rec loop rel budget =
    if budget <= 0 then Types.model_error "left-precedence resolution did not converge"
    else
      match Integrity.first_conflict rel with
      | None -> rel
      | Some c ->
        let rel =
          List.fold_left
            (fun rel w ->
              if Relation.mem rel w then rel
              else
                match Binding.verdict rel w with
                | Binding.Conflict { positive; negative } ->
                  Relation.set rel w (left_precedence_sign rel w positive negative)
                | Binding.Asserted _ | Binding.Unasserted -> rel)
            rel c.Integrity.witnesses
        in
        loop rel (budget - 1)
  in
  loop rel 10_000

let pessimistic_intersection h a b =
  let name = a ^ "&" ^ b in
  if not (Hierarchy.mem h name) then ignore (Hierarchy.add_class h ~parents:[ a; b ] name);
  name
