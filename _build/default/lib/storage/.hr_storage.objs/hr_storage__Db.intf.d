lib/storage/db.mli: Hierel
