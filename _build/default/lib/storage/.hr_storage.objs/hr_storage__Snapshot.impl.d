lib/storage/snapshot.ml: Catalog Codec Format Fun Hierel Hr_hierarchy Hr_util Int32 Item List Relation Schema String Types
