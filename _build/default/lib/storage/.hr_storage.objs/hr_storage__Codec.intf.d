lib/storage/codec.mli:
