lib/storage/pager.mli:
