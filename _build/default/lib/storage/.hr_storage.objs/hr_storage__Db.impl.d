lib/storage/db.ml: Catalog Filename Hierel Hr_query List Printf Snapshot String Sys Unix Wal
