lib/storage/wal.mli:
