lib/storage/pager.ml: Bytes Hashtbl List Printf Unix
