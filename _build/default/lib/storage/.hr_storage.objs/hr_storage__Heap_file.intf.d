lib/storage/heap_file.mli: Pager
