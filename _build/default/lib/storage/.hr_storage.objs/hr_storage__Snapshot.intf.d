lib/storage/snapshot.mli: Hierel
