lib/storage/heap_file.ml: Bytes Char List Pager String
