lib/storage/wal.ml: Codec Fun Int32 List Sys
