(** Binary catalog snapshots.

    A snapshot is a self-contained, versioned binary image of a catalog:
    every hierarchy (nodes with names, instance flags, [isa] and
    preference edges) and every relation (schema plus signed tuples).
    The encoding goes through the public construction APIs on decode, so
    invariants (acyclicity, arity checks, the ambiguity constraint at
    [define_relation]) are re-validated on load. A CRC-32 trailer detects
    torn or corrupted files. *)

exception Corrupt_snapshot of string

val encode : Hierel.Catalog.t -> string
val decode : string -> Hierel.Catalog.t
(** Raises {!Corrupt_snapshot} on bad magic, unsupported version, CRC
    mismatch or malformed structure. *)

val write_file : Hierel.Catalog.t -> string -> unit
val read_file : string -> Hierel.Catalog.t
