(** A page-oriented file with an LRU buffer pool.

    Fixed-size pages addressed by number, backed by one file, cached in a
    bounded pool with write-back on eviction. This is the conventional
    bottom layer of a disk-resident database; {!Heap_file} builds a row
    store on top, and the benchmark harness uses both to quantify how the
    hierarchical model's small stored form translates into page I/O.

    Single-process, no concurrency control; all sizes in bytes. *)

val page_size : int
(** 4096. *)

type t

val create : ?pool_pages:int -> string -> t
(** Opens (creating if needed) the file. [pool_pages] bounds the buffer
    pool (default 64). *)

val close : t -> unit
(** Flushes every dirty page and closes the file. *)

val page_count : t -> int

val allocate : t -> int
(** Appends a zeroed page; returns its number. *)

val read_page : t -> int -> bytes
(** The page's current contents — the pool's copy; mutate only through
    {!write_page}. Raises [Invalid_argument] on an out-of-range page. *)

val write_page : t -> int -> bytes -> unit
(** Replaces the page (must be exactly {!page_size} bytes); marked dirty
    and written back on eviction, {!flush} or {!close}. *)

val flush : t -> unit

(* statistics for benchmarks and tests *)
val reads_from_disk : t -> int
val writes_to_disk : t -> int
val hits : t -> int
