(** A slotted-page row store over {!Pager}.

    Rows are arbitrary strings (callers serialize with {!Codec}). Each
    page holds a little header (row count) followed by length-prefixed
    rows packed from the front; rows larger than a page are rejected.
    Appends fill the last page and allocate a new one when full; scans
    stream every row in file order. This is the storage a "traditional"
    1989 system would use for the enumerated extension — the benchmark
    pairs it with {!Pager}'s I/O counters to show the hierarchical model
    touching fewer pages. *)

type t

val create : ?pool_pages:int -> string -> t
(** Opens (creating if needed) the heap file. *)

val close : t -> unit

val append : t -> string -> unit
(** Raises [Invalid_argument] if the row cannot fit in one page. *)

val scan : t -> (string -> unit) -> unit
(** Visits every row in append order. *)

val rows : t -> string list
val row_count : t -> int
val page_count : t -> int

val pager : t -> Pager.t
(** For I/O statistics. *)
