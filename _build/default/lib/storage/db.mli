(** A durable database: binary snapshot + write-ahead log + HRQL.

    A database lives in a directory holding [snapshot.bin] (the last
    checkpoint, {!Snapshot} format) and [wal.log] (statements applied
    since, {!Wal} format). {!open_dir} loads the snapshot and replays the
    log; {!exec} runs HRQL statements, appending each successful mutating
    statement to the log before acknowledging it (so acknowledged implies
    replayable — rejected updates are never logged and cannot poison
    recovery); {!checkpoint} rewrites the snapshot and truncates the log.
    Reopening after a crash (including one that tore the last log record)
    recovers every acknowledged statement. *)

type t

val open_dir : string -> t
(** Creates the directory if needed; recovers existing state. Takes an
    advisory lock on [DIR/LOCK] — a second concurrent open of the same
    directory fails with [Failure] rather than corrupting the log. The
    lock is released by {!close} or process exit. *)

val catalog : t -> Hierel.Catalog.t

val exec : t -> string -> (string list, string) result
(** Runs an HRQL script (one or more statements). Every successful
    statement that changes durable state (CREATE / DROP / INSERT /
    DELETE / LET / CONSOLIDATE / EXPLICATE) is logged; reads and rejected
    updates are not. On error, statements before the failing one remain
    applied and logged (statement-level, not script-level, atomicity). *)

val checkpoint : t -> unit
(** Writes [snapshot.bin] and truncates [wal.log]. *)

val close : t -> unit

val wal_records : t -> int
(** Statements currently in the log (for tests and monitoring). *)
