(** A write-ahead log of HRQL statements.

    Records are length-prefixed, CRC-32-protected HRQL statement strings
    appended to a single file and flushed before the statement is applied
    to the in-memory catalog — the usual WAL discipline. Recovery replays
    records in order and stops silently at the first torn or corrupt
    record (a crash mid-append), discarding the tail. *)

type t

val open_ : string -> t
(** Opens (creating if absent) the log file for appending. *)

val append : t -> string -> unit
(** Appends one statement record and flushes to the OS. *)

val close : t -> unit

val replay : string -> string list
(** All intact records in the file, in append order; [] if the file does
    not exist. A trailing partial or corrupt record is dropped. *)

val truncate : string -> unit
(** Empties the log (after a successful checkpoint). *)
