(* Regenerates every figure of the paper (Jagadish, SIGMOD 1989) from the
   implementation, printing paper-vs-computed content side by side in
   ASCII. EXPERIMENTS.md records what each section must show.

   Run with: dune exec bin/figures.exe *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Dag = Hr_graph.Dag
open Hierel

let section id title = Format.printf "@.=== %s — %s ===@." id title

(* ---- shared fixtures (duplicated from test/fixtures.ml so the binary is
   self-contained) ---------------------------------------------------- *)

let animals () =
  let h = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class h "bird");
  ignore (Hierarchy.add_class h ~parents:[ "bird" ] "canary");
  ignore (Hierarchy.add_class h ~parents:[ "bird" ] "penguin");
  ignore (Hierarchy.add_class h ~parents:[ "penguin" ] "galapagos_penguin");
  ignore (Hierarchy.add_class h ~parents:[ "penguin" ] "amazing_flying_penguin");
  ignore (Hierarchy.add_instance h ~parents:[ "canary" ] "tweety");
  ignore (Hierarchy.add_instance h ~parents:[ "galapagos_penguin" ] "paul");
  ignore (Hierarchy.add_instance h ~parents:[ "penguin" ] "peter");
  ignore (Hierarchy.add_instance h ~parents:[ "amazing_flying_penguin" ] "pamela");
  ignore
    (Hierarchy.add_instance h
       ~parents:[ "amazing_flying_penguin"; "galapagos_penguin" ]
       "patricia");
  h

let flies h =
  Relation.of_tuples ~name:"flies" (Schema.make [ ("creature", h) ])
    [
      (Types.Pos, [ "bird" ]);
      (Types.Neg, [ "penguin" ]);
      (Types.Pos, [ "amazing_flying_penguin" ]);
      (Types.Pos, [ "peter" ]);
    ]

let students () =
  let h = Hierarchy.create "student" in
  ignore (Hierarchy.add_class h "obsequious_student");
  ignore (Hierarchy.add_instance h ~parents:[ "obsequious_student" ] "john");
  ignore (Hierarchy.add_instance h "mary");
  h

let teachers () =
  let h = Hierarchy.create "teacher" in
  ignore (Hierarchy.add_class h "incoherent_teacher");
  ignore (Hierarchy.add_instance h ~parents:[ "incoherent_teacher" ] "smith");
  ignore (Hierarchy.add_instance h "jones");
  h

let respects hs ht =
  Relation.of_tuples ~name:"respects" (Schema.make [ ("student", hs); ("teacher", ht) ])
    [
      (Types.Pos, [ "obsequious_student"; "teacher" ]);
      (Types.Neg, [ "student"; "incoherent_teacher" ]);
      (Types.Pos, [ "obsequious_student"; "incoherent_teacher" ]);
    ]

let elephants () =
  let h = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class h "elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "african_elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "indian_elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "royal_elephant");
  ignore (Hierarchy.add_instance h ~parents:[ "royal_elephant" ] "clyde");
  ignore (Hierarchy.add_instance h ~parents:[ "royal_elephant"; "indian_elephant" ] "appu");
  h

let colors () =
  let h = Hierarchy.create "color" in
  List.iter (fun c -> ignore (Hierarchy.add_instance h c)) [ "grey"; "white"; "dappled" ];
  h

let animal_color he hc =
  Relation.of_tuples ~name:"animal_color" (Schema.make [ ("animal", he); ("color", hc) ])
    [
      (Types.Pos, [ "elephant"; "grey" ]);
      (Types.Neg, [ "royal_elephant"; "grey" ]);
      (Types.Pos, [ "royal_elephant"; "white" ]);
      (Types.Neg, [ "clyde"; "white" ]);
      (Types.Pos, [ "clyde"; "dappled" ]);
    ]

(* ---- figures -------------------------------------------------------- *)

let fig1 () =
  section "Figure 1a" "the animal class hierarchy";
  let h = animals () in
  Format.printf "%a" Hierarchy.pp h;
  section "Figure 1b" "the hierarchical Flies relation";
  let r = flies h in
  Format.printf "%a" Relation.pp r;
  section "Figure 1c" "the subsumption graph of Flies";
  Format.printf "%a" Subsumption.pp (Subsumption.build r);
  section "Figure 1d" "the tuple-binding graph of Patricia";
  let schema = Relation.schema r in
  let patricia = Item.of_names schema [ "patricia" ] in
  let g = Binding.binding_graph r patricia in
  List.iter
    (fun (i, j) ->
      let label k =
        if k = g.Binding.item_node then "(patricia)"
        else
          let t = g.Binding.nodes.(k) in
          Format.asprintf "%a%s" Types.pp_sign t.Relation.sign
            (Item.to_string schema t.Relation.item)
      in
      Format.printf "%s -> %s@." (label i) (label j))
    g.Binding.edges;
  Format.printf "verdicts: ";
  List.iter
    (fun name ->
      Format.printf "%s:%s " name
        (if Binding.holds r (Item.of_names schema [ name ]) then "flies" else "grounded"))
    [ "tweety"; "paul"; "peter"; "pamela"; "patricia" ];
  Format.printf "@."

let fig2 () =
  section "Figure 2" "student and teacher hierarchies and their product";
  let hs = students () and ht = teachers () in
  Format.printf "(a) students:@.%a(b) teachers:@.%a" Hierarchy.pp hs Hierarchy.pp ht;
  Format.printf "(c) product nodes (classes only):@.";
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          Format.printf "  (%s, %s)@." (Hierarchy.node_label hs s) (Hierarchy.node_label ht t))
        (Hierarchy.classes ht))
    (Hierarchy.classes hs)

let fig3 () =
  section "Figure 3" "the Respects relation (with its conflict-resolving third tuple)";
  let r = respects (students ()) (teachers ()) in
  Format.printf "%a" Relation.pp r;
  Format.printf "ambiguity constraint satisfied: %b@." (Integrity.is_consistent r)

let fig4 () =
  section "Figure 4" "the elephant hierarchy and the Animal-Color relation";
  let he = elephants () and hc = colors () in
  Format.printf "%a" Hierarchy.pp he;
  let r = animal_color he hc in
  Format.printf "%a" Relation.pp r;
  let schema = Relation.schema r in
  List.iter
    (fun (a, c) ->
      Format.printf "  %s is %s: %b@." a c
        (Binding.holds r (Item.of_names schema [ a; c ])))
    [ ("clyde", "dappled"); ("appu", "white"); ("appu", "grey") ]

let fig5 () =
  section "Figure 5" "union subsumption is NOT redundancy (np-hardness boundary)";
  let h = Hierarchy.create "d" in
  ignore (Hierarchy.add_class h "a");
  ignore (Hierarchy.add_class h "b");
  ignore (Hierarchy.add_class h "c");
  ignore (Hierarchy.add_instance h ~parents:[ "a"; "c" ] "x1");
  ignore (Hierarchy.add_instance h ~parents:[ "b"; "c" ] "x2");
  let schema = Schema.make [ ("v", h) ] in
  let r =
    Relation.of_tuples ~name:"r" schema
      [ (Types.Pos, [ "a" ]); (Types.Pos, [ "b" ]); (Types.Pos, [ "c" ]) ]
  in
  let c = Consolidate.consolidate r in
  Format.printf
    "C is covered by A union B, yet the tuple on C survives consolidation: %d -> %d tuples@."
    (Relation.cardinality r) (Relation.cardinality c)

let fig6 () =
  section "Figure 6" "subsumption graph of Respects and its consolidation";
  let r = respects (students ()) (teachers ()) in
  Format.printf "(a) subsumption graph:@.%a" Subsumption.pp (Subsumption.build r);
  let consolidated, removed = Consolidate.consolidate_verbose r in
  Format.printf "(b) consolidation removes %d tuples:@.%a" (List.length removed)
    Relation.pp consolidated;
  Format.printf "extension unchanged: %b@." (Flatten.equal_extension r consolidated)

let fig7_8 () =
  let r = respects (students ()) (teachers ()) in
  section "Figure 7" "who do obsequious students respect?";
  Format.printf "%a" Relation.pp (Ops.select r ~attr:"student" ~value:"obsequious_student");
  section "Figure 8" "who does John respect?";
  Format.printf "%a" Relation.pp (Ops.select r ~attr:"student" ~value:"john")

let fig9 () =
  section "Figure 9" "a selection on Animal-Color and its justification";
  let r = animal_color (elephants ()) (colors ()) in
  let schema = Relation.schema r in
  let result, applicable = Ops.select_justified r ~attr:"animal" ~value:"clyde" in
  Format.printf "(a) selection (animal = clyde):@.%a(b) justification:@." Relation.pp result;
  List.iter
    (fun (t : Relation.tuple) ->
      Format.printf "  %a%s@." Types.pp_sign t.Relation.sign
        (Item.to_string schema t.Relation.item))
    applicable

let fig10 () =
  section "Figure 10" "set operations on Jack-loves and Jill-loves";
  let h = animals () in
  let schema = Schema.make [ ("creature", h) ] in
  let jack =
    Relation.of_tuples ~name:"jack_loves" schema
      [ (Types.Pos, [ "bird" ]); (Types.Neg, [ "penguin" ]) ]
  in
  let jill = Relation.of_tuples ~name:"jill_loves" schema [ (Types.Pos, [ "penguin" ]) ] in
  Format.printf "(a) jack:@.%a(b) jill:@.%a" Relation.pp jack Relation.pp jill;
  let show label rel =
    Format.printf "(%s):@.%a  = {%s}@." label Relation.pp rel
      (String.concat ", "
         (List.map (fun it -> Item.to_string schema it) (Flatten.extension_list rel)))
  in
  show "c: union" (Ops.union jack jill);
  show "d: intersection" (Ops.inter jack jill);
  show "e: jack - jill" (Ops.diff jack jill);
  show "f: jill - jack" (Ops.diff jill jack)

let fig11 () =
  section "Figure 11" "Enclosure-Size, its join with Animal-Color, projection back";
  let he = elephants () and hc = colors () in
  let hsz = Hierarchy.create "size" in
  ignore (Hierarchy.add_instance hsz "s2000");
  ignore (Hierarchy.add_instance hsz "s3000");
  let enclosure =
    Relation.of_tuples ~name:"enclosure" (Schema.make [ ("animal", he); ("enclosure", hsz) ])
      [
        (Types.Pos, [ "elephant"; "s3000" ]);
        (Types.Neg, [ "indian_elephant"; "s3000" ]);
        (Types.Pos, [ "indian_elephant"; "s2000" ]);
      ]
  in
  let color = animal_color he hc in
  Format.printf "(a) enclosure:@.%a" Relation.pp enclosure;
  let joined = Ops.join enclosure color in
  Format.printf "(b) joined:@.%a" Relation.pp joined;
  let back = Ops.project joined [ "animal"; "color" ] in
  Format.printf "(c) projected back:@.%a" Relation.pp back;
  let schema = Relation.schema color in
  Format.printf "information preserved: clyde dappled = %b, appu grey = %b@."
    (Binding.holds back (Item.of_names schema [ "clyde"; "dappled" ]))
    (Binding.holds back (Item.of_names schema [ "appu"; "grey" ]))

let appendix () =
  section "Appendix" "preemption semantics at Patricia";
  let h = animals () in
  let r = flies h in
  let schema = Relation.schema r in
  let patricia = Item.of_names schema [ "patricia" ] in
  List.iter
    (fun sem ->
      Format.printf "  %-14s -> %s@."
        (Format.asprintf "%a" Types.pp_semantics sem)
        (match Binding.verdict ~semantics:sem r patricia with
        | Binding.Asserted (s, _) -> Format.asprintf "%a" Types.pp_sign s
        | Binding.Unasserted -> "unasserted"
        | Binding.Conflict _ -> "CONFLICT"))
    [ Types.Off_path; Types.On_path; Types.No_preemption ]

let () =
  Format.printf "Regenerating all figures of 'Incorporating Hierarchy in a Relational Model of Data'@.";
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7_8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  appendix ();
  Format.printf "@.All figures regenerated.@.";
  ignore Dag.to_dot
