(* hrdb_server — serve a hierarchical relational database over TCP.

   Usage:
     dune exec bin/hrdb_server.exe -- -p 7799            # in-memory
     dune exec bin/hrdb_server.exe -- -p 7799 -d ./mydb  # durable

   Protocol (see lib/server/server.mli): length-framed HRQL scripts.
   A quick manual client:
     printf 'EXEC 16\nSHOW RELATIONS;' | nc 127.0.0.1 7799 *)

module Server = Hr_server.Server

let main port dir =
  let server =
    match dir with
    | Some dir -> Server.create_durable ~port ~dir ()
    | None -> Server.create_memory ~port ()
  in
  Printf.printf "hrdb_server listening on 127.0.0.1:%d%s\n%!" (Server.port server)
    (match dir with Some d -> Printf.sprintf " (durable: %s)" d | None -> " (in-memory)");
  Server.serve_forever server

open Cmdliner

let port_arg =
  Arg.(
    value & opt int 7799
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Durable mode: database directory.")

let cmd =
  let doc = "TCP server for the hierarchical relational model" in
  Cmd.v
    (Cmd.info "hrdb_server" ~version:"1.0.0" ~doc)
    Term.(const main $ port_arg $ dir_arg)

let () = exit (Cmd.eval cmd)
