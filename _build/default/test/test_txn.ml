(* Catalog and transaction tests (paper §3.1: conflicts must be resolved
   within the transaction that creates them). *)

open Hierel

let setup () =
  let he = Fixtures.elephants () in
  let hc = Fixtures.colors () in
  let cat = Catalog.create () in
  Catalog.define_hierarchy cat he;
  Catalog.define_hierarchy cat hc;
  Catalog.define_relation cat (Fixtures.animal_color he hc);
  (cat, he, hc)

let test_catalog_lookup () =
  let cat, he, _ = setup () in
  Alcotest.(check bool) "hierarchy registered" true
    (Option.is_some (Catalog.find_hierarchy cat "animal"));
  Alcotest.(check bool) "relation registered" true
    (Option.is_some (Catalog.find_relation cat "animal_color"));
  Alcotest.(check int) "5 tuples" 5 (Relation.cardinality (Catalog.relation cat "animal_color"));
  ignore he

let test_duplicate_definitions_rejected () =
  let cat, he, _ = setup () in
  (try
     Catalog.define_hierarchy cat he;
     Alcotest.fail "expected Model_error"
   with Types.Model_error _ -> ());
  try
    Catalog.define_relation cat (Catalog.relation cat "animal_color");
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_inconsistent_initial_contents_rejected () =
  let cat = Catalog.create () in
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  try
    Catalog.define_relation cat (Fixtures.respects_unresolved hs ht);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_commit_success () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "african_elephant"; "grey" ];
  (match Txn.commit txn with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "published" 6 (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_commit_rejects_conflict () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  (* indian elephants grey clashes with royal-not-grey at appu *)
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "indian_elephant"; "grey" ];
  (match Txn.commit txn with
  | Ok () -> Alcotest.fail "expected violation"
  | Error [ v ] ->
    Alcotest.(check string) "names the relation" "animal_color" v.Txn.relation_name;
    Alcotest.(check bool) "reports a conflict" true (v.Txn.conflicts <> [])
  | Error _ -> Alcotest.fail "expected a single violation");
  (* nothing published *)
  Alcotest.(check int) "unchanged" 5 (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_repair_within_transaction () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "indian_elephant"; "grey" ];
  (* resolve at the witness: appu is explicitly not grey *)
  Txn.insert txn ~rel:"animal_color" Types.Neg [ "appu"; "grey" ];
  (match Txn.commit txn with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "repair should commit");
  Alcotest.(check int) "published both" 7
    (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_reads_your_writes () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "african_elephant"; "grey" ];
  Alcotest.(check int) "staged visible" 6 (Relation.cardinality (Txn.current txn "animal_color"));
  Alcotest.(check int) "catalog not yet" 5
    (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_abort () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "african_elephant"; "grey" ];
  Txn.abort txn;
  (match Txn.commit txn with Ok () -> () | Error _ -> Alcotest.fail "empty commit");
  Alcotest.(check int) "unchanged" 5 (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_delete () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.delete txn ~rel:"animal_color" [ "clyde"; "dappled" ];
  (match Txn.commit txn with Ok () -> () | Error _ -> Alcotest.fail "commit");
  Alcotest.(check int) "one fewer" 4 (Relation.cardinality (Catalog.relation cat "animal_color"))

let test_conflicts_preview () =
  let cat, _, _ = setup () in
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "indian_elephant"; "grey" ];
  Alcotest.(check bool) "preview sees the conflict" true
    (Txn.conflicts txn "animal_color" <> []);
  Txn.insert txn ~rel:"animal_color" Types.Neg [ "appu"; "grey" ];
  Alcotest.(check bool) "preview sees the repair" true
    (Txn.conflicts txn "animal_color" = [])

let test_multi_relation_atomicity () =
  (* a transaction touching two relations publishes neither when the
     second one is conflicted at commit time *)
  let cat, he, hc = setup () in
  Catalog.define_relation cat
    (Relation.empty ~name:"enclosure" (Fixtures.enclosure_schema he (Fixtures.sizes ())));
  ignore hc;
  let txn = Txn.begin_ cat in
  Txn.insert txn ~rel:"enclosure" Types.Pos [ "elephant"; "s3000" ];
  (* conflicted: indian grey vs royal-not-grey at appu *)
  Txn.insert txn ~rel:"animal_color" Types.Pos [ "indian_elephant"; "grey" ];
  (match Txn.commit txn with
  | Ok () -> Alcotest.fail "expected violation"
  | Error violations ->
    Alcotest.(check int) "one violating relation" 1 (List.length violations));
  Alcotest.(check int) "enclosure not published either" 0
    (Relation.cardinality (Catalog.relation cat "enclosure"));
  (* repair and recommit publishes both *)
  Txn.insert txn ~rel:"animal_color" Types.Neg [ "appu"; "grey" ];
  (match Txn.commit txn with Ok () -> () | Error _ -> Alcotest.fail "repaired commit");
  Alcotest.(check int) "enclosure published" 1
    (Relation.cardinality (Catalog.relation cat "enclosure"))

let suite =
  [
    Alcotest.test_case "multi-relation atomicity" `Quick test_multi_relation_atomicity;
    Alcotest.test_case "catalog lookup" `Quick test_catalog_lookup;
    Alcotest.test_case "duplicate definitions rejected" `Quick
      test_duplicate_definitions_rejected;
    Alcotest.test_case "inconsistent initial contents rejected" `Quick
      test_inconsistent_initial_contents_rejected;
    Alcotest.test_case "commit success" `Quick test_commit_success;
    Alcotest.test_case "commit rejects conflicts" `Quick test_commit_rejects_conflict;
    Alcotest.test_case "repair within transaction" `Quick test_repair_within_transaction;
    Alcotest.test_case "reads your writes" `Quick test_reads_your_writes;
    Alcotest.test_case "abort" `Quick test_abort;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "conflict preview" `Quick test_conflicts_preview;
  ]
