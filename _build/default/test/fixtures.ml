(* The paper's running examples, shared by the test suites, the examples
   and the figure regenerator.

   - Figure 1: the animal taxonomy and the Flies relation (flying
     creatures with penguin exceptions and exceptions to the exception).
   - Figures 2/3/6: the Student and Teacher hierarchies and the Respects
     relation.
   - Figures 4/9/11: the elephant hierarchy with the Animal-Color and
     Animal-Enclosure relations (Clyde the royal elephant).
   - Figure 10: the Loves relations of Jack and Jill. *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

(* -- Figure 1a: animal taxonomy ------------------------------------- *)

let animals () =
  let h = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class h "bird");
  ignore (Hierarchy.add_class h ~parents:[ "bird" ] "canary");
  ignore (Hierarchy.add_class h ~parents:[ "bird" ] "penguin");
  ignore (Hierarchy.add_class h ~parents:[ "penguin" ] "galapagos_penguin");
  ignore (Hierarchy.add_class h ~parents:[ "penguin" ] "amazing_flying_penguin");
  ignore (Hierarchy.add_instance h ~parents:[ "canary" ] "tweety");
  ignore (Hierarchy.add_instance h ~parents:[ "galapagos_penguin" ] "paul");
  ignore (Hierarchy.add_instance h ~parents:[ "penguin" ] "peter");
  ignore (Hierarchy.add_instance h ~parents:[ "amazing_flying_penguin" ] "pamela");
  ignore
    (Hierarchy.add_instance h
       ~parents:[ "amazing_flying_penguin"; "galapagos_penguin" ]
       "patricia");
  h

(* -- Figure 1b: the Flies relation ---------------------------------- *)

let flies_schema h = Schema.make [ ("creature", h) ]

let flies h =
  Relation.of_tuples ~name:"flies" (flies_schema h)
    [
      (Types.Pos, [ "bird" ]);
      (Types.Neg, [ "penguin" ]);
      (Types.Pos, [ "amazing_flying_penguin" ]);
      (Types.Pos, [ "peter" ]);
    ]

(* -- Figures 2a/2b: student and teacher hierarchies ----------------- *)

let students () =
  let h = Hierarchy.create "student" in
  ignore (Hierarchy.add_class h "obsequious_student");
  ignore (Hierarchy.add_instance h ~parents:[ "obsequious_student" ] "john");
  ignore (Hierarchy.add_instance h "mary");
  h

let teachers () =
  let h = Hierarchy.create "teacher" in
  ignore (Hierarchy.add_class h "incoherent_teacher");
  ignore (Hierarchy.add_instance h ~parents:[ "incoherent_teacher" ] "smith");
  ignore (Hierarchy.add_instance h "jones");
  h

(* -- Figure 3: the Respects relation -------------------------------- *)

let respects_schema hs ht = Schema.make [ ("student", hs); ("teacher", ht) ]

(* The two tuples above the dashed line (inconsistent on their own). *)
let respects_unresolved hs ht =
  Relation.of_tuples ~name:"respects" (respects_schema hs ht)
    [
      (Types.Pos, [ "obsequious_student"; "teacher" ]);
      (Types.Neg, [ "student"; "incoherent_teacher" ]);
    ]

let respects hs ht =
  Relation.add_named (respects_unresolved hs ht) Types.Pos
    [ "obsequious_student"; "incoherent_teacher" ]

(* -- Figure 4: elephants -------------------------------------------- *)

let elephants () =
  let h = Hierarchy.create "animal" in
  ignore (Hierarchy.add_class h "elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "african_elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "indian_elephant");
  ignore (Hierarchy.add_class h ~parents:[ "elephant" ] "royal_elephant");
  ignore (Hierarchy.add_instance h ~parents:[ "royal_elephant" ] "clyde");
  ignore (Hierarchy.add_instance h ~parents:[ "royal_elephant"; "indian_elephant" ] "appu");
  h

let colors () =
  let h = Hierarchy.create "color" in
  ignore (Hierarchy.add_instance h "grey");
  ignore (Hierarchy.add_instance h "white");
  ignore (Hierarchy.add_instance h "dappled");
  h

let color_schema he hc = Schema.make [ ("animal", he); ("color", hc) ]

let animal_color he hc =
  Relation.of_tuples ~name:"animal_color" (color_schema he hc)
    [
      (Types.Pos, [ "elephant"; "grey" ]);
      (Types.Neg, [ "royal_elephant"; "grey" ]);
      (Types.Pos, [ "royal_elephant"; "white" ]);
      (Types.Neg, [ "clyde"; "white" ]);
      (Types.Pos, [ "clyde"; "dappled" ]);
    ]

(* -- Figure 11a: enclosure sizes ------------------------------------ *)

let sizes () =
  let h = Hierarchy.create "size" in
  ignore (Hierarchy.add_instance h "s2000");
  ignore (Hierarchy.add_instance h "s3000");
  h

let enclosure_schema he hsz = Schema.make [ ("animal", he); ("enclosure", hsz) ]

let enclosure he hsz =
  Relation.of_tuples ~name:"enclosure" (enclosure_schema he hsz)
    [
      (Types.Pos, [ "elephant"; "s3000" ]);
      (Types.Neg, [ "indian_elephant"; "s3000" ]);
      (Types.Pos, [ "indian_elephant"; "s2000" ]);
    ]

(* -- Figure 10: Jack and Jill --------------------------------------- *)

let loves_schema h = Schema.make [ ("creature", h) ]

let jack_loves h =
  Relation.of_tuples ~name:"jack_loves" (loves_schema h)
    [ (Types.Pos, [ "bird" ]); (Types.Neg, [ "penguin" ]) ]

let jill_loves h =
  Relation.of_tuples ~name:"jill_loves" (loves_schema h)
    [ (Types.Pos, [ "penguin" ]) ]

(* -- Alcotest helpers ------------------------------------------------ *)

let sign = Alcotest.testable Types.pp_sign Types.sign_equal

let item schema =
  Alcotest.testable (fun ppf i -> Item.pp schema ppf i) Item.equal

let verdict_sign = function
  | Binding.Asserted (s, _) -> Some s
  | Binding.Unasserted -> None
  | Binding.Conflict _ -> None

let is_conflict = function
  | Binding.Conflict _ -> true
  | Binding.Asserted _ | Binding.Unasserted -> false

let check_holds rel names expected msg =
  let it = Item.of_names (Relation.schema rel) names in
  Alcotest.(check bool) msg expected (Binding.holds rel it)
