(* Flat baseline tests: classic operators and the traditional
   (footnote 1) encoding. *)

module F = Hr_flat.Flat_relation
module Traditional = Hr_flat.Traditional
open Hierel

let abc () = F.of_rows [ "x"; "y" ] [ [ "a"; "1" ]; [ "b"; "2" ]; [ "c"; "1" ] ]

let test_set_semantics () =
  let r = abc () in
  let r = F.insert r [ "a"; "1" ] in
  Alcotest.(check int) "no duplicates" 3 (F.cardinality r);
  let r = F.delete r [ "b"; "2" ] in
  Alcotest.(check int) "deleted" 2 (F.cardinality r)

let test_select_project () =
  let r = abc () in
  let s = F.select r ~column:"y" ~value:"1" in
  Alcotest.(check int) "two rows" 2 (F.cardinality s);
  let p = F.project r [ "y" ] in
  Alcotest.(check int) "projection dedupes" 2 (F.cardinality p);
  Alcotest.(check (list (list string))) "columns reorderable"
    [ [ "1"; "a" ]; [ "1"; "c" ]; [ "2"; "b" ] ]
    (F.rows (F.project r [ "y"; "x" ]))

let test_join () =
  let r = abc () in
  let s = F.of_rows [ "y"; "z" ] [ [ "1"; "p" ]; [ "2"; "q" ]; [ "3"; "r" ] ] in
  let j = F.join r s in
  Alcotest.(check (list string)) "columns" [ "x"; "y"; "z" ] (F.columns j);
  Alcotest.(check int) "three matches" 3 (F.cardinality j);
  Alcotest.(check bool) "a-1-p present" true (F.mem j [ "a"; "1"; "p" ])

let test_cartesian_when_disjoint () =
  let r = F.of_rows [ "x" ] [ [ "a" ]; [ "b" ] ] in
  let s = F.of_rows [ "y" ] [ [ "1" ]; [ "2" ]; [ "3" ] ] in
  Alcotest.(check int) "2x3" 6 (F.cardinality (F.join r s))

let test_set_ops () =
  let r = F.of_rows [ "x" ] [ [ "a" ]; [ "b" ] ] in
  let s = F.of_rows [ "x" ] [ [ "b" ]; [ "c" ] ] in
  Alcotest.(check int) "union" 3 (F.cardinality (F.union r s));
  Alcotest.(check int) "inter" 1 (F.cardinality (F.inter r s));
  Alcotest.(check int) "diff" 1 (F.cardinality (F.diff r s))

let test_rename () =
  let r = abc () in
  let r' = F.rename r ~old_name:"x" ~new_name:"w" in
  Alcotest.(check (list string)) "renamed" [ "w"; "y" ] (F.columns r')

let test_traditional_member () =
  let h = Fixtures.animals () in
  let t = Traditional.of_hierarchy h in
  Alcotest.(check bool) "tweety is a bird" true (Traditional.member t ~instance:"tweety" ~cls:"bird");
  Alcotest.(check bool) "tweety is not a penguin" false
    (Traditional.member t ~instance:"tweety" ~cls:"penguin");
  Alcotest.(check bool) "patricia is a bird (multi-parent)" true
    (Traditional.member t ~instance:"patricia" ~cls:"bird")

let test_traditional_join_count_grows_with_depth () =
  let shallow = Hr_workload.Workload.chain_hierarchy ~name:"s" ~depth:2 () in
  let deep = Hr_workload.Workload.chain_hierarchy ~name:"d" ~depth:10 () in
  let ts = Traditional.of_hierarchy shallow and td = Traditional.of_hierarchy deep in
  let _, js = Traditional.member_join_count ts ~instance:"leaf" ~cls:"c0" in
  let _, jd = Traditional.member_join_count td ~instance:"leaf" ~cls:"c0" in
  Alcotest.(check bool) "found in both" true
    (Traditional.member ts ~instance:"leaf" ~cls:"c0"
    && Traditional.member td ~instance:"leaf" ~cls:"c0");
  Alcotest.(check bool) "deep chain needs more joins" true (jd > js)

let test_extension_relation_matches_flatten () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let flat = Traditional.extension_relation flies in
  Alcotest.(check int) "same size" (List.length (Flatten.extension_list flies))
    (F.cardinality flat);
  Alcotest.(check bool) "tweety row" true (F.mem flat [ "tweety" ]);
  Alcotest.(check bool) "no paul row" false (F.mem flat [ "paul" ])

let test_storage_blowup () =
  (* one class tuple vs one row per instance *)
  let h =
    Hr_workload.Workload.tree_hierarchy ~name:"big" ~depth:2 ~fanout:4
      ~instances_per_leaf:8 ()
  in
  let schema = Schema.make [ ("v", h) ] in
  let rel = Relation.of_tuples ~name:"r" schema [ (Types.Pos, [ "big" ]) ] in
  let flat = Traditional.extension_relation rel in
  Alcotest.(check int) "hierarchical: 1 tuple" 1 (Relation.cardinality rel);
  Alcotest.(check int) "flat: 128 rows" 128 (F.cardinality flat)

let suite =
  [
    Alcotest.test_case "set semantics" `Quick test_set_semantics;
    Alcotest.test_case "select and project" `Quick test_select_project;
    Alcotest.test_case "natural join" `Quick test_join;
    Alcotest.test_case "cartesian product" `Quick test_cartesian_when_disjoint;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "traditional membership" `Quick test_traditional_member;
    Alcotest.test_case "join count grows with depth (footnote 1)" `Quick
      test_traditional_join_count_grows_with_depth;
    Alcotest.test_case "extension relation = flatten" `Quick
      test_extension_relation_matches_flatten;
    Alcotest.test_case "storage blow-up (claim C1)" `Quick test_storage_blowup;
  ]
