(* Index tests: the indexed access path must agree exactly with the scan
   path, on fixtures and on random workloads. *)

module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let test_agrees_on_fig1 () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let idx = Index.build flies in
  let schema = Relation.schema flies in
  List.iter
    (fun name ->
      let item = Item.of_names schema [ name ] in
      Alcotest.(check bool)
        (Printf.sprintf "same verdict at %s" name)
        (Binding.holds flies item) (Index.holds idx item))
    [ "tweety"; "paul"; "peter"; "pamela"; "patricia"; "penguin"; "bird" ]

let test_relevant_same_set () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let idx = Index.build flies in
  let schema = Relation.schema flies in
  let patricia = Item.of_names schema [ "patricia" ] in
  let scan =
    List.sort Item.compare
      (List.map (fun (t : Relation.tuple) -> t.Relation.item) (Binding.relevant flies patricia))
  in
  let indexed =
    List.sort Item.compare
      (List.map (fun (t : Relation.tuple) -> t.Relation.item) (Index.relevant idx patricia))
  in
  Alcotest.(check bool) "same relevant set" true (List.equal Item.equal scan indexed)

let test_multi_attribute () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let idx = Index.build color in
  let schema = Relation.schema color in
  List.iter
    (fun (a, c) ->
      let item = Item.of_names schema [ a; c ] in
      Alcotest.(check bool)
        (Printf.sprintf "same verdict at (%s, %s)" a c)
        (Binding.holds color item) (Index.holds idx item))
    [
      ("clyde", "grey"); ("clyde", "white"); ("clyde", "dappled");
      ("appu", "grey"); ("appu", "white"); ("elephant", "grey");
    ]

let prop_index_agrees =
  QCheck2.Test.make ~name:"indexed verdicts = scanned verdicts" ~count:40
    (QCheck2.Gen.int_range 1 100_000)
    (fun seed ->
      let g = Prng.create (Int64.of_int seed) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "ih%d" seed;
            classes = 8;
            instances = 12;
            multi_parent_prob = 0.2;
          }
      in
      let schema = Schema.make [ ("v", h) ] in
      let rel =
        Workload.consistent_random_relation g schema
          { Workload.default_relation_spec with tuples = 12 }
      in
      let idx = Index.build rel in
      (* binder order may legitimately differ between access paths *)
      let canon = function
        | Binding.Asserted (s, binders) ->
          `Asserted
            ( s,
              List.sort Item.compare
                (List.map (fun (t : Relation.tuple) -> t.Relation.item) binders) )
        | Binding.Unasserted -> `Unasserted
        | Binding.Conflict { positive; negative } ->
          `Conflict (List.length positive, List.length negative)
      in
      List.for_all
        (fun node ->
          let item = Item.make schema [| node |] in
          canon (Binding.verdict rel item) = canon (Index.verdict idx item))
        (Hierarchy.nodes h))

let suite =
  [
    Alcotest.test_case "agrees on fig1" `Quick test_agrees_on_fig1;
    Alcotest.test_case "same relevant set" `Quick test_relevant_same_set;
    Alcotest.test_case "multi-attribute" `Quick test_multi_attribute;
    QCheck_alcotest.to_alcotest prop_index_agrees;
  ]
