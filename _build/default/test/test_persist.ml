(* Persistence tests: dump/load round trips through the HRQL format. *)

module Eval = Hr_query.Eval
module Persist = Hr_query.Persist
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let build_catalog () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN pets;
    CREATE CLASS dog UNDER pets;
    CREATE CLASS puppy UNDER dog;
    CREATE CLASS cat UNDER pets;
    CREATE INSTANCE rex OF puppy;
    CREATE INSTANCE felix OF cat;
    CREATE INSTANCE hybrid OF dog, cat;
    CREATE PREFERENCE dog OVER cat;
    CREATE DOMAIN food;
    CREATE INSTANCE kibble OF food;
    CREATE INSTANCE fish OF food;
    CREATE RELATION eats (pet: pets, food: food);
    INSERT INTO eats VALUES (+ ALL dog, kibble), (- ALL puppy, kibble), (+ ALL cat, fish);
    CREATE RELATION empty_rel (pet: pets);
    |}
  in
  match Eval.run_script cat script with
  | Ok _ -> cat
  | Error e -> failwith e

let test_dump_is_loadable () =
  let cat = build_catalog () in
  let dump = Persist.dump_catalog cat in
  let cat2 = Catalog.create () in
  (match Persist.load_string cat2 dump with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reload failed: %s" e);
  Alcotest.(check int) "two hierarchies" 2 (List.length (Catalog.hierarchies cat2));
  Alcotest.(check int) "two relations" 2 (List.length (Catalog.relations cat2))

let test_roundtrip_fixpoint () =
  (* dump(load(dump(c))) = dump(c): the format is canonical *)
  let cat = build_catalog () in
  let d1 = Persist.dump_catalog cat in
  let cat2 = Catalog.create () in
  (match Persist.load_string cat2 d1 with Ok () -> () | Error e -> failwith e);
  let d2 = Persist.dump_catalog cat2 in
  Alcotest.(check string) "canonical" d1 d2

let test_tuples_preserved () =
  let cat = build_catalog () in
  let cat2 = Catalog.create () in
  (match Persist.load_string cat2 (Persist.dump_catalog cat) with
  | Ok () -> ()
  | Error e -> failwith e);
  let r = Catalog.relation cat2 "eats" in
  Alcotest.(check int) "three tuples" 3 (Relation.cardinality r);
  let schema = Relation.schema r in
  Alcotest.(check bool) "rex kibble excluded" false
    (Binding.holds r (Item.of_names schema [ "rex"; "kibble" ]));
  Alcotest.(check bool) "felix fish" true
    (Binding.holds r (Item.of_names schema [ "felix"; "fish" ]))

let test_hierarchy_structure_preserved () =
  let cat = build_catalog () in
  let cat2 = Catalog.create () in
  (match Persist.load_string cat2 (Persist.dump_catalog cat) with
  | Ok () -> ()
  | Error e -> failwith e);
  let h = Catalog.hierarchy cat2 "pets" in
  Alcotest.(check bool) "multi-parent preserved" true
    (Hierarchy.subsumes h (Hierarchy.find_exn h "dog") (Hierarchy.find_exn h "hybrid")
    && Hierarchy.subsumes h (Hierarchy.find_exn h "cat") (Hierarchy.find_exn h "hybrid"));
  Alcotest.(check int) "preference preserved" 1 (List.length (Hierarchy.preference_edges h));
  Alcotest.(check bool) "instances preserved" true
    (Hierarchy.is_instance h (Hierarchy.find_exn h "rex"))

let test_file_round_trip () =
  let cat = build_catalog () in
  let path = Filename.temp_file "hrdb_test" ".hrql" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save cat path;
      let cat2 = Catalog.create () in
      (match Persist.load_file cat2 path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "load_file: %s" e);
      Alcotest.(check string) "same dump" (Persist.dump_catalog cat)
        (Persist.dump_catalog cat2))

let test_empty_catalog () =
  let cat = Catalog.create () in
  let dump = Persist.dump_catalog cat in
  let cat2 = Catalog.create () in
  (match Persist.load_string cat2 dump with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty reload: %s" e);
  Alcotest.(check int) "nothing" 0 (List.length (Catalog.relations cat2))

(* random catalogs round-trip through the text format *)
let prop_random_roundtrip =
  QCheck2.Test.make ~name:"dump/load is a fixpoint on random catalogs" ~count:25
    (QCheck2.Gen.int_range 1 100_000)
    (fun seed ->
      let module Workload = Hr_workload.Workload in
      let module Prng = Hr_util.Prng in
      let g = Prng.create (Int64.of_int seed) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "pc%d" seed;
            classes = 10;
            instances = 15;
            multi_parent_prob = 0.25;
          }
      in
      let cat = Catalog.create () in
      Catalog.define_hierarchy cat h;
      let schema = Schema.make [ ("v", h) ] in
      Catalog.define_relation cat
        (Workload.consistent_random_relation g schema
           { Workload.default_relation_spec with rel_name = Printf.sprintf "pr%d" seed });
      let d1 = Persist.dump_catalog cat in
      let cat2 = Catalog.create () in
      match Persist.load_string cat2 d1 with
      | Error _ -> false
      | Ok () -> Persist.dump_catalog cat2 = d1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_roundtrip;
    Alcotest.test_case "dump is loadable" `Quick test_dump_is_loadable;
    Alcotest.test_case "round trip is a fixpoint" `Quick test_roundtrip_fixpoint;
    Alcotest.test_case "tuples preserved" `Quick test_tuples_preserved;
    Alcotest.test_case "hierarchy structure preserved" `Quick
      test_hierarchy_structure_preserved;
    Alcotest.test_case "file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "empty catalog" `Quick test_empty_catalog;
  ]
