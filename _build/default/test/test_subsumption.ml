(* Subsumption graph tests: transitive reduction of tuple subsumption,
   the universal negated root, and graph shape on the paper's relations. *)

open Hierel

let test_fig1c_shape () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let g = Subsumption.build flies in
  Alcotest.(check int) "four tuples" 4 (Subsumption.tuple_count g);
  (* root -> bird only *)
  let root_succs = Subsumption.succs g (Subsumption.root g) in
  Alcotest.(check int) "one graph root" 1 (List.length root_succs);
  let schema = Relation.schema flies in
  let label i = Item.to_string schema (Subsumption.tuple g i).Relation.item in
  Alcotest.(check string) "root covers bird" "(V bird)" (label (List.hd root_succs));
  (* the penguin node has two children: afp and peter *)
  let penguin =
    List.find
      (fun i -> i <> Subsumption.root g && label i = "(V penguin)")
      (List.init (Subsumption.tuple_count g) Fun.id)
  in
  Alcotest.(check int) "penguin covers afp and peter" 2
    (List.length (Subsumption.succs g penguin));
  (* transitive reduction: no direct bird -> peter edge *)
  let bird =
    List.find
      (fun i -> i <> Subsumption.root g && label i = "(V bird)")
      (List.init (Subsumption.tuple_count g) Fun.id)
  in
  Alcotest.(check int) "bird has a single child" 1 (List.length (Subsumption.succs g bird))

let test_sign_of_node () =
  let h = Fixtures.animals () in
  let g = Subsumption.build (Fixtures.flies h) in
  Alcotest.(check Fixtures.sign) "root is negated" Types.Neg
    (Subsumption.sign_of_node g (Subsumption.root g))

let test_topological_root_first () =
  let h = Fixtures.animals () in
  let g = Subsumption.build (Fixtures.flies h) in
  match Subsumption.topological g with
  | first :: _ -> Alcotest.(check int) "root leads" (Subsumption.root g) first
  | [] -> Alcotest.fail "empty order"

let test_incomparable_tuples_both_under_root () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let r =
    Relation.of_tuples ~name:"r" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "african_elephant"; "grey" ]);
        (Types.Pos, [ "indian_elephant"; "grey" ]);
      ]
  in
  let g = Subsumption.build r in
  Alcotest.(check int) "both hang off the universal root" 2
    (List.length (Subsumption.succs g (Subsumption.root g)))

let test_multi_attribute_reduction () =
  (* (elephant, grey) > (royal, grey) > (clyde, grey): the long edge is
     reduced away *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let r =
    Relation.of_tuples ~name:"r" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "elephant"; "grey" ]);
        (Types.Pos, [ "royal_elephant"; "grey" ]);
        (Types.Pos, [ "clyde"; "grey" ]);
      ]
  in
  let g = Subsumption.build r in
  let schema = Relation.schema r in
  let node_of label =
    List.find
      (fun i ->
        i <> Subsumption.root g
        && Item.to_string schema (Subsumption.tuple g i).Relation.item = label)
      (List.init (Subsumption.tuple_count g) Fun.id)
  in
  let elephant = node_of "(V elephant, grey)" in
  Alcotest.(check int) "single reduced edge" 1 (List.length (Subsumption.succs g elephant));
  let clyde = node_of "(clyde, grey)" in
  Alcotest.(check int) "clyde has one pred" 1 (List.length (Subsumption.preds g clyde))

let test_empty_relation_graph () =
  let h = Fixtures.animals () in
  let g = Subsumption.build (Relation.empty ~name:"e" (Fixtures.flies_schema h)) in
  Alcotest.(check int) "no tuples" 0 (Subsumption.tuple_count g);
  Alcotest.(check int) "just the root" 1 (List.length (Subsumption.topological g))

let suite =
  [
    Alcotest.test_case "fig1c shape" `Quick test_fig1c_shape;
    Alcotest.test_case "universal root is negated" `Quick test_sign_of_node;
    Alcotest.test_case "topological order" `Quick test_topological_root_first;
    Alcotest.test_case "incomparable tuples under root" `Quick
      test_incomparable_tuples_both_under_root;
    Alcotest.test_case "multi-attribute reduction" `Quick test_multi_attribute_reduction;
    Alcotest.test_case "empty relation" `Quick test_empty_relation_graph;
  ]
