(* Schema tests: construction, lookup, projection, concatenation,
   renaming. *)

open Hierel

let setup () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  (he, hc, Fixtures.color_schema he hc)

let test_basics () =
  let he, hc, schema = setup () in
  Alcotest.(check int) "arity" 2 (Schema.arity schema);
  Alcotest.(check (list string)) "names" [ "animal"; "color" ] (Schema.names schema);
  Alcotest.(check bool) "hierarchy 0" true (Schema.hierarchy schema 0 == he);
  Alcotest.(check bool) "hierarchy 1" true (Schema.hierarchy schema 1 == hc)

let test_index_of () =
  let _, _, schema = setup () in
  Alcotest.(check int) "animal" 0 (Schema.index_of schema "animal");
  Alcotest.(check int) "color" 1 (Schema.index_of schema "color");
  Alcotest.(check (option int)) "missing" None (Schema.find_index schema "zzz");
  try
    ignore (Schema.index_of schema "zzz");
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_duplicates_rejected () =
  let he, _, _ = setup () in
  try
    ignore (Schema.make [ ("a", he); ("a", he) ]);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_empty_rejected () =
  try
    ignore (Schema.make []);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_equal () =
  let he, hc, schema = setup () in
  let same = Schema.make [ ("animal", he); ("color", hc) ] in
  let reordered = Schema.make [ ("color", hc); ("animal", he) ] in
  let other_h = Schema.make [ ("animal", Fixtures.elephants ()); ("color", hc) ] in
  Alcotest.(check bool) "equal" true (Schema.equal schema same);
  Alcotest.(check bool) "order matters" false (Schema.equal schema reordered);
  Alcotest.(check bool) "hierarchy identity matters" false (Schema.equal schema other_h)

let test_project_and_concat () =
  let he, hc, schema = setup () in
  let p = Schema.project schema [ 1 ] in
  Alcotest.(check (list string)) "projected" [ "color" ] (Schema.names p);
  let hs = Fixtures.sizes () in
  let extra = Schema.make [ ("size", hs) ] in
  let c = Schema.concat schema extra in
  Alcotest.(check (list string)) "concat" [ "animal"; "color"; "size" ] (Schema.names c);
  (try
     ignore (Schema.concat schema schema);
     Alcotest.fail "expected Model_error on duplicate names"
   with Types.Model_error _ -> ());
  ignore he;
  ignore hc

let test_rename () =
  let _, _, schema = setup () in
  let r = Schema.rename schema ~old_name:"animal" ~new_name:"beast" in
  Alcotest.(check (list string)) "renamed" [ "beast"; "color" ] (Schema.names r);
  Alcotest.(check (list string)) "original untouched" [ "animal"; "color" ]
    (Schema.names schema);
  try
    ignore (Schema.rename schema ~old_name:"animal" ~new_name:"color");
    Alcotest.fail "expected Model_error on name clash"
  with Types.Model_error _ -> ()

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "index lookup" `Quick test_index_of;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicates_rejected;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "project and concat" `Quick test_project_and_concat;
    Alcotest.test_case "rename" `Quick test_rename;
  ]
