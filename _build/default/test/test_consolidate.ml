(* Consolidation tests: the paper's Figure 6 walkthrough, the universal
   negated tuple, uniqueness of the minimum, and Figure 5's np-hardness
   boundary (union-subsumed tuples are NOT considered redundant). *)

open Hierel

let tuple_strings rel =
  List.map
    (fun (t : Relation.tuple) ->
      Format.asprintf "%a%s" Types.pp_sign t.Relation.sign
        (Item.to_string (Relation.schema rel) t.Relation.item))
    (Relation.tuples rel)
  |> List.sort String.compare

let test_fig6_walkthrough () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let consolidated, removed = Consolidate.consolidate_verbose r in
  Alcotest.(check int) "two tuples removed" 2 (List.length removed);
  Alcotest.(check (list string)) "only the general positive tuple survives"
    [ "+(V obsequious_student, V teacher)" ]
    (tuple_strings consolidated);
  (* removal order follows the topological walk: the uncovered negated
     tuple first, then the conflict-resolution tuple *)
  (match removed with
  | [ first; second ] ->
    Alcotest.(check Fixtures.sign) "negated first" Types.Neg first.Relation.sign;
    Alcotest.(check Fixtures.sign) "positive second" Types.Pos second.Relation.sign
  | _ -> Alcotest.fail "expected two removals");
  Alcotest.(check bool) "extension preserved" true (Flatten.equal_extension r consolidated)

let test_conflict_resolver_not_redundant_alone () =
  (* §3.2: the (obsequious, incoherent) resolver looks redundant next to
     the more general positive tuple, but deleting it alone (while the
     negation stays) produces an inconsistent relation — consolidation must
     remove the negation first, never the resolver alone. *)
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let schema = Relation.schema r in
  let resolver = Item.of_names schema [ "obsequious_student"; "incoherent_teacher" ] in
  let hasty = Relation.remove r resolver in
  Alcotest.(check bool) "hasty deletion breaks consistency" false
    (Integrity.is_consistent hasty);
  Alcotest.(check bool) "consolidation result is consistent" true
    (Integrity.is_consistent (Consolidate.consolidate r))

let test_uncovered_negative_redundant () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let r =
    Relation.of_tuples ~name:"flies" schema
      [ (Types.Neg, [ "penguin" ]) ]
  in
  let consolidated = Consolidate.consolidate r in
  Alcotest.(check int) "bare negation vanishes" 0 (Relation.cardinality consolidated)

let test_duplicate_positive_redundant () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let r =
    Relation.of_tuples ~name:"flies" schema
      [ (Types.Pos, [ "bird" ]); (Types.Pos, [ "canary" ]); (Types.Pos, [ "tweety" ]) ]
  in
  let consolidated = Consolidate.consolidate r in
  Alcotest.(check (list string)) "chain collapses to the most general"
    [ "+(V bird)" ] (tuple_strings consolidated)

let test_exception_chain_kept () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let consolidated = Consolidate.consolidate flies in
  (* peter's tuple is genuinely needed; the chain has alternating signs *)
  Alcotest.(check int) "all four kept" 4 (Relation.cardinality consolidated)

let test_idempotent () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let once = Consolidate.consolidate r in
  let twice = Consolidate.consolidate once in
  Alcotest.(check bool) "idempotent" true (Relation.equal once twice);
  Alcotest.(check bool) "is_consolidated" true (Consolidate.is_consolidated once)

let test_fig5_union_subsumption_not_redundant () =
  (* Figure 5: C ⊆ A ∪ B but neither A nor B alone covers C. A tuple on C
     must survive consolidation (detecting it is np-hard and semantically
     fragile). *)
  let module Hierarchy = Hr_hierarchy.Hierarchy in
  let h = Hierarchy.create "d" in
  ignore (Hierarchy.add_class h "a");
  ignore (Hierarchy.add_class h "b");
  ignore (Hierarchy.add_class h "c");
  ignore (Hierarchy.add_instance h ~parents:[ "a"; "c" ] "x1");
  ignore (Hierarchy.add_instance h ~parents:[ "b"; "c" ] "x2");
  let schema = Schema.make [ ("v", h) ] in
  let r =
    Relation.of_tuples ~name:"r" schema
      [ (Types.Pos, [ "a" ]); (Types.Pos, [ "b" ]); (Types.Pos, [ "c" ]) ]
  in
  let consolidated = Consolidate.consolidate r in
  Alcotest.(check int) "c retained" 3 (Relation.cardinality consolidated)

let test_consolidate_empty () =
  let h = Fixtures.animals () in
  let r = Relation.empty ~name:"e" (Fixtures.flies_schema h) in
  Alcotest.(check int) "empty stays empty" 0
    (Relation.cardinality (Consolidate.consolidate r))

let suite =
  [
    Alcotest.test_case "fig6: respects consolidates to one tuple" `Quick test_fig6_walkthrough;
    Alcotest.test_case "resolver protected while negation present" `Quick
      test_conflict_resolver_not_redundant_alone;
    Alcotest.test_case "uncovered negation is redundant" `Quick test_uncovered_negative_redundant;
    Alcotest.test_case "same-sign chain collapses" `Quick test_duplicate_positive_redundant;
    Alcotest.test_case "alternating chain kept" `Quick test_exception_chain_kept;
    Alcotest.test_case "idempotence" `Quick test_idempotent;
    Alcotest.test_case "fig5: union subsumption not redundant" `Quick
      test_fig5_union_subsumption_not_redundant;
    Alcotest.test_case "empty relation" `Quick test_consolidate_empty;
  ]
