(* Auto-organization tests (Conclusion: classes chosen to minimize
   storage). *)

module Mine = Hr_mine.Mine
module Workload = Hr_workload.Workload
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let extension_names rel =
  let schema = Relation.schema rel in
  List.map (fun it -> Item.to_string schema it) (Flatten.extension_list rel)
  |> List.sort String.compare

let test_exact_on_tree_all () =
  let h = Workload.tree_hierarchy ~name:"t" ~depth:2 ~fanout:3 ~instances_per_leaf:2 () in
  let members = List.map (Hierarchy.node_label h) (Hierarchy.instances h) in
  let rel = Mine.organize h ~members in
  Alcotest.(check int) "one tuple covers everything" 1 (Relation.cardinality rel);
  Alcotest.(check int) "extension complete" (List.length members)
    (List.length (Flatten.extension_list rel))

let test_exact_on_tree_with_exception () =
  (* everything but one instance: root+ plus a single negation *)
  let h = Workload.tree_hierarchy ~name:"t" ~depth:2 ~fanout:3 ~instances_per_leaf:2 () in
  let all = List.map (Hierarchy.node_label h) (Hierarchy.instances h) in
  let members = List.tl all in
  let rel = Mine.organize h ~members in
  Alcotest.(check int) "two tuples" 2 (Relation.cardinality rel);
  Alcotest.(check (list string)) "exact extension"
    (List.sort String.compare (List.map (fun m -> "(" ^ m ^ ")") members))
    (extension_names rel)

let test_exact_on_subtree () =
  (* exactly one subtree: a single class tuple *)
  let h = Workload.tree_hierarchy ~name:"t" ~depth:2 ~fanout:2 ~instances_per_leaf:3 () in
  let cls = List.hd (List.filter (fun c -> c <> Hierarchy.root h) (Hierarchy.classes h)) in
  let members = List.map (Hierarchy.node_label h) (Hierarchy.leaves_under h cls) in
  let rel = Mine.organize h ~members in
  Alcotest.(check bool) "at most 2 tuples" true (Relation.cardinality rel <= 2);
  Alcotest.(check (list string)) "exact extension"
    (List.sort String.compare (List.map (fun m -> "(" ^ m ^ ")") members))
    (extension_names rel)

let test_empty_members () =
  let h = Workload.tree_hierarchy ~name:"t" ~depth:1 ~fanout:2 ~instances_per_leaf:2 () in
  let rel = Mine.organize h ~members:[] in
  Alcotest.(check int) "empty relation" 0 (Relation.cardinality rel);
  Alcotest.(check int) "empty extension" 0 (List.length (Flatten.extension_list rel))

let test_rejects_classes () =
  let h = Workload.tree_hierarchy ~name:"t" ~depth:1 ~fanout:2 ~instances_per_leaf:1 () in
  let cls = List.hd (List.filter (fun c -> c <> Hierarchy.root h) (Hierarchy.classes h)) in
  try
    ignore (Mine.organize h ~members:[ Hierarchy.node_label h cls ]);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_correct_on_random_dag () =
  (* correctness (not optimality) on multi-parent hierarchies *)
  let g = Hr_util.Prng.create 7L in
  for seed = 1 to 10 do
    let g = Hr_util.Prng.split g in
    ignore seed;
    let h =
      Workload.random_hierarchy g
        { Workload.default_hierarchy_spec with name = Printf.sprintf "d%d" (Hr_util.Prng.int g 1000000) }
    in
    let instances = Hierarchy.instances h in
    let members =
      List.filteri (fun i _ -> i mod 3 <> 0) instances
      |> List.map (Hierarchy.node_label h)
    in
    let rel = Mine.organize h ~members in
    Alcotest.(check (list string))
      "extension equals requested membership"
      (List.sort String.compare (List.map (fun m -> "(" ^ m ^ ")") members))
      (extension_names rel)
  done

let test_compression_ratio () =
  let h = Workload.tree_hierarchy ~name:"t" ~depth:2 ~fanout:4 ~instances_per_leaf:4 () in
  let members = List.map (Hierarchy.node_label h) (Hierarchy.instances h) in
  let rel = Mine.organize h ~members in
  Alcotest.(check bool) "64x compression" true (Mine.compression_ratio rel >= 60.0)

let test_is_tree () =
  let t = Workload.tree_hierarchy ~name:"t" ~depth:2 ~fanout:2 ~instances_per_leaf:1 () in
  Alcotest.(check bool) "tree" true (Mine.is_tree t);
  let d = Fixtures.elephants () in
  Alcotest.(check bool) "appu has two parents" false (Mine.is_tree d)

let suite =
  [
    Alcotest.test_case "full membership = one tuple" `Quick test_exact_on_tree_all;
    Alcotest.test_case "all-but-one = two tuples" `Quick test_exact_on_tree_with_exception;
    Alcotest.test_case "one subtree" `Quick test_exact_on_subtree;
    Alcotest.test_case "empty membership" `Quick test_empty_members;
    Alcotest.test_case "classes rejected as members" `Quick test_rejects_classes;
    Alcotest.test_case "correct on random DAGs" `Quick test_correct_on_random_dag;
    Alcotest.test_case "compression ratio" `Quick test_compression_ratio;
    Alcotest.test_case "is_tree" `Quick test_is_tree;
  ]
