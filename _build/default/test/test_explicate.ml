(* Explication tests (paper §3.3.2): full and partial flattening. *)

open Hierel

let item_strings rel =
  List.map
    (fun (t : Relation.tuple) ->
      Format.asprintf "%a%s" Types.pp_sign t.Relation.sign
        (Item.to_string (Relation.schema rel) t.Relation.item))
    (Relation.tuples rel)
  |> List.sort String.compare

let test_full_explication_fig1 () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let flat = Explicate.explicate flies in
  Alcotest.(check (list string)) "flying creatures"
    [ "+(pamela)"; "+(patricia)"; "+(peter)"; "+(tweety)" ]
    (item_strings flat)

let test_full_explication_keep_negated () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let flat = Explicate.explicate ~keep_negated:true flies in
  Alcotest.(check (list string)) "all five creatures decided"
    [ "+(pamela)"; "+(patricia)"; "+(peter)"; "+(tweety)"; "-(paul)" ]
    (item_strings flat)

let test_explication_is_atomic () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let flat = Explicate.explicate color in
  let schema = Relation.schema flat in
  Alcotest.(check bool) "all atomic" true
    (List.for_all (fun (t : Relation.tuple) -> Item.is_atomic schema t.Relation.item)
       (Relation.tuples flat))

let test_full_explication_fig4 () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let flat = Explicate.explicate color in
  Alcotest.(check (list string)) "clyde dappled, appu white"
    [ "+(appu, white)"; "+(clyde, dappled)" ]
    (item_strings flat)

let test_partial_explication () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let partial = Explicate.explicate ~over:[ "animal" ] color in
  let schema = Relation.schema partial in
  (* animal column atomic, color column untouched; negated tuples kept *)
  Alcotest.(check bool) "animal coordinate atomic" true
    (List.for_all
       (fun (t : Relation.tuple) ->
         Hr_hierarchy.Hierarchy.is_instance he (Item.coord t.Relation.item 0))
       (Relation.tuples partial));
  Alcotest.(check bool) "negated tuples kept" true
    (List.exists
       (fun (t : Relation.tuple) -> Types.sign_equal t.Relation.sign Types.Neg)
       (Relation.tuples partial));
  (* semantics preserved on atoms *)
  Fixtures.check_holds partial [ "clyde"; "dappled" ] true "clyde dappled";
  Fixtures.check_holds partial [ "appu"; "grey" ] false "appu not grey";
  ignore schema

let test_explication_agrees_with_binding () =
  (* every atomic item of the domain gets the same verdict before and
     after full explication *)
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let flat = Explicate.explicate ~keep_negated:true flies in
  let schema = Relation.schema flies in
  List.iter
    (fun leaf ->
      let it = Item.make schema [| leaf |] in
      Alcotest.(check bool)
        (Printf.sprintf "same truth at %s" (Item.to_string schema it))
        (Binding.holds flies it) (Binding.holds flat it))
    (Hr_hierarchy.Hierarchy.instances h)

let test_extension_size () =
  let h = Fixtures.animals () in
  Alcotest.(check int) "4 flying creatures" 4 (Explicate.extension_size (Fixtures.flies h))

let test_explicate_empty_class () =
  (* a class with no instances contributes nothing *)
  let module Hierarchy = Hr_hierarchy.Hierarchy in
  let h = Hierarchy.create "d" in
  ignore (Hierarchy.add_class h "ghost");
  ignore (Hierarchy.add_instance h "solid");
  let schema = Schema.make [ ("v", h) ] in
  let r = Relation.of_tuples ~name:"r" schema [ (Types.Pos, [ "ghost" ]) ] in
  Alcotest.(check int) "empty extension" 0 (Explicate.extension_size r)

let suite =
  [
    Alcotest.test_case "fig1 full explication" `Quick test_full_explication_fig1;
    Alcotest.test_case "keep_negated variant" `Quick test_full_explication_keep_negated;
    Alcotest.test_case "result is atomic" `Quick test_explication_is_atomic;
    Alcotest.test_case "fig4 full explication" `Quick test_full_explication_fig4;
    Alcotest.test_case "partial explication" `Quick test_partial_explication;
    Alcotest.test_case "explication preserves truth" `Quick test_explication_agrees_with_binding;
    Alcotest.test_case "extension size" `Quick test_extension_size;
    Alcotest.test_case "instance-free classes vanish" `Quick test_explicate_empty_class;
  ]
