(* Item-level tests: construction, subsumption, products, extensions. *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let setup () =
  let he = Fixtures.elephants () in
  let hc = Fixtures.colors () in
  (he, hc, Fixtures.color_schema he hc)

let test_make_and_coords () =
  let he, _, schema = setup () in
  let item = Item.of_names schema [ "royal_elephant"; "grey" ] in
  Alcotest.(check int) "arity" 2 (Item.arity item);
  Alcotest.(check int) "first coord" (Hierarchy.find_exn he "royal_elephant")
    (Item.coord item 0);
  let coords = Item.coords item in
  Alcotest.(check int) "coords copy" (Item.coord item 1) coords.(1)

let test_make_checks_arity () =
  let _, _, schema = setup () in
  try
    ignore (Item.make schema [| 0 |]);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_make_checks_node_liveness () =
  let _, _, schema = setup () in
  try
    ignore (Item.make schema [| 9999; 0 |]);
    Alcotest.fail "expected Hierarchy.Error"
  with Hierarchy.Error _ -> ()

let test_atomicity () =
  let _, _, schema = setup () in
  Alcotest.(check bool) "instances atomic" true
    (Item.is_atomic schema (Item.of_names schema [ "clyde"; "grey" ]));
  Alcotest.(check bool) "class not atomic" false
    (Item.is_atomic schema (Item.of_names schema [ "royal_elephant"; "grey" ]))

let test_subsumption_componentwise () =
  let _, _, schema = setup () in
  let general = Item.of_names schema [ "elephant"; "grey" ] in
  let specific = Item.of_names schema [ "clyde"; "grey" ] in
  let other = Item.of_names schema [ "clyde"; "white" ] in
  Alcotest.(check bool) "subsumes" true (Item.subsumes schema general specific);
  Alcotest.(check bool) "strict" true (Item.strictly_subsumes schema general specific);
  Alcotest.(check bool) "not reflexively strict" false
    (Item.strictly_subsumes schema general general);
  Alcotest.(check bool) "color mismatch blocks" false (Item.subsumes schema general other);
  Alcotest.(check bool) "comparable" true (Item.comparable schema general specific);
  Alcotest.(check bool) "incomparable" false (Item.comparable schema specific other)

let test_intersects_and_mcd () =
  let _, _, schema = setup () in
  let royal = Item.of_names schema [ "royal_elephant"; "grey" ] in
  let indian = Item.of_names schema [ "indian_elephant"; "grey" ] in
  let african = Item.of_names schema [ "african_elephant"; "grey" ] in
  Alcotest.(check bool) "royal/indian meet at appu" true
    (Item.intersects schema royal indian);
  Alcotest.(check bool) "african/indian disjoint" false
    (Item.intersects schema african indian);
  Alcotest.(check (list string)) "mcd product" [ "(appu, grey)" ]
    (List.map (Item.to_string schema) (Item.maximal_common_descendants schema royal indian));
  Alcotest.(check (list string)) "mcd empty" []
    (List.map (Item.to_string schema) (Item.maximal_common_descendants schema african indian))

let test_mcd_multi_coordinate_product () =
  (* two coordinates each with two maximal witnesses -> 4 product items *)
  let h1 = Hierarchy.create "d1" in
  ignore (Hierarchy.add_class h1 "a");
  ignore (Hierarchy.add_class h1 "b");
  ignore (Hierarchy.add_instance h1 ~parents:[ "a"; "b" ] "x1");
  ignore (Hierarchy.add_instance h1 ~parents:[ "a"; "b" ] "x2");
  let schema = Schema.make [ ("p", h1); ("q", h1) ] in
  let i1 = Item.of_names schema [ "a"; "a" ] in
  let i2 = Item.of_names schema [ "b"; "b" ] in
  Alcotest.(check int) "2x2 witnesses" 4
    (List.length (Item.maximal_common_descendants schema i1 i2))

let test_substitute_project_concat () =
  let he, _, schema = setup () in
  let item = Item.of_names schema [ "clyde"; "grey" ] in
  let item' = Item.substitute item 0 (Hierarchy.find_exn he "appu") in
  Alcotest.(check string) "substituted" "(appu, grey)" (Item.to_string schema item');
  Alcotest.(check string) "original untouched" "(clyde, grey)" (Item.to_string schema item);
  let p = Item.project item [ 1 ] in
  Alcotest.(check int) "projected arity" 1 (Item.arity p);
  let c = Item.concat p p in
  Alcotest.(check int) "concat arity" 2 (Item.arity c)

let test_atomic_extension () =
  let _, _, schema = setup () in
  let item = Item.of_names schema [ "royal_elephant"; "grey" ] in
  let ext = Item.atomic_extension schema item in
  Alcotest.(check (list string)) "royals x grey" [ "(appu, grey)"; "(clyde, grey)" ]
    (List.sort String.compare (List.map (Item.to_string schema) ext));
  let partial = Item.atomic_extension schema ~over:[ 1 ] item in
  Alcotest.(check int) "color already atomic" 1 (List.length partial);
  let empty = Item.atomic_extension schema (Item.of_names schema [ "african_elephant"; "grey" ]) in
  Alcotest.(check int) "instance-free class" 0 (List.length empty)

let test_pp_quantifier () =
  let _, _, schema = setup () in
  Alcotest.(check string) "V prefix on classes" "(V elephant, grey)"
    (Item.to_string schema (Item.of_names schema [ "elephant"; "grey" ]));
  Alcotest.(check string) "bare instances" "(clyde, dappled)"
    (Item.to_string schema (Item.of_names schema [ "clyde"; "dappled" ]))

let test_structural_order_total () =
  let _, _, schema = setup () in
  let items =
    List.map (Item.of_names schema)
      [ [ "clyde"; "grey" ]; [ "appu"; "grey" ]; [ "clyde"; "white" ]; [ "clyde"; "grey" ] ]
  in
  let sorted = List.sort_uniq Item.compare items in
  Alcotest.(check int) "three distinct" 3 (List.length sorted)

let suite =
  [
    Alcotest.test_case "make and coords" `Quick test_make_and_coords;
    Alcotest.test_case "arity checked" `Quick test_make_checks_arity;
    Alcotest.test_case "node liveness checked" `Quick test_make_checks_node_liveness;
    Alcotest.test_case "atomicity" `Quick test_atomicity;
    Alcotest.test_case "componentwise subsumption" `Quick test_subsumption_componentwise;
    Alcotest.test_case "intersection and mcd" `Quick test_intersects_and_mcd;
    Alcotest.test_case "mcd product across coordinates" `Quick test_mcd_multi_coordinate_product;
    Alcotest.test_case "substitute/project/concat" `Quick test_substitute_project_concat;
    Alcotest.test_case "atomic extension" `Quick test_atomic_extension;
    Alcotest.test_case "quantifier rendering" `Quick test_pp_quantifier;
    Alcotest.test_case "structural order" `Quick test_structural_order_total;
  ]
