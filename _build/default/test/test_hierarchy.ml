(* Tests for the hierarchy substrate, mostly on the paper's taxonomies. *)

module Hierarchy = Hr_hierarchy.Hierarchy

let names h vs = List.sort String.compare (List.map (Hierarchy.node_label h) vs)

let test_structure () =
  let h = Fixtures.animals () in
  Alcotest.(check string) "domain" "animal" (Hierarchy.node_label h (Hierarchy.root h));
  Alcotest.(check int) "node count" 11 (Hierarchy.node_count h);
  Alcotest.(check bool) "tweety is instance" true
    (Hierarchy.is_instance h (Hierarchy.find_exn h "tweety"));
  Alcotest.(check bool) "bird is class" true
    (Hierarchy.is_class h (Hierarchy.find_exn h "bird"));
  Alcotest.(check int) "5 instances" 5 (List.length (Hierarchy.instances h));
  Alcotest.(check int) "6 classes" 6 (List.length (Hierarchy.classes h))

let test_membership () =
  let h = Fixtures.animals () in
  let sub a b = Hierarchy.subsumes h (Hierarchy.find_exn h a) (Hierarchy.find_exn h b) in
  Alcotest.(check bool) "bird > tweety" true (sub "bird" "tweety");
  Alcotest.(check bool) "bird > patricia" true (sub "bird" "patricia");
  Alcotest.(check bool) "penguin > patricia (both parents)" true (sub "penguin" "patricia");
  Alcotest.(check bool) "canary !> paul" false (sub "canary" "paul");
  Alcotest.(check bool) "reflexive" true (sub "penguin" "penguin");
  Alcotest.(check bool) "not upward" false (sub "penguin" "bird")

let test_leaves_under () =
  let h = Fixtures.animals () in
  let leaves name = names h (Hierarchy.leaves_under h (Hierarchy.find_exn h name)) in
  Alcotest.(check (list string)) "penguins" [ "pamela"; "patricia"; "paul"; "peter" ]
    (leaves "penguin");
  Alcotest.(check (list string)) "canaries" [ "tweety" ] (leaves "canary");
  Alcotest.(check (list string)) "instance is own leaf" [ "peter" ] (leaves "peter")

let test_empty_class_extension () =
  let h = Hierarchy.create "d" in
  let c = Hierarchy.add_class h "empty" in
  Alcotest.(check (list string)) "no leaves" [] (names h (Hierarchy.leaves_under h c))

let test_duplicate_name_rejected () =
  let h = Fixtures.animals () in
  Alcotest.check_raises "dup" (Hierarchy.Error "name \"bird\" already defined") (fun () ->
      ignore (Hierarchy.add_class h "bird"))

let test_child_under_instance_rejected () =
  let h = Fixtures.animals () in
  (try
     ignore (Hierarchy.add_class h ~parents:[ "tweety" ] "sub_tweety");
     Alcotest.fail "expected Error"
   with Hierarchy.Error _ -> ());
  try
    Hierarchy.add_isa h ~sub:"bird" ~super:"tweety";
    Alcotest.fail "expected Error"
  with Hierarchy.Error _ -> ()

let test_cycle_rejected () =
  let h = Fixtures.animals () in
  try
    Hierarchy.add_isa h ~sub:"bird" ~super:"penguin";
    Alcotest.fail "expected cycle Error"
  with Hierarchy.Error _ -> ()

let test_multi_parent () =
  let h = Fixtures.animals () in
  let patricia = Hierarchy.find_exn h "patricia" in
  Alcotest.(check (list string)) "two parents"
    [ "amazing_flying_penguin"; "galapagos_penguin" ]
    (names h (Hierarchy.parents h patricia))

let test_intersection () =
  let h = Fixtures.elephants () in
  let n = Hierarchy.find_exn h in
  Alcotest.(check bool) "royal ∩ indian (appu)" true
    (Hierarchy.intersects h (n "royal_elephant") (n "indian_elephant"));
  Alcotest.(check bool) "african ∩ indian = ∅ (optimistic)" false
    (Hierarchy.intersects h (n "african_elephant") (n "indian_elephant"));
  Alcotest.(check (list string)) "mcd royal/indian" [ "appu" ]
    (names h (Hierarchy.maximal_common_descendants h (n "royal_elephant") (n "indian_elephant")));
  Alcotest.(check (list string)) "mcd comparable pair" [ "royal_elephant" ]
    (names h (Hierarchy.maximal_common_descendants h (n "elephant") (n "royal_elephant")))

let test_mcd_prefers_class_witness () =
  (* When an explicit intersection class exists, the MCD is the class, not
     its instances. *)
  let h = Hierarchy.create "d" in
  ignore (Hierarchy.add_class h "a");
  ignore (Hierarchy.add_class h "b");
  ignore (Hierarchy.add_class h ~parents:[ "a"; "b" ] "ab");
  ignore (Hierarchy.add_instance h ~parents:[ "ab" ] "x");
  let n = Hierarchy.find_exn h in
  Alcotest.(check (list string)) "class witness" [ "ab" ]
    (names h (Hierarchy.maximal_common_descendants h (n "a") (n "b")))

let test_validate_and_reduce () =
  let h = Fixtures.animals () in
  Alcotest.(check int) "clean" 0 (List.length (Hierarchy.validate h));
  (* pamela is already an amazing flying penguin; adding penguin as a direct
     parent is the paper's redundant-edge example *)
  Hierarchy.add_isa h ~sub:"pamela" ~super:"penguin";
  Alcotest.(check int) "one redundant edge" 1 (List.length (Hierarchy.validate h));
  Hierarchy.reduce h;
  Alcotest.(check int) "reduced" 0 (List.length (Hierarchy.validate h));
  Alcotest.(check bool) "membership preserved" true
    (Hierarchy.subsumes h (Hierarchy.find_exn h "penguin") (Hierarchy.find_exn h "pamela"))

let test_eliminate_class () =
  let h = Fixtures.animals () in
  let penguin = Hierarchy.find_exn h "penguin" in
  Hierarchy.eliminate h ~on_path:false penguin;
  Alcotest.(check bool) "gone" false (Hierarchy.mem h "penguin");
  (* former grandchildren hang from bird now *)
  Alcotest.(check bool) "bird > paul still" true
    (Hierarchy.subsumes h (Hierarchy.find_exn h "bird") (Hierarchy.find_exn h "paul"))

let test_preference_edges () =
  let h = Fixtures.elephants () in
  Hierarchy.add_preference h ~weaker:"indian_elephant" ~stronger:"royal_elephant";
  let n = Hierarchy.find_exn h in
  Alcotest.(check bool) "binding order includes preference" true
    (Hierarchy.binds_below h (n "indian_elephant") (n "royal_elephant"));
  Alcotest.(check bool) "isa subsumption unaffected" false
    (Hierarchy.subsumes h (n "indian_elephant") (n "royal_elephant"))

let test_rename_node () =
  let h = Fixtures.animals () in
  let tweety = Hierarchy.find_exn h "tweety" in
  Hierarchy.rename_node h ~old_name:"tweety" ~new_name:"tweety_bird";
  Alcotest.(check bool) "old name gone" false (Hierarchy.mem h "tweety");
  Alcotest.(check int) "same node" tweety (Hierarchy.find_exn h "tweety_bird");
  Alcotest.(check string) "label updated" "tweety_bird" (Hierarchy.node_label h tweety);
  (* existing items keep working: node ids are stable *)
  Alcotest.(check bool) "membership intact" true
    (Hierarchy.subsumes h (Hierarchy.find_exn h "bird") tweety);
  (try
     Hierarchy.rename_node h ~old_name:"tweety_bird" ~new_name:"bird";
     Alcotest.fail "expected Error on name clash"
   with Hierarchy.Error _ -> ());
  try
    Hierarchy.rename_node h ~old_name:"ghost" ~new_name:"spirit";
    Alcotest.fail "expected Error on unknown"
  with Hierarchy.Error _ -> ()

let test_rename_keeps_relations_valid () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let schema = Hierel.Relation.schema flies in
  let item = Hierel.Item.of_names schema [ "tweety" ] in
  Hierarchy.rename_node h ~old_name:"tweety" ~new_name:"tweetikins";
  Alcotest.(check bool) "verdict survives rename" true (Hierel.Binding.holds flies item);
  Alcotest.(check string) "items print the new name" "(tweetikins)"
    (Hierel.Item.to_string schema item)

let test_copy_isolated () =
  let h = Fixtures.animals () in
  let h' = Hierarchy.copy h in
  ignore (Hierarchy.add_instance h' "polly");
  Alcotest.(check bool) "original lacks polly" false (Hierarchy.mem h "polly");
  Alcotest.(check bool) "copy has polly" true (Hierarchy.mem h' "polly")

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "membership is transitive reachability" `Quick test_membership;
    Alcotest.test_case "leaves under" `Quick test_leaves_under;
    Alcotest.test_case "empty class has empty extension" `Quick test_empty_class_extension;
    Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_name_rejected;
    Alcotest.test_case "children under instances rejected" `Quick
      test_child_under_instance_rejected;
    Alcotest.test_case "type-irredundancy: cycles rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "multiple inheritance" `Quick test_multi_parent;
    Alcotest.test_case "optimistic intersection + mcd" `Quick test_intersection;
    Alcotest.test_case "mcd prefers explicit class witness" `Quick
      test_mcd_prefers_class_witness;
    Alcotest.test_case "validate flags redundant edges; reduce fixes" `Quick
      test_validate_and_reduce;
    Alcotest.test_case "node elimination keeps members" `Quick test_eliminate_class;
    Alcotest.test_case "preference edges affect binding only" `Quick test_preference_edges;
    Alcotest.test_case "rename node" `Quick test_rename_node;
    Alcotest.test_case "rename keeps relations valid" `Quick test_rename_keeps_relations_valid;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
  ]
