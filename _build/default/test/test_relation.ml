(* Relation container semantics: duplicate elimination, direct
   contradictions, schema discipline. *)

open Hierel

let test_add_and_find () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let r = Relation.empty ~name:"r" schema in
  let bird = Item.of_names schema [ "bird" ] in
  let r = Relation.add r bird Types.Pos in
  Alcotest.(check (option Fixtures.sign)) "found" (Some Types.Pos) (Relation.find r bird);
  Alcotest.(check int) "one tuple" 1 (Relation.cardinality r)

let test_duplicate_insert_noop () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let bird = Item.of_names schema [ "bird" ] in
  let r = Relation.add (Relation.empty schema) bird Types.Pos in
  let r = Relation.add r bird Types.Pos in
  Alcotest.(check int) "still one" 1 (Relation.cardinality r)

let test_direct_contradiction_rejected () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let bird = Item.of_names schema [ "bird" ] in
  let r = Relation.add (Relation.empty schema) bird Types.Pos in
  try
    ignore (Relation.add r bird Types.Neg);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_set_overwrites () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let bird = Item.of_names schema [ "bird" ] in
  let r = Relation.add (Relation.empty schema) bird Types.Pos in
  let r = Relation.set r bird Types.Neg in
  Alcotest.(check (option Fixtures.sign)) "overwritten" (Some Types.Neg) (Relation.find r bird)

let test_remove () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let bird = Item.of_names schema [ "bird" ] in
  let r = Relation.add (Relation.empty schema) bird Types.Pos in
  let r = Relation.remove r bird in
  Alcotest.(check int) "empty" 0 (Relation.cardinality r);
  (* removing an absent item is a no-op *)
  let r = Relation.remove r bird in
  Alcotest.(check bool) "still empty" true (Relation.is_empty r)

let test_persistence () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let bird = Item.of_names schema [ "bird" ] in
  let r0 = Relation.empty schema in
  let r1 = Relation.add r0 bird Types.Pos in
  Alcotest.(check int) "r0 untouched" 0 (Relation.cardinality r0);
  Alcotest.(check int) "r1 has it" 1 (Relation.cardinality r1)

let test_arity_mismatch () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  try
    ignore (Item.of_names schema [ "bird"; "bird" ]);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_unknown_name () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  try
    ignore (Item.of_names schema [ "dragon" ]);
    Alcotest.fail "expected Hierarchy.Error"
  with Hr_hierarchy.Hierarchy.Error _ -> ()

let test_tuples_deterministic_order () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  Alcotest.(check int) "4 tuples" 4 (List.length (Relation.tuples flies));
  Alcotest.(check bool) "same order every time" true
    (Relation.tuples flies = Relation.tuples flies)

let test_rows_rendering () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let rows = Relation.to_rows flies in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  Alcotest.(check bool) "class rows are quantified" true
    (List.exists (fun row -> List.mem "V bird" row) rows);
  Alcotest.(check bool) "signs in first column" true
    (List.for_all (fun row -> List.mem (List.hd row) [ "+"; "-" ]) rows)

let test_filter_fold () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let negs =
    Relation.filter
      (fun (t : Relation.tuple) -> Types.sign_equal t.Relation.sign Types.Neg)
      flies
  in
  Alcotest.(check int) "one negation" 1 (Relation.cardinality negs);
  let count = Relation.fold (fun _ acc -> acc + 1) flies 0 in
  Alcotest.(check int) "fold visits all" 4 count

let suite =
  [
    Alcotest.test_case "add and find" `Quick test_add_and_find;
    Alcotest.test_case "duplicates eliminated" `Quick test_duplicate_insert_noop;
    Alcotest.test_case "direct contradictions rejected" `Quick
      test_direct_contradiction_rejected;
    Alcotest.test_case "set overwrites" `Quick test_set_overwrites;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "arity checked" `Quick test_arity_mismatch;
    Alcotest.test_case "unknown names rejected" `Quick test_unknown_name;
    Alcotest.test_case "deterministic tuple order" `Quick test_tuples_deterministic_order;
    Alcotest.test_case "paper-style rendering" `Quick test_rows_rendering;
    Alcotest.test_case "filter and fold" `Quick test_filter_fold;
  ]
