test/test_render.ml: Alcotest Array Binding Fixtures Format Hierel Hr_graph Hr_hierarchy Hr_util Integrity Item List Printf Relation String Types
