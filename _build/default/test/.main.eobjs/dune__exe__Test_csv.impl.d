test/test_csv.ml: Alcotest Filename Fixtures Fun Hierel Hr_flat Hr_hierarchy Hr_mine Hr_workload List String Sys
