test/test_flat.ml: Alcotest Fixtures Flatten Hierel Hr_flat Hr_workload List Relation Schema Types
