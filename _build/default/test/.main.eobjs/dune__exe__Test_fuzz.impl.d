test/test_fuzz.ml: Hr_datalog Hr_flat Hr_query Hr_storage List QCheck2 QCheck_alcotest
