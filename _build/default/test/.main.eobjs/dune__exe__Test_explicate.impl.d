test/test_explicate.ml: Alcotest Binding Explicate Fixtures Format Hierel Hr_hierarchy Item List Printf Relation Schema String Types
