test/test_subsumption.ml: Alcotest Fixtures Fun Hierel Item List Relation Subsumption Types
