test/test_datalog.ml: Alcotest Catalog Fixtures Hierel Hr_datalog List
