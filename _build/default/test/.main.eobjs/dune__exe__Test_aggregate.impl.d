test/test_aggregate.ml: Aggregate Alcotest Catalog Fixtures Hierel Hr_query Relation String Types
