test/test_dag.ml: Alcotest Hashtbl Hr_graph Int List Option QCheck2 QCheck_alcotest
