test/test_consolidate.ml: Alcotest Consolidate Fixtures Flatten Format Hierel Hr_hierarchy Integrity Item List Relation Schema String Types
