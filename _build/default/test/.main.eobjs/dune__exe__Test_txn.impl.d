test/test_txn.ml: Alcotest Catalog Fixtures Hierel List Option Relation Txn Types
