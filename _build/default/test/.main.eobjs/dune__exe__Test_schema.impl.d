test/test_schema.ml: Alcotest Fixtures Hierel Schema Types
