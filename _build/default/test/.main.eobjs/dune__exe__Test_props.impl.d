test/test_props.ml: Array Binding Consolidate Explicate Flatten Hierel Hr_hierarchy Hr_util Hr_workload Int64 Integrity Item List Ops Printf QCheck2 QCheck_alcotest Relation Schema Stdlib Types
