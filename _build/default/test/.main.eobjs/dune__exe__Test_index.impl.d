test/test_index.ml: Alcotest Binding Fixtures Hierel Hr_hierarchy Hr_util Hr_workload Index Int64 Item List Printf QCheck2 QCheck_alcotest Relation Schema
