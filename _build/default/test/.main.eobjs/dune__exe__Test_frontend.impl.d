test/test_frontend.ml: Alcotest Fixtures Hierel Hr_frontend Hr_hierarchy Integrity Item List Relation Types
