test/test_mine.ml: Alcotest Fixtures Flatten Hierel Hr_hierarchy Hr_mine Hr_util Hr_workload Item List Printf Relation String Types
