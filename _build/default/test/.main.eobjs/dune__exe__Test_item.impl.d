test/test_item.ml: Alcotest Array Fixtures Hierel Hr_hierarchy Item List Schema String Types
