test/test_pager.ml: Alcotest Bytes Filename Fun Hr_storage List Printf String Sys
