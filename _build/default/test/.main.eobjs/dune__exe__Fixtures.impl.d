test/fixtures.ml: Alcotest Binding Hierel Hr_hierarchy Item Relation Schema Types
