test/main.mli:
