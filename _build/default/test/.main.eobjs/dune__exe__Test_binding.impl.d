test/test_binding.ml: Alcotest Array Binding Fixtures Hierel Hr_hierarchy Item List Relation Schema Types
