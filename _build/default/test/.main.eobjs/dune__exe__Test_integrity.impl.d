test/test_integrity.ml: Alcotest Fixtures Hierel Hr_hierarchy Integrity Item List Relation Schema Types
