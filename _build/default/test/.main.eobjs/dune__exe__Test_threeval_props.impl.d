test/test_threeval_props.ml: Binding Hierel Hr_hierarchy Hr_threeval Hr_util Hr_workload Int64 Item List Printf QCheck2 QCheck_alcotest Relation Schema
