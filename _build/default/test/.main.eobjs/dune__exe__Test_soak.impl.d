test/test_soak.ml: Alcotest Array Catalog Consolidate Filename Flatten Fun Hierel Hr_hierarchy Hr_query Hr_storage Hr_util Int64 Integrity List Option Printf Relation Sys
