test/test_persist.ml: Alcotest Binding Catalog Filename Fun Hierel Hr_hierarchy Hr_query Hr_util Hr_workload Int64 Item List Printf QCheck2 QCheck_alcotest Relation Schema Sys
