test/test_query.ml: Alcotest Catalog Flatten Hierel Hr_query Item List Option Relation String
