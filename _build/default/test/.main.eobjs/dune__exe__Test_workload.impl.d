test/test_workload.ml: Alcotest Consolidate Fixtures Flatten Hierel Hr_hierarchy Hr_util Hr_workload Integrity List Relation Schema
