test/test_frames.ml: Alcotest Hr_frames Hr_query String
