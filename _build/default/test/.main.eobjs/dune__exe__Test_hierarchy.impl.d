test/test_hierarchy.ml: Alcotest Fixtures Hierel Hr_hierarchy List String
