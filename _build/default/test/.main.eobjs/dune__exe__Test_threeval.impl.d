test/test_threeval.ml: Alcotest Fixtures Hierel Hr_threeval Item Relation Types
