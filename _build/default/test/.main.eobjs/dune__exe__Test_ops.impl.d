test/test_ops.ml: Alcotest Binding Fixtures Flatten Format Hierel Hr_hierarchy Integrity Item List Ops Relation Schema String Types
