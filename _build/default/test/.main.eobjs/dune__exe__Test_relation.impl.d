test/test_relation.ml: Alcotest Fixtures Hierel Hr_hierarchy Item List Relation Types
