test/test_server.ml: Alcotest Array Filename Fun Hr_server Hr_storage String Sys Unix
