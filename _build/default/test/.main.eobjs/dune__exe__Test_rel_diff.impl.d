test/test_rel_diff.ml: Alcotest Consolidate Fixtures Format Hierel Item List Rel_diff Relation Schema String Types
