test/test_optimizer.ml: Alcotest Catalog Consolidate Explicate Flatten Hierel Hr_query List Ops Printf
