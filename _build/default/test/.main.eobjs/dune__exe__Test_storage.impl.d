test/test_storage.ml: Alcotest Array Bytes Catalog Filename Fun Hierel Hr_query Hr_storage Hr_util Hr_workload Int64 Option Printf QCheck2 QCheck_alcotest Relation Schema String Sys
