test/test_util.ml: Alcotest Array Fun Hr_util Int List String
