(* Semantic diff tests. *)

open Hierel

let setup () =
  let h = Fixtures.animals () in
  (h, Fixtures.flies h)

let test_noop () =
  let _, flies = setup () in
  let d = Rel_diff.diff ~prev:flies ~next:flies in
  Alcotest.(check bool) "noop" true (Rel_diff.is_semantic_noop d);
  Alcotest.(check int) "no tuple changes" 0
    (List.length d.Rel_diff.added_tuples + List.length d.Rel_diff.removed_tuples)

let test_consolidation_is_semantic_noop () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let c = Consolidate.consolidate r in
  let d = Rel_diff.diff ~prev:r ~next:c in
  Alcotest.(check bool) "extension unchanged" true (Rel_diff.is_semantic_noop d);
  Alcotest.(check int) "two tuples removed" 2 (List.length d.Rel_diff.removed_tuples)

let test_gained_and_lost () =
  let _, flies = setup () in
  let schema = Relation.schema flies in
  (* grounding peter, certifying paul *)
  let next =
    Relation.set
      (Relation.set flies (Item.of_names schema [ "peter" ]) Types.Neg)
      (Item.of_names schema [ "paul" ])
      Types.Pos
  in
  let d = Rel_diff.diff ~prev:flies ~next in
  Alcotest.(check (list string)) "gained paul" [ "(paul)" ]
    (List.map (Item.to_string schema) d.Rel_diff.gained);
  Alcotest.(check (list string)) "lost peter" [ "(peter)" ]
    (List.map (Item.to_string schema) d.Rel_diff.lost);
  Alcotest.(check int) "one added tuple" 1 (List.length d.Rel_diff.added_tuples);
  Alcotest.(check int) "one re-signed" 1 (List.length d.Rel_diff.resigned)

let test_schema_mismatch () =
  let h, flies = setup () in
  let other = Relation.empty (Schema.make [ ("x", h) ]) in
  try
    ignore (Rel_diff.diff ~prev:flies ~next:other);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_pp_mentions_changes () =
  let _, flies = setup () in
  let schema = Relation.schema flies in
  let next = Relation.remove flies (Item.of_names schema [ "peter" ]) in
  let d = Rel_diff.diff ~prev:flies ~next in
  let out = Format.asprintf "%a" (Rel_diff.pp schema) d in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "mentions peter" true (contains ~sub:"peter" out);
  Alcotest.(check bool) "mentions lost" true (contains ~sub:"lost" out)

let suite =
  [
    Alcotest.test_case "noop" `Quick test_noop;
    Alcotest.test_case "consolidation is semantic noop" `Quick
      test_consolidation_is_semantic_noop;
    Alcotest.test_case "gained and lost" `Quick test_gained_and_lost;
    Alcotest.test_case "schema mismatch" `Quick test_schema_mismatch;
    Alcotest.test_case "pretty printing" `Quick test_pp_mentions_changes;
  ]
