(* Rendering and introspection coverage: DOT export, table alignment,
   binding-graph display with exact tuples, verdict printing. *)

module Dag = Hr_graph.Dag
module Hierarchy = Hr_hierarchy.Hierarchy
module Texttable = Hr_util.Texttable
open Hierel

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_dag_to_dot () =
  let g = Dag.create () in
  let a = Dag.add_node g and b = Dag.add_node g in
  Dag.add_edge g a b;
  Dag.add_edge g ~kind:Dag.Preference b a |> ignore;
  let dot = Dag.to_dot ~label:(fun v -> Printf.sprintf "n%d" v) g in
  Alcotest.(check bool) "digraph header" true (contains ~sub:"digraph" dot);
  Alcotest.(check bool) "isa edge" true (contains ~sub:"n0 -> n1" dot);
  Alcotest.(check bool) "preference dashed" true (contains ~sub:"style=dashed" dot)

let test_hierarchy_to_dot () =
  let h = Fixtures.animals () in
  let dot = Hierarchy.to_dot h in
  Alcotest.(check bool) "labels present" true
    (contains ~sub:"penguin" dot && contains ~sub:"tweety" dot)

let test_texttable_alignment () =
  let t =
    Texttable.create
      ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Center ]
      [ "l"; "r"; "c" ]
  in
  Texttable.add_row t [ "x"; "1"; "m" ];
  Texttable.add_row t [ "longer"; "12345"; "mid" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "right-aligned number" true (contains ~sub:"|     1 |" s);
  Alcotest.(check bool) "left-aligned text" true (contains ~sub:"| x      |" s)

let test_binding_graph_with_exact_tuple () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let schema = Relation.schema flies in
  let peter = Item.of_names schema [ "peter" ] in
  let g = Binding.binding_graph flies peter in
  (* exact tuple + bird + penguin *)
  Alcotest.(check int) "three nodes" 3 (Array.length g.Binding.nodes);
  (* nothing points at the item node: the exact tuple absorbs the edges *)
  let into_item = List.filter (fun (_, j) -> j = g.Binding.item_node) g.Binding.edges in
  Alcotest.(check int) "exact tuple absorbs the binding" 0 (List.length into_item)

let test_verdict_printing () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let schema = Relation.schema flies in
  let show item =
    Format.asprintf "%a" (Binding.pp_verdict schema) (Binding.verdict flies item)
  in
  Alcotest.(check bool) "positive with binder" true
    (contains ~sub:"+ (by" (show (Item.of_names schema [ "tweety" ])));
  Alcotest.(check bool) "unasserted" true
    (contains ~sub:"unasserted"
       (show (Item.of_names schema [ "animal" ])));
  let conflicted = Relation.add_named flies Types.Neg [ "galapagos_penguin" ] in
  Alcotest.(check bool) "conflict printed" true
    (contains ~sub:"CONFLICT"
       (Format.asprintf "%a" (Binding.pp_verdict schema)
          (Binding.verdict conflicted (Item.of_names schema [ "patricia" ]))))

let test_relation_pp_has_headers () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let s = Format.asprintf "%a" Relation.pp color in
  Alcotest.(check bool) "headers" true (contains ~sub:"animal" s && contains ~sub:"color" s);
  Alcotest.(check bool) "quantified rows" true (contains ~sub:"V royal_elephant" s)

let test_conflict_pp () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects_unresolved hs ht in
  match Integrity.check r with
  | [ c ] ->
    let s = Format.asprintf "%a" (Integrity.pp_conflict (Relation.schema r)) c in
    Alcotest.(check bool) "names both tuples" true
      (contains ~sub:"+(V obsequious_student, V teacher)" s
      && contains ~sub:"-(V student, V incoherent_teacher)" s)
  | _ -> Alcotest.fail "expected one conflict"

let suite =
  [
    Alcotest.test_case "dag DOT export" `Quick test_dag_to_dot;
    Alcotest.test_case "hierarchy DOT export" `Quick test_hierarchy_to_dot;
    Alcotest.test_case "table alignment" `Quick test_texttable_alignment;
    Alcotest.test_case "binding graph with exact tuple" `Quick
      test_binding_graph_with_exact_tuple;
    Alcotest.test_case "verdict printing" `Quick test_verdict_printing;
    Alcotest.test_case "relation pretty printing" `Quick test_relation_pp_has_headers;
    Alcotest.test_case "conflict pretty printing" `Quick test_conflict_pp;
  ]
