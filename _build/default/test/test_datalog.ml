(* Datalog-over-hierarchy tests: the paper's "Tweety can travel far"
   inference (§2.1) and general rule evaluation. *)

module Datalog = Hr_datalog.Datalog
open Hierel

let catalog_with_flies () =
  let h = Fixtures.animals () in
  let cat = Catalog.create () in
  Catalog.define_hierarchy cat h;
  Catalog.define_relation cat (Fixtures.flies h);
  cat

let test_parse_rule () =
  let r = Datalog.parse_rule "travels_far(X) :- flies(X)." in
  Alcotest.(check string) "head" "travels_far" r.Datalog.head.Datalog.pred;
  Alcotest.(check int) "one body atom" 1 (List.length r.Datalog.body)

let test_parse_rejects_unsafe () =
  try
    ignore (Datalog.parse_rule "p(X, Y) :- q(X).");
    Alcotest.fail "expected range-restriction error"
  with Datalog.Datalog_error _ -> ()

let test_parse_rejects_factlike () =
  try
    ignore (Datalog.parse_rule "p(a)");
    Alcotest.fail "expected error"
  with Datalog.Datalog_error _ -> ()

let test_tweety_travels_far () =
  let cat = catalog_with_flies () in
  let p = Datalog.create cat in
  Datalog.add_rule_str p "travels_far(X) :- flies(X).";
  Alcotest.(check bool) "tweety travels far" true (Datalog.holds p "travels_far" [ "tweety" ]);
  Alcotest.(check bool) "paul does not" false (Datalog.holds p "travels_far" [ "paul" ]);
  Alcotest.(check int) "four travellers" 4
    (List.length (Datalog.query p (Datalog.parse_atom "travels_far(X)")))

let test_member_of_builtin () =
  let cat = catalog_with_flies () in
  let p = Datalog.create cat in
  Alcotest.(check bool) "tweety is a bird" true
    (Datalog.holds p "member_of" [ "tweety"; "bird" ]);
  Alcotest.(check bool) "tweety not penguin" false
    (Datalog.holds p "member_of" [ "tweety"; "penguin" ]);
  Datalog.add_rule_str p "flying_penguin(X) :- flies(X), member_of(X, penguin).";
  let flyers = Datalog.query p (Datalog.parse_atom "flying_penguin(X)") in
  Alcotest.(check (list (list string))) "the flying penguins"
    [ [ "pamela" ]; [ "patricia" ]; [ "peter" ] ]
    flyers

let test_recursive_rules () =
  let cat = Catalog.create () in
  let p = Datalog.create cat in
  Datalog.add_fact p "edge" [ "a"; "b" ];
  Datalog.add_fact p "edge" [ "b"; "c" ];
  Datalog.add_fact p "edge" [ "c"; "d" ];
  Datalog.add_rule_str p "path(X, Y) :- edge(X, Y).";
  Datalog.add_rule_str p "path(X, Z) :- path(X, Y), edge(Y, Z).";
  Alcotest.(check bool) "transitive" true (Datalog.holds p "path" [ "a"; "d" ]);
  Alcotest.(check int) "six paths" 6
    (List.length (Datalog.query p (Datalog.parse_atom "path(X, Y)")))

let test_join_rule_over_two_relations () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let cat = Catalog.create () in
  Catalog.define_hierarchy cat hs;
  Catalog.define_hierarchy cat ht;
  Catalog.define_relation cat (Fixtures.respects hs ht);
  let p = Datalog.create cat in
  Datalog.add_fact p "teaches" [ "smith"; "john" ];
  Datalog.add_fact p "teaches" [ "jones"; "mary" ];
  Datalog.add_rule_str p "respected_teacher_of(T, S) :- teaches(T, S), respects(S, T).";
  Alcotest.(check bool) "john respects his teacher smith" true
    (Datalog.holds p "respected_teacher_of" [ "smith"; "john" ]);
  Alcotest.(check bool) "mary does not respect jones? she does" true
    (Datalog.holds p "respected_teacher_of" [ "jones"; "mary" ] = false
    || Datalog.holds p "respects" [ "mary"; "jones" ])

let test_constants_filter () =
  let cat = catalog_with_flies () in
  let p = Datalog.create cat in
  let rows = Datalog.query p (Datalog.parse_atom "flies(tweety)") in
  Alcotest.(check (list (list string))) "filtered" [ [ "tweety" ] ] rows

let test_rules_see_new_facts () =
  let cat = Catalog.create () in
  let p = Datalog.create cat in
  Datalog.add_rule_str p "q(X) :- base(X).";
  Alcotest.(check bool) "empty before" false (Datalog.holds p "q" [ "v" ]);
  Datalog.add_fact p "base" [ "v" ];
  Alcotest.(check bool) "fixpoint refreshed" true (Datalog.holds p "q" [ "v" ])

let test_derived_count () =
  let cat = catalog_with_flies () in
  let p = Datalog.create cat in
  Datalog.add_rule_str p "travels_far(X) :- flies(X).";
  Alcotest.(check int) "4 derived" 4 (Datalog.derived_count p)

(* ---- stratified negation ------------------------------------------- *)

let test_negation_grounded_birds () =
  (* the paper's flying-creature taxonomy, queried for the grounded ones *)
  let cat = catalog_with_flies () in
  let p = Datalog.create cat in
  Datalog.add_rule_str p "grounded(X) :- member_of(X, bird), not flies(X).";
  let grounded = Datalog.query p (Datalog.parse_atom "grounded(X)") in
  Alcotest.(check (list (list string))) "paul alone" [ [ "paul" ] ] grounded

let test_negation_safety () =
  try
    ignore (Datalog.parse_rule "p(X) :- not q(X).");
    Alcotest.fail "expected safety error"
  with Datalog.Datalog_error _ -> ()

let test_negation_through_idb () =
  let cat = Catalog.create () in
  let p = Datalog.create cat in
  Datalog.add_fact p "node" [ "a" ];
  Datalog.add_fact p "node" [ "b" ];
  Datalog.add_fact p "node" [ "c" ];
  Datalog.add_fact p "edge" [ "a"; "b" ];
  Datalog.add_rule_str p "reachable(X) :- edge(a, X).";
  Datalog.add_rule_str p "reachable(X) :- reachable(Y), edge(Y, X).";
  Datalog.add_rule_str p "isolated(X) :- node(X), not reachable(X).";
  Alcotest.(check bool) "b reachable" true (Datalog.holds p "reachable" [ "b" ]);
  Alcotest.(check bool) "c isolated" true (Datalog.holds p "isolated" [ "c" ]);
  Alcotest.(check bool) "b not isolated" false (Datalog.holds p "isolated" [ "b" ]);
  (* isolated sits strictly above reachable *)
  let strata = Datalog.strata p in
  Alcotest.(check (option int)) "reachable at 0" (Some 0) (List.assoc_opt "reachable" strata);
  Alcotest.(check (option int)) "isolated at 1" (Some 1) (List.assoc_opt "isolated" strata)

let test_unstratifiable_rejected () =
  let cat = Catalog.create () in
  let p = Datalog.create cat in
  Datalog.add_fact p "thing" [ "x" ];
  Datalog.add_rule_str p "p(X) :- thing(X), not q(X).";
  Datalog.add_rule_str p "q(X) :- thing(X), not p(X).";
  try
    ignore (Datalog.holds p "p" [ "x" ]);
    Alcotest.fail "expected stratification error"
  with Datalog.Datalog_error _ -> ()

let suite =
  [
    Alcotest.test_case "parse rule" `Quick test_parse_rule;
    Alcotest.test_case "negation: grounded birds" `Quick test_negation_grounded_birds;
    Alcotest.test_case "negation: safety" `Quick test_negation_safety;
    Alcotest.test_case "negation: through IDB strata" `Quick test_negation_through_idb;
    Alcotest.test_case "negation: unstratifiable rejected" `Quick
      test_unstratifiable_rejected;
    Alcotest.test_case "range restriction" `Quick test_parse_rejects_unsafe;
    Alcotest.test_case "rules need bodies" `Quick test_parse_rejects_factlike;
    Alcotest.test_case "tweety travels far (§2.1)" `Quick test_tweety_travels_far;
    Alcotest.test_case "member_of builtin" `Quick test_member_of_builtin;
    Alcotest.test_case "recursive rules" `Quick test_recursive_rules;
    Alcotest.test_case "joins across relations" `Quick test_join_rule_over_two_relations;
    Alcotest.test_case "constant filters" `Quick test_constants_filter;
    Alcotest.test_case "facts invalidate fixpoint" `Quick test_rules_see_new_facts;
    Alcotest.test_case "derived count" `Quick test_derived_count;
  ]
