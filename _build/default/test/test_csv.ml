(* CSV bridge tests. *)

module Csv = Hr_flat.Csv
module F = Hr_flat.Flat_relation

let test_parse_simple () =
  let r = Csv.parse "a,b\n1,x\n2,y\n" in
  Alcotest.(check (list string)) "columns" [ "a"; "b" ] (F.columns r);
  Alcotest.(check int) "rows" 2 (F.cardinality r);
  Alcotest.(check bool) "row present" true (F.mem r [ "1"; "x" ])

let test_parse_crlf_and_no_trailing_newline () =
  let r = Csv.parse "a,b\r\n1,x\r\n2,y" in
  Alcotest.(check int) "rows" 2 (F.cardinality r)

let test_quoting () =
  let r = Csv.parse "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n" in
  Alcotest.(check bool) "comma kept" true (F.mem r [ "hello, world"; "say \"hi\"" ])

let test_roundtrip () =
  let r =
    F.of_rows [ "name"; "note" ]
      [ [ "plain"; "x" ]; [ "with,comma"; "y" ]; [ "with\"quote"; "multi\nline" ] ]
  in
  let r2 = Csv.parse (Csv.print r) in
  Alcotest.(check bool) "round trip" true (F.equal r r2)

let test_ragged_rejected () =
  try
    ignore (Csv.parse "a,b\n1\n");
    Alcotest.fail "expected Csv_error"
  with Csv.Csv_error _ -> ()

let test_empty_rejected () =
  try
    ignore (Csv.parse "");
    Alcotest.fail "expected Csv_error"
  with Csv.Csv_error _ -> ()

let test_unterminated_quote_rejected () =
  try
    ignore (Csv.parse "a\n\"oops\n");
    Alcotest.fail "expected Csv_error"
  with Csv.Csv_error _ -> ()

let test_duplicate_header_rejected () =
  try
    ignore (Csv.parse "a,a\n1,2\n");
    Alcotest.fail "expected Csv_error"
  with Csv.Csv_error _ -> ()

let test_dedup () =
  let r = Csv.parse "a\nx\nx\ny\n" in
  Alcotest.(check int) "set semantics" 2 (F.cardinality r)

let test_export_hierarchical_extension () =
  (* the natural pipeline: hierarchical relation -> extension -> CSV *)
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let flat = Hr_flat.Traditional.extension_relation flies in
  let csv = Csv.print flat in
  let back = Csv.parse csv in
  Alcotest.(check bool) "pipeline round trip" true (F.equal flat back)

let test_csv_to_mine_pipeline () =
  (* CSV of members -> Mine.organize -> compressed hierarchical relation *)
  let module Workload = Hr_workload.Workload in
  let module Hierarchy = Hr_hierarchy.Hierarchy in
  let module Mine = Hr_mine.Mine in
  let h = Workload.tree_hierarchy ~name:"cat" ~depth:2 ~fanout:3 ~instances_per_leaf:2 () in
  let members = List.map (Hierarchy.node_label h) (Hierarchy.instances h) in
  let csv = "item\n" ^ String.concat "\n" members ^ "\n" in
  let flat = Csv.parse csv in
  let rel =
    Mine.organize h ~members:(List.concat (F.rows flat))
  in
  Alcotest.(check int) "compressed to one tuple" 1 (Hierel.Relation.cardinality rel)

let test_file_roundtrip () =
  let r = F.of_rows [ "x" ] [ [ "1" ]; [ "2" ] ] in
  let path = Filename.temp_file "hrcsv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file r path;
      Alcotest.(check bool) "file round trip" true (F.equal r (Csv.read_file path)))

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "crlf / no trailing newline" `Quick test_parse_crlf_and_no_trailing_newline;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "ragged rows rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "unterminated quote rejected" `Quick test_unterminated_quote_rejected;
    Alcotest.test_case "duplicate header rejected" `Quick test_duplicate_header_rejected;
    Alcotest.test_case "set semantics" `Quick test_dedup;
    Alcotest.test_case "hierarchical extension export" `Quick test_export_hierarchical_extension;
    Alcotest.test_case "csv -> mine pipeline" `Quick test_csv_to_mine_pipeline;
    Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
  ]
