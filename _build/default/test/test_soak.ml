(* Randomized end-to-end soak test: a stream of structurally valid HRQL
   statements hammers a catalog; after every statement the catalog's
   relations must satisfy the ambiguity constraint (rejected updates
   included — rejection must leave no trace). Exercises the parser,
   evaluator, optimizer, transactions and integrity machinery together. *)

module Eval = Hr_query.Eval
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type state = {
  cat : Catalog.t;
  g : Prng.t;
  mutable classes : string list;
  mutable instances : string list;
  mutable relations : string list;
  mutable executed : int;
  mutable rejected : int;
}

let fresh_name state prefix =
  Printf.sprintf "%s%d" prefix (Prng.int state.g 1_000_000_000)

let pick_opt state = function
  | [] -> None
  | xs -> Some (Prng.pick state.g (Array.of_list xs))

let random_value state =
  if Prng.bool state.g then
    Option.map (fun c -> "ALL " ^ c) (pick_opt state state.classes)
  else pick_opt state state.instances

let random_statement state =
  match Prng.int state.g 10 with
  | 0 ->
    let name = fresh_name state "c" in
    let parent = Option.value ~default:"soak" (pick_opt state state.classes) in
    state.classes <- name :: state.classes;
    Some (Printf.sprintf "CREATE CLASS %s UNDER %s;" name parent)
  | 1 ->
    let name = fresh_name state "i" in
    let parent = Option.value ~default:"soak" (pick_opt state state.classes) in
    state.instances <- name :: state.instances;
    Some (Printf.sprintf "CREATE INSTANCE %s OF %s;" name parent)
  | 2 ->
    let name = fresh_name state "r" in
    state.relations <- name :: state.relations;
    Some (Printf.sprintf "CREATE RELATION %s (v: soak);" name)
  | 3 | 4 | 5 -> (
    match pick_opt state state.relations, random_value state with
    | Some rel, Some v ->
      let sign = if Prng.bernoulli state.g 0.3 then "-" else "+" in
      Some (Printf.sprintf "INSERT INTO %s VALUES (%s %s);" rel sign v)
    | _ -> None)
  | 6 -> (
    match pick_opt state state.relations, pick_opt state state.instances with
    | Some rel, Some i -> Some (Printf.sprintf "ASK %s (%s);" rel i)
    | _ -> None)
  | 7 ->
    Option.map (fun rel -> Printf.sprintf "CONSOLIDATE %s;" rel)
      (pick_opt state state.relations)
  | 8 -> (
    match state.relations with
    | a :: b :: _ -> Some (Printf.sprintf "LET u%d = %s UNION %s;" (Prng.int state.g 1000) a b)
    | _ -> None)
  | _ ->
    Option.map (fun rel -> Printf.sprintf "CHECK %s;" rel)
      (pick_opt state state.relations)

let run_soak seed steps =
  let cat = Catalog.create () in
  (match Eval.run_script cat "CREATE DOMAIN soak;" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let state =
    {
      cat;
      g = Prng.create (Int64.of_int seed);
      classes = [ "soak" ];
      instances = [];
      relations = [];
      executed = 0;
      rejected = 0;
    }
  in
  for _ = 1 to steps do
    match random_statement state with
    | None -> ()
    | Some stmt -> (
      match Eval.run_script state.cat stmt with
      | Ok _ -> state.executed <- state.executed + 1
      | Error _ ->
        (* duplicate names, direct contradictions, ambiguity rejections:
           all fine — but they must leave the catalog consistent *)
        state.rejected <- state.rejected + 1)
  done;
  state

let check_invariants state =
  List.iter
    (fun rel ->
      Alcotest.(check bool)
        (Printf.sprintf "%s satisfies the ambiguity constraint" (Relation.name rel))
        true
        (Integrity.is_consistent rel);
      (* consolidation remains extension-preserving on live data *)
      Alcotest.(check bool)
        (Printf.sprintf "%s consolidates without changing meaning" (Relation.name rel))
        true
        (Flatten.equal_extension rel (Consolidate.consolidate rel)))
    (Catalog.relations state.cat)

let test_soak_small () =
  let state = run_soak 42 150 in
  Alcotest.(check bool) "made progress" true (state.executed > 50);
  check_invariants state

let test_soak_negative_heavy () =
  let state = run_soak 1337 150 in
  check_invariants state

let test_soak_durable () =
  (* the same stream through the durable engine, with a mid-way
     checkpoint and a reopen at the end *)
  let dir = Filename.temp_file "hrsoak" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let db = Hr_storage.Db.open_dir dir in
      (match Hr_storage.Db.exec db "CREATE DOMAIN soak;" with
      | Ok _ -> ()
      | Error e -> failwith e);
      let state =
        {
          cat = Hr_storage.Db.catalog db;
          g = Prng.create 777L;
          classes = [ "soak" ];
          instances = [];
          relations = [];
          executed = 0;
          rejected = 0;
        }
      in
      for step = 1 to 100 do
        (match random_statement state with
        | None -> ()
        | Some stmt -> (
          match Hr_storage.Db.exec db stmt with
          | Ok _ -> state.executed <- state.executed + 1
          | Error _ -> state.rejected <- state.rejected + 1));
        if step = 50 then Hr_storage.Db.checkpoint db
      done;
      let dump_before = Hr_query.Persist.dump_catalog (Hr_storage.Db.catalog db) in
      Hr_storage.Db.close db;
      let db2 = Hr_storage.Db.open_dir dir in
      Alcotest.(check string) "recovered state identical" dump_before
        (Hr_query.Persist.dump_catalog (Hr_storage.Db.catalog db2));
      Hr_storage.Db.close db2)

let suite =
  [
    Alcotest.test_case "soak: 150 random statements" `Quick test_soak_small;
    Alcotest.test_case "soak: second seed" `Quick test_soak_negative_heavy;
    Alcotest.test_case "soak: durable engine with checkpoint + recovery" `Quick
      test_soak_durable;
  ]
