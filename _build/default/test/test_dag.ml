(* Unit and property tests for the generic DAG substrate. *)

module Dag = Hr_graph.Dag

let diamond () =
  (* a -> b, a -> c, b -> d, c -> d *)
  let g = Dag.create () in
  let a = Dag.add_node g and b = Dag.add_node g in
  let c = Dag.add_node g and d = Dag.add_node g in
  Dag.add_edge g a b;
  Dag.add_edge g a c;
  Dag.add_edge g b d;
  Dag.add_edge g c d;
  (g, a, b, c, d)

let test_basic () =
  let g, a, b, c, d = diamond () in
  Alcotest.(check int) "capacity" 4 (Dag.capacity g);
  Alcotest.(check int) "live" 4 (Dag.live_count g);
  Alcotest.(check bool) "edge a->b" true (Dag.mem_edge g a b);
  Alcotest.(check bool) "no edge b->a" false (Dag.mem_edge g b a);
  Alcotest.(check (list int)) "succs a" [ b; c ] (Dag.succs g a);
  Alcotest.(check (list int)) "preds d" [ b; c ] (Dag.preds g d);
  Alcotest.(check (list int)) "roots" [ a ] (Dag.roots g);
  Alcotest.(check (list int)) "leaves" [ d ] (Dag.leaves g)

let test_duplicate_edges_ignored () =
  let g, a, b, _, _ = diamond () in
  Dag.add_edge g a b;
  Dag.add_edge g a b;
  Alcotest.(check int) "still one succ b" 2 (List.length (Dag.succs g a))

let test_self_loop_rejected () =
  let g, a, _, _, _ = diamond () in
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self loop") (fun () ->
      Dag.add_edge g a a)

let test_reachability () =
  let g, a, b, c, d = diamond () in
  Alcotest.(check bool) "a ->* d" true (Dag.reachable g a d);
  Alcotest.(check bool) "b ->* c" false (Dag.reachable g b c);
  Alcotest.(check bool) "reflexive" true (Dag.reachable g b b);
  Alcotest.(check (list int)) "descendants a" [ a; b; c; d ] (Dag.descendants g a);
  Alcotest.(check (list int)) "ancestors d" [ a; b; c; d ] (Dag.ancestors g d)

let test_edge_kinds () =
  let g = Dag.create () in
  let a = Dag.add_node g and b = Dag.add_node g in
  Dag.add_edge g ~kind:Dag.Preference a b;
  let isa = function Dag.Isa -> true | Dag.Preference -> false in
  Alcotest.(check bool) "pref reachable" true (Dag.reachable g a b);
  Alcotest.(check bool) "not isa-reachable" false (Dag.reachable g ~kinds:isa a b);
  Alcotest.(check (list int)) "isa succs empty" [] (Dag.succs g ~kinds:isa a);
  (* same endpoints, different kind: both edges coexist *)
  Dag.add_edge g ~kind:Dag.Isa a b;
  Alcotest.(check bool) "isa now reachable" true (Dag.reachable g ~kinds:isa a b);
  Dag.remove_edge g ~kind:Dag.Isa a b;
  Alcotest.(check bool) "pref edge survives" true (Dag.reachable g a b)

let test_topo_sort () =
  let g, a, b, c, d = diamond () in
  let order = Dag.topo_sort g in
  let pos v = Option.get (List.find_index (Int.equal v) order) in
  Alcotest.(check bool) "a before b" true (pos a < pos b);
  Alcotest.(check bool) "a before c" true (pos a < pos c);
  Alcotest.(check bool) "b before d" true (pos b < pos d);
  Alcotest.(check bool) "c before d" true (pos c < pos d)

let test_cycle_detection () =
  let g = Dag.create () in
  let a = Dag.add_node g and b = Dag.add_node g in
  Dag.add_edge g a b;
  Alcotest.(check bool) "acyclic" false (Dag.has_cycle g);
  Dag.add_edge g b a;
  Alcotest.(check bool) "cyclic" true (Dag.has_cycle g)

let test_remove_node () =
  let g, a, b, c, d = diamond () in
  Dag.remove_node g b;
  Alcotest.(check int) "3 live" 3 (Dag.live_count g);
  Alcotest.(check bool) "b dead" false (Dag.is_alive g b);
  Alcotest.(check bool) "a ->* d via c" true (Dag.reachable g a d);
  Alcotest.(check (list int)) "succs a" [ c ] (Dag.succs g a);
  Alcotest.(check (list int)) "preds d" [ c ] (Dag.preds g d)

let test_eliminate_bridges () =
  (* a -> m -> b; eliminating m must add a -> b. *)
  let g = Dag.create () in
  let a = Dag.add_node g and m = Dag.add_node g and b = Dag.add_node g in
  Dag.add_edge g a m;
  Dag.add_edge g m b;
  Dag.eliminate_node g ~on_path:false m;
  Alcotest.(check bool) "bypass added" true (Dag.mem_edge g a b)

let test_eliminate_off_path_no_redundant () =
  (* a -> m -> b and a -> b already: off-path elimination must not add a
     second path marker; on-path keeps the graph identical but would have
     added the edge had it not existed. *)
  let g = Dag.create () in
  let a = Dag.add_node g and m = Dag.add_node g and b = Dag.add_node g in
  let c = Dag.add_node g in
  Dag.add_edge g a m;
  Dag.add_edge g m b;
  Dag.add_edge g a c;
  Dag.add_edge g c b;
  Dag.eliminate_node g ~on_path:false m;
  (* a->b via c exists, so no direct edge appears *)
  Alcotest.(check bool) "no redundant bypass" false (Dag.mem_edge g a b);
  Alcotest.(check bool) "still reachable" true (Dag.reachable g a b)

let test_eliminate_on_path_keeps_redundant () =
  let g = Dag.create () in
  let a = Dag.add_node g and m = Dag.add_node g and b = Dag.add_node g in
  let c = Dag.add_node g in
  Dag.add_edge g a m;
  Dag.add_edge g m b;
  Dag.add_edge g a c;
  Dag.add_edge g c b;
  Dag.eliminate_node g ~on_path:true m;
  Alcotest.(check bool) "redundant bypass kept" true (Dag.mem_edge g a b)

let test_transitive_reduction () =
  let g, a, _, _, d = diamond () in
  Dag.add_edge g a d;
  Alcotest.(check int) "one redundant edge" 1 (List.length (Dag.redundant_edges g));
  Dag.transitive_reduction g;
  Alcotest.(check bool) "a->d gone" false (Dag.mem_edge g a d);
  Alcotest.(check bool) "a->*d kept" true (Dag.reachable g a d);
  Alcotest.(check (list (pair int int))) "now reduced" [] (Dag.redundant_edges g)

let test_reach_index () =
  let g, a, b, c, d = diamond () in
  let r = Dag.Reach.create g in
  Alcotest.(check bool) "a->d" true (Dag.Reach.mem r a d);
  Alcotest.(check bool) "b-/->c" false (Dag.Reach.mem r b c);
  Alcotest.(check bool) "reflexive" true (Dag.Reach.mem r c c);
  Alcotest.(check bool) "d-/->a" false (Dag.Reach.mem r d a)

let test_copy_independent () =
  let g, a, b, _, _ = diamond () in
  let g' = Dag.copy g in
  Dag.remove_edge g' a b;
  Alcotest.(check bool) "original intact" true (Dag.mem_edge g a b);
  Alcotest.(check bool) "copy changed" false (Dag.mem_edge g' a b)

(* ---- property tests ------------------------------------------------ *)

(* Random DAG: nodes 0..n-1, edges only i -> j for i < j (guarantees
   acyclicity), density p. *)
let random_dag_gen =
  QCheck2.Gen.(
    let* n = int_range 2 14 in
    let* edges =
      list_size (int_range 0 (n * 3))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, edges))

let build_random (n, edges) =
  let g = Dag.create () in
  for _ = 1 to n do
    ignore (Dag.add_node g)
  done;
  List.iter (fun (i, j) -> if i < j then Dag.add_edge g i j) edges;
  g

let prop_reduction_preserves_reachability =
  QCheck2.Test.make ~name:"transitive_reduction preserves reachability" ~count:200
    random_dag_gen (fun spec ->
      let g = build_random spec in
      let before = Dag.Reach.create g in
      Dag.transitive_reduction g;
      let nodes = Dag.live_nodes g in
      List.for_all
        (fun u ->
          List.for_all (fun v -> Dag.Reach.mem before u v = Dag.reachable g u v) nodes)
        nodes)

let prop_elimination_preserves_reachability =
  QCheck2.Test.make ~name:"eliminate_node preserves reachability among others" ~count:200
    QCheck2.Gen.(pair random_dag_gen (int_range 0 13))
    (fun (spec, pick) ->
      let g = build_random spec in
      let victim = pick mod Dag.capacity g in
      let before = Dag.Reach.create g in
      Dag.eliminate_node g ~on_path:false victim;
      let nodes = Dag.live_nodes g in
      List.for_all
        (fun u ->
          List.for_all (fun v -> Dag.Reach.mem before u v = Dag.reachable g u v) nodes)
        nodes)

let prop_elimination_leaves_reduced =
  QCheck2.Test.make ~name:"off-path elimination of reduced graph stays reduced" ~count:200
    QCheck2.Gen.(pair random_dag_gen (int_range 0 13))
    (fun (spec, pick) ->
      let g = build_random spec in
      Dag.transitive_reduction g;
      let victim = pick mod Dag.capacity g in
      Dag.eliminate_node g ~on_path:false victim;
      Dag.redundant_edges g = [])

let prop_reach_index_agrees_with_dfs =
  QCheck2.Test.make ~name:"Reach index agrees with DFS reachability" ~count:200
    random_dag_gen (fun spec ->
      let g = build_random spec in
      let r = Dag.Reach.create g in
      let nodes = Dag.live_nodes g in
      List.for_all
        (fun u -> List.for_all (fun v -> Dag.Reach.mem r u v = Dag.reachable g u v) nodes)
        nodes)

let prop_topo_respects_edges =
  QCheck2.Test.make ~name:"topo_sort puts sources before targets" ~count:200 random_dag_gen
    (fun spec ->
      let g = build_random spec in
      let order = Dag.topo_sort g in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i v -> Hashtbl.add pos v i) order;
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> Hashtbl.find pos u < Hashtbl.find pos v)
            (Dag.succs g u))
        (Dag.live_nodes g))

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic;
    Alcotest.test_case "duplicate edges ignored" `Quick test_duplicate_edges_ignored;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "edge kinds" `Quick test_edge_kinds;
    Alcotest.test_case "topological sort" `Quick test_topo_sort;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "eliminate bridges paths" `Quick test_eliminate_bridges;
    Alcotest.test_case "off-path elimination adds no redundant edge" `Quick
      test_eliminate_off_path_no_redundant;
    Alcotest.test_case "on-path elimination keeps redundant edge" `Quick
      test_eliminate_on_path_keeps_redundant;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "reach index" `Quick test_reach_index;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_reduction_preserves_reachability;
    QCheck_alcotest.to_alcotest prop_elimination_preserves_reachability;
    QCheck_alcotest.to_alcotest prop_elimination_leaves_reduced;
    QCheck_alcotest.to_alcotest prop_reach_index_agrees_with_dfs;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
  ]
