(* Substrate utilities: symbols, PRNG determinism, table rendering. *)

module Symbol = Hr_util.Symbol
module Prng = Hr_util.Prng
module Texttable = Hr_util.Texttable

let test_symbol_interning () =
  let a = Symbol.intern "hello" and b = Symbol.intern "hello" in
  Alcotest.(check bool) "same symbol" true (Symbol.equal a b);
  Alcotest.(check int) "same id" (Symbol.id a) (Symbol.id b);
  Alcotest.(check string) "name preserved" "hello" (Symbol.name a);
  let c = Symbol.intern "world" in
  Alcotest.(check bool) "distinct" false (Symbol.equal a c)

let test_symbol_order_total () =
  let syms = List.map Symbol.intern [ "b"; "a"; "c"; "a" ] in
  let sorted = List.sort_uniq Symbol.compare syms in
  Alcotest.(check int) "three distinct" 3 (List.length sorted)

let test_prng_determinism () =
  let g1 = Prng.create 42L and g2 = Prng.create 42L in
  let s1 = List.init 100 (fun _ -> Prng.int g1 1000) in
  let s2 = List.init 100 (fun _ -> Prng.int g2 1000) in
  Alcotest.(check (list int)) "same stream" s1 s2

let test_prng_seeds_differ () =
  let g1 = Prng.create 1L and g2 = Prng.create 2L in
  let s1 = List.init 20 (fun _ -> Prng.int g1 1000000) in
  let s2 = List.init 20 (fun _ -> Prng.int g2 1000000) in
  Alcotest.(check bool) "different streams" false (s1 = s2)

let test_prng_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Prng.float g 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "float out of bounds"
  done

let test_prng_bernoulli () =
  let g = Prng.create 11L in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000.0 in
  Alcotest.(check bool) "about 30%" true (rate > 0.25 && rate < 0.35)

let test_prng_shuffle_permutes () =
  let g = Prng.create 3L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let g = Prng.create 5L in
  let child = Prng.split g in
  let a = Prng.int g 1000000 and b = Prng.int child 1000000 in
  Alcotest.(check bool) "streams differ" true (a <> b || Prng.int g 10 <> Prng.int child 10)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_texttable_renders () =
  let t = Texttable.create [ "a"; "long header" ] in
  Texttable.add_row t [ "x"; "y" ];
  Texttable.add_row t [ "longer cell"; "z" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "has borders" true (String.length s > 0 && s.[0] = '+');
  Alcotest.(check bool) "contains cells" true
    (contains ~sub:"longer cell" s && contains ~sub:"long header" s)

let test_texttable_arity_checked () =
  let t = Texttable.create [ "a"; "b" ] in
  try
    Texttable.add_row t [ "only one" ];
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "symbol interning" `Quick test_symbol_interning;
    Alcotest.test_case "symbol total order" `Quick test_symbol_order_total;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng bernoulli" `Quick test_prng_bernoulli;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "texttable renders" `Quick test_texttable_renders;
    Alcotest.test_case "texttable arity" `Quick test_texttable_arity_checked;
  ]
