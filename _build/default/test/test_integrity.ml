(* Ambiguity-constraint tests: Figure 3 (Respects) and the optimistic
   intersection rule of §3.1. *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let test_fig3_unresolved () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects_unresolved hs ht in
  let conflicts = Integrity.check r in
  Alcotest.(check int) "one conflict" 1 (List.length conflicts);
  let c = List.hd conflicts in
  let schema = Relation.schema r in
  Alcotest.(check (list string)) "witness = (obsequious, incoherent)"
    [ "(V obsequious_student, V incoherent_teacher)" ]
    (List.map (Item.to_string schema) c.Integrity.witnesses)

let test_fig3_resolved () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  Alcotest.(check bool) "consistent" true (Integrity.is_consistent r);
  Alcotest.(check int) "no conflicts" 0 (List.length (Integrity.check r))

let test_optimistic_disjointness () =
  (* +african grey, -indian grey: africans and indians share no explicit
     common descendant, so the assertions cannot clash. *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let r =
    Relation.of_tuples ~name:"c" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "african_elephant"; "grey" ]);
        (Types.Neg, [ "indian_elephant"; "grey" ]);
      ]
  in
  Alcotest.(check bool) "disjoint classes cannot conflict" true (Integrity.is_consistent r)

let test_conflict_via_shared_instance () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let r =
    Relation.of_tuples ~name:"c" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "royal_elephant"; "grey" ]);
        (Types.Neg, [ "indian_elephant"; "grey" ]);
      ]
  in
  let conflicts = Integrity.check r in
  Alcotest.(check int) "appu witnesses the clash" 1 (List.length conflicts);
  let c = List.hd conflicts in
  Alcotest.(check (list string)) "witness is appu/grey" [ "(appu, grey)" ]
    (List.map (Item.to_string (Relation.schema r)) c.Integrity.witnesses)

let test_resolution_restores_consistency () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let r =
    Relation.of_tuples ~name:"c" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "royal_elephant"; "grey" ]);
        (Types.Neg, [ "indian_elephant"; "grey" ]);
      ]
  in
  let conflicts = Integrity.check r in
  let resolved =
    List.fold_left
      (fun r c ->
        List.fold_left
          (fun r w -> Relation.set r w Types.Pos)
          r c.Integrity.witnesses)
      r conflicts
  in
  Alcotest.(check bool) "asserting every witness resolves" true
    (Integrity.is_consistent resolved)

let test_comparable_tuples_never_conflict () =
  (* -penguin under +bird is an exception, not a conflict. *)
  let h = Fixtures.animals () in
  Alcotest.(check bool) "fig1 consistent" true (Integrity.is_consistent (Fixtures.flies h))

let test_minimal_resolution_set () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let schema = Fixtures.color_schema he hc in
  let r = Relation.empty schema in
  let a = Item.of_names schema [ "royal_elephant"; "grey" ] in
  let b = Item.of_names schema [ "indian_elephant"; "grey" ] in
  Alcotest.(check (list string)) "mrs = appu x grey" [ "(appu, grey)" ]
    (List.map (Item.to_string schema) (Integrity.minimal_resolution_set r a b))

let test_stricter_semantics_stricter_check () =
  (* Fig 1 is consistent off-path but patricia conflicts under
     no-preemption. *)
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  Alcotest.(check bool) "off-path ok" true (Integrity.is_consistent flies);
  Alcotest.(check bool) "no-preemption finds the clash" false
    (Integrity.is_consistent ~semantics:Types.No_preemption flies)

let test_first_conflict_matches_check () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects_unresolved hs ht in
  match Integrity.first_conflict r with
  | None -> Alcotest.fail "expected a conflict"
  | Some c ->
    let all = Integrity.check r in
    Alcotest.(check bool) "same pair as check" true
      (List.exists
         (fun c' ->
           Item.equal c.Integrity.pos.Relation.item c'.Integrity.pos.Relation.item
           && Item.equal c.Integrity.neg.Relation.item c'.Integrity.neg.Relation.item)
         all)

let test_multi_coordinate_witness_product () =
  (* Both coordinates clash with two maximal witnesses each: the minimal
     conflict resolution set is the 2x2 product, and resolving fewer than
     all four leaves a conflict. *)
  let module Hierarchy = Hr_hierarchy.Hierarchy in
  let mk name =
    let h = Hierarchy.create name in
    ignore (Hierarchy.add_class h (name ^ "_a"));
    ignore (Hierarchy.add_class h (name ^ "_b"));
    ignore (Hierarchy.add_instance h ~parents:[ name ^ "_a"; name ^ "_b" ] (name ^ "_x1"));
    ignore (Hierarchy.add_instance h ~parents:[ name ^ "_a"; name ^ "_b" ] (name ^ "_x2"));
    h
  in
  let h1 = mk "w1" and h2 = mk "w2" in
  let schema = Schema.make [ ("p", h1); ("q", h2) ] in
  let rel =
    Relation.of_tuples ~name:"r" schema
      [
        (Types.Pos, [ "w1_a"; "w2_a" ]);
        (Types.Neg, [ "w1_b"; "w2_b" ]);
      ]
  in
  (match Integrity.check rel with
  | [ c ] -> Alcotest.(check int) "four witnesses" 4 (List.length c.Integrity.witnesses)
  | cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
  (* resolving three of the four still leaves the fourth conflicted *)
  let witnesses =
    match Integrity.check rel with [ c ] -> c.Integrity.witnesses | _ -> assert false
  in
  let partial =
    List.fold_left
      (fun r w -> Relation.set r w Types.Pos)
      rel
      (List.filteri (fun i _ -> i < 3) witnesses)
  in
  Alcotest.(check bool) "three of four insufficient" false (Integrity.is_consistent partial);
  let full =
    List.fold_left (fun r w -> Relation.set r w Types.Pos) rel witnesses
  in
  Alcotest.(check bool) "all four resolve" true (Integrity.is_consistent full)

let suite =
  [
    Alcotest.test_case "multi-coordinate witness product" `Quick
      test_multi_coordinate_witness_product;
    Alcotest.test_case "fig3: two tuples alone are inconsistent" `Quick test_fig3_unresolved;
    Alcotest.test_case "fig3: explicit tuple resolves" `Quick test_fig3_resolved;
    Alcotest.test_case "optimistic disjointness" `Quick test_optimistic_disjointness;
    Alcotest.test_case "shared instance witnesses a clash" `Quick
      test_conflict_via_shared_instance;
    Alcotest.test_case "asserting witnesses resolves" `Quick
      test_resolution_restores_consistency;
    Alcotest.test_case "exceptions are not conflicts" `Quick
      test_comparable_tuples_never_conflict;
    Alcotest.test_case "minimal conflict resolution set" `Quick test_minimal_resolution_set;
    Alcotest.test_case "no-preemption is stricter" `Quick test_stricter_semantics_stricter_check;
    Alcotest.test_case "first_conflict agrees with check" `Quick
      test_first_conflict_matches_check;
  ]
