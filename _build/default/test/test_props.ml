(* Property-based tests of the model's central invariants, on randomly
   generated hierarchies and relations (seeded, reproducible):

   - every operator commutes with flattening (the paper's §3 requirement
     that manipulations have the same effect on hierarchical relations and
     on their equivalent flat relations);
   - consolidation reaches a fixpoint without changing the extension;
   - explication produces the extension;
   - repair produces relations satisfying the ambiguity constraint. *)

module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let hierarchy_of_seed seed =
  let g = Prng.create (Int64.of_int seed) in
  Workload.random_hierarchy g
    {
      Workload.name = Printf.sprintf "h%d" seed;
      classes = 8;
      instances = 12;
      multi_parent_prob = 0.25;
    }

let relation_of_seed ?(tuples = 8) schema seed =
  let g = Prng.create (Int64.of_int (seed * 7919 + 1)) in
  Workload.consistent_random_relation g schema
    {
      Workload.rel_name = Printf.sprintf "r%d" seed;
      tuples;
      neg_fraction = 0.35;
      instance_fraction = 0.3;
    }

(* Fresh names per seed keep hierarchies independent (symbols are global). *)
let seed_gen = QCheck2.Gen.int_range 1 100_000

let unary_setup seed =
  let h = hierarchy_of_seed seed in
  let schema = Schema.make [ ("v", h) ] in
  (h, schema, relation_of_seed schema seed)

let truth_table schema rel =
  (* ground truth by direct binding at every atomic item *)
  List.filter_map
    (fun inst ->
      let item = Item.make schema [| inst |] in
      if Binding.holds rel item then Some item else None)
    (Hierarchy.instances (Schema.hierarchy schema 0))

let prop_explicate_equals_binding =
  QCheck2.Test.make ~name:"explication = pointwise binding" ~count:60 seed_gen (fun seed ->
      let _, schema, rel = unary_setup seed in
      let expected = List.sort Item.compare (truth_table schema rel) in
      let got = List.sort Item.compare (Flatten.extension_list rel) in
      List.equal Item.equal expected got)

let prop_consolidate_preserves_extension =
  QCheck2.Test.make ~name:"consolidate preserves the extension" ~count:60 seed_gen
    (fun seed ->
      let _, _, rel = unary_setup seed in
      Flatten.equal_extension rel (Consolidate.consolidate rel))

let prop_consolidate_minimal =
  QCheck2.Test.make ~name:"consolidate reaches a fixpoint with no redundant tuples"
    ~count:60 seed_gen (fun seed ->
      let _, _, rel = unary_setup seed in
      let c = Consolidate.consolidate rel in
      Consolidate.is_consolidated c && Relation.cardinality c <= Relation.cardinality rel)

let prop_consolidate_keeps_consistency =
  QCheck2.Test.make ~name:"consolidate keeps the ambiguity constraint" ~count:60 seed_gen
    (fun seed ->
      let _, _, rel = unary_setup seed in
      Integrity.is_consistent (Consolidate.consolidate rel))

let prop_repair_consistent =
  QCheck2.Test.make ~name:"workload repair satisfies the ambiguity constraint" ~count:60
    seed_gen (fun seed ->
      let _, _, rel = unary_setup seed in
      Integrity.is_consistent rel)

let binary_prop name op flat_op =
  QCheck2.Test.make ~name ~count:40 seed_gen (fun seed ->
      let h = hierarchy_of_seed seed in
      let schema = Schema.make [ ("v", h) ] in
      let r1 = relation_of_seed schema (seed * 2) in
      let r2 = Relation.with_name (relation_of_seed schema ((seed * 2) + 1)) "r2" in
      let module S = Flatten.Item_set in
      let lifted = Flatten.extension (op r1 r2) in
      let flat = flat_op (Flatten.extension r1) (Flatten.extension r2) in
      S.equal lifted flat)

let prop_union = binary_prop "union commutes with flattening" Ops.union Flatten.Item_set.union

let prop_inter =
  binary_prop "intersection commutes with flattening" Ops.inter Flatten.Item_set.inter

let prop_diff = binary_prop "difference commutes with flattening" Ops.diff Flatten.Item_set.diff

let prop_select_flat_equivalent =
  QCheck2.Test.make ~name:"selection commutes with flattening" ~count:40 seed_gen
    (fun seed ->
      let h, _, rel = unary_setup seed in
      (* select on a random class *)
      let g = Prng.create (Int64.of_int (seed + 13)) in
      let classes = Array.of_list (Hierarchy.classes h) in
      let v = Prng.pick g classes in
      let value = Hierarchy.node_label h v in
      let selected = Ops.select rel ~attr:"v" ~value in
      let module S = Flatten.Item_set in
      let expected =
        S.filter (fun it -> Hierarchy.subsumes h v (Item.coord it 0)) (Flatten.extension rel)
      in
      S.equal (Flatten.extension selected) expected)

let prop_select_idempotent =
  QCheck2.Test.make ~name:"selecting twice = selecting once" ~count:30 seed_gen (fun seed ->
      let h, _, rel = unary_setup seed in
      let g = Prng.create (Int64.of_int (seed + 29)) in
      let v = Prng.pick g (Array.of_list (Hierarchy.classes h)) in
      let value = Hierarchy.node_label h v in
      let once = Ops.select rel ~attr:"v" ~value in
      let twice = Ops.select once ~attr:"v" ~value in
      Flatten.equal_extension once twice)

let prop_union_commutative =
  QCheck2.Test.make ~name:"union is commutative up to extension" ~count:40 seed_gen
    (fun seed ->
      let h = hierarchy_of_seed seed in
      let schema = Schema.make [ ("v", h) ] in
      let r1 = relation_of_seed schema (seed * 3) in
      let r2 = Relation.with_name (relation_of_seed schema ((seed * 3) + 2)) "r2" in
      Flatten.equal_extension (Ops.union r1 r2) (Ops.union r2 r1))

let prop_ops_produce_consistent_results =
  QCheck2.Test.make ~name:"operator results satisfy the ambiguity constraint" ~count:40
    seed_gen (fun seed ->
      let h = hierarchy_of_seed seed in
      let schema = Schema.make [ ("v", h) ] in
      let r1 = relation_of_seed schema (seed * 5) in
      let r2 = Relation.with_name (relation_of_seed schema ((seed * 5) + 3)) "r2" in
      Integrity.is_consistent (Ops.union r1 r2)
      && Integrity.is_consistent (Ops.diff r1 r2))

let prop_join_flat_equivalent =
  QCheck2.Test.make ~name:"join commutes with flattening" ~count:25 seed_gen (fun seed ->
      let h = hierarchy_of_seed seed in
      let h2 = hierarchy_of_seed (seed + 50_000) in
      let s1 = Schema.make [ ("a", h); ("b", h2) ] in
      let s2 = Schema.make [ ("b", h2); ("c", h) ] in
      let r1 = relation_of_seed ~tuples:5 s1 (seed * 11) in
      let r2 = Relation.with_name (relation_of_seed ~tuples:5 s2 ((seed * 11) + 7)) "rr" in
      let j = Ops.join r1 r2 in
      let flat_pairs =
        List.concat_map
          (fun e1 ->
            List.filter_map
              (fun e2 ->
                if Item.coord e1 1 = Item.coord e2 0 then
                  Some [| Item.coord e1 0; Item.coord e1 1; Item.coord e2 1 |]
                else None)
              (Flatten.extension_list r2))
          (Flatten.extension_list r1)
      in
      let expected = List.sort_uniq Stdlib.compare flat_pairs in
      let got =
        List.sort_uniq Stdlib.compare (List.map Item.coords (Flatten.extension_list j))
      in
      expected = got)

let prop_explicate_idempotent =
  QCheck2.Test.make ~name:"explication is idempotent" ~count:40 seed_gen (fun seed ->
      let _, _, rel = unary_setup seed in
      let once = Explicate.explicate rel in
      Relation.equal once (Explicate.explicate once))

let prop_workload_deterministic =
  QCheck2.Test.make ~name:"workloads are seed-deterministic" ~count:20 seed_gen (fun seed ->
      let _, _, r1 = unary_setup seed in
      let _, schema2, _ = unary_setup seed in
      let r2 = relation_of_seed schema2 seed in
      Relation.cardinality r1 = Relation.cardinality r2
      && List.equal
           (fun (a : Relation.tuple) (b : Relation.tuple) ->
             Types.sign_equal a.Relation.sign b.Relation.sign)
           (Relation.tuples r1) (Relation.tuples r2))

(* On a tree hierarchy the ancestors of any node form a chain, so the
   relevant tuples of any single-attribute item are totally ordered:
   off-path and on-path preemption must agree everywhere. *)
let prop_tree_semantics_agree =
  QCheck2.Test.make ~name:"off-path = on-path on tree hierarchies" ~count:40 seed_gen
    (fun seed ->
      let g = Prng.create (Int64.of_int (seed + 777)) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "tree%d" seed;
            classes = 8;
            instances = 12;
            multi_parent_prob = 0.0 (* tree *);
          }
      in
      let schema = Schema.make [ ("v", h) ] in
      let rel =
        Workload.consistent_random_relation g schema
          { Workload.default_relation_spec with tuples = 8 }
      in
      List.for_all
        (fun node ->
          let item = Item.make schema [| node |] in
          let sign s = match s with
            | Binding.Asserted (x, _) -> `A x
            | Binding.Unasserted -> `U
            | Binding.Conflict _ -> `C
          in
          sign (Binding.verdict ~semantics:Types.Off_path rel item)
          = sign (Binding.verdict ~semantics:Types.On_path rel item))
        (Hierarchy.nodes h))

(* Soundness of the pairwise ambiguity check: whenever it declares the
   relation consistent, no atomic item actually conflicts. *)
let prop_integrity_sound =
  QCheck2.Test.make ~name:"consistency check is sound on atoms" ~count:40 seed_gen
    (fun seed ->
      let g = Prng.create (Int64.of_int (seed + 999)) in
      let h =
        Workload.random_hierarchy g
          {
            Workload.name = Printf.sprintf "snd%d" seed;
            classes = 8;
            instances = 12;
            multi_parent_prob = 0.3;
          }
      in
      let schema = Schema.make [ ("v", h) ] in
      (* unrepaired: may or may not be consistent *)
      let rel =
        Workload.random_relation g schema
          { Workload.default_relation_spec with tuples = 8 }
      in
      let atomic_conflict =
        List.exists
          (fun inst ->
            match Binding.verdict rel (Item.make schema [| inst |]) with
            | Binding.Conflict _ -> true
            | Binding.Asserted _ | Binding.Unasserted -> false)
          (Hierarchy.instances h)
      in
      (not (Integrity.is_consistent rel)) || not atomic_conflict)

(* The justification of an item always contains its strongest binders. *)
let prop_justification_complete =
  QCheck2.Test.make ~name:"justification contains the binders" ~count:40 seed_gen
    (fun seed ->
      let _, schema, rel = unary_setup seed in
      let h = Schema.hierarchy schema 0 in
      List.for_all
        (fun node ->
          let item = Item.make schema [| node |] in
          match Binding.verdict rel item with
          | Binding.Asserted (_, binders) ->
            let just = Binding.justification rel item in
            List.for_all
              (fun (b : Relation.tuple) ->
                List.exists
                  (fun (j : Relation.tuple) -> Item.equal j.Relation.item b.Relation.item)
                  just)
              binders
          | Binding.Unasserted | Binding.Conflict _ -> true)
        (Hierarchy.nodes h))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_tree_semantics_agree;
      prop_integrity_sound;
      prop_justification_complete;
      prop_explicate_equals_binding;
      prop_consolidate_preserves_extension;
      prop_consolidate_minimal;
      prop_consolidate_keeps_consistency;
      prop_repair_consistent;
      prop_union;
      prop_inter;
      prop_diff;
      prop_select_flat_equivalent;
      prop_select_idempotent;
      prop_union_commutative;
      prop_ops_produce_consistent_results;
      prop_join_flat_equivalent;
      prop_explicate_idempotent;
      prop_workload_deterministic;
    ]
