(* Aggregation tests (§3.3.2 motivation: counts over explicated data). *)

module Eval = Hr_query.Eval
open Hierel

let test_count () =
  let h = Fixtures.animals () in
  Alcotest.(check int) "4 flyers" 4 (Aggregate.count (Fixtures.flies h));
  Alcotest.(check int) "empty" 0
    (Aggregate.count (Relation.empty (Fixtures.flies_schema h)))

let test_count_is_extension_not_tuples () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let rel = Relation.of_tuples ~name:"r" schema [ (Types.Pos, [ "penguin" ]) ] in
  Alcotest.(check int) "1 stored tuple" 1 (Relation.cardinality rel);
  Alcotest.(check int) "4 penguins counted" 4 (Aggregate.count rel)

let test_count_by () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let by_color = Aggregate.histogram color ~attr:"color" in
  Alcotest.(check (list (pair string int))) "one of each"
    [ ("dappled", 1); ("white", 1) ] by_color

let test_count_under () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  Alcotest.(check int) "flying penguins" 3
    (Aggregate.count_under flies ~attr:"creature" ~cls:"penguin");
  Alcotest.(check int) "flying birds = all flyers" 4
    (Aggregate.count_under flies ~attr:"creature" ~cls:"bird");
  Alcotest.(check int) "flying canaries" 1
    (Aggregate.count_under flies ~attr:"creature" ~cls:"canary")

let test_hrql_count () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN animal;
    CREATE CLASS bird UNDER animal;
    CREATE CLASS penguin UNDER bird;
    CREATE INSTANCE tweety OF bird;
    CREATE INSTANCE paul OF penguin;
    CREATE INSTANCE pam OF penguin;
    CREATE RELATION flies (creature: animal);
    INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin);
    |}
  in
  (match Eval.run_script cat script with Ok _ -> () | Error e -> failwith e);
  (match Eval.run_script cat "COUNT flies;" with
  | Ok [ out ] -> Alcotest.(check string) "count" "count: 1" out
  | Ok _ | Error _ -> Alcotest.fail "COUNT failed");
  match Eval.run_script cat "COUNT flies UNION flies BY creature;" with
  | Ok [ out ] ->
    Alcotest.(check bool) "histogram mentions tweety" true
      (let contains ~sub s =
         let n = String.length sub and m = String.length s in
         let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
         loop 0
       in
       contains ~sub:"tweety" out)
  | Ok _ | Error _ -> Alcotest.fail "COUNT BY failed"

let test_hrql_explain_plan () =
  let cat = Catalog.create () in
  let script =
    {|
    CREATE DOMAIN d;
    CREATE INSTANCE x OF d;
    CREATE RELATION a (v: d);
    CREATE RELATION b (v: d);
    |}
  in
  (match Eval.run_script cat script with Ok _ -> () | Error e -> failwith e);
  match Eval.run_script cat "EXPLAIN PLAN SELECT (a UNION b) WHERE v = x;" with
  | Ok [ out ] ->
    Alcotest.(check bool) "shows the pushdown" true
      (let contains ~sub s =
         let n = String.length sub and m = String.length s in
         let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
         loop 0
       in
       contains ~sub:"union(select[v=x](a), select[v=x](b))" out)
  | Ok _ | Error _ -> Alcotest.fail "EXPLAIN PLAN failed"

let suite =
  [
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "count = extension, not stored tuples" `Quick
      test_count_is_extension_not_tuples;
    Alcotest.test_case "count by" `Quick test_count_by;
    Alcotest.test_case "count under" `Quick test_count_under;
    Alcotest.test_case "HRQL COUNT" `Quick test_hrql_count;
    Alcotest.test_case "HRQL EXPLAIN PLAN" `Quick test_hrql_explain_plan;
  ]
