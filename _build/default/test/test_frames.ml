(* Frame-KR front end tests: the paper's §1 pitch, Clyde reconstructed
   through frames. *)

module Frames = Hr_frames.Frames

let elephant_kb () =
  let kb = Frames.create ~entity_domain:"animal" () in
  Frames.define_frame kb "elephant";
  Frames.define_frame kb ~is_a:[ "elephant" ] "african_elephant";
  Frames.define_frame kb ~is_a:[ "elephant" ] "indian_elephant";
  Frames.define_frame kb ~is_a:[ "elephant" ] "royal_elephant";
  Frames.define_individual kb ~is_a:[ "royal_elephant" ] "clyde";
  Frames.define_individual kb ~is_a:[ "royal_elephant"; "indian_elephant" ] "appu";
  Frames.define_slot kb ~slot:"color" ~values:[ "grey"; "white"; "dappled" ];
  kb

let test_inheritance () =
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  Alcotest.(check (option string)) "clyde inherits grey" (Some "grey")
    (Frames.slot_value kb ~frame:"clyde" ~slot:"color")

let test_functional_override () =
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  Frames.set_slot kb ~frame:"royal_elephant" ~slot:"color" ~value:"white";
  Frames.set_slot kb ~frame:"clyde" ~slot:"color" ~value:"dappled";
  Alcotest.(check (option string)) "clyde dappled" (Some "dappled")
    (Frames.slot_value kb ~frame:"clyde" ~slot:"color");
  Alcotest.(check (option string)) "appu white via royal" (Some "white")
    (Frames.slot_value kb ~frame:"appu" ~slot:"color");
  Alcotest.(check (option string)) "africans stay grey" (Some "grey")
    (Frames.slot_value kb ~frame:"african_elephant" ~slot:"color")

let test_forbid () =
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  Frames.forbid_slot kb ~frame:"royal_elephant" ~slot:"color" ~value:"grey";
  Alcotest.(check (option string)) "royals have no color now" None
    (Frames.slot_value kb ~frame:"clyde" ~slot:"color")

let test_multi_valued_slot () =
  let kb = Frames.create () in
  Frames.define_frame kb "bird";
  Frames.define_individual kb ~is_a:[ "bird" ] "tweety";
  Frames.define_slot ~multi:true kb ~slot:"diet" ~values:[ "seeds"; "insects"; "fish" ];
  Frames.set_slot kb ~frame:"bird" ~slot:"diet" ~value:"seeds";
  Frames.set_slot kb ~frame:"bird" ~slot:"diet" ~value:"insects";
  Alcotest.(check (list string)) "both accumulate" [ "insects"; "seeds" ]
    (Frames.get_slot kb ~frame:"tweety" ~slot:"diet")

let test_conflicting_update_rejected () =
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"royal_elephant" ~slot:"color" ~value:"white";
  (* a bare negative on indian elephants clashes at appu *)
  try
    Frames.forbid_slot kb ~frame:"indian_elephant" ~slot:"color" ~value:"white";
    Alcotest.fail "expected Kb_error"
  with Frames.Kb_error _ ->
    (* the failed update left nothing behind *)
    Alcotest.(check (option string)) "state intact" (Some "white")
      (Frames.slot_value kb ~frame:"appu" ~slot:"color")

let test_explain () =
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  Frames.set_slot kb ~frame:"royal_elephant" ~slot:"color" ~value:"white";
  let out = Frames.explain_slot kb ~frame:"appu" ~slot:"color" ~value:"grey" in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "mentions the cancellation" true
    (contains ~sub:"royal_elephant" out && contains ~sub:"-" out)

let test_catalog_interop () =
  (* the kb's catalog is a normal catalog: HRQL works on it *)
  let kb = elephant_kb () in
  Frames.set_slot kb ~frame:"elephant" ~slot:"color" ~value:"grey";
  match Hr_query.Eval.run_script (Frames.catalog kb) "COUNT color;" with
  | Ok [ out ] ->
    (* appu + clyde are the only instances: both grey *)
    Alcotest.(check string) "countable through HRQL" "count: 2" out
  | Ok _ | Error _ -> Alcotest.fail "HRQL failed on the kb catalog"

let test_listing () =
  let kb = elephant_kb () in
  Alcotest.(check (list string)) "frames"
    [ "african_elephant"; "elephant"; "indian_elephant"; "royal_elephant" ]
    (Frames.frames kb);
  Alcotest.(check (list string)) "individuals" [ "appu"; "clyde" ] (Frames.individuals kb)

let test_errors () =
  let kb = elephant_kb () in
  (try
     Frames.define_slot kb ~slot:"color" ~values:[ "x" ];
     Alcotest.fail "duplicate slot"
   with Frames.Kb_error _ -> ());
  (try
     ignore (Frames.get_slot kb ~frame:"clyde" ~slot:"nope");
     Alcotest.fail "unknown slot"
   with Frames.Kb_error _ -> ());
  try
    Frames.set_slot kb ~frame:"ghost" ~slot:"color" ~value:"grey";
    Alcotest.fail "unknown frame"
  with Frames.Kb_error _ -> ()

let suite =
  [
    Alcotest.test_case "inheritance" `Quick test_inheritance;
    Alcotest.test_case "functional override chain" `Quick test_functional_override;
    Alcotest.test_case "negative assertions" `Quick test_forbid;
    Alcotest.test_case "multi-valued slots" `Quick test_multi_valued_slot;
    Alcotest.test_case "conflicting updates rejected atomically" `Quick
      test_conflicting_update_rejected;
    Alcotest.test_case "explanation" `Quick test_explain;
    Alcotest.test_case "HRQL interop" `Quick test_catalog_interop;
    Alcotest.test_case "listing" `Quick test_listing;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
