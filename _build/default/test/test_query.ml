(* HRQL end-to-end tests: build the paper's examples purely through the
   query language. *)

module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
open Hierel

let run cat script =
  match Eval.run_script cat script with
  | Ok outputs -> outputs
  | Error msg -> Alcotest.failf "script failed: %s" msg

let expect_error cat script =
  match Eval.run_script cat script with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

let fig1_script =
  {|
  CREATE DOMAIN animal;
  CREATE CLASS bird UNDER animal;
  CREATE CLASS canary UNDER bird;
  CREATE CLASS penguin UNDER bird;
  CREATE CLASS galapagos_penguin UNDER penguin;
  CREATE CLASS amazing_flying_penguin UNDER penguin;
  CREATE INSTANCE tweety OF canary;
  CREATE INSTANCE paul OF galapagos_penguin;
  CREATE INSTANCE peter OF penguin;
  CREATE INSTANCE pamela OF amazing_flying_penguin;
  CREATE INSTANCE patricia OF amazing_flying_penguin, galapagos_penguin;
  CREATE RELATION flies (creature: animal);
  INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin),
    (+ ALL amazing_flying_penguin), (+ peter);
  |}

let test_fig1_via_hrql () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let outputs =
    run cat "ASK flies (tweety); ASK flies (paul); ASK flies (patricia);"
  in
  (match outputs with
  | [ tweety; paul; patricia ] ->
    Alcotest.(check bool) "tweety +" true (String.length tweety > 0 && tweety.[0] = '+');
    Alcotest.(check bool) "paul -" true (String.length paul > 0 && paul.[0] = '-');
    Alcotest.(check bool) "patricia +" true (String.length patricia > 0 && patricia.[0] = '+')
  | _ -> Alcotest.fail "expected three answers");
  let rel = Catalog.relation cat "flies" in
  Alcotest.(check int) "four tuples" 4 (Relation.cardinality rel)

let test_ask_semantics_override () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let conflict = List.hd (run cat "ASK flies (patricia) UNDER ON-PATH;") in
  Alcotest.(check bool) "on-path reports the conflict" true
    (String.length conflict >= 8 && String.sub conflict 0 8 = "CONFLICT")

let test_insert_rejected_on_conflict () =
  let cat = Catalog.create () in
  ignore
    (run cat
       {|
       CREATE DOMAIN animal;
       CREATE CLASS royal UNDER animal;
       CREATE CLASS indian UNDER animal;
       CREATE INSTANCE appu OF royal, indian;
       CREATE DOMAIN color;
       CREATE INSTANCE grey OF color;
       CREATE RELATION colors (animal: animal, color: color);
       INSERT INTO colors VALUES (+ ALL royal, grey);
       |});
  let msg = expect_error cat "INSERT INTO colors VALUES (- ALL indian, grey);" in
  Alcotest.(check bool) "mentions ambiguity" true
    (String.length msg > 0);
  (* the rejected insert left no trace *)
  Alcotest.(check int) "relation unchanged" 1
    (Relation.cardinality (Catalog.relation cat "colors"))

let test_select_where () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let out = List.hd (run cat "SELECT * FROM flies WHERE creature = tweety;") in
  Alcotest.(check bool) "mentions tweety" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"tweety" out)

let test_let_and_setops () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore
    (run cat
       {|
       CREATE RELATION jack_loves (creature: animal);
       CREATE RELATION jill_loves (creature: animal);
       INSERT INTO jack_loves VALUES (+ ALL bird), (- ALL penguin);
       INSERT INTO jill_loves VALUES (+ ALL penguin);
       LET both = jack_loves INTERSECT jill_loves;
       LET either = jack_loves UNION jill_loves;
       |});
  let both = Catalog.relation cat "both" in
  Alcotest.(check int) "intersection empty extension" 0
    (List.length (Flatten.extension_list both));
  let either = Catalog.relation cat "either" in
  Alcotest.(check int) "union covers all five" 5
    (List.length (Flatten.extension_list either))

let test_consolidate_statement () =
  let cat = Catalog.create () in
  ignore
    (run cat
       {|
       CREATE DOMAIN student;
       CREATE CLASS obsequious UNDER student;
       CREATE INSTANCE john OF obsequious;
       CREATE DOMAIN teacher;
       CREATE CLASS incoherent UNDER teacher;
       CREATE INSTANCE smith OF incoherent;
       CREATE RELATION respects (student: student, teacher: teacher);
       INSERT INTO respects VALUES (+ ALL obsequious, ALL teacher),
         (- ALL student, ALL incoherent), (+ ALL obsequious, ALL incoherent);
       |});
  let out = List.hd (run cat "CONSOLIDATE respects;") in
  Alcotest.(check bool) "reports 2 removed" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"2 redundant" out);
  Alcotest.(check int) "one remains" 1 (Relation.cardinality (Catalog.relation cat "respects"))

let test_explicate_statement () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore (run cat "EXPLICATE flies;");
  let rel = Catalog.relation cat "flies" in
  Alcotest.(check int) "four flyers" 4 (Relation.cardinality rel);
  Alcotest.(check bool) "all atomic" true
    (List.for_all
       (fun (t : Relation.tuple) -> Item.is_atomic (Relation.schema rel) t.Relation.item)
       (Relation.tuples rel))

let test_check_statement () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let out = List.hd (run cat "CHECK flies;") in
  Alcotest.(check bool) "reports consistency" true
    (String.length out >= 10 && String.sub out 0 10 = "consistent")

let test_all_on_instance_rejected () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore (expect_error cat "INSERT INTO flies VALUES (+ ALL tweety);")

let test_parse_errors () =
  (try
     ignore (Parser.parse "CREATE NONSENSE;");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error _ -> ());
  try
    ignore (Parser.parse "SELECT * FRUM flies;");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error _ | Hr_query.Lexer.Lex_error _ -> ()

let test_justification_output () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let out =
    List.hd (run cat "SELECT * FROM flies WHERE creature = patricia WITH JUSTIFICATION;")
  in
  Alcotest.(check bool) "includes justification section" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"justification" out && contains ~sub:"V penguin" out)

let test_explain () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let out = List.hd (run cat "EXPLAIN flies (patricia);") in
  Alcotest.(check bool) "shows verdict and tuples" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"verdict" out && contains ~sub:"amazing_flying_penguin" out)

let test_show_statements () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  let h = List.hd (run cat "SHOW HIERARCHY animal;") in
  Alcotest.(check bool) "tree rendering" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"penguin" h);
  ignore (run cat "SHOW RELATIONS; SHOW HIERARCHIES;")

let test_drop () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore (run cat "DROP RELATION flies;");
  Alcotest.(check bool) "gone" true (Option.is_none (Catalog.find_relation cat "flies"))

let test_case_insensitive_keywords () =
  let cat = Catalog.create () in
  ignore
    (run cat
       "create domain d; Create Class c UNDER d; create instance x of c;\n\
        CREATE relation r (v: d); insert into r values (+ all c);");
  Alcotest.(check int) "lower-case script works" 1
    (Relation.cardinality (Catalog.relation cat "r"))

let test_comments_ignored () =
  let cat = Catalog.create () in
  ignore
    (run cat
       {|
       -- a comment before anything
       CREATE DOMAIN d;  -- trailing comment
       -- CREATE DOMAIN not_this_one;
       CREATE INSTANCE x OF d;
       |});
  Alcotest.(check bool) "commented statement skipped" true
    (Option.is_none (Catalog.find_relation cat "not_this_one"));
  Alcotest.(check bool) "d exists" true (Option.is_some (Catalog.find_hierarchy cat "d"))

let test_let_chains () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore
    (run cat
       {|
       LET a = SELECT flies WHERE creature = penguin;
       LET b = EXPLICATED a;
       LET c = b UNION b;
       |});
  Alcotest.(check int) "chain result: three flying penguins" 3
    (List.length (Flatten.extension_list (Catalog.relation cat "c")))

let test_error_does_not_corrupt_catalog () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore (expect_error cat "INSERT INTO flies VALUES (+ dragon);");
  ignore (expect_error cat "SELECT * FROM nonexistent;");
  Alcotest.(check int) "flies unchanged" 4 (Relation.cardinality (Catalog.relation cat "flies"))

let test_where_and () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore
    (run cat
       {|
       CREATE DOMAIN place;
       CREATE INSTANCE zoo OF place;
       CREATE INSTANCE wild OF place;
       CREATE RELATION seen (creature: animal, place: place);
       INSERT INTO seen VALUES (+ ALL penguin, zoo), (+ tweety, wild);
       LET z = SELECT seen WHERE creature = penguin AND place = zoo;
       |});
  let z = Catalog.relation cat "z" in
  Alcotest.(check int) "penguins at the zoo" 4 (List.length (Flatten.extension_list z));
  let out = List.hd (run cat "SELECT * FROM seen WHERE creature = tweety AND place = wild;") in
  Alcotest.(check bool) "statement-level AND" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"tweety" out)

let test_diff_statement () =
  let cat = Catalog.create () in
  ignore (run cat fig1_script);
  ignore
    (run cat
       {|
       LET without_peter = SELECT flies WHERE creature = bird;
       |});
  (* DIFF of a relation against its consolidated self is a semantic noop *)
  let out = List.hd (run cat "DIFF flies (CONSOLIDATED flies);") in
  Alcotest.(check bool) "extension unchanged" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"no changes" out || contains ~sub:"stored form only" out);
  (* a real change shows up *)
  ignore (run cat "INSERT INTO flies VALUES (+ paul);");
  let out2 = List.hd (run cat "DIFF without_peter flies;") in
  Alcotest.(check bool) "mentions paul" true
    (let contains ~sub s =
       let n = String.length sub and m = String.length s in
       let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains ~sub:"paul" out2)

let test_semicolon_handling () =
  let cat = Catalog.create () in
  (* extra semicolons and a missing trailing one *)
  ignore (run cat ";;CREATE DOMAIN d;; CREATE INSTANCE x OF d");
  Alcotest.(check bool) "parsed anyway" true (Option.is_some (Catalog.find_hierarchy cat "d"))

let suite =
  [
    Alcotest.test_case "case-insensitive keywords" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "comments ignored" `Quick test_comments_ignored;
    Alcotest.test_case "LET chains" `Quick test_let_chains;
    Alcotest.test_case "errors leave catalog intact" `Quick test_error_does_not_corrupt_catalog;
    Alcotest.test_case "WHERE ... AND ..." `Quick test_where_and;
    Alcotest.test_case "DIFF statement" `Quick test_diff_statement;
    Alcotest.test_case "semicolon handling" `Quick test_semicolon_handling;
    Alcotest.test_case "fig1 via HRQL" `Quick test_fig1_via_hrql;
    Alcotest.test_case "ASK with semantics override" `Quick test_ask_semantics_override;
    Alcotest.test_case "INSERT rejected on conflict" `Quick test_insert_rejected_on_conflict;
    Alcotest.test_case "SELECT WHERE" `Quick test_select_where;
    Alcotest.test_case "LET and set operators" `Quick test_let_and_setops;
    Alcotest.test_case "CONSOLIDATE statement" `Quick test_consolidate_statement;
    Alcotest.test_case "EXPLICATE statement" `Quick test_explicate_statement;
    Alcotest.test_case "CHECK statement" `Quick test_check_statement;
    Alcotest.test_case "ALL on instance rejected" `Quick test_all_on_instance_rejected;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "WITH JUSTIFICATION" `Quick test_justification_output;
    Alcotest.test_case "EXPLAIN" `Quick test_explain;
    Alcotest.test_case "SHOW" `Quick test_show_statements;
    Alcotest.test_case "DROP RELATION" `Quick test_drop;
  ]
