(* Lifted relational operators: Figures 7–11 of the paper, plus
   flat-equivalence checks of every operator. *)

open Hierel

let tuple_strings rel =
  List.map
    (fun (t : Relation.tuple) ->
      Format.asprintf "%a%s" Types.pp_sign t.Relation.sign
        (Item.to_string (Relation.schema rel) t.Relation.item))
    (Relation.tuples rel)
  |> List.sort String.compare

(* -- Figure 7: who do obsequious students respect? -------------------- *)

let test_fig7 () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let result = Ops.select r ~attr:"student" ~value:"obsequious_student" in
  Alcotest.(check (list string)) "all teachers"
    [ "+(V obsequious_student, V teacher)" ]
    (tuple_strings result)

(* -- Figure 8: who does John respect? --------------------------------- *)

let test_fig8 () =
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let result = Ops.select r ~attr:"student" ~value:"john" in
  Alcotest.(check (list string)) "john respects all teachers"
    [ "+(john, V teacher)" ]
    (tuple_strings result)

let test_select_mary () =
  (* mary is a plain student: respects everyone except incoherents *)
  let hs = Fixtures.students () and ht = Fixtures.teachers () in
  let r = Fixtures.respects hs ht in
  let result = Ops.select r ~attr:"student" ~value:"mary" in
  Fixtures.check_holds result [ "mary"; "jones" ] false "mary has no positive tuple";
  Alcotest.(check bool) "mary/smith false" false
    (Binding.holds result (Item.of_names (Relation.schema r) [ "mary"; "smith" ]))

(* -- Figure 9: selection with justification --------------------------- *)

let test_fig9 () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let result, applicable = Ops.select_justified color ~attr:"animal" ~value:"clyde" in
  Fixtures.check_holds result [ "clyde"; "dappled" ] true "clyde dappled";
  Fixtures.check_holds result [ "clyde"; "grey" ] false "clyde not grey";
  (* justification: every stored tuple mentions an ancestor of clyde *)
  Alcotest.(check int) "all five tuples applicable" 5 (List.length applicable)

let test_select_whole_domain_is_identity_extension () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let result = Ops.select color ~attr:"animal" ~value:"animal" in
  Alcotest.(check bool) "same extension" true (Flatten.equal_extension color result)

let test_select_empty_region () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let result = Ops.select color ~attr:"animal" ~value:"african_elephant" in
  (* africans are grey but have no instances; selection keeps the class
     tuple *)
  Fixtures.check_holds result [ "african_elephant"; "grey" ] true "class-level truth kept"

(* -- Figure 10: set operations ---------------------------------------- *)

let fig10 () =
  let h = Fixtures.animals () in
  (h, Fixtures.jack_loves h, Fixtures.jill_loves h)

let ext rel =
  List.map (Item.to_string (Relation.schema rel)) (Flatten.extension_list rel)
  |> List.sort String.compare

let test_fig10_union () =
  let _, jack, jill = fig10 () in
  let u = Ops.union jack jill in
  Alcotest.(check (list string)) "between them: all birds"
    [ "(pamela)"; "(patricia)"; "(paul)"; "(peter)"; "(tweety)" ]
    (ext u)

let test_fig10_inter () =
  let _, jack, jill = fig10 () in
  let i = Ops.inter jack jill in
  Alcotest.(check (list string)) "both love: nobody" [] (ext i)

let test_fig10_diff_jack () =
  let _, jack, jill = fig10 () in
  let d = Ops.diff jack jill in
  Alcotest.(check (list string)) "jack but not jill: non-penguin birds" [ "(tweety)" ] (ext d)

let test_fig10_diff_jill () =
  let _, jack, jill = fig10 () in
  let d = Ops.diff jill jack in
  Alcotest.(check (list string)) "jill but not jack: penguins"
    [ "(pamela)"; "(patricia)"; "(paul)"; "(peter)" ]
    (ext d)

let test_setops_flat_equivalence () =
  (* the lifted ops must equal the flat ops on extensions *)
  let _, jack, jill = fig10 () in
  let module S = Flatten.Item_set in
  let ja = Flatten.extension jack and ji = Flatten.extension jill in
  Alcotest.(check bool) "union" true
    (S.equal (Flatten.extension (Ops.union jack jill)) (S.union ja ji));
  Alcotest.(check bool) "inter" true
    (S.equal (Flatten.extension (Ops.inter jack jill)) (S.inter ja ji));
  Alcotest.(check bool) "diff" true
    (S.equal (Flatten.extension (Ops.diff jack jill)) (S.diff ja ji))

let test_union_stays_hierarchical () =
  (* the union must not degenerate to an enumeration: class tuples remain *)
  let _, jack, jill = fig10 () in
  let u = Ops.union jack jill in
  Alcotest.(check bool) "a class tuple survives" true
    (List.exists
       (fun (t : Relation.tuple) ->
         not (Item.is_atomic (Relation.schema u) t.Relation.item))
       (Relation.tuples u))

let test_union_conflict_requires_witness () =
  (* +a from one relation, -b from the other, overlapping at an explicit
     witness: the refine closure must assert the witness item. *)
  let module Hierarchy = Hr_hierarchy.Hierarchy in
  let h = Hierarchy.create "d" in
  ignore (Hierarchy.add_class h "a");
  ignore (Hierarchy.add_class h "b");
  ignore (Hierarchy.add_instance h ~parents:[ "a"; "b" ] "x");
  ignore (Hierarchy.add_instance h ~parents:[ "a" ] "ya");
  ignore (Hierarchy.add_instance h ~parents:[ "b" ] "yb");
  let schema = Schema.make [ ("v", h) ] in
  let r1 = Relation.of_tuples ~name:"r1" schema [ (Types.Pos, [ "a" ]) ] in
  (* difference r1 - r2 where r2 = {+b}: x lies in both classes, so it
     must drop out, which takes an explicit tuple at the witness x *)
  let r2 = Relation.of_tuples ~name:"r2" schema [ (Types.Pos, [ "b" ]) ] in
  let d = Ops.diff r1 r2 in
  Alcotest.(check bool) "x excluded" false
    (Binding.holds d (Item.of_names schema [ "x" ]));
  Alcotest.(check bool) "ya kept" true (Binding.holds d (Item.of_names schema [ "ya" ]));
  Alcotest.(check bool) "consistent result" true (Integrity.is_consistent d)

(* -- Figure 11: join and projection ----------------------------------- *)

let fig11 () =
  let he = Fixtures.elephants () in
  let hc = Fixtures.colors () in
  let hsz = Fixtures.sizes () in
  let color = Fixtures.animal_color he hc in
  let enclosure = Fixtures.enclosure he hsz in
  (he, hc, hsz, color, enclosure)

let test_fig11_join () =
  let _, _, _, color, enclosure = fig11 () in
  let j = Ops.join enclosure color in
  (* schema: animal, enclosure, color *)
  Alcotest.(check (list string)) "joined schema" [ "animal"; "enclosure"; "color" ]
    (Schema.names (Relation.schema j));
  Fixtures.check_holds j [ "clyde"; "s3000"; "dappled" ] true "clyde: 3000 + dappled";
  Fixtures.check_holds j [ "appu"; "s2000"; "white" ] true "appu: indian 2000 + white";
  Fixtures.check_holds j [ "appu"; "s3000"; "white" ] false "appu not in 3000";
  Fixtures.check_holds j [ "clyde"; "s3000"; "grey" ] false "clyde not grey"

let test_fig11_join_flat_equivalence () =
  let _, _, _, color, enclosure = fig11 () in
  let j = Ops.join enclosure color in
  let flat_join =
    (* join of the explicated relations, computed by hand *)
    let ec = Flatten.extension_list enclosure in
    let cc = Flatten.extension_list color in
    List.concat_map
      (fun e ->
        List.filter_map
          (fun c ->
            if Item.coord e 0 = Item.coord c 0 then
              Some [| Item.coord e 0; Item.coord e 1; Item.coord c 1 |]
            else None)
          cc)
      ec
  in
  let js = Flatten.extension_list j in
  Alcotest.(check int) "same extension size" (List.length flat_join) (List.length js);
  List.iter
    (fun coords ->
      Alcotest.(check bool) "triple present" true
        (List.exists (fun it -> Item.coords it = coords) js))
    flat_join

let test_fig11_projection_roundtrip () =
  (* Fig 11c: joining then projecting back loses no information. *)
  let _, _, _, color, enclosure = fig11 () in
  let j = Ops.join enclosure color in
  let back = Ops.project j [ "animal"; "color" ] in
  (* compare extensions restricted to animals that have an enclosure *)
  Fixtures.check_holds back [ "clyde"; "dappled" ] true "clyde dappled preserved";
  Fixtures.check_holds back [ "appu"; "white" ] true "appu white preserved";
  Fixtures.check_holds back [ "appu"; "grey" ] false "appu grey still excluded"

let test_project_syntactic () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let p = Ops.project color [ "animal" ] in
  Alcotest.(check (list string)) "animal column" [ "animal" ] (Schema.names (Relation.schema p));
  (* both clyde tuples collapse; the positive one wins *)
  Alcotest.(check bool) "clyde present positively" true
    (Binding.holds p (Item.of_names (Relation.schema p) [ "clyde" ]))

let test_project_exact () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let p = Ops.project_exact color [ "animal" ] in
  let schema = Relation.schema p in
  Alcotest.(check bool) "clyde" true (Binding.holds p (Item.of_names schema [ "clyde" ]));
  Alcotest.(check bool) "appu" true (Binding.holds p (Item.of_names schema [ "appu" ]));
  (* africans have a color only at class level, no instances: absent *)
  Alcotest.(check bool) "no african instances" true
    (List.for_all
       (fun (t : Relation.tuple) -> Item.is_atomic schema t.Relation.item)
       (Relation.tuples p))

let test_rename () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let r = Ops.rename color ~old_name:"animal" ~new_name:"beast" in
  Alcotest.(check (list string)) "renamed" [ "beast"; "color" ] (Schema.names (Relation.schema r));
  Alcotest.(check int) "body unchanged" (Relation.cardinality color) (Relation.cardinality r)

let test_cartesian_product () =
  (* join with no shared attributes *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let hs = Fixtures.sizes () in
  let r1 =
    Relation.of_tuples ~name:"r1" (Schema.make [ ("animal", he) ])
      [ (Types.Pos, [ "royal_elephant" ]) ]
  in
  let r2 =
    Relation.of_tuples ~name:"r2" (Schema.make [ ("size", hs) ])
      [ (Types.Pos, [ "s2000" ]) ]
  in
  let p = Ops.join r1 r2 in
  Alcotest.(check (list string)) "schema" [ "animal"; "size" ] (Schema.names (Relation.schema p));
  Fixtures.check_holds p [ "clyde"; "s2000" ] true "clyde x 2000";
  ignore hc

let test_join_two_shared_attributes () =
  (* natural join matching on BOTH attributes; the meet is computed per
     shared coordinate *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let s1 = Schema.make [ ("animal", he); ("color", hc) ] in
  let s2 = Schema.make [ ("animal", he); ("color", hc) ] in
  let r1 =
    Relation.of_tuples ~name:"r1" s1
      [ (Types.Pos, [ "elephant"; "grey" ]); (Types.Neg, [ "royal_elephant"; "grey" ]) ]
  in
  let r2 =
    Relation.of_tuples ~name:"r2" s2 [ (Types.Pos, [ "indian_elephant"; "grey" ]) ]
  in
  let j = Ops.join r1 r2 in
  Alcotest.(check (list string)) "schema unchanged (all shared)" [ "animal"; "color" ]
    (Schema.names (Relation.schema j));
  (* flat semantics: intersection of the two extensions; appu is royal so
     excluded by r1's exception *)
  Alcotest.(check bool) "appu/grey excluded" false
    (Binding.holds j (Item.of_names (Relation.schema j) [ "appu"; "grey" ]));
  let module S = Flatten.Item_set in
  Alcotest.(check bool) "join over all-shared = intersection" true
    (S.equal (Flatten.extension j) (S.inter (Flatten.extension r1) (Flatten.extension r2)))

let test_union_schema_mismatch_rejected () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let color = Fixtures.animal_color he hc in
  let hsz = Fixtures.sizes () in
  let enclosure = Fixtures.enclosure he hsz in
  try
    ignore (Ops.union color enclosure);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let suite =
  [
    Alcotest.test_case "fig7: obsequious students" `Quick test_fig7;
    Alcotest.test_case "fig8: john" `Quick test_fig8;
    Alcotest.test_case "selection keeps exceptions" `Quick test_select_mary;
    Alcotest.test_case "fig9: justification" `Quick test_fig9;
    Alcotest.test_case "select whole domain" `Quick test_select_whole_domain_is_identity_extension;
    Alcotest.test_case "select instance-free class" `Quick test_select_empty_region;
    Alcotest.test_case "fig10c: union" `Quick test_fig10_union;
    Alcotest.test_case "fig10d: intersection" `Quick test_fig10_inter;
    Alcotest.test_case "fig10e: jack - jill" `Quick test_fig10_diff_jack;
    Alcotest.test_case "fig10f: jill - jack" `Quick test_fig10_diff_jill;
    Alcotest.test_case "set ops = flat set ops" `Quick test_setops_flat_equivalence;
    Alcotest.test_case "union stays hierarchical" `Quick test_union_stays_hierarchical;
    Alcotest.test_case "refine closure asserts witnesses" `Quick
      test_union_conflict_requires_witness;
    Alcotest.test_case "fig11b: join" `Quick test_fig11_join;
    Alcotest.test_case "fig11b: join = flat join" `Quick test_fig11_join_flat_equivalence;
    Alcotest.test_case "fig11c: projection round trip" `Quick test_fig11_projection_roundtrip;
    Alcotest.test_case "syntactic projection" `Quick test_project_syntactic;
    Alcotest.test_case "exact projection" `Quick test_project_exact;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
    Alcotest.test_case "join on two shared attributes" `Quick test_join_two_shared_attributes;
    Alcotest.test_case "schema mismatch rejected" `Quick test_union_schema_mismatch_rejected;
  ]
