(* Front-end policy tests (§2.1, §3.1). *)

module Frontend = Hr_frontend.Frontend
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let flies_setup () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let rel =
    Relation.of_tuples ~name:"flies" schema [ (Types.Pos, [ "bird" ]) ]
  in
  (h, schema, rel)

let test_forbid_exceptions () =
  let _, schema, rel = flies_setup () in
  let penguin = Item.of_names schema [ "penguin" ] in
  match Frontend.insert ~policy:Frontend.Forbid_exceptions rel penguin Types.Neg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exception should be forbidden"

let test_forbid_allows_consistent () =
  let _, schema, rel = flies_setup () in
  let canary = Item.of_names schema [ "canary" ] in
  match Frontend.insert ~policy:Frontend.Forbid_exceptions rel canary Types.Pos with
  | Ok (_, warnings) -> Alcotest.(check int) "no warnings" 0 (List.length warnings)
  | Error e -> Alcotest.fail e

let test_warn_on_exception () =
  let _, schema, rel = flies_setup () in
  let penguin = Item.of_names schema [ "penguin" ] in
  match Frontend.insert ~policy:Frontend.Warn_on_exception rel penguin Types.Neg with
  | Ok (rel', warnings) ->
    Alcotest.(check int) "one warning" 1 (List.length warnings);
    Alcotest.(check int) "overrides the bird tuple" 1
      (List.length (List.hd warnings).Frontend.overridden);
    Alcotest.(check int) "inserted anyway" 2 (Relation.cardinality rel')
  | Error e -> Alcotest.fail e

let test_allow_is_silent () =
  let _, schema, rel = flies_setup () in
  let penguin = Item.of_names schema [ "penguin" ] in
  match Frontend.insert ~policy:Frontend.Allow_exceptions rel penguin Types.Neg with
  | Ok (_, warnings) -> Alcotest.(check int) "silent" 0 (List.length warnings)
  | Error e -> Alcotest.fail e

let test_assert_functional_clyde () =
  (* Rebuild Fig 4 with the front end: say elephants are grey, then just
     "royal elephants are white" — the cancellation -[royal, grey] must be
     generated automatically. *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let schema = Fixtures.color_schema he hc in
  let rel =
    Relation.of_tuples ~name:"color" schema [ (Types.Pos, [ "elephant"; "grey" ]) ]
  in
  let rel =
    Frontend.assert_functional rel ~entity_attr:"animal"
      (Item.of_names schema [ "royal_elephant"; "white" ])
  in
  Alcotest.(check (option Fixtures.sign)) "cancellation generated" (Some Types.Neg)
    (Relation.find rel (Item.of_names schema [ "royal_elephant"; "grey" ]));
  Alcotest.(check bool) "consistent" true (Integrity.is_consistent rel);
  Fixtures.check_holds rel [ "clyde"; "white" ] true "clyde now white";
  Fixtures.check_holds rel [ "clyde"; "grey" ] false "grey cancelled"

let test_assert_functional_chains () =
  (* ...and then Clyde is dappled: cancels white for Clyde only. *)
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let schema = Fixtures.color_schema he hc in
  let rel =
    Relation.of_tuples ~name:"color" schema [ (Types.Pos, [ "elephant"; "grey" ]) ]
  in
  let rel =
    Frontend.assert_functional rel ~entity_attr:"animal"
      (Item.of_names schema [ "royal_elephant"; "white" ])
  in
  let rel =
    Frontend.assert_functional rel ~entity_attr:"animal"
      (Item.of_names schema [ "clyde"; "dappled" ])
  in
  Fixtures.check_holds rel [ "clyde"; "dappled" ] true "clyde dappled";
  Fixtures.check_holds rel [ "clyde"; "white" ] false "white cancelled for clyde";
  Fixtures.check_holds rel [ "appu"; "white" ] true "appu still white"

let test_left_precedence_resolution () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  let schema = Fixtures.color_schema he hc in
  let rel =
    Relation.of_tuples ~name:"color" schema
      [
        (Types.Pos, [ "royal_elephant"; "grey" ]);
        (Types.Neg, [ "indian_elephant"; "grey" ]);
      ]
  in
  Alcotest.(check bool) "conflicted before" false (Integrity.is_consistent rel);
  let resolved = Frontend.resolve_left_precedence rel in
  Alcotest.(check bool) "consistent after" true (Integrity.is_consistent resolved);
  (* appu's first declared parent is royal_elephant, so the positive royal
     tuple wins *)
  Fixtures.check_holds resolved [ "appu"; "grey" ] true "left parent (royal) wins"

let test_pessimistic_intersection () =
  let he = Fixtures.elephants () in
  Alcotest.(check bool) "optimistic: disjoint" false
    (Hierarchy.intersects he
       (Hierarchy.find_exn he "african_elephant")
       (Hierarchy.find_exn he "indian_elephant"));
  let cls = Frontend.pessimistic_intersection he "african_elephant" "indian_elephant" in
  Alcotest.(check string) "name" "african_elephant&indian_elephant" cls;
  Alcotest.(check bool) "now overlapping" true
    (Hierarchy.intersects he
       (Hierarchy.find_exn he "african_elephant")
       (Hierarchy.find_exn he "indian_elephant"));
  (* idempotent *)
  let cls2 = Frontend.pessimistic_intersection he "african_elephant" "indian_elephant" in
  Alcotest.(check string) "idempotent" cls cls2

let test_pessimistic_catches_future_conflict () =
  let he = Fixtures.elephants () and hc = Fixtures.colors () in
  ignore (Frontend.pessimistic_intersection he "african_elephant" "indian_elephant");
  let rel =
    Relation.of_tuples ~name:"color" (Fixtures.color_schema he hc)
      [
        (Types.Pos, [ "african_elephant"; "grey" ]);
        (Types.Neg, [ "indian_elephant"; "grey" ]);
      ]
  in
  Alcotest.(check bool) "pessimistic check fires" false (Integrity.is_consistent rel)

let suite =
  [
    Alcotest.test_case "forbid exceptions" `Quick test_forbid_exceptions;
    Alcotest.test_case "forbid allows consistent inserts" `Quick test_forbid_allows_consistent;
    Alcotest.test_case "warn on exception" `Quick test_warn_on_exception;
    Alcotest.test_case "allow is silent" `Quick test_allow_is_silent;
    Alcotest.test_case "functional assertion generates cancellation" `Quick
      test_assert_functional_clyde;
    Alcotest.test_case "functional assertions chain" `Quick test_assert_functional_chains;
    Alcotest.test_case "left-precedence resolution" `Quick test_left_precedence_resolution;
    Alcotest.test_case "pessimistic intersection class" `Quick test_pessimistic_intersection;
    Alcotest.test_case "pessimistic intersection detects conflicts" `Quick
      test_pessimistic_catches_future_conflict;
  ]
