(* Three-valued / partial-information extension tests (paper Conclusion). *)

module Tv = Hr_threeval.Threeval
open Hierel

let setup () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  (h, schema)

let item schema name = Item.of_names schema [ name ]

let test_open_world_default () =
  let _, schema = setup () in
  let r = Tv.empty schema in
  Alcotest.(check bool) "unknown by default" true
    (Tv.truth r (item schema "tweety") = Tv.Unknown);
  Alcotest.(check bool) "possible" true (Tv.possible r (item schema "tweety"));
  Alcotest.(check bool) "not certain" false (Tv.certain r (item schema "tweety"))

let test_affirm_deny_inheritance () =
  let _, schema = setup () in
  let r = Tv.affirm (Tv.empty schema) (item schema "bird") in
  let r = Tv.deny r (item schema "penguin") in
  Alcotest.(check bool) "tweety certainly flies" true (Tv.certain r (item schema "tweety"));
  Alcotest.(check bool) "paul certainly grounded" false (Tv.possible r (item schema "paul"));
  Alcotest.(check bool) "exception overrides" true
    (Tv.truth r (item schema "penguin") = Tv.False)

let test_marked_unknown_shadows () =
  (* birds fly; for galapagos penguins we explicitly do not know *)
  let _, schema = setup () in
  let r = Tv.affirm (Tv.empty schema) (item schema "bird") in
  let r = Tv.mark_unknown r (item schema "galapagos_penguin") in
  Alcotest.(check bool) "tweety still certain" true (Tv.certain r (item schema "tweety"));
  Alcotest.(check bool) "paul retracted to unknown" true
    (Tv.truth r (item schema "paul") = Tv.Unknown);
  Alcotest.(check bool) "paul remains possible" true (Tv.possible r (item schema "paul"))

let test_conflict_raises () =
  let he = Fixtures.elephants () in
  let hc = Fixtures.colors () in
  let schema = Fixtures.color_schema he hc in
  let r = Tv.affirm (Tv.empty schema) (Item.of_names schema [ "royal_elephant"; "grey" ]) in
  let r = Tv.deny r (Item.of_names schema [ "indian_elephant"; "grey" ]) in
  (try
     ignore (Tv.truth r (Item.of_names schema [ "appu"; "grey" ]));
     Alcotest.fail "expected Conflict"
   with Tv.Conflict _ -> ());
  Alcotest.(check bool) "is_consistent sees it" false (Tv.is_consistent r)

let test_exists_status () =
  let _, schema = setup () in
  let r = Tv.empty schema in
  Alcotest.(check bool) "possible with no info" true
    (Tv.exists_status r (item schema "penguin") = `Possible);
  let r = Tv.assert_exists r (item schema "amazing_flying_penguin") in
  Alcotest.(check bool) "existential on subset certifies superset" true
    (Tv.exists_status r (item schema "penguin") = `Certain);
  (* denying the whole class kills the possibility *)
  let r2 = Tv.deny (Tv.empty schema) (item schema "penguin") in
  Alcotest.(check bool) "impossible when all members denied" true
    (Tv.exists_status r2 (item schema "penguin") = `Impossible)

let test_exists_certain_via_member () =
  let _, schema = setup () in
  let r = Tv.affirm (Tv.empty schema) (item schema "pamela") in
  Alcotest.(check bool) "certain through a member" true
    (Tv.exists_status r (item schema "penguin") = `Certain)

let test_existential_consistency () =
  let _, schema = setup () in
  let r = Tv.deny (Tv.empty schema) (item schema "penguin") in
  let r = Tv.assert_exists r (item schema "galapagos_penguin") in
  Alcotest.(check bool) "E(galapagos) contradicts -penguin" false (Tv.is_consistent r);
  (* re-allowing one member restores satisfiability *)
  let r = Tv.affirm r (item schema "paul") in
  Alcotest.(check bool) "a witness fixes it" true (Tv.is_consistent r)

let test_roundtrip_with_two_valued () =
  let h = Fixtures.animals () in
  let flies = Fixtures.flies h in
  let tv = Tv.of_relation flies in
  Alcotest.(check int) "all tuples imported" (Relation.cardinality flies) (Tv.cardinality tv);
  let schema = Relation.schema flies in
  Alcotest.(check bool) "same verdict for patricia" true
    (Tv.certain tv (item schema "patricia"));
  (* closed-world export round-trips *)
  let back = Tv.to_relation tv in
  Alcotest.(check bool) "round trip" true (Relation.equal flies back)

let test_export_rejects_existentials () =
  let _, schema = setup () in
  let r = Tv.assert_exists (Tv.empty schema) (item schema "penguin") in
  try
    ignore (Tv.to_relation r);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_export_open_world_rejects_unknown_marks () =
  let _, schema = setup () in
  let r = Tv.mark_unknown (Tv.empty schema) (item schema "penguin") in
  (* closed world silently drops the mark *)
  Alcotest.(check int) "closed world drops" 0 (Relation.cardinality (Tv.to_relation r));
  try
    ignore (Tv.to_relation ~closed_world:false r);
    Alcotest.fail "expected Model_error"
  with Types.Model_error _ -> ()

let test_mark_replacement_and_retract () =
  let _, schema = setup () in
  let r = Tv.affirm (Tv.empty schema) (item schema "penguin") in
  let r = Tv.deny r (item schema "penguin") in
  Alcotest.(check bool) "later mark replaces" true
    (Tv.truth r (item schema "paul") = Tv.False);
  let r = Tv.retract r (item schema "penguin") in
  Alcotest.(check bool) "retraction restores open world" true
    (Tv.truth r (item schema "paul") = Tv.Unknown)

let suite =
  [
    Alcotest.test_case "open world default" `Quick test_open_world_default;
    Alcotest.test_case "affirm/deny inheritance" `Quick test_affirm_deny_inheritance;
    Alcotest.test_case "marked unknown shadows" `Quick test_marked_unknown_shadows;
    Alcotest.test_case "conflicts raise" `Quick test_conflict_raises;
    Alcotest.test_case "existential status" `Quick test_exists_status;
    Alcotest.test_case "certain via member" `Quick test_exists_certain_via_member;
    Alcotest.test_case "existential consistency" `Quick test_existential_consistency;
    Alcotest.test_case "two-valued round trip" `Quick test_roundtrip_with_two_valued;
    Alcotest.test_case "export rejects existentials" `Quick test_export_rejects_existentials;
    Alcotest.test_case "open-world export rejects unknown" `Quick
      test_export_open_world_rejects_unknown_marks;
    Alcotest.test_case "replace and retract" `Quick test_mark_replacement_and_retract;
  ]
