(* Workload generator sanity tests. *)

module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let test_random_hierarchy_shape () =
  let g = Prng.create 1L in
  let spec = { Workload.default_hierarchy_spec with name = "wh1" } in
  let h = Workload.random_hierarchy g spec in
  Alcotest.(check int) "classes" (spec.Workload.classes + 1) (List.length (Hierarchy.classes h));
  Alcotest.(check int) "instances" spec.Workload.instances
    (List.length (Hierarchy.instances h));
  Alcotest.(check int) "transitively reduced" 0 (List.length (Hierarchy.validate h))

let test_tree_hierarchy_counts () =
  let h = Workload.tree_hierarchy ~name:"wt" ~depth:3 ~fanout:2 ~instances_per_leaf:2 () in
  (* 2 + 4 + 8 classes + root, 8 * 2 instances *)
  Alcotest.(check int) "classes" 15 (List.length (Hierarchy.classes h));
  Alcotest.(check int) "instances" 16 (List.length (Hierarchy.instances h))

let test_chain_hierarchy () =
  let h = Workload.chain_hierarchy ~name:"wc" ~depth:5 () in
  Alcotest.(check int) "6 classes" 6 (List.length (Hierarchy.classes h));
  Alcotest.(check int) "one leaf" 1 (List.length (Hierarchy.instances h));
  Alcotest.(check bool) "leaf under c0" true
    (Hierarchy.subsumes h (Hierarchy.find_exn h "c0") (Hierarchy.find_exn h "leaf"))

let test_random_relation_size () =
  let g = Prng.create 2L in
  let h = Workload.random_hierarchy g { Workload.default_hierarchy_spec with name = "wh2" } in
  let schema = Schema.make [ ("v", h) ] in
  let rel = Workload.random_relation g schema { Workload.default_relation_spec with tuples = 20 } in
  Alcotest.(check int) "requested size" 20 (Relation.cardinality rel)

let test_exception_chain () =
  let h, rel = Workload.exception_chain ~name:"we" ~depth:6 ~instances_per_class:2 () in
  Alcotest.(check int) "6 tuples" 6 (Relation.cardinality rel);
  Alcotest.(check bool) "consistent" true (Integrity.is_consistent rel);
  (* instances directly under c<k> see sign of level k *)
  Fixtures.check_holds rel [ "i0_1" ] true "level 0 positive";
  Fixtures.check_holds rel [ "i1_1" ] false "level 1 negative";
  Fixtures.check_holds rel [ "i5_2" ] false "level 5 negative";
  ignore h

let test_redundant_relation () =
  let g = Prng.create 3L in
  let h = Workload.tree_hierarchy ~name:"wr" ~depth:3 ~fanout:3 ~instances_per_leaf:1 () in
  let rel = Workload.redundant_relation g h ~redundancy:0.8 ~tuples:40 in
  let consolidated = Consolidate.consolidate rel in
  Alcotest.(check bool) "consolidation shrinks it" true
    (Relation.cardinality consolidated < Relation.cardinality rel);
  Alcotest.(check bool) "extension preserved" true (Flatten.equal_extension rel consolidated)

let suite =
  [
    Alcotest.test_case "random hierarchy shape" `Quick test_random_hierarchy_shape;
    Alcotest.test_case "tree hierarchy counts" `Quick test_tree_hierarchy_counts;
    Alcotest.test_case "chain hierarchy" `Quick test_chain_hierarchy;
    Alcotest.test_case "random relation size" `Quick test_random_relation_size;
    Alcotest.test_case "exception chain" `Quick test_exception_chain;
    Alcotest.test_case "redundant relation consolidates" `Quick test_redundant_relation;
  ]
