(* Fuzz-style safety properties: parsers must fail only with their
   declared exceptions, whatever the input. *)

module Lexer = Hr_query.Lexer
module Parser = Hr_query.Parser
module Datalog = Hr_datalog.Datalog
module Csv = Hr_flat.Csv

let printable_gen = QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 120))

let prop_lexer_total =
  QCheck2.Test.make ~name:"lexer is total up to Lex_error" ~count:500 printable_gen
    (fun input ->
      match Lexer.tokenize input with
      | _ -> true
      | exception Lexer.Lex_error _ -> true)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser is total up to Parse/Lex errors" ~count:500 printable_gen
    (fun input ->
      match Parser.parse input with
      | _ -> true
      | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> true)

let prop_datalog_parser_total =
  QCheck2.Test.make ~name:"datalog rule parser is total up to Datalog_error" ~count:500
    printable_gen (fun input ->
      match Datalog.parse_rule input with
      | _ -> true
      | exception Datalog.Datalog_error _ -> true)

let prop_csv_parser_total =
  QCheck2.Test.make ~name:"csv parser is total up to Csv_error" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '~') (int_range 0 200))
    (fun input ->
      match Csv.parse input with
      | _ -> true
      | exception Csv.Csv_error _ -> true)

let prop_snapshot_decoder_total =
  QCheck2.Test.make ~name:"snapshot decoder is total up to Corrupt_snapshot" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 300))
    (fun input ->
      match Hr_storage.Snapshot.decode input with
      | _ -> true
      | exception Hr_storage.Snapshot.Corrupt_snapshot _ -> true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lexer_total;
      prop_parser_total;
      prop_datalog_parser_total;
      prop_csv_parser_total;
      prop_snapshot_decoder_total;
    ]
