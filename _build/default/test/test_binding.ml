(* Truth-of-item tests: the paper's Figure 1 (flying creatures), Figure 4
   (Clyde the royal elephant) and the Appendix preemption semantics. *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let fig1 () =
  let h = Fixtures.animals () in
  (h, Fixtures.flies h)

let test_fig1_verdicts () =
  let _, flies = fig1 () in
  Fixtures.check_holds flies [ "tweety" ] true "tweety flies (canary < bird)";
  Fixtures.check_holds flies [ "paul" ] false "paul does not fly (galapagos penguin)";
  Fixtures.check_holds flies [ "peter" ] true "peter flies (exact tuple overrides)";
  Fixtures.check_holds flies [ "pamela" ] true "pamela flies (amazing flying penguin)";
  Fixtures.check_holds flies [ "patricia" ] true
    "patricia flies (galapagos has no assertion, afp binds)"

let test_fig1_class_items () =
  let _, flies = fig1 () in
  Fixtures.check_holds flies [ "canary" ] true "all canaries fly";
  Fixtures.check_holds flies [ "penguin" ] false "penguins do not fly";
  Fixtures.check_holds flies [ "amazing_flying_penguin" ] true "afp fly";
  Fixtures.check_holds flies [ "galapagos_penguin" ] false
    "galapagos penguins inherit penguin exception"

let test_closed_world () =
  let h = Fixtures.animals () in
  let schema = Fixtures.flies_schema h in
  let empty = Relation.empty ~name:"flies" schema in
  let tweety = Item.of_names schema [ "tweety" ] in
  (match Binding.verdict empty tweety with
  | Binding.Unasserted -> ()
  | _ -> Alcotest.fail "expected Unasserted");
  Alcotest.(check bool) "closed world default" false (Binding.holds empty tweety)

let test_exception_chain_depth () =
  (* +bird, -penguin, +afp, and a further exception below afp *)
  let h = Fixtures.animals () in
  ignore (Hierarchy.add_class h ~parents:[ "amazing_flying_penguin" ] "tired_afp");
  ignore (Hierarchy.add_instance h ~parents:[ "tired_afp" ] "tina");
  let schema = Fixtures.flies_schema h in
  let flies =
    Relation.add_named (Fixtures.flies h) Types.Neg [ "tired_afp" ]
  in
  ignore schema;
  Fixtures.check_holds flies [ "tina" ] false "4-deep exception chain";
  Fixtures.check_holds flies [ "pamela" ] true "siblings unaffected"

let test_relevant_and_justification () =
  let h, flies = fig1 () in
  let schema = Relation.schema flies in
  let patricia = Item.of_names schema [ "patricia" ] in
  let relevant = Binding.relevant flies patricia in
  Alcotest.(check int) "three applicable tuples" 3 (List.length relevant);
  let peter = Item.of_names schema [ "peter" ] in
  let just = Binding.justification flies peter in
  (* exact tuple + bird + penguin *)
  Alcotest.(check int) "peter justification" 3 (List.length just);
  ignore h

let test_binding_graph_shape () =
  let _, flies = fig1 () in
  let schema = Relation.schema flies in
  let patricia = Item.of_names schema [ "patricia" ] in
  let g = Binding.binding_graph flies patricia in
  Alcotest.(check int) "three tuple nodes" 3 (Array.length g.Binding.nodes);
  (* only the afp tuple points at patricia *)
  let into_item = List.filter (fun (_, j) -> j = g.Binding.item_node) g.Binding.edges in
  Alcotest.(check int) "single immediate predecessor" 1 (List.length into_item)

(* -- Figure 4: Clyde and Appu ---------------------------------------- *)

let fig4 () =
  let he = Fixtures.elephants () in
  let hc = Fixtures.colors () in
  (he, hc, Fixtures.animal_color he hc)

let test_fig4_verdicts () =
  let _, _, color = fig4 () in
  Fixtures.check_holds color [ "clyde"; "dappled" ] true "clyde is dappled";
  Fixtures.check_holds color [ "clyde"; "white" ] false "explicit cancellation";
  Fixtures.check_holds color [ "clyde"; "grey" ] false "royal exception";
  Fixtures.check_holds color [ "appu"; "white" ] true "appu white (royal binds)";
  Fixtures.check_holds color [ "appu"; "grey" ] false
    "appu not grey: royal binds closer than elephant; indian is irrelevant";
  Fixtures.check_holds color [ "african_elephant"; "grey" ] true "africans grey"

let test_fig4_conflict_when_indian_grey_asserted () =
  (* If indian elephants were asserted grey, appu (royal+indian) would see
     two incomparable strongest binders of opposite sign. *)
  let he, hc, color = fig4 () in
  let color = Relation.add_named color Types.Pos [ "indian_elephant"; "grey" ] in
  let appu_grey = Item.of_names (Relation.schema color) [ "appu"; "grey" ] in
  Alcotest.(check bool) "conflict at appu/grey" true
    (Fixtures.is_conflict (Binding.verdict color appu_grey));
  ignore he;
  ignore hc

(* -- Appendix: preemption semantics ----------------------------------- *)

let test_on_path_patricia () =
  (* On-path preemption: patricia being a galapagos penguin gives the
     penguin tuple a path to patricia avoiding afp, so both +afp and
     -penguin bind: a conflict, exactly as the appendix describes. *)
  let _, flies = fig1 () in
  let schema = Relation.schema flies in
  let patricia = Item.of_names schema [ "patricia" ] in
  Alcotest.(check bool) "off-path: flies" true
    (Binding.holds ~semantics:Types.Off_path flies patricia);
  Alcotest.(check bool) "on-path: conflict" true
    (Fixtures.is_conflict (Binding.verdict ~semantics:Types.On_path flies patricia))

let test_on_path_pamela_no_conflict () =
  (* Pamela is only an afp: every path from penguin passes through afp, so
     the penguin tuple is preempted even on-path. *)
  let _, flies = fig1 () in
  let schema = Relation.schema flies in
  let pamela = Item.of_names schema [ "pamela" ] in
  Alcotest.(check bool) "on-path: pamela flies" true
    (Binding.holds ~semantics:Types.On_path flies pamela)

let test_no_preemption_conflicts_everywhere () =
  let _, flies = fig1 () in
  let schema = Relation.schema flies in
  let pamela = Item.of_names schema [ "pamela" ] in
  Alcotest.(check bool) "no-preemption: conflict at pamela" true
    (Fixtures.is_conflict (Binding.verdict ~semantics:Types.No_preemption flies pamela));
  let tweety = Item.of_names schema [ "tweety" ] in
  Alcotest.(check bool) "no-preemption: tweety still fine" true
    (Binding.holds ~semantics:Types.No_preemption flies tweety);
  let peter = Item.of_names schema [ "peter" ] in
  Alcotest.(check bool) "exact tuple still wins" true
    (Binding.holds ~semantics:Types.No_preemption flies peter)

let test_on_path_multi_attribute () =
  (* Two attributes: the product item hierarchy has multiple paths from a
     general tuple to the query item; on-path preemption must explore them
     coordinatewise. Setup mirrors Fig 1 in the role coordinate:
     role: staff > eng > senior_eng, with kim under senior_eng AND under
     contractor (a second parent of staff); area: one instance.
     Tuples: +(staff, a), -(eng, a), +(senior_eng, a).
     Off-path at (kim, a): senior_eng binds -> +.
     On-path: the -(eng, a) tuple reaches (kim, a) through the contractor
     side? No — contractor is not under eng — so every path from eng
     passes through senior_eng: still +. But a path from +(staff, a) via
     contractor avoids both others, so staff also binds on-path ->
     conflict between +staff and -eng?? staff is +, senior_eng is +, eng
     is -: binders on-path = {staff+, senior_eng+} minus preempted...
     eng's only route runs through senior_eng, so eng IS preempted:
     verdict +. *)
  let hr = Hierarchy.create "role" in
  ignore (Hierarchy.add_class hr "staff");
  ignore (Hierarchy.add_class hr ~parents:[ "staff" ] "eng");
  ignore (Hierarchy.add_class hr ~parents:[ "eng" ] "senior_eng");
  ignore (Hierarchy.add_class hr ~parents:[ "staff" ] "contractor");
  ignore (Hierarchy.add_instance hr ~parents:[ "senior_eng"; "contractor" ] "kim");
  let ha = Hierarchy.create "area" in
  ignore (Hierarchy.add_instance ha "a");
  let schema = Schema.make [ ("role", hr); ("area", ha) ] in
  let rel =
    Relation.of_tuples ~name:"r" schema
      [
        (Types.Pos, [ "staff"; "a" ]);
        (Types.Neg, [ "eng"; "a" ]);
        (Types.Pos, [ "senior_eng"; "a" ]);
      ]
  in
  let kim = Item.of_names schema [ "kim"; "a" ] in
  Alcotest.(check bool) "off-path: +" true (Binding.holds ~semantics:Types.Off_path rel kim);
  (* on-path: -(eng, a) is preempted (every path runs through senior_eng),
     +(staff, a) survives via the contractor path, +(senior_eng, a)
     survives — all surviving binders positive *)
  Alcotest.(check bool) "on-path: + (eng preempted, staff survives)" true
    (Binding.holds ~semantics:Types.On_path rel kim);
  (* flip the chain: now the negation sits at senior_eng *)
  let rel2 =
    Relation.of_tuples ~name:"r2" schema
      [
        (Types.Neg, [ "staff"; "a" ]);
        (Types.Pos, [ "eng"; "a" ]);
        (Types.Neg, [ "senior_eng"; "a" ]);
      ]
  in
  (* on-path: -staff survives via contractor, -senior_eng survives, +eng
     preempted -> uniformly negative *)
  Alcotest.(check bool) "on-path: - in the flipped chain" false
    (Binding.holds ~semantics:Types.On_path rel2 kim)

let test_preference_edge_resolves () =
  (* Appendix: an arbitrary preference edge resolves a conflict between
     incomparable classes. *)
  let he, hc, color = fig4 () in
  let color = Relation.add_named color Types.Pos [ "indian_elephant"; "grey" ] in
  Hierarchy.add_preference he ~weaker:"indian_elephant" ~stronger:"royal_elephant";
  let appu_grey = Item.of_names (Relation.schema color) [ "appu"; "grey" ] in
  Alcotest.(check bool) "preference resolves: royal wins, not grey" false
    (Binding.holds color appu_grey);
  ignore hc

let suite =
  [
    Alcotest.test_case "fig1: instance verdicts" `Quick test_fig1_verdicts;
    Alcotest.test_case "fig1: class items" `Quick test_fig1_class_items;
    Alcotest.test_case "closed world" `Quick test_closed_world;
    Alcotest.test_case "deep exception chains" `Quick test_exception_chain_depth;
    Alcotest.test_case "relevant tuples and justification" `Quick
      test_relevant_and_justification;
    Alcotest.test_case "tuple-binding graph (fig 1d)" `Quick test_binding_graph_shape;
    Alcotest.test_case "fig4: explicit cancellation chain" `Quick test_fig4_verdicts;
    Alcotest.test_case "fig4: multiple-inheritance conflict" `Quick
      test_fig4_conflict_when_indian_grey_asserted;
    Alcotest.test_case "appendix: on-path conflict at patricia" `Quick test_on_path_patricia;
    Alcotest.test_case "appendix: on-path pamela preempted" `Quick
      test_on_path_pamela_no_conflict;
    Alcotest.test_case "appendix: no-preemption" `Quick test_no_preemption_conflicts_everywhere;
    Alcotest.test_case "appendix: preference edges" `Quick test_preference_edge_resolves;
    Alcotest.test_case "on-path over product items" `Quick test_on_path_multi_attribute;
  ]
