(* Property tests for the three-valued extension: agreement with the
   two-valued model on its fragment, and modal coherence. *)

module Tv = Hr_threeval.Threeval
module Workload = Hr_workload.Workload
module Prng = Hr_util.Prng
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let setup seed =
  let g = Prng.create (Int64.of_int seed) in
  let h =
    Workload.random_hierarchy g
      {
        Workload.name = Printf.sprintf "tv%d" seed;
        classes = 8;
        instances = 12;
        multi_parent_prob = 0.25;
      }
  in
  let schema = Schema.make [ ("v", h) ] in
  let rel =
    Workload.consistent_random_relation g schema
      { Workload.default_relation_spec with tuples = 8 }
  in
  (h, schema, rel)

let seed_gen = QCheck2.Gen.int_range 1 100_000

(* On relations imported from the two-valued model, three-valued truth
   refines the closed-world verdict: True where it held, never False
   where it held, and False only where the two-valued model denied or
   left unsaid. *)
let prop_import_refines =
  QCheck2.Test.make ~name:"threeval import refines two-valued verdicts" ~count:40 seed_gen
    (fun seed ->
      let h, schema, rel = setup seed in
      let tv = Tv.of_relation rel in
      List.for_all
        (fun inst ->
          let item = Item.make schema [| inst |] in
          let two = Binding.holds rel item in
          match Tv.truth tv item with
          | Tv.True -> two
          | Tv.False -> not two
          | Tv.Unknown -> not two (* closed world mapped unknowns to false *)
          | exception Tv.Conflict _ -> false)
        (Hierarchy.instances h))

let prop_modalities_coherent =
  QCheck2.Test.make ~name:"certain implies possible" ~count:40 seed_gen (fun seed ->
      let h, schema, rel = setup seed in
      let tv = Tv.of_relation rel in
      List.for_all
        (fun inst ->
          let item = Item.make schema [| inst |] in
          match Tv.certain tv item, Tv.possible tv item with
          | true, p -> p
          | false, _ -> true
          | exception Tv.Conflict _ -> true)
        (Hierarchy.instances h))

let prop_roundtrip_closed_world =
  QCheck2.Test.make ~name:"of_relation/to_relation round trip" ~count:40 seed_gen
    (fun seed ->
      let _, _, rel = setup seed in
      Relation.equal rel (Tv.to_relation (Tv.of_relation rel)))

let prop_exists_monotone =
  QCheck2.Test.make ~name:"exists_status is monotone up the hierarchy" ~count:40 seed_gen
    (fun seed ->
      let h, schema, rel = setup seed in
      let tv = Tv.of_relation rel in
      let rank = function `Certain -> 2 | `Possible -> 1 | `Impossible -> 0 in
      (* a class's status is at least as strong as any child's *)
      List.for_all
        (fun cls ->
          let here = rank (Tv.exists_status tv (Item.make schema [| cls |])) in
          List.for_all
            (fun child ->
              rank (Tv.exists_status tv (Item.make schema [| child |])) <= here)
            (Hierarchy.children h cls))
        (Hierarchy.classes h))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_import_refines;
      prop_modalities_coherent;
      prop_roundtrip_closed_world;
      prop_exists_monotone;
    ]
