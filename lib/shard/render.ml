module Ast = Hr_query.Ast
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let value = function Ast.All s -> "ALL " ^ s | Ast.Atom s -> s
let values vs = String.concat ", " (List.map value vs)

let sign = function Types.Pos -> "+" | Types.Neg -> "-"

let signed_row (s, vs) = Printf.sprintf "(%s %s)" (sign s) (values vs)

let insert rel rows =
  if rows = [] then invalid_arg "Render.insert: empty row list";
  Printf.sprintf "INSERT INTO %s VALUES %s;" rel
    (String.concat ", " (List.map signed_row rows))

let delete rel rows =
  if rows = [] then invalid_arg "Render.delete: empty row list";
  Printf.sprintf "DELETE FROM %s VALUES %s;" rel
    (String.concat ", " (List.map (fun vs -> "(" ^ values vs ^ ")") rows))

let statement = function
  | Ast.Create_domain name -> Printf.sprintf "CREATE DOMAIN %s;" name
  | Ast.Create_class { name; parents } ->
    Printf.sprintf "CREATE CLASS %s UNDER %s;" name (String.concat ", " parents)
  | Ast.Create_instance { name; parents } ->
    Printf.sprintf "CREATE INSTANCE %s OF %s;" name (String.concat ", " parents)
  | Ast.Create_isa { sub; super } ->
    Printf.sprintf "CREATE ISA %s UNDER %s;" sub super
  | Ast.Create_preference { weaker; stronger } ->
    Printf.sprintf "CREATE PREFERENCE %s OVER %s;" stronger weaker
  | Ast.Create_relation { name; attrs } ->
    Printf.sprintf "CREATE RELATION %s (%s);" name
      (String.concat ", " (List.map (fun (a, d) -> a ^ ": " ^ d) attrs))
  | Ast.Drop_relation name -> Printf.sprintf "DROP RELATION %s;" name
  | Ast.Insert { rel; rows } ->
    insert rel (List.map (fun { Ast.sign; values } -> (sign, values)) rows)
  | Ast.Delete { rel; rows } -> delete rel rows
  | _ -> invalid_arg "Render.statement: not a forwardable statement"

(* A stored coordinate back to surface syntax: classes carry the
   universal marker so the shard's resolver treats them identically. *)
let coord_value h node =
  let name = Hierarchy.node_label h node in
  if Hierarchy.is_class h node then Ast.All name else Ast.Atom name

let rebuild rel ~present ~only =
  let schema = Relation.schema rel in
  let name = Relation.name rel in
  let b = Buffer.create 256 in
  if present then Buffer.add_string b (Printf.sprintf "DROP RELATION %s; " name);
  Buffer.add_string b
    (Printf.sprintf "CREATE RELATION %s (%s);" name
       (String.concat ", "
          (List.map
             (fun (a : Schema.attr) ->
               Printf.sprintf "%s: %s" (Hr_util.Symbol.name a.Schema.name)
                 (Hr_util.Symbol.name (Hierarchy.domain a.Schema.hierarchy)))
             (Array.to_list (Schema.attrs schema)))));
  let rows =
    List.filter_map
      (fun (t : Relation.tuple) ->
        if not (only t) then None
        else
          Some
            ( t.Relation.sign,
              List.init (Schema.arity schema) (fun i ->
                  coord_value (Schema.hierarchy schema i)
                    (Item.coord t.Relation.item i)) ))
      (Relation.tuples rel)
  in
  if rows <> [] then Buffer.add_string b (" " ^ insert name rows);
  Buffer.contents b
