module Wire = Hr_frames.Wire
module Shard_map = Hr_check.Shard_map
module Client = Hr_server.Server.Client
module Hierarchy = Hr_hierarchy.Hierarchy
module Ast = Hr_query.Ast
module Parser = Hr_query.Parser
module Lexer = Hr_query.Lexer
module Eval = Hr_query.Eval
module Optimizer = Hr_query.Optimizer
module Loc = Hr_query.Loc
module Metrics = Hr_obs.Metrics
open Hierel

(* Router metrics (docs/OBSERVABILITY.md). [shard.<id>.lsn] gauges are
   registered per shard in [create]. *)
let m_frames = Metrics.counter "shard.frames_routed"
let m_mutations = Metrics.counter "shard.mutations_routed"
let m_broadcasts = Metrics.counter "shard.broadcasts"
let m_pulls = Metrics.counter "shard.pulls"
let m_merged = Metrics.counter "shard.merged_tuples"
let m_dedup = Metrics.counter "shard.dedup_dropped"
let m_errors = Metrics.counter "shard.errors"
let m_reconnects = Metrics.counter "shard.reconnects"
let g_dead = Metrics.gauge "shard.dead"
let h_fanout = Metrics.histogram "shard.fanout"
let h_gather = Metrics.histogram "shard.gather_ns"

type shard = {
  sid : int;
  shost : string;
  sport : int;
  mutable conn : Client.conn option;  (* [None] = down *)
  mutable lsn : int;  (* head LSN from the last reply *)
  mutable last_attempt : int;  (* now_ns of the last failed dial *)
  g_lsn : Metrics.gauge;
}

type client = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  mutable outbuf : string;  (* reply bytes the kernel has not taken *)
  mutable closing : bool;
}

type t = {
  socket : Unix.file_descr;
  bound_port : int;
  map : Shard_map.t;
  shards : shard list;  (* ascending sid *)
  timeout : float;
  max_backlog : int;
  (* DDL only: every hierarchy, every relation schema, no tuples. DDL
     replays here in the same order as on every shard, so node ids (and
     hence the wire tuple encoding) agree across the deployment. Query
     evaluation temporarily materializes gathered extensions into it. *)
  cat : Catalog.t;
  mutable clients : client list;
}

(* Infrastructure failure talking to a shard (vs [Reply_err]: the shard
   answered, with an evaluator error). *)
exception Shard_down of shard * string
exception Reply_err of string

let down_msg sc msg =
  Printf.sprintf "shard %d (%s:%d) unreachable: %s" sc.sid sc.shost sc.sport msg

let exn_msg = function
  | Failure m -> m
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | Wire.Disconnected -> "disconnected"
  | e -> Printexc.to_string e

let dead_count t = List.length (List.filter (fun s -> s.conn = None) t.shards)

let mark_down t sc msg =
  (match sc.conn with
  | Some c -> Client.close c
  | None -> ());
  sc.conn <- None;
  sc.last_attempt <- Metrics.now_ns ();
  Metrics.set g_dead (dead_count t);
  Metrics.incr m_errors;
  raise (Shard_down (sc, msg))

(* Dial throttle: a dead shard is retried at most once a second so a
   write storm against a down subtree does not spend every statement's
   latency budget on connect timeouts. *)
let reconnect_throttle_ns = 1_000_000_000

let ensure_conn t sc =
  match sc.conn with
  | Some c -> c
  | None ->
    if Metrics.now_ns () - sc.last_attempt < reconnect_throttle_ns then
      raise (Shard_down (sc, "down (reconnect throttled)"));
    sc.last_attempt <- Metrics.now_ns ();
    (match Client.connect ~host:sc.shost ~timeout:t.timeout ~port:sc.sport () with
    | conn ->
      sc.conn <- Some conn;
      Metrics.incr m_reconnects;
      Metrics.set g_dead (dead_count t);
      conn
    | exception e -> raise (Shard_down (sc, exn_msg e)))

let shard_send t sc tag payload =
  let c = ensure_conn t sc in
  try Client.send c tag payload with e -> mark_down t sc (exn_msg e)

(* One reply off a shard connection, in FIFO order with its requests.
   [expected]-tagged replies carry an LSN prefix (tracked per shard);
   [ERR] raises {!Reply_err}; anything else is a protocol violation and
   the shard is dropped. *)
let shard_recv t sc ~expected =
  (* [None] can happen mid-round: an earlier pipelined reply marked the
     shard down while this statement's reply was still owed. *)
  let c =
    match sc.conn with
    | Some c -> c
    | None -> raise (Shard_down (sc, "down"))
  in
  match Client.recv_any c with
  | Error msg -> mark_down t sc msg
  | Ok ("ERR", payload) -> raise (Reply_err payload)
  | Ok (tag, payload) when tag = expected -> (
    match Wire.parse_lsn_prefixed payload with
    | Error msg -> mark_down t sc msg
    | Ok (lsn, body) ->
      sc.lsn <- max sc.lsn lsn;
      Metrics.set sc.g_lsn sc.lsn;
      body)
  | Ok (tag, _) -> mark_down t sc (Printf.sprintf "protocol error: unexpected %S" tag)

let shard_of t sid =
  match List.find_opt (fun s -> s.sid = sid) t.shards with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Router: unknown shard %d" sid)

(* Mutations that touch several shards (DDL broadcast, replicated rows,
   repartitions) refuse to start unless every target is reachable —
   beginning a multi-shard write that can only half-apply is how
   divergence is born. (A crash mid-broadcast can still diverge; that
   window is what [hrdb fsck --against MAP] exists for.) *)
let require_up t sids =
  List.iter (fun sid -> ignore (ensure_conn t (shard_of t sid))) sids

(* ---- shard evaluator errors ------------------------------------------ *)

(* A shard runs the re-rendered statement at line 1 of its own tiny
   script, so its error location is meaningless to the client. Strip it;
   the statement loop re-wraps with the original statement's span,
   making the error byte-identical to a single-node server's. *)
let strip_located msg =
  try
    Scanf.sscanf msg "at line %d, column %d: %n" (fun _ _ n ->
        String.sub msg n (String.length msg - n))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> msg

(* ---- scatter-gather reads -------------------------------------------- *)

let first_coord item = Item.coord item 0

let cover_of_row t schema values =
  let h = Schema.hierarchy schema 0 in
  Shard_map.cover t.map h (first_coord (Eval.resolve_values schema values))

(* Relation names a statement's evaluation can touch, filtered to names
   the catalog knows — unknown names are left for the local evaluator,
   whose error text then matches a single node's byte for byte. *)
let mentioned_relations t stmt =
  let names = ref [] in
  let add n = if not (List.mem n !names) then names := n :: !names in
  let rec expr e =
    match e.Ast.expr with
    | Ast.Rel n -> add n
    | Ast.Select (e, _, _)
    | Ast.Project (e, _)
    | Ast.Rename (e, _, _)
    | Ast.Consolidated e
    | Ast.Explicated (e, _) -> expr e
    | Ast.Join (a, b) | Ast.Union (a, b) | Ast.Intersect (a, b) | Ast.Except (a, b)
      ->
      expr a;
      expr b
  in
  (match stmt with
  | Ast.Select_query { expr = e; _ }
  | Ast.Let_binding { expr = e; _ }
  | Ast.Explain_plan e | Ast.Explain_analyze e | Ast.Explain_estimate e ->
    expr e
  | Ast.Count { expr = e; _ } -> expr e
  | Ast.Diff { prev; next } ->
    expr prev;
    expr next
  | Ast.Ask { rel; _ }
  | Ast.Check rel
  | Ast.Explain { rel; _ }
  | Ast.Consolidate rel
  | Ast.Explicate { rel; _ } -> add rel
  | Ast.Show_relations ->
    List.iter (fun r -> add (Relation.name r)) (Catalog.relations t.cat)
  | _ -> ());
  List.filter (fun n -> Catalog.find_relation t.cat n <> None) (List.rev !names)

(* Which shards a relation must be pulled from for this statement.
   Default: all of them. Two provably sufficient restrictions: a
   top-level point query whose optimized plan is a selection on the
   scanned relation's first attribute, and ASK/EXPLAIN on a specific
   item — in both, every tuple that can influence the answer has a
   first coordinate intersecting the probed node, and the cover rule
   guarantees all such tuples live on the node's cover. *)
let read_scope t stmt name =
  let all = Shard_map.ids t.map in
  let cover_of_value v =
    match Catalog.find_relation t.cat name with
    | None -> all
    | Some rel -> (
      let schema = Relation.schema rel in
      let h = Schema.hierarchy schema 0 in
      match Hierarchy.find h (Ast.value_name v) with
      | Some n -> Shard_map.cover t.map h n
      | None -> all)
  in
  let first_attr () =
    match Catalog.find_relation t.cat name with
    | None -> None
    | Some rel ->
      Some (Hr_util.Symbol.name (Schema.attr (Relation.schema rel) 0).Schema.name)
  in
  match stmt with
  | Ast.Select_query { expr; justified = false } -> (
    match (Optimizer.optimize expr).Ast.expr with
    | Ast.Select ({ Ast.expr = Ast.Rel r; _ }, attr, v)
      when r = name && first_attr () = Some attr ->
      cover_of_value v
    | _ -> all)
  | (Ast.Ask { rel; values = v :: _; _ } | Ast.Explain { rel; values = v :: _ })
    when rel = name ->
    cover_of_value v
  | _ -> all

(* Decoded tuple lines from one shard, merged with exact-identity dedup:
   the same (item, sign) from several shards is one tuple (that is what
   replication means); the same item with opposite signs is divergence
   and poisons the whole read — silently picking a winner would let a
   half-applied write change query results. *)
let merge_part name schema tbl sc body =
  let lines = String.split_on_char '\n' body in
  List.iter
    (fun line ->
      if line <> "" then begin
        let fail () =
          raise
            (Reply_err
               (Printf.sprintf "shard %d sent a malformed tuple %S for %s" sc.sid
                  line name))
        in
        if String.length line < 3 || String.get line 1 <> ' ' then fail ();
        let sign =
          match String.get line 0 with
          | '+' -> Types.Pos
          | '-' -> Types.Neg
          | _ -> fail ()
        in
        let coords =
          String.sub line 2 (String.length line - 2)
          |> String.split_on_char ','
          |> List.map (fun s ->
                 match int_of_string_opt s with Some n -> n | None -> fail ())
          |> Array.of_list
        in
        let item =
          try Item.make schema coords
          with _ ->
            raise
              (Reply_err
                 (Printf.sprintf
                    "shard %d sent tuple %S outside %s's schema (cross-shard \
                     divergence; run hrdb fsck --against the shard map)"
                    sc.sid line name))
        in
        match Hashtbl.find_opt tbl item with
        | None ->
          Hashtbl.add tbl item sign;
          Metrics.incr m_merged
        | Some s when s = sign -> Metrics.incr m_dedup
        | Some _ ->
          raise
            (Reply_err
               (Printf.sprintf
                  "cross-shard divergence on %s: shard %d disagrees on the sign \
                   of %s (run hrdb fsck --against the shard map)"
                  name sc.sid
                  (Item.to_string schema item)))
      end)
    lines

type gather_info = { gi_name : string; gi_sid : int; gi_tuples : int; gi_lsn : int }

(* Pull [names] (each from its scope's shards), pipelined: all PULL
   frames go out before any reply is read, in a fixed order both sides
   share, so each shard connection's FIFO stays aligned. The merged
   extensions replace the local catalog's empty relations for the
   duration of one statement. *)
let gather t scoped =
  let t0 = Metrics.now_ns () in
  List.iter
    (fun (name, sids) ->
      List.iter
        (fun sid ->
          shard_send t (shard_of t sid) Wire.shard_pull name;
          Metrics.incr m_pulls)
        sids)
    scoped;
  let infos = ref [] in
  List.iter
    (fun (name, sids) ->
      let schema = Relation.schema (Catalog.relation t.cat name) in
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun sid ->
          let sc = shard_of t sid in
          let body =
            try shard_recv t sc ~expected:Wire.shard_part
            with Reply_err msg ->
              raise
                (Reply_err
                   (Printf.sprintf
                      "shard %d (%s:%d) cannot serve %s: %s (cross-shard \
                       divergence; run hrdb fsck --against the shard map)"
                      sc.sid sc.shost sc.sport name (strip_located msg)))
          in
          let before = Hashtbl.length tbl in
          merge_part name schema tbl sc body;
          infos :=
            { gi_name = name; gi_sid = sid; gi_tuples = Hashtbl.length tbl - before;
              gi_lsn = sc.lsn }
            :: !infos)
        sids;
      let rel =
        Hashtbl.fold (fun item sign r -> Relation.set r item sign) tbl
          (Relation.empty ~name schema)
      in
      Catalog.replace_relation t.cat rel;
      Metrics.observe h_fanout (List.length sids))
    scoped;
  Metrics.observe h_gather (Metrics.now_ns () - t0);
  List.rev !infos

(* After evaluating, gathered extensions are dropped again: the router's
   catalog stays schema-only between statements. *)
let reset_relations t names =
  List.iter
    (fun name ->
      match Catalog.find_relation t.cat name with
      | None -> ()
      | Some rel ->
        Catalog.replace_relation t.cat
          (Relation.empty ~name (Relation.schema rel)))
    names

let per_shard_section t infos =
  let b = Buffer.create 128 in
  Buffer.add_string b "per-shard breakdown:";
  List.iter
    (fun gi ->
      let sc = shard_of t gi.gi_sid in
      Buffer.add_string b
        (Printf.sprintf "\n  shard %d (%s:%d) lsn=%d: %s %d tuple(s)" gi.gi_sid
           sc.shost sc.sport gi.gi_lsn gi.gi_name gi.gi_tuples))
    infos;
  Buffer.contents b

(* ---- mutations -------------------------------------------------------- *)

(* Scatter one row-mutation statement: rows grouped by their covers,
   one re-rendered sub-statement per covered shard, all sends before
   any reply. The synthesized reply quotes the original row count, so
   the client cannot tell it from a single node's. *)
let scatter_mutation t ~rel ~covers ~render ~reply_fmt ~compensate =
  let sids =
    List.sort_uniq compare (List.concat_map (fun (_, cover) -> cover) covers)
  in
  require_up t sids;
  let sub_rows sid = List.filter (fun (_, cover) -> List.mem sid cover) covers in
  List.iter
    (fun sid ->
      shard_send t (shard_of t sid) Wire.shard_exec
        (render (List.map fst (sub_rows sid))))
    sids;
  Metrics.incr m_mutations;
  Metrics.observe h_fanout (List.length sids);
  let results =
    List.map
      (fun sid ->
        let sc = shard_of t sid in
        match shard_recv t sc ~expected:Wire.shard_ack with
        | (_ : string) -> (sid, Ok ())
        | exception Reply_err msg -> (sid, Error msg))
      sids
  in
  match List.find_opt (fun (_, r) -> r <> Ok ()) results with
  | None -> Ok (Printf.sprintf reply_fmt (List.length covers) rel)
  | Some (_, Ok ()) -> assert false
  | Some (_, Error msg) ->
    (* Roll the shards that did apply back (best effort — a shard that
       dies mid-compensation leaves divergence for fsck to find). Only
       meaningful for inserts; deletes fail identically everywhere or
       expose pre-existing divergence. *)
    List.iter
      (fun (sid, r) ->
        if r = Ok () then
          match compensate with
          | None -> ()
          | Some script_of -> (
            let rows = List.map fst (sub_rows sid) in
            try
              shard_send t (shard_of t sid) Wire.shard_exec (script_of rows);
              ignore (shard_recv t (shard_of t sid) ~expected:Wire.shard_ack)
            with Reply_err _ | Shard_down _ -> ()))
      results;
    Error (strip_located msg)

(* ---- broadcast / repartition ----------------------------------------- *)

let broadcast t script =
  let sids = Shard_map.ids t.map in
  require_up t sids;
  List.iter (fun sid -> shard_send t (shard_of t sid) Wire.shard_exec script) sids;
  Metrics.incr m_broadcasts;
  List.iter
    (fun sid ->
      let sc = shard_of t sid in
      try ignore (shard_recv t sc ~expected:Wire.shard_ack)
      with Reply_err msg ->
        raise
          (Reply_err
             (Printf.sprintf
                "shard %d rejected a replicated statement (%s); the deployment \
                 has diverged — run hrdb fsck --against the shard map"
                sc.sid (strip_located msg))))
    sids

(* Push a router-computed relation ([LET] / [CONSOLIDATE] / [EXPLICATE]
   result) back out: every shard rebuilds its slice from scratch. The
   slice is chosen by the same cover rule as routed inserts, so the
   placement invariant fsck checks holds for derived relations too. *)
let repartition t rel ~present =
  let schema = Relation.schema rel in
  let h = Schema.hierarchy schema 0 in
  let sids = Shard_map.ids t.map in
  require_up t sids;
  List.iter
    (fun sid ->
      let only (tu : Relation.tuple) =
        List.mem sid (Shard_map.cover t.map h (first_coord tu.Relation.item))
      in
      shard_send t (shard_of t sid) Wire.shard_exec
        (Render.rebuild rel ~present ~only))
    sids;
  Metrics.incr m_broadcasts;
  List.iter
    (fun sid ->
      let sc = shard_of t sid in
      try ignore (shard_recv t sc ~expected:Wire.shard_ack)
      with Reply_err msg ->
        raise
          (Reply_err
             (Printf.sprintf "rebuild of %s failed on shard %d: %s"
                (Relation.name rel) sc.sid (strip_located msg))))
    sids

(* ---- statement dispatch ----------------------------------------------- *)

let exec_stmt t stmt =
  match stmt with
  | Ast.Create_domain _ | Ast.Create_class _ | Ast.Create_instance _
  | Ast.Create_isa _ | Ast.Create_preference _ | Ast.Create_relation _
  | Ast.Drop_relation _ -> (
    (* Local first: a statement the router's own evaluator rejects is
       answered with the evaluator's error and never broadcast. *)
    require_up t (Shard_map.ids t.map);
    match Eval.exec t.cat stmt with
    | Error _ as e -> e
    | Ok out ->
      broadcast t (Render.statement stmt);
      Ok out)
  | Ast.Insert { rel; rows } ->
    let schema = Relation.schema (Catalog.relation t.cat rel) in
    let covers =
      List.map (fun (r : Ast.signed_row) -> (r, cover_of_row t schema r.Ast.values)) rows
    in
    scatter_mutation t ~rel ~covers
      ~render:(fun rows ->
        Render.insert rel
          (List.map (fun (r : Ast.signed_row) -> (r.Ast.sign, r.Ast.values)) rows))
      ~reply_fmt:(format_of_string "%d tuple(s) inserted into %s")
      ~compensate:
        (Some (fun rows -> Render.delete rel (List.map (fun (r : Ast.signed_row) -> r.Ast.values) rows)))
  | Ast.Delete { rel; rows } ->
    let schema = Relation.schema (Catalog.relation t.cat rel) in
    let covers = List.map (fun values -> (values, cover_of_row t schema values)) rows in
    scatter_mutation t ~rel ~covers
      ~render:(fun rows -> Render.delete rel rows)
      ~reply_fmt:(format_of_string "%d tuple(s) deleted from %s")
      ~compensate:None
  | Ast.Let_binding { name; expr = _ } -> (
    let srcs = mentioned_relations t stmt in
    let present = Catalog.find_relation t.cat name <> None in
    require_up t (Shard_map.ids t.map);
    ignore (gather t (List.map (fun n -> (n, Shard_map.ids t.map)) srcs));
    match Eval.exec t.cat stmt with
    | Error _ as e ->
      reset_relations t srcs;
      e
    | Ok out ->
      let rel = Catalog.relation t.cat name in
      repartition t rel ~present;
      reset_relations t (name :: srcs);
      Ok out)
  | Ast.Consolidate rel_name | Ast.Explicate { rel = rel_name; _ } -> (
    let srcs = mentioned_relations t stmt in
    require_up t (Shard_map.ids t.map);
    ignore (gather t (List.map (fun n -> (n, Shard_map.ids t.map)) srcs));
    match Eval.exec t.cat stmt with
    | Error _ as e ->
      reset_relations t srcs;
      e
    | Ok out ->
      let rel = Catalog.relation t.cat rel_name in
      repartition t rel ~present:true;
      reset_relations t srcs;
      Ok out)
  | Ast.Select_query _ | Ast.Ask _ | Ast.Check _ | Ast.Count _ | Ast.Diff _
  | Ast.Explain _ | Ast.Explain_plan _ | Ast.Explain_analyze _
  | Ast.Explain_estimate _ | Ast.Show_relations -> (
    let names = mentioned_relations t stmt in
    let scoped = List.map (fun n -> (n, read_scope t stmt n)) names in
    let infos = gather t scoped in
    let r = Eval.exec t.cat stmt in
    reset_relations t names;
    match (stmt, r) with
    | Ast.Explain_analyze _, Ok out when infos <> [] ->
      Ok (out ^ "\n" ^ per_shard_section t infos)
    | _ -> r)
  (* EXPLAIN EFFECTS resolves cones against the router's own catalog —
     the router owns the DAG and every relation schema (DDL is
     broadcast), which is all a footprint needs. *)
  | Ast.Show_hierarchy _ | Ast.Show_hierarchies | Ast.Stats _ | Ast.Stats_reset
  | Ast.Explain_effects _ ->
    Eval.exec t.cat stmt

let exec_located t { Ast.stmt; sloc } =
  let r =
    try exec_stmt t stmt with
    | Types.Model_error msg | Hierarchy.Error msg | Failure msg -> Error msg
    | Shard_down (sc, msg) -> Error (down_msg sc msg)
    | Reply_err msg -> Error (strip_located msg)
  in
  match r with
  | Ok _ as ok -> ok
  | Error msg -> Error (Format.asprintf "at %a: %s" Loc.pp_prose sloc msg)

let exec_script t payload =
  match Parser.parse payload with
  | exception Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
  | exception Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
  | stmts ->
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | lstmt :: rest -> (
        match exec_located t lstmt with
        | Ok out -> loop (out :: acc) rest
        | Error _ as e -> e)
    in
    loop [] stmts

(* ---- the fast path ---------------------------------------------------- *)

(* A script that is exactly one INSERT or DELETE over connected shards
   can be pipelined: its SHARD_EXEC frames go out before any earlier
   statement's reply is awaited. [Single] (every row covers the same
   one shard) needs no further proof — per-shard FIFO preserves arrival
   order. [Scatter] (rows covering several shards) additionally carries
   per-shard sub-statements and compensation scripts; whether it may
   join the pipelined run is decided by the commutativity oracle at
   admission time (see {!poll}). Everything else falls back to the
   synchronous path. *)
type pipelined =
  | Single of int * string  (* covering shard, rendered statement *)
  | Scatter of (int * string * string option) list * string
      (* per covered shard: sub-statement + the script compensating it
         (inserts only); plus the synthesized success reply *)

let classify_pipelined t payload =
  let plan rel covers ~render ~compensate ~reply_fmt =
    let sids =
      List.sort_uniq compare (List.concat_map (fun (_, cover) -> cover) covers)
    in
    if
      sids = []
      || not (List.for_all (fun sid -> (shard_of t sid).conn <> None) sids)
    then None
    else
      match sids with
      | [ sid ] -> Some (Single (sid, render (List.map fst covers)))
      | _ ->
        let parts =
          List.map
            (fun sid ->
              let rows =
                List.filter_map
                  (fun (r, cover) -> if List.mem sid cover then Some r else None)
                  covers
              in
              (sid, render rows, compensate rows))
            sids
        in
        Some (Scatter (parts, Printf.sprintf reply_fmt (List.length covers) rel))
  in
  let footprint stmt =
    try Hr_analysis.Effect.footprint ~find:(Catalog.find_relation t.cat) stmt
    with _ -> Hr_analysis.Footprint.Opaque "footprint analysis failed"
  in
  match Parser.parse payload with
  | exception _ -> None
  | [ { Ast.stmt = Ast.Insert { rel; rows } as stmt; sloc } ] -> (
    match
      let schema = Relation.schema (Catalog.relation t.cat rel) in
      plan rel
        (List.map
           (fun (r : Ast.signed_row) -> (r, cover_of_row t schema r.Ast.values))
           rows)
        ~render:(fun rows ->
          Render.insert rel
            (List.map (fun (r : Ast.signed_row) -> (r.Ast.sign, r.Ast.values)) rows))
        ~compensate:(fun rows ->
          Some
            (Render.delete rel
               (List.map (fun (r : Ast.signed_row) -> r.Ast.values) rows)))
        ~reply_fmt:(format_of_string "%d tuple(s) inserted into %s")
    with
    | Some cls -> Some (sloc, footprint stmt, cls)
    | None | (exception _) -> None)
  | [ { Ast.stmt = Ast.Delete { rel; rows } as stmt; sloc } ] -> (
    match
      let schema = Relation.schema (Catalog.relation t.cat rel) in
      plan rel
        (List.map (fun values -> (values, cover_of_row t schema values)) rows)
        ~render:(fun rows -> Render.delete rel rows)
        ~compensate:(fun _ -> None)
        ~reply_fmt:(format_of_string "%d tuple(s) deleted from %s")
    with
    | Some cls -> Some (sloc, footprint stmt, cls)
    | None | (exception _) -> None)
  | _ -> None

(* ---- client connections ----------------------------------------------- *)

let drain_client c =
  let rec push () =
    if c.outbuf <> "" then
      match
        Unix.write_substring c.fd c.outbuf 0 (String.length c.outbuf)
      with
      | 0 -> ()
      | n ->
        c.outbuf <- String.sub c.outbuf n (String.length c.outbuf - n);
        push ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
  in
  (try push () with Unix.Unix_error _ -> c.closing <- true)

let reply t c tag payload =
  c.outbuf <- c.outbuf ^ Wire.frame tag payload;
  drain_client c;
  if String.length c.outbuf > t.max_backlog then c.closing <- true

(* ---- frame handling (synchronous path) -------------------------------- *)

let explain_estimate t payload =
  match Parser.parse_statement ("EXPLAIN ESTIMATE " ^ payload) with
  | exception Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
  | exception Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
  | { Ast.stmt = Ast.Explain_estimate _ as stmt; sloc } -> (
    match exec_located t { Ast.stmt; sloc } with
    | Ok out -> Ok out
    | Error msg -> Error (strip_located msg))
  | _ -> Error "ESTIMATE expects a single query expression"

let handle_frame t c tag payload =
  match tag with
  | "EXEC" -> (
    match exec_script t payload with
    | Ok outputs -> reply t c "OK" (String.concat "\n" outputs)
    | Error msg ->
      Metrics.incr m_errors;
      reply t c "ERR" msg)
  | "LINT" ->
    reply t c "OK"
      (Hr_analysis.Diagnostic.render_json
         (Hr_analysis.Lint.analyze_script ~catalog:t.cat payload))
  | "ESTIMATE" -> (
    match explain_estimate t payload with
    | Ok out -> reply t c "OK" out
    | Error msg ->
      Metrics.incr m_errors;
      reply t c "ERR" msg)
  | "STATS" ->
    let snap = Metrics.snapshot () in
    reply t c "OK"
      (if String.lowercase_ascii (String.trim payload) = "json" then
         Metrics.render_json snap
       else Metrics.render_text snap)
  | "FSCK" ->
    Metrics.incr m_errors;
    reply t c "ERR"
      "the router stores no tuples; run hrdb fsck DIR --against the shard map \
       against each shard's directory offline"
  | _ ->
    Metrics.incr m_errors;
    reply t c "ERR" (Printf.sprintf "unknown request %S" tag)

(* ---- event loop ------------------------------------------------------- *)

type pending =
  | Fast of client * shard * Loc.t
  | Multi of {
      mc : client;
      msloc : Loc.t;
      mparts : (shard * string option) list;
          (* shards the statement actually reached, in send order, each
             with the script compensating it (inserts only) *)
      mok : string;  (* synthesized success reply *)
      mfail : string option;
          (* a send failed partway: the statement is already doomed and
             every shard that acks it must be compensated *)
    }
  | Sync of client * string * string
  | Fail of client * string

let accept_all t =
  let rec loop () =
    match Unix.accept t.socket with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.clients <-
        t.clients
        @ [ { fd; dec = Wire.Decoder.create (); outbuf = ""; closing = false } ];
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let read_input c buf =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> c.closing <- true
  | n -> Wire.Decoder.feed c.dec buf n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ -> c.closing <- true

let poll ?(timeout = 0.05) t =
  let rds = t.socket :: List.map (fun c -> c.fd) t.clients in
  let wrs =
    List.filter_map (fun c -> if c.outbuf <> "" then Some c.fd else None) t.clients
  in
  match Unix.select rds wrs [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, writable, _ ->
    if List.mem t.socket readable then accept_all t;
    let buf = Bytes.create 65536 in
    List.iter
      (fun c -> if List.mem c.fd readable then read_input c buf)
      t.clients;
    (* Phase A: decode every complete frame, in arrival order. The
       leading run of fast-path mutations is dispatched immediately —
       their SHARD_EXEC frames are all in flight before any reply is
       awaited, which is where the K-shard write speedup comes from.
       Single-shard mutations always pipeline (per-shard FIFO preserves
       arrival order); a multi-shard mutation joins the run only when
       the commutativity oracle proves it commutes with {e every}
       statement already in it — then even its rollback (on partial
       failure, deferred past the run) commutes with everything applied
       after it, so compensation stays sound. Once any multi-shard
       member is in, later single-shard candidates must commute with
       the multi-shard members for the same reason. The first frame
       that cannot be admitted ends the run: later frames must not send
       to shards before it does, or the per-shard reply FIFOs would
       interleave. *)
    let pendings = ref [] and fast_ok = ref true in
    (* footprints of every admitted member / of the multi-shard ones *)
    let run_fps = ref [] and multi_fps = ref [] in
    let commutes_all fp fps =
      List.for_all
        (fun fp' ->
          match Hr_analysis.Effect.commutes_fp fp fp' with
          | Hr_analysis.Effect.Commute -> true
          | Hr_analysis.Effect.Conflict _ | Hr_analysis.Effect.Unknown _ -> false)
        fps
    in
    List.iter
      (fun c ->
        let rec drain () =
          match Wire.Decoder.next c.dec with
          | Error _ ->
            c.closing <- true
          | Ok None -> ()
          | Ok (Some (tag, payload)) ->
            Metrics.incr m_frames;
            let p =
              match
                if !fast_ok && tag = "EXEC" then classify_pipelined t payload
                else None
              with
              | Some (sloc, fp, Single (sid, script))
                when commutes_all fp !multi_fps -> (
                let sc = shard_of t sid in
                match shard_send t sc Wire.shard_exec script with
                | () ->
                  Metrics.incr m_mutations;
                  if !multi_fps <> [] then Hr_analysis.Effect.note_router_overlap ();
                  run_fps := fp :: !run_fps;
                  Fast (c, sc, sloc)
                | exception Shard_down (sc, msg) -> Fail (c, down_msg sc msg))
              | Some (sloc, fp, Scatter (parts, mok))
                when commutes_all fp !run_fps ->
                Metrics.incr m_mutations;
                Metrics.observe h_fanout (List.length parts);
                if !run_fps <> [] then Hr_analysis.Effect.note_router_overlap ();
                run_fps := fp :: !run_fps;
                multi_fps := fp :: !multi_fps;
                let sent = ref [] and mfail = ref None in
                (try
                   List.iter
                     (fun (sid, script, comp) ->
                       let sc = shard_of t sid in
                       shard_send t sc Wire.shard_exec script;
                       sent := (sc, comp) :: !sent)
                     parts
                 with Shard_down (sc, msg) -> mfail := Some (down_msg sc msg));
                Multi
                  { mc = c; msloc = sloc; mparts = List.rev !sent; mok;
                    mfail = !mfail }
              | Some _ | None ->
                fast_ok := false;
                Sync (c, tag, payload)
            in
            pendings := p :: !pendings;
            drain ()
        in
        if not c.closing then drain ())
      t.clients;
    (* Phase B: answer in order. Compensations of partially failed
       multi-shard members are deferred until every pipelined reply is
       consumed (running them earlier would desynchronize the per-shard
       FIFOs) but before any synchronous member executes (those were
       not oracle-checked, so they must not observe rolled-back rows).
       All pipelined members precede all synchronous ones in
       [pendings], so flushing at the first [Sync] covers both. *)
    let deferred = ref [] in
    let flush_compensations () =
      List.iter
        (fun (sc, script) ->
          try
            shard_send t sc Wire.shard_exec script;
            ignore (shard_recv t sc ~expected:Wire.shard_ack)
          with Reply_err _ | Shard_down _ -> ())
        (List.rev !deferred);
      deferred := []
    in
    List.iter
      (fun p ->
        match p with
        | Fast (c, sc, sloc) -> (
          match shard_recv t sc ~expected:Wire.shard_ack with
          | body -> reply t c "OK" body
          | exception Reply_err msg ->
            Metrics.incr m_errors;
            reply t c "ERR"
              (Format.asprintf "at %a: %s" Loc.pp_prose sloc (strip_located msg))
          | exception Shard_down (sc, msg) ->
            reply t c "ERR" (down_msg sc msg))
        | Multi { mc = c; msloc; mparts; mok; mfail } -> (
          let results =
            List.map
              (fun (sc, comp) ->
                match shard_recv t sc ~expected:Wire.shard_ack with
                | (_ : string) -> (sc, comp, Ok ())
                | exception Reply_err msg -> (sc, comp, Error (strip_located msg))
                | exception Shard_down (_, msg) -> (sc, comp, Error msg))
              mparts
          in
          let failure =
            match mfail with
            | Some _ as f -> f
            | None ->
              List.find_map
                (fun (_, _, r) ->
                  match r with Error m -> Some m | Ok () -> None)
                results
          in
          match failure with
          | None -> reply t c "OK" mok
          | Some msg ->
            Metrics.incr m_errors;
            List.iter
              (fun (sc, comp, r) ->
                match (r, comp) with
                | Ok (), Some script -> deferred := (sc, script) :: !deferred
                | _ -> ())
              results;
            reply t c "ERR" (Format.asprintf "at %a: %s" Loc.pp_prose msloc msg))
        | Sync (c, tag, payload) ->
          flush_compensations ();
          handle_frame t c tag payload
        | Fail (c, msg) ->
          Metrics.incr m_errors;
          reply t c "ERR" msg)
      (List.rev !pendings);
    flush_compensations ();
    List.iter (fun c -> if List.mem c.fd writable then drain_client c) t.clients;
    List.iter
      (fun c ->
        if c.closing then begin
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          t.clients <- List.filter (fun c' -> c' != c) t.clients
        end)
      t.clients

let serve_forever t =
  let rec loop () =
    poll ~timeout:0.2 t;
    loop ()
  in
  loop ()

(* ---- lifecycle -------------------------------------------------------- *)

let create ?(host = "127.0.0.1") ?(timeout = 5.0)
    ?(max_backlog = Wire.max_frame + (4 * 1024 * 1024)) ~port ~map () =
  (* EXPLAIN ESTIMATE / EXPLAIN EFFECTS statements evaluate through the
     local Eval path; force both registrations the same way the CLI
     does. *)
  Hr_analysis.Estimate.ensure_registered ();
  Hr_analysis.Effect.ensure_registered ();
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen socket 8;
  Unix.set_nonblock socket;
  let bound_port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let shards =
    List.map
      (fun (s : Shard_map.shard) ->
        {
          sid = s.Shard_map.id;
          shost = s.Shard_map.host;
          sport = s.Shard_map.port;
          conn = None;
          lsn = 0;
          last_attempt = min_int / 2;
          g_lsn = Metrics.gauge (Printf.sprintf "shard.%d.lsn" s.Shard_map.id);
        })
      map.Shard_map.shards
  in
  let t =
    {
      socket;
      bound_port;
      map;
      shards;
      timeout;
      max_backlog;
      cat = Catalog.create ();
      clients = [];
    }
  in
  (* Eager dial so the common case starts connected; failures are fine
     here — the lazy reconnect path owns retries. *)
  List.iter
    (fun sc -> try ignore (ensure_conn t sc) with Shard_down _ -> ())
    t.shards;
  Metrics.set g_dead (dead_count t);
  t

let port t = t.bound_port

let close t =
  (try Unix.close t.socket with Unix.Unix_error _ -> ());
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  t.clients <- [];
  List.iter
    (fun sc ->
      match sc.conn with
      | Some c ->
        Client.close c;
        sc.conn <- None
      | None -> ())
    t.shards
