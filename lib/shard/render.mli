(** Rendering HRQL statements back to source text.

    The router parses each incoming script once, decides where every
    statement (or row) belongs, and re-renders exactly the fragment
    each shard must apply. The renderer emits the same surface grammar
    the parser accepts ([lib/query/lexer.mli]), so a rendered statement
    round-trips: shards evaluate it with ordinary {!Hr_query.Eval} and
    produce byte-identical reply strings. *)

val value : Hr_query.Ast.value -> string
(** [ALL name] or the bare name. *)

val statement : Hr_query.Ast.statement -> string
(** One statement as HRQL source, [;]-terminated, on one line. Supports
    exactly the statements a router forwards — DDL
    ([CREATE ...]/[DROP RELATION]) and row mutations
    ([INSERT]/[DELETE]). Raises [Invalid_argument] on anything else
    (queries are never forwarded as text: the router gathers tuples and
    evaluates locally). *)

val insert :
  string -> (Hierel.Types.sign * Hr_query.Ast.value list) list -> string
(** [insert rel rows] is an [INSERT INTO] statement for an explicit row
    subset — the router's partitioned-write and rebuild primitive. The
    row list must be non-empty. *)

val delete : string -> Hr_query.Ast.value list list -> string

val rebuild :
  Hierel.Relation.t -> present:bool ->
  only:(Hierel.Relation.tuple -> bool) -> string
(** [rebuild rel ~present ~only] is the script that reconstructs, on
    one shard, the slice of [rel] selected by [only]: a
    [DROP RELATION] when [present], a [CREATE RELATION] from [rel]'s
    schema, and one [INSERT] with the selected tuples (omitted when the
    slice is empty). Tuples render by node label — classes as
    [ALL name], instances bare — so the shard re-resolves them in its
    own hierarchy. Used after [LET] / [CONSOLIDATE] / [EXPLICATE], whose
    results are computed on the router and repartitioned. *)
