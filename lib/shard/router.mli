(** The shard router: hierarchy-partitioned writes, scatter-gather reads.

    A router is the client-facing front of a sharded deployment
    ([hrdb_server --router --shard-map FILE]). It speaks the ordinary
    client protocol ([EXEC] / [LINT] / [ESTIMATE] / [STATS] frames,
    {!Hr_server.Server}) but stores no tuples itself: it owns the
    hierarchy DAG (every DDL statement applies locally {e and} is
    replicated to all shards, so node ids agree everywhere) and a
    {!Hr_check.Shard_map} assigning each subtree root to a backend
    shard — an ordinary [hrdb_server].

    {b Writes.} Each [INSERT] / [DELETE] row is routed by the cover of
    its first coordinate ({!Hr_check.Shard_map.cover}): exceptions land
    on exactly one shard (the paper's locality argument — an exception
    clusters near its subtree), cross-subtree generalizations (e.g.
    [∀Bird] when [Penguin] and [Sparrow] live on different shards)
    replicate to every covered shard. A script that is one single-shard
    [INSERT]/[DELETE] takes the pipelined fast path: all such scripts
    in one event-loop tick are dispatched to their shards before any
    reply is awaited, so K shards commit concurrently.

    {b Reads.} Every query statement gathers the stored tuples of the
    relations it mentions over [SHARD_PULL] (restricted to the cover of
    the selected subtree when the plan selects on a relation's first
    attribute; all shards otherwise), merges them with exact-identity
    dedup — a replica pair diverging in sign is reported as a
    cross-shard divergence error, never silently resolved — and
    evaluates the statement locally on the merged catalog. The output
    is byte-identical to a single-node server on the same script.
    [EXPLAIN ANALYZE] appends a per-shard breakdown (tuples pulled,
    head LSN per shard). [LET] / [CONSOLIDATE] / [EXPLICATE] gather,
    compute locally, and repartition the result back to the shards.

    {b Failure.} Backend connections are opened with
    [Client.connect ~timeout], so a dead shard can never block the
    router indefinitely: any statement that needs an unreachable shard
    answers [ERR "shard N (host:port) unreachable: ..."] while
    statements confined to live shards keep working (degraded reads).
    DDL and repartitions require every shard up before starting.
    Divergence the failure windows can leave behind is the offline
    verifier's job: [hrdb fsck DIR --against MAP] (codes F020–F024). *)

type t

val create :
  ?host:string ->
  ?timeout:float ->
  ?max_backlog:int ->
  port:int ->
  map:Hr_check.Shard_map.t ->
  unit ->
  t
(** Binds the listening socket ([port = 0] picks an ephemeral port) and
    eagerly dials every shard ([timeout] per attempt, default 5s;
    unreachable shards are retried lazily with a 1s throttle). *)

val port : t -> int

val poll : ?timeout:float -> t -> unit
(** One event-loop tick: accept clients, read frames, dispatch the
    fast-path prefix, then answer every pending frame in arrival
    order. *)

val serve_forever : t -> 'a

val close : t -> unit
