exception Disconnected

let max_frame = 64 * 1024 * 1024

let repl_subscribe = "REPL_SUBSCRIBE"
let repl_snapshot = "REPL_SNAPSHOT"
let repl_record = "REPL_RECORD"
let repl_ack = "REPL_ACK"

(* ---- blocking I/O ----------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec push off =
    if off < len then push (off + Unix.write_substring fd s off (len - off))
  in
  push 0

let send fd tag payload =
  write_all fd (Printf.sprintf "%s %d\n%s" tag (String.length payload) payload)

let read_line_fd fd =
  let buf = Buffer.create 64 in
  let byte = Bytes.make 1 ' ' in
  let rec loop () =
    match Unix.read fd byte 0 1 with
    | 0 -> raise Disconnected
    | _ ->
      let c = Bytes.get byte 0 in
      if c = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        loop ()
      end
  in
  loop ()

let read_exact fd n =
  let data = Bytes.make n '\000' in
  let rec fill off =
    if off < n then begin
      let r = Unix.read fd data off (n - off) in
      if r = 0 then raise Disconnected;
      fill (off + r)
    end
  in
  fill 0;
  Bytes.to_string data

let parse_header header =
  match String.index_opt header ' ' with
  | None -> Error (Printf.sprintf "malformed frame header %S" header)
  | Some i -> (
    let tag = String.sub header 0 i in
    match int_of_string_opt (String.sub header (i + 1) (String.length header - i - 1)) with
    | None -> Error (Printf.sprintf "malformed frame length in %S" header)
    | Some len when len < 0 || len > max_frame ->
      Error (Printf.sprintf "unreasonable frame length %d" len)
    | Some len -> Ok (tag, len))

let recv fd =
  let header = read_line_fd fd in
  match parse_header header with
  | Error _ as e -> e
  | Ok (tag, len) -> Ok (tag, read_exact fd len)

(* ---- incremental decoding -------------------------------------------- *)

module Decoder = struct
  (* Undecoded input accumulates in [buf]; [pos] is the parse cursor.
     Consumed bytes are compacted away whenever the cursor passes 64 KiB
     so a long-lived connection does not grow the buffer forever. *)
  type t = { mutable buf : Buffer.t; mutable pos : int }

  let create () = { buf = Buffer.create 256; pos = 0 }

  let feed t bytes n = Buffer.add_subbytes t.buf bytes 0 n

  let compact t =
    if t.pos > 64 * 1024 then begin
      let rest =
        Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos)
      in
      let buf = Buffer.create (String.length rest + 256) in
      Buffer.add_string buf rest;
      t.buf <- buf;
      t.pos <- 0
    end

  let next t =
    let len = Buffer.length t.buf in
    let contents = Buffer.contents t.buf in
    match String.index_from_opt contents t.pos '\n' with
    | None ->
      if len - t.pos > 4096 then Error "frame header too long"
      else Ok None
    | Some nl -> (
      let header = String.sub contents t.pos (nl - t.pos) in
      match parse_header header with
      | Error _ as e -> e
      | Ok (tag, payload_len) ->
        if len - nl - 1 < payload_len then Ok None
        else begin
          let payload = String.sub contents (nl + 1) payload_len in
          t.pos <- nl + 1 + payload_len;
          compact t;
          Ok (Some (tag, payload))
        end)
end

(* ---- payload helpers -------------------------------------------------- *)

let lsn_payload lsn = string_of_int lsn

let parse_lsn payload =
  match int_of_string_opt (String.trim payload) with
  | Some n when n >= 0 -> Ok n
  | Some _ | None -> Error (Printf.sprintf "malformed LSN payload %S" payload)

let lsn_prefixed lsn rest = Printf.sprintf "%d\n%s" lsn rest

let parse_lsn_prefixed payload =
  match String.index_opt payload '\n' with
  | None -> Error "missing LSN prefix"
  | Some i -> (
    match int_of_string_opt (String.sub payload 0 i) with
    | Some lsn when lsn >= 0 ->
      Ok (lsn, String.sub payload (i + 1) (String.length payload - i - 1))
    | Some _ | None -> Error (Printf.sprintf "malformed LSN prefix in %S" payload))
