exception Disconnected

let max_frame = 64 * 1024 * 1024

let repl_subscribe = "REPL_SUBSCRIBE"
let repl_snapshot = "REPL_SNAPSHOT"
let repl_record = "REPL_RECORD"
let repl_ack = "REPL_ACK"

let shard_pull = "SHARD_PULL"
let shard_part = "SHARD_PART"
let shard_exec = "SHARD_EXEC"
let shard_ack = "SHARD_ACK"

(* ---- blocking I/O ----------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec push off =
    if off < len then push (off + Unix.write_substring fd s off (len - off))
  in
  push 0

let frame tag payload = Printf.sprintf "%s %d\n%s" tag (String.length payload) payload

let send fd tag payload = write_all fd (frame tag payload)

let read_line_fd fd =
  let buf = Buffer.create 64 in
  let byte = Bytes.make 1 ' ' in
  let rec loop () =
    match Unix.read fd byte 0 1 with
    | 0 -> raise Disconnected
    | _ ->
      let c = Bytes.get byte 0 in
      if c = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        loop ()
      end
  in
  loop ()

let read_exact fd n =
  let data = Bytes.make n '\000' in
  let rec fill off =
    if off < n then begin
      let r = Unix.read fd data off (n - off) in
      if r = 0 then raise Disconnected;
      fill (off + r)
    end
  in
  fill 0;
  Bytes.to_string data

let parse_header header =
  match String.index_opt header ' ' with
  | None -> Error (Printf.sprintf "malformed frame header %S" header)
  | Some i -> (
    let tag = String.sub header 0 i in
    match int_of_string_opt (String.sub header (i + 1) (String.length header - i - 1)) with
    | None -> Error (Printf.sprintf "malformed frame length in %S" header)
    | Some len when len < 0 || len > max_frame ->
      Error (Printf.sprintf "unreasonable frame length %d" len)
    | Some len -> Ok (tag, len))

let recv fd =
  let header = read_line_fd fd in
  match parse_header header with
  | Error _ as e -> e
  | Ok (tag, len) -> Ok (tag, read_exact fd len)

(* ---- incremental decoding -------------------------------------------- *)

module Decoder = struct
  (* Undecoded input accumulates in [buf.[pos..len)]; [pos] is the parse
     cursor. The buffer is flat bytes rather than a [Buffer.t] so frames
     can be scanned and extracted without materializing the whole pending
     input as a string on every [next] — with a 64 MiB snapshot payload
     arriving in 64 KiB reads, a per-call copy would turn decoding into
     O(size^2/chunk) of memcpy. Here each byte is blitted in once by
     [feed], scanned in place, and copied out exactly once as the
     payload. Consumed bytes are compacted away whenever the cursor
     passes 64 KiB so a long-lived connection does not grow the buffer
     forever. *)
  type t = { mutable buf : Bytes.t; mutable len : int; mutable pos : int }

  let create () = { buf = Bytes.create 256; len = 0; pos = 0 }

  let feed t bytes n =
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (max 256 (Bytes.length t.buf)) in
      while !cap < t.len + n do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit bytes 0 t.buf t.len n;
    t.len <- t.len + n

  let compact t =
    if t.pos > 64 * 1024 then begin
      let rest = t.len - t.pos in
      (* shrink after a large frame (e.g. a snapshot bootstrap) so the
         capacity tracks the steady-state traffic, not the peak *)
      if Bytes.length t.buf > 1024 * 1024 && rest < Bytes.length t.buf / 4 then begin
        let smaller = Bytes.create (max 256 rest) in
        Bytes.blit t.buf t.pos smaller 0 rest;
        t.buf <- smaller
      end
      else Bytes.blit t.buf t.pos t.buf 0 rest;
      t.len <- rest;
      t.pos <- 0
    end

  let find_newline t =
    let rec scan i =
      if i >= t.len then None
      else if Bytes.get t.buf i = '\n' then Some i
      else scan (i + 1)
    in
    scan t.pos

  let next t =
    match find_newline t with
    | None ->
      if t.len - t.pos > 4096 then Error "frame header too long"
      else Ok None
    | Some nl -> (
      let header = Bytes.sub_string t.buf t.pos (nl - t.pos) in
      match parse_header header with
      | Error _ as e -> e
      | Ok (tag, payload_len) ->
        if t.len - nl - 1 < payload_len then Ok None
        else begin
          let payload = Bytes.sub_string t.buf (nl + 1) payload_len in
          t.pos <- nl + 1 + payload_len;
          compact t;
          Ok (Some (tag, payload))
        end)
end

(* ---- payload helpers -------------------------------------------------- *)

let lsn_payload lsn = string_of_int lsn

let parse_lsn payload =
  match int_of_string_opt (String.trim payload) with
  | Some n when n >= 0 -> Ok n
  | Some _ | None -> Error (Printf.sprintf "malformed LSN payload %S" payload)

let lsn_prefixed lsn rest = Printf.sprintf "%d\n%s" lsn rest

let parse_lsn_prefixed payload =
  match String.index_opt payload '\n' with
  | None -> Error "missing LSN prefix"
  | Some i -> (
    match int_of_string_opt (String.sub payload 0 i) with
    | Some lsn when lsn >= 0 ->
      Ok (lsn, String.sub payload (i + 1) (String.length payload - i - 1))
    | Some _ | None -> Error (Printf.sprintf "malformed LSN prefix in %S" payload))
