(** Length-framed wire protocol shared by the server, the client library
    and the replication subsystem.

    One frame is a text header line followed by an opaque payload:

    {v
    <TAG> <payload-bytes>\n<payload>
    v}

    Request tags: [EXEC], [LINT], [STATS], [REPL_SUBSCRIBE], [REPL_ACK].
    Reply/stream tags: [OK], [ERR], [REPL_SNAPSHOT], [REPL_RECORD].
    The replication tags and their payloads are specified in
    [docs/REPLICATION.md]; the request/reply tags in
    [lib/server/server.mli].

    Two readers are provided: a blocking one ({!recv}) for clients and
    the sequential server path, and an incremental {!Decoder} for the
    multiplexed event loop, which must parse frames out of whatever
    bytes [select]+[read] delivered. *)

exception Disconnected
(** The peer closed the connection (EOF mid-frame or between frames). *)

val max_frame : int
(** Upper bound on a payload (64 MiB — snapshot frames carry a whole
    catalog image). Anything larger is a protocol error. *)

(** {1 Replication frame tags} *)

val repl_subscribe : string
(** [REPL_SUBSCRIBE] (replica → primary): payload is the replica's last
    durably applied LSN as a decimal string; the primary answers with a
    {!repl_snapshot} bootstrap if the WAL no longer covers that offset,
    then streams {!repl_record} frames. *)

val repl_snapshot : string
(** [REPL_SNAPSHOT] (primary → replica): payload is
    ["<lsn>\n<snapshot-image>"] — a binary {!Hr_storage.Snapshot}
    catalog image valid through [lsn] (the primary's head LSN at the
    moment the image was taken); the record stream resumes after it. *)

val repl_record : string
(** [REPL_RECORD] (primary → replica): payload is ["<lsn>\n<statement>"],
    one logged HRQL statement to apply. *)

val repl_ack : string
(** [REPL_ACK] (replica → primary): payload is the highest durably
    applied LSN as a decimal string. *)

(** {1 Sharding frame tags}

    The router ↔ shard protocol (see [docs/SHARDING.md]). Replies carry
    the answering shard's head LSN so the router can tag per-shard
    progress ([shard.<id>.lsn] gauges) and fsck can correlate. *)

val shard_pull : string
(** [SHARD_PULL] (router → shard): payload is one relation name; the
    shard answers {!shard_part} with that relation's stored tuples. *)

val shard_part : string
(** [SHARD_PART] (shard → router): payload is
    ["<lsn>\n<tuple-lines>"] — the shard's head LSN, then one line per
    stored tuple: [+] or [-], a space, and the comma-joined decimal
    node ids of the item's coordinates. Sent only once every statement
    the shard acknowledged is durable. An unknown relation answers
    [ERR]. *)

val shard_exec : string
(** [SHARD_EXEC] (router → shard): payload is an HRQL script to apply;
    the shard answers {!shard_ack} (or [ERR] with the evaluator's
    message on failure). *)

val shard_ack : string
(** [SHARD_ACK] (shard → router): payload is ["<lsn>\n<reply>"] — the
    shard's head LSN after applying, then the evaluator's reply lines.
    Like {!shard_part}, withheld until the covering fsync. *)

(** {1 Blocking I/O} *)

val frame : string -> string -> string
(** [frame tag payload] is the encoded bytes of one frame — for callers
    that stage output in their own buffers (the event loop's
    non-blocking writer) instead of writing directly. *)

val send : Unix.file_descr -> string -> string -> unit
(** [send fd tag payload] writes one whole frame. *)

val recv : Unix.file_descr -> (string * string, string) result
(** Reads one whole frame, blocking. [Error] is a protocol error (bad
    header, oversized length); EOF raises {!Disconnected}. *)

(** {1 Incremental decoding} *)

module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** Appends the first [n] bytes of the buffer to the undecoded input. *)

  val next : t -> ((string * string) option, string) result
  (** Pops the next complete frame, [Ok None] when more bytes are
      needed, [Error] on a malformed header (the stream is then
      unrecoverable and the connection should be dropped). *)
end

(** {1 Payload helpers} *)

val lsn_payload : int -> string
val parse_lsn : string -> (int, string) result
(** Decimal LSN payloads ([REPL_SUBSCRIBE] / [REPL_ACK]). *)

val lsn_prefixed : int -> string -> string
val parse_lsn_prefixed : string -> (int * string, string) result
(** ["<lsn>\n<rest>"] payloads ([REPL_SNAPSHOT] / [REPL_RECORD]). *)
