(** Relation schemas.

    A schema names the attributes of a relation and associates each with a
    domain hierarchy (paper, §2.2: "each attribute of a standard relation
    ranges over a specified domain... we can create a hierarchy of domains
    for each attribute"). Several attributes may share one hierarchy. *)

type attr = { name : Hr_util.Symbol.t; hierarchy : Hr_hierarchy.Hierarchy.t }

type t
(** An immutable ordered list of attributes. *)

val make : (string * Hr_hierarchy.Hierarchy.t) list -> t
(** Raises {!Types.Model_error} on duplicate attribute names or an empty
    list. *)

val arity : t -> int
val attrs : t -> attr array
val attr : t -> int -> attr
val hierarchy : t -> int -> Hr_hierarchy.Hierarchy.t

val index_of : t -> string -> int
(** Position of the named attribute. Raises {!Types.Model_error} if
    absent. *)

val find_index : t -> string -> int option

val names : t -> string list

val equal : t -> t -> bool
(** Same attribute names in the same order, over physically equal
    hierarchies. *)

val project : t -> int list -> t
(** Sub-schema at the given positions, in the given order. *)

val concat : t -> t -> t
(** Schema juxtaposition for joins; raises {!Types.Model_error} on a
    duplicate attribute name. *)

val rename : t -> old_name:string -> new_name:string -> t

val references : t -> Hr_hierarchy.Hierarchy.t -> bool
(** Whether any attribute is bound (physically) to the given hierarchy. *)

val rebind : t -> old_h:Hr_hierarchy.Hierarchy.t -> new_h:Hr_hierarchy.Hierarchy.t -> t
(** Every attribute bound to [old_h] rebound to [new_h]. Only meaningful
    when [new_h] preserves [old_h]'s node ids ({!Hr_hierarchy.Hierarchy.copy}). *)

val pp : Format.formatter -> t -> unit
