module Item_set = Set.Make (Item)

let m_extensions = Hr_obs.Metrics.counter "core.flatten.extensions"
let m_items_out = Hr_obs.Metrics.counter "core.flatten.items_out"

let extension rel =
  Hr_obs.Metrics.incr m_extensions;
  let ext =
    Relation.fold
      (fun (t : Relation.tuple) acc -> Item_set.add t.Relation.item acc)
      (Explicate.explicate rel) Item_set.empty
  in
  Hr_obs.Metrics.add m_items_out (Item_set.cardinal ext);
  ext

let extension_list rel = Item_set.elements (extension rel)

let equal_extension a b =
  Schema.equal (Relation.schema a) (Relation.schema b)
  && Item_set.equal (extension a) (extension b)

let holds_atomic rel item = Binding.holds rel item
