module Hierarchy = Hr_hierarchy.Hierarchy

let m_verdicts = Hr_obs.Metrics.counter "core.binding.verdicts"
let m_index_probes = Hr_obs.Metrics.counter "core.binding.index_probes"

type verdict =
  | Asserted of Types.sign * Relation.tuple list
  | Unasserted
  | Conflict of { positive : Relation.tuple list; negative : Relation.tuple list }

(* Strictly-subsuming tuples via the relation's memoized bucket index
   ({!Relation.candidates}) rather than a full-body scan; candidates come
   back in structural order, so filtering preserves the order the old
   linear scan produced. *)
let relevant rel item =
  Hr_obs.Metrics.incr m_index_probes;
  let schema = Relation.schema rel in
  List.filter
    (fun (t : Relation.tuple) -> Item.strictly_subsumes schema t.item item)
    (Relation.candidates rel item)

(* Off-path binders: minimal relevant tuples under the binding order
   (isa + preference reachability). *)
let off_path_binders schema (tuples : Relation.tuple list) =
  List.filter
    (fun (t : Relation.tuple) ->
      not
        (List.exists
           (fun (t' : Relation.tuple) ->
             (not (Item.equal t'.item t.item))
             && Item.binds_below schema t.item t'.item)
           tuples))
    tuples

(* Is there a directed isa-path in the (lazy) product item hierarchy from
   [src] down to [dst] that visits no item in [avoid]? All intermediate
   nodes necessarily lie in the interval [dst, src], so successors are
   pruned to items still subsuming [dst]. *)
let path_avoiding schema ~src ~dst ~avoid =
  let arity = Item.arity src in
  let avoid_tbl = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace avoid_tbl (i : Item.t) ()) avoid;
  let visited = Hashtbl.create 64 in
  let rec dfs (cur : Item.t) =
    if Item.equal cur dst then true
    else if Hashtbl.mem visited cur then false
    else begin
      Hashtbl.add visited cur ();
      let step i =
        let h = Schema.hierarchy schema i in
        let next_of child =
          let candidate = Item.substitute cur i child in
          (not (Hashtbl.mem avoid_tbl candidate))
          && Item.subsumes schema candidate dst
          && dfs candidate
        in
        List.exists next_of (Hierarchy.children h (Item.coord cur i))
      in
      let rec try_coord i = i < arity && (step i || try_coord (i + 1)) in
      try_coord 0
    end
  in
  (not (Hashtbl.mem avoid_tbl src)) && dfs src

let on_path_binders schema item (tuples : Relation.tuple list) =
  let preempted (t : Relation.tuple) =
    List.exists
      (fun (t' : Relation.tuple) ->
        (not (Item.equal t'.item t.item))
        && not (path_avoiding schema ~src:t.item ~dst:item ~avoid:[ t'.item ]))
      tuples
  in
  List.filter (fun t -> not (preempted t)) tuples

let split_signs (binders : Relation.tuple list) =
  List.partition (fun (t : Relation.tuple) -> Types.bool_of_sign t.sign) binders

let decide ?(semantics = Types.Off_path) schema item ~exact ~relevant =
  match exact with
  | Some sign -> Asserted (sign, [ { Relation.item; sign } ])
  | None -> (
    match relevant with
    | [] -> Unasserted
    | tuples ->
      let binders =
        match semantics with
        | Types.Off_path -> off_path_binders schema tuples
        | Types.On_path -> on_path_binders schema item tuples
        | Types.No_preemption -> tuples
      in
      let positive, negative = split_signs binders in
      (match positive, negative with
      | _ :: _, [] -> Asserted (Types.Pos, positive)
      | [], _ :: _ -> Asserted (Types.Neg, negative)
      | [], [] ->
        (* On-path can preempt every tuple only if tuples mutually shadow
           each other, which cannot happen on a DAG: a minimal relevant
           tuple always has an avoiding path. *)
        assert false
      | _ :: _, _ :: _ -> Conflict { positive; negative }))

let verdict ?semantics rel item =
  Hr_obs.Metrics.incr m_verdicts;
  decide ?semantics (Relation.schema rel) item ~exact:(Relation.find rel item)
    ~relevant:(relevant rel item)

let truth ?semantics rel item =
  match verdict ?semantics rel item with
  | Asserted (sign, _) -> sign
  | Unasserted -> Types.Neg
  | Conflict _ ->
    Types.model_error "conflict at item %s in relation %S"
      (Item.to_string (Relation.schema rel) item)
      (Relation.name rel)

let holds ?semantics rel item = Types.bool_of_sign (truth ?semantics rel item)

let justification rel item =
  let exact =
    match Relation.find rel item with
    | Some sign -> [ { Relation.item; sign } ]
    | None -> []
  in
  exact @ relevant rel item

type graph = {
  nodes : Relation.tuple array;
  item_node : int;
  edges : (int * int) list;
}

let binding_graph rel item =
  let schema = Relation.schema rel in
  let nodes = Array.of_list (justification rel item) in
  let n = Array.length nodes in
  let item_node = n in
  let stronger i j =
    (* j binds at least as strongly as i (i's item is above j's). *)
    Item.binds_below schema nodes.(i).Relation.item nodes.(j).Relation.item
  in
  let strictly_stronger i j = i <> j && stronger i j && not (stronger j i) in
  let immediate i j =
    strictly_stronger i j
    && not
         (List.exists
            (fun k -> k <> i && k <> j && strictly_stronger i k && strictly_stronger k j)
            (List.init n Fun.id))
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if immediate i j then edges := (i, j) :: !edges
    done;
    (* Edge into the item from tuples with no stronger tuple below them. *)
    if
      not
        (List.exists
           (fun k -> strictly_stronger i k)
           (List.init n Fun.id))
      && not (Item.equal nodes.(i).Relation.item item)
    then edges := (i, item_node) :: !edges
  done;
  (* The exact-match tuple (item equal to the query) is drawn on the item
     itself; it gets the incoming edges instead. *)
  { nodes; item_node; edges = List.rev !edges }

let pp_verdict schema ppf = function
  | Asserted (sign, binders) ->
    Format.fprintf ppf "%a (by %a)" Types.pp_sign sign
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (t : Relation.tuple) -> Item.pp schema ppf t.item))
      binders
  | Unasserted -> Format.pp_print_string ppf "unasserted"
  | Conflict { positive; negative } ->
    Format.fprintf ppf "CONFLICT (+: %d tuples, -: %d tuples)" (List.length positive)
      (List.length negative)
