(** Hierarchical relations (paper, §2).

    A relation is an immutable set of tuples over a schema; a tuple is an
    item with a sign. At most one tuple per item can be present — asserting
    both [+A] and [-A] for the same item [A] is a direct contradiction and
    is rejected at insertion. All other consistency checking (the ambiguity
    constraint) lives in [Integrity] and is invoked by transactions, not by
    these primitive constructors: the paper allows a relation to pass
    through inconsistent states inside a transaction. *)

type tuple = { item : Item.t; sign : Types.sign }

type t

val empty : ?name:string -> Schema.t -> t
val name : t -> string
val with_name : t -> string -> t
val schema : t -> Schema.t

val with_schema : t -> Schema.t -> t
(** The same body under a different schema value — for rebinding a
    schema to a copied hierarchy ({!Schema.rebind}). The caller must
    preserve arity and node-id meaning; the body is not revalidated. *)

val cardinality : t -> int
(** Number of stored tuples (not the extension size). *)

val is_empty : t -> bool

val add : t -> Item.t -> Types.sign -> t
(** Raises {!Types.Model_error} if the item is present with the opposite
    sign (use {!set} to overwrite) or belongs to a different schema. Adding
    an already-present tuple is a no-op (duplicate elimination, §3.2). *)

val set : t -> Item.t -> Types.sign -> t
(** Insert-or-overwrite. *)

val remove : t -> Item.t -> t
(** No-op if absent. *)

val add_named : t -> Types.sign -> string list -> t
(** [add_named r sign names] resolves [names] against the schema and
    {!add}s. *)

val find : t -> Item.t -> Types.sign option
(** The sign of an exactly matching stored tuple, if any. *)

val mem : t -> Item.t -> bool

val tuples : t -> tuple list
(** In structural item order (deterministic). *)

val items : t -> Item.t list

val fold : (tuple -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (tuple -> unit) -> t -> unit
val filter : (tuple -> bool) -> t -> t

val candidates : t -> Item.t -> tuple list
(** Tuples that may subsume [item], in structural item order — a superset
    of the subsuming tuples obtained by probing a memoized per-attribute
    bucket index (hierarchy node of the cheapest coordinate -> tuples), so
    binding lookups need not scan the whole body. The caller still applies
    the full (strict) subsumption test. The index is built lazily on the
    first probe and shared by all readers of this relation value; any
    update produces a fresh value with its own (unbuilt) index, so stale
    reads are impossible. *)

val of_tuples : ?name:string -> Schema.t -> (Types.sign * string list) list -> t
(** Build from signed rows of names; convenient for tests and examples. *)

val equal : t -> t -> bool
(** Same schema and same stored tuples (syntactic, not extensional,
    equality). *)

val pp : Format.formatter -> t -> unit
(** Renders the relation as the paper's figures do: one row per tuple, a
    leading sign column, [∀]-prefixed class values. *)

val to_rows : t -> string list list
(** [["+"; "V Bird"]; ...] — sign then one cell per attribute; used by the
    table printer. *)
