module Hierarchy = Hr_hierarchy.Hierarchy
module Item_set = Set.Make (Item)

(* Per-operator call and output-row counters. Handles are registered
   once here, so the per-call cost is two field updates. *)
let op_counters op =
  ( Hr_obs.Metrics.counter (Printf.sprintf "core.ops.%s.calls" op),
    Hr_obs.Metrics.counter (Printf.sprintf "core.ops.%s.rows_out" op) )

let c_select = op_counters "select"
let c_project = op_counters "project"
let c_join = op_counters "join"
let c_union = op_counters "union"
let c_inter = op_counters "inter"
let c_diff = op_counters "diff"
let c_rename = op_counters "rename"

let tally (calls, rows_out) rel =
  Hr_obs.Metrics.incr calls;
  Hr_obs.Metrics.add rows_out (Relation.cardinality rel);
  rel

(* Close a candidate item set under maximal common descendants of
   incomparable intersecting pairs. Worklist: each new item is paired with
   every item already accepted. *)
let close_under_mcd schema seeds =
  let accepted = ref Item_set.empty in
  let queue = Queue.create () in
  let enqueue item =
    if not (Item_set.mem item !accepted) then begin
      accepted := Item_set.add item !accepted;
      Queue.add item queue
    end
  in
  List.iter enqueue seeds;
  while not (Queue.is_empty queue) do
    let item = Queue.pop queue in
    let others = Item_set.elements !accepted in
    List.iter
      (fun other ->
        if
          (not (Item.equal item other))
          && (not (Item.comparable schema item other))
          && Item.intersects schema item other
        then List.iter enqueue (Item.maximal_common_descendants schema item other))
      others
  done;
  Item_set.elements !accepted

let refine ?(name = "q") ?(consolidate = true) schema eval seeds =
  let items = close_under_mcd schema seeds in
  let rel =
    List.fold_left (fun r item -> Relation.set r item (eval item)) (Relation.empty ~name schema) items
  in
  if consolidate then Relation.with_name (Consolidate.consolidate rel) name else rel

let require_equal_schemas a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    Types.model_error "schemas of %S and %S differ" (Relation.name a) (Relation.name b)

let combine ?name op a b =
  require_equal_schemas a b;
  let schema = Relation.schema a in
  let seeds = Relation.items a @ Relation.items b in
  let eval item =
    Types.sign_of_bool
      (op
         (Types.bool_of_sign (Binding.truth a item))
         (Types.bool_of_sign (Binding.truth b item)))
  in
  refine ?name schema eval seeds

let union ?(name = "union") a b = tally c_union (combine ~name ( || ) a b)
let inter ?(name = "inter") a b = tally c_inter (combine ~name ( && ) a b)
let diff ?(name = "diff") a b = tally c_diff (combine ~name (fun x y -> x && not y) a b)

let select_seeds rel i v =
  let schema = Relation.schema rel in
  let h = Schema.hierarchy schema i in
  Relation.fold
    (fun (t : Relation.tuple) acc ->
      let meets = Hierarchy.maximal_common_descendants h (Item.coord t.Relation.item i) v in
      List.fold_left (fun acc m -> Item.substitute t.Relation.item i m :: acc) acc meets)
    rel []

let select ?(name = "select") rel ~attr ~value =
  let schema = Relation.schema rel in
  let i = Schema.index_of schema attr in
  let v = Hierarchy.find_exn (Schema.hierarchy schema i) value in
  tally c_select (refine ~name schema (Binding.truth rel) (select_seeds rel i v))

let select_justified ?name rel ~attr ~value =
  let schema = Relation.schema rel in
  let i = Schema.index_of schema attr in
  let v = Hierarchy.find_exn (Schema.hierarchy schema i) value in
  let result = select ?name rel ~attr ~value in
  let applicable =
    List.filter
      (fun (t : Relation.tuple) ->
        Hierarchy.intersects (Schema.hierarchy schema i) (Item.coord t.Relation.item i) v)
      (Relation.tuples rel)
  in
  (result, applicable)

let project ?(name = "project") rel attrs =
  let schema = Relation.schema rel in
  let positions = List.map (Schema.index_of schema) attrs in
  let out_schema = Schema.project schema positions in
  Relation.fold
    (fun (t : Relation.tuple) acc ->
      let item = Item.project t.Relation.item positions in
      match Relation.find acc item with
      | None -> Relation.set acc item t.Relation.sign
      | Some existing ->
        (* existential semantics: a positive witness dominates *)
        if Types.sign_equal existing Types.Neg && Types.sign_equal t.Relation.sign Types.Pos
        then Relation.set acc item Types.Pos
        else acc)
    rel
    (Relation.empty ~name out_schema)
  |> tally c_project

let project_exact ?name rel attrs = project ?name (Explicate.explicate rel) attrs

let join ?(name = "join") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared =
    List.filter_map
      (fun nm ->
        match Schema.find_index sb nm with
        | Some j ->
          let i = Schema.index_of sa nm in
          if Schema.hierarchy sa i != Schema.hierarchy sb j then
            Types.model_error "shared attribute %S uses different hierarchies" nm;
          Some (i, j)
        | None -> None)
      (Schema.names sa)
  in
  let b_only =
    List.filter
      (fun j -> not (List.exists (fun (_, j') -> j = j') shared))
      (List.init (Schema.arity sb) Fun.id)
  in
  let out_schema = Schema.concat sa (Schema.project sb b_only) in
  let arity_a = Schema.arity sa in
  (* Candidate items: for every tuple pair, every choice of per-shared-
     attribute maximal common descendant. *)
  let seeds =
    Relation.fold
      (fun (ta : Relation.tuple) acc ->
        Relation.fold
          (fun (tb : Relation.tuple) acc ->
            let choices =
              List.map
                (fun (i, j) ->
                  let h = Schema.hierarchy sa i in
                  ( i,
                    Hierarchy.maximal_common_descendants h
                      (Item.coord ta.Relation.item i)
                      (Item.coord tb.Relation.item j) ))
                shared
            in
            if List.exists (fun (_, mcds) -> mcds = []) choices then acc
            else
              let rec assign chosen = function
                | [] ->
                  let a_part =
                    Array.init arity_a (fun i ->
                        match List.assoc_opt i chosen with
                        | Some v -> v
                        | None -> Item.coord ta.Relation.item i)
                  in
                  let b_part =
                    Array.of_list (List.map (fun j -> Item.coord tb.Relation.item j) b_only)
                  in
                  [ Item.make out_schema (Array.append a_part b_part) ]
                | (i, mcds) :: rest ->
                  List.concat_map (fun v -> assign ((i, v) :: chosen) rest) mcds
              in
              assign [] choices @ acc)
          b acc)
      a []
  in
  let eval item =
    let a_item =
      Item.make sa (Array.init arity_a (fun i -> Item.coord item i))
    in
    let b_item =
      Item.make sb
        (Array.init (Schema.arity sb) (fun j ->
             match List.find_opt (fun (_, j') -> j = j') shared with
             | Some (i, _) -> Item.coord item i
             | None ->
               let rank =
                 let rec idx k = function
                   | [] -> assert false
                   | j' :: rest -> if j = j' then k else idx (k + 1) rest
                 in
                 idx 0 b_only
               in
               Item.coord item (arity_a + rank)))
    in
    Types.sign_of_bool (Binding.holds a a_item && Binding.holds b b_item)
  in
  tally c_join (refine ~name out_schema eval seeds)

let rename ?name rel ~old_name ~new_name =
  let out_schema = Schema.rename (Relation.schema rel) ~old_name ~new_name in
  let out_name = Option.value name ~default:(Relation.name rel) in
  Relation.fold
    (fun (t : Relation.tuple) acc ->
      Relation.set acc (Item.make out_schema (Item.coords t.Relation.item)) t.Relation.sign)
    rel
    (Relation.empty ~name:out_name out_schema)
  |> tally c_rename
