(** Tuple binding: the truth value of an item (paper, §2.1–2.2, Appendix).

    A stored tuple is {e relevant} to an item when its item subsumes it
    (over [isa] edges). Among relevant tuples, the {e strongest-binding}
    ones determine the item's truth value:

    - a tuple exactly on the item always wins;
    - [Off_path] (default): the binders are the minimal relevant tuples
      under the binding order (coordinatewise reachability over [isa] and
      preference edges). This matches the paper's tuple-binding-graph
      construction provided hierarchies are kept transitively reduced
      ({!Hr_hierarchy.Hierarchy.reduce});
    - [On_path]: a tuple is preempted only if another relevant tuple lies
      on {e every} path from it to the item in the item hierarchy
      (preference edges are not consulted — the paper defines preferences
      in terms of off-path semantics);
    - [No_preemption]: every relevant tuple binds.

    Disagreement among binders is a conflict — an inconsistent database
    state (paper, §2.1). *)

type verdict =
  | Asserted of Types.sign * Relation.tuple list
      (** The sign agreed by all strongest binders, and those binders. *)
  | Unasserted
      (** No relevant tuple. Under the closed-world reading this means the
          relation does not hold. *)
  | Conflict of { positive : Relation.tuple list; negative : Relation.tuple list }
      (** Strongest binders disagree. *)

val relevant : Relation.t -> Item.t -> Relation.tuple list
(** Tuples whose item strictly subsumes the argument (the nodes of its
    tuple-binding graph other than the item itself). Served by the
    relation's memoized bucket index ({!Relation.candidates}); each call
    bumps the [core.binding.index_probes] counter. *)

val verdict : ?semantics:Types.semantics -> Relation.t -> Item.t -> verdict

val decide :
  ?semantics:Types.semantics ->
  Schema.t ->
  Item.t ->
  exact:Types.sign option ->
  relevant:Relation.tuple list ->
  verdict
(** The decision procedure underneath {!verdict}, for callers (such as
    [Index]) that obtain the exact-match sign and relevant tuples from
    their own access path. [relevant] must be exactly the tuples whose
    items strictly subsume the queried item. *)

val truth : ?semantics:Types.semantics -> Relation.t -> Item.t -> Types.sign
(** Closed-world sign: [Unasserted] maps to [Neg]. Raises
    {!Types.Model_error} on [Conflict] — callers requiring totality must
    ensure consistency first (see [Integrity]). *)

val holds : ?semantics:Types.semantics -> Relation.t -> Item.t -> bool
(** [truth = Pos]. *)

val justification : Relation.t -> Item.t -> Relation.tuple list
(** All applicable tuples — the exact-match tuple (if any) plus the
    relevant ones. This is the paper's justification facility (Fig. 9b). *)

type graph = {
  nodes : Relation.tuple array;  (** relevant tuples; node [i] is [nodes.(i)] *)
  item_node : int;  (** the queried item's node id, [= Array.length nodes] *)
  edges : (int * int) list;
      (** transitive reduction of the binding order, most-general to
          most-specific, including edges into [item_node] *)
}
(** A materialized tuple-binding graph, as drawn in the paper's Fig. 1d —
    for inspection and display. *)

val binding_graph : Relation.t -> Item.t -> graph

val pp_verdict : Schema.t -> Format.formatter -> verdict -> unit
