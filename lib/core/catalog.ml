module Hierarchy = Hr_hierarchy.Hierarchy
module Symbol = Hr_util.Symbol

(* The maps are persistent (Symbol.Map): the catalog's mutable fields
   are just roots, and {!snapshot} captures them in O(1). A snapshot
   shares all structure with the live catalog, but the writer's
   subsequent updates rebind the roots to {e new} maps, so a captured
   version never changes — the foundation of snapshot-isolated reads
   (docs/CONCURRENCY.md). Relations are immutable values already;
   hierarchies are mutable, so sharing one across a snapshot boundary
   is only safe once it is {!Hierarchy.freeze}d ({!freeze} seals every
   hierarchy; {!update_hierarchy} is the writer's copy-on-write way to
   change one afterwards). *)

(* The observed-statistics store is deliberately {e not} versioned: it
   is advisory feedback for the cost estimator ((relation, label) ->
   last actual row count from EXPLAIN ANALYZE), never query-visible
   data, and snapshots share it with the live catalog so actuals
   measured on a reader domain still teach the estimator. The mutex
   makes cross-domain access safe; [label] is ["*"] for the whole
   stored extension or ["attr=value"] for a selection. *)
type observed = {
  obs_mu : Mutex.t;
  obs_tbl : (string * string, int) Hashtbl.t;
}

type t = {
  mutable hiers : Hierarchy.t Symbol.Map.t;
  mutable rels : Relation.t Symbol.Map.t;
  observed : observed;
}

let create () =
  {
    hiers = Symbol.Map.empty;
    rels = Symbol.Map.empty;
    observed = { obs_mu = Mutex.create (); obs_tbl = Hashtbl.create 16 };
  }

let snapshot t = { hiers = t.hiers; rels = t.rels; observed = t.observed }

let same_bindings a b = a.hiers == b.hiers && a.rels == b.rels

let freeze t = Symbol.Map.iter (fun _ h -> Hierarchy.freeze h) t.hiers

let define_hierarchy t h =
  let key = Hierarchy.domain h in
  if Symbol.Map.mem key t.hiers then
    Types.model_error "hierarchy %a already defined" Symbol.pp key;
  t.hiers <- Symbol.Map.add key h t.hiers

let find_hierarchy t name = Symbol.Map.find_opt (Symbol.intern name) t.hiers

let hierarchy t name =
  match find_hierarchy t name with
  | Some h -> h
  | None -> Types.model_error "no hierarchy %S" name

let hierarchies t = Symbol.Map.fold (fun _ h acc -> h :: acc) t.hiers []

(* Copy-on-write mutation of a registered hierarchy. Unfrozen (REPL,
   WAL replay, tests — no snapshot shares it), the mutation runs in
   place, exactly the historical behavior and cost. Frozen (the server
   has published a version pinning it), the mutation runs on a private
   {!Hierarchy.copy}; on success the copy replaces the original in the
   hierarchy map {e and} in the schema of every relation bound to the
   original (same node ids, so bodies carry over untouched). Published
   snapshots keep the original — readers pinned to them are unaffected.
   If [f] raises, nothing is swapped. *)
let update_hierarchy t h f =
  if not (Hierarchy.frozen h) then f h
  else begin
    let h' = Hierarchy.copy h in
    let result = f h' in
    (* Replace under whatever key currently binds this object — the
       registration key, which [rename_node] on the root cannot move. *)
    t.hiers <-
      Symbol.Map.map (fun existing -> if existing == h then h' else existing) t.hiers;
    t.rels <-
      Symbol.Map.map
        (fun rel ->
          let s = Relation.schema rel in
          if Schema.references s h then
            Relation.with_schema rel (Schema.rebind s ~old_h:h ~new_h:h')
          else rel)
        t.rels;
    result
  end

let define_relation ?(check = true) t r =
  let key = Symbol.intern (Relation.name r) in
  if Symbol.Map.mem key t.rels then
    Types.model_error "relation %a already defined" Symbol.pp key;
  if check then
    (match Integrity.first_conflict r with
    | None -> ()
    | Some c ->
      Types.model_error "initial contents of %S are inconsistent: %a" (Relation.name r)
        (Integrity.pp_conflict (Relation.schema r))
        c);
  t.rels <- Symbol.Map.add key r t.rels

let find_relation t name = Symbol.Map.find_opt (Symbol.intern name) t.rels

let relation t name =
  match find_relation t name with
  | Some r -> r
  | None -> Types.model_error "no relation %S" name

let relations t = Symbol.Map.fold (fun _ r acc -> r :: acc) t.rels []

let replace_relation t r =
  let key = Symbol.intern (Relation.name r) in
  if not (Symbol.Map.mem key t.rels) then
    Types.model_error "no relation %S" (Relation.name r);
  t.rels <- Symbol.Map.add key r t.rels

let drop_relation t name =
  t.rels <- Symbol.Map.remove (Symbol.intern name) t.rels;
  let o = t.observed in
  Mutex.lock o.obs_mu;
  Hashtbl.iter
    (fun ((rel, _) as key) _ -> if rel = name then Hashtbl.remove o.obs_tbl key)
    (Hashtbl.copy o.obs_tbl);
  Mutex.unlock o.obs_mu

let record_stat t ~rel ~label count =
  let o = t.observed in
  Mutex.lock o.obs_mu;
  Hashtbl.replace o.obs_tbl (rel, label) count;
  Mutex.unlock o.obs_mu

let observed_stat t ~rel ~label =
  let o = t.observed in
  Mutex.lock o.obs_mu;
  let v = Hashtbl.find_opt o.obs_tbl (rel, label) in
  Mutex.unlock o.obs_mu;
  v

let observed_stats t =
  let o = t.observed in
  Mutex.lock o.obs_mu;
  let l = Hashtbl.fold (fun key count acc -> ((key, count) : _ * int) :: acc) o.obs_tbl [] in
  Mutex.unlock o.obs_mu;
  List.sort compare l
