module Hierarchy = Hr_hierarchy.Hierarchy
module Symbol = Hr_util.Symbol

type t = {
  hierarchies : Hierarchy.t Symbol.Tbl.t;
  relations : Relation.t Symbol.Tbl.t;
  observed : (string * string, int) Hashtbl.t;
      (* (relation, label) -> last actual row count reported by EXPLAIN
         ANALYZE. [label] is ["*"] for the whole stored extension or
         ["attr=value"] for a selection; the cost estimator prefers these
         over its formulas. *)
}

let create () =
  {
    hierarchies = Symbol.Tbl.create 16;
    relations = Symbol.Tbl.create 16;
    observed = Hashtbl.create 16;
  }

let define_hierarchy t h =
  let key = Hierarchy.domain h in
  if Symbol.Tbl.mem t.hierarchies key then
    Types.model_error "hierarchy %a already defined" Symbol.pp key;
  Symbol.Tbl.add t.hierarchies key h

let find_hierarchy t name = Symbol.Tbl.find_opt t.hierarchies (Symbol.intern name)

let hierarchy t name =
  match find_hierarchy t name with
  | Some h -> h
  | None -> Types.model_error "no hierarchy %S" name

let hierarchies t = Symbol.Tbl.fold (fun _ h acc -> h :: acc) t.hierarchies []

let define_relation ?(check = true) t r =
  let key = Symbol.intern (Relation.name r) in
  if Symbol.Tbl.mem t.relations key then
    Types.model_error "relation %a already defined" Symbol.pp key;
  if check then
    (match Integrity.first_conflict r with
    | None -> ()
    | Some c ->
      Types.model_error "initial contents of %S are inconsistent: %a" (Relation.name r)
        (Integrity.pp_conflict (Relation.schema r))
        c);
  Symbol.Tbl.add t.relations key r

let find_relation t name = Symbol.Tbl.find_opt t.relations (Symbol.intern name)

let relation t name =
  match find_relation t name with
  | Some r -> r
  | None -> Types.model_error "no relation %S" name

let relations t = Symbol.Tbl.fold (fun _ r acc -> r :: acc) t.relations []

let replace_relation t r =
  let key = Symbol.intern (Relation.name r) in
  if not (Symbol.Tbl.mem t.relations key) then
    Types.model_error "no relation %S" (Relation.name r);
  Symbol.Tbl.replace t.relations key r

let drop_relation t name =
  Symbol.Tbl.remove t.relations (Symbol.intern name);
  Hashtbl.iter
    (fun ((rel, _) as key) _ -> if rel = name then Hashtbl.remove t.observed key)
    (Hashtbl.copy t.observed)

let record_stat t ~rel ~label count = Hashtbl.replace t.observed (rel, label) count
let observed_stat t ~rel ~label = Hashtbl.find_opt t.observed (rel, label)

let observed_stats t =
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) t.observed []
  |> List.sort compare
