module Symbol = Hr_util.Symbol
module Hierarchy = Hr_hierarchy.Hierarchy

type attr = { name : Symbol.t; hierarchy : Hierarchy.t }
type t = attr array

let make bindings =
  if bindings = [] then Types.model_error "schema must have at least one attribute";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then Types.model_error "duplicate attribute %S" name;
      Hashtbl.add seen name ())
    bindings;
  Array.of_list
    (List.map (fun (name, hierarchy) -> { name = Symbol.intern name; hierarchy }) bindings)

let arity = Array.length
let attrs t = t
let attr t i = t.(i)
let hierarchy t i = t.(i).hierarchy

let find_index t name =
  let sym = Symbol.intern name in
  let rec loop i =
    if i >= Array.length t then None
    else if Symbol.equal t.(i).name sym then Some i
    else loop (i + 1)
  in
  loop 0

let index_of t name =
  match find_index t name with
  | Some i -> i
  | None -> Types.model_error "no attribute %S in schema" name

let names t = Array.to_list (Array.map (fun a -> Symbol.name a.name) t)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Symbol.equal x.name y.name && x.hierarchy == y.hierarchy) a b

let project t positions = Array.of_list (List.map (fun i -> t.(i)) positions)

let concat a b =
  let joined = Array.append a b in
  let seen = Symbol.Tbl.create 8 in
  Array.iter
    (fun at ->
      if Symbol.Tbl.mem seen at.name then
        Types.model_error "duplicate attribute %a after concat" Symbol.pp at.name;
      Symbol.Tbl.add seen at.name ())
    joined;
  joined

let references t h = Array.exists (fun a -> a.hierarchy == h) t

(* Swap one hierarchy object for another (same node ids) in every
   attribute bound to it — the catalog's copy-on-write DDL path rebinds
   relation schemas this way after copying a frozen hierarchy. Items
   are bare node-id arrays, so a relation body needs no translation. *)
let rebind t ~old_h ~new_h =
  Array.map (fun a -> if a.hierarchy == old_h then { a with hierarchy = new_h } else a) t

let rename t ~old_name ~new_name =
  let i = index_of t old_name in
  if Option.is_some (find_index t new_name) then
    Types.model_error "attribute %S already exists" new_name;
  let t' = Array.copy t in
  t'.(i) <- { (t'.(i)) with name = Symbol.intern new_name };
  t'

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a ->
         Format.fprintf ppf "%a: %a" Symbol.pp a.name Symbol.pp (Hierarchy.domain a.hierarchy)))
    (Array.to_list t)
