module Hierarchy = Hr_hierarchy.Hierarchy

type t = {
  relation : Relation.t;
  buckets : (int, int array) Hashtbl.t array;
      (** per attribute: hierarchy node -> indexes (ascending) of tuples
          whose item has that node in this coordinate *)
  tuples : Relation.tuple array;
}

let build relation =
  let schema = Relation.schema relation in
  let arity = Schema.arity schema in
  let tuples = Array.of_list (Relation.tuples relation) in
  let acc = Array.init arity (fun _ -> Hashtbl.create 64) in
  Array.iteri
    (fun idx (t : Relation.tuple) ->
      for i = 0 to arity - 1 do
        let node = Item.coord t.Relation.item i in
        match Hashtbl.find_opt acc.(i) node with
        | Some l -> l := idx :: !l
        | None -> Hashtbl.add acc.(i) node (ref [ idx ])
      done)
    tuples;
  (* freeze to arrays: probes sum lengths and iterate, never cons *)
  let buckets =
    Array.map
      (fun tbl ->
        let frozen = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
        Hashtbl.iter
          (fun node l -> Hashtbl.add frozen node (Array.of_list (List.rev !l)))
          tbl;
        frozen)
      acc
  in
  { relation; buckets; tuples }

let relation t = t.relation

(* Candidate tuples via the cheapest coordinate: those whose coordinate i
   is an ancestor of the query's coordinate i. The other coordinates are
   then checked by full subsumption. A tuple's coordinate is a single
   node, so each tuple index appears in at most one bucket per attribute
   — candidate lists are duplicate-free by construction. *)
let relevant t item =
  let schema = Relation.schema t.relation in
  let arity = Schema.arity schema in
  let ancestors =
    Array.init arity (fun i ->
        Hierarchy.ancestors (Schema.hierarchy schema i) (Item.coord item i))
  in
  (* pick the attribute with the fewest candidates by summing frozen
     bucket lengths — no candidate list is materialized for the losers *)
  let count i =
    List.fold_left
      (fun acc node ->
        match Hashtbl.find_opt t.buckets.(i) node with
        | Some a -> acc + Array.length a
        | None -> acc)
      0 ancestors.(i)
  in
  let best = ref 0 in
  let best_n = ref (count 0) in
  for i = 1 to arity - 1 do
    let n = count i in
    if n < !best_n then begin
      best := i;
      best_n := n
    end
  done;
  if !best_n = 0 then []
  else
    List.concat_map
      (fun node ->
        match Hashtbl.find_opt t.buckets.(!best) node with
        | Some a -> Array.to_list a
        | None -> [])
      ancestors.(!best)
    |> List.sort Int.compare
    |> List.filter_map (fun idx ->
           let tup = t.tuples.(idx) in
           if Item.strictly_subsumes schema tup.Relation.item item then Some tup
           else None)

let verdict ?semantics t item =
  Binding.decide ?semantics (Relation.schema t.relation) item
    ~exact:(Relation.find t.relation item) ~relevant:(relevant t item)

let truth ?semantics t item =
  match verdict ?semantics t item with
  | Binding.Asserted (sign, _) -> sign
  | Binding.Unasserted -> Types.Neg
  | Binding.Conflict _ ->
    Types.model_error "conflict at item %s in relation %S"
      (Item.to_string (Relation.schema t.relation) item)
      (Relation.name t.relation)

let holds ?semantics t item = Types.bool_of_sign (truth ?semantics t item)
