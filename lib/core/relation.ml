module Hierarchy = Hr_hierarchy.Hierarchy

type tuple = { item : Item.t; sign : Types.sign }

module Item_map = Map.Make (Item)

type t = { name : string; schema : Schema.t; body : Types.sign Item_map.t }

let empty ?(name = "r") schema = { name; schema; body = Item_map.empty }
let name r = r.name
let with_name r name = { r with name }
let schema r = r.schema

(* Items order by raw node-id arrays (not through the schema), so a
   schema swap never reorders the body map. *)
let with_schema r schema = { r with schema }
let cardinality r = Item_map.cardinal r.body
let is_empty r = Item_map.is_empty r.body

let check_item r item =
  if Item.arity item <> Schema.arity r.schema then
    Types.model_error "item arity %d does not match relation %S" (Item.arity item) r.name

let set r item sign =
  check_item r item;
  { r with body = Item_map.add item sign r.body }

let add r item sign =
  check_item r item;
  match Item_map.find_opt item r.body with
  | None -> { r with body = Item_map.add item sign r.body }
  | Some existing ->
    if Types.sign_equal existing sign then r
    else
      Types.model_error "direct contradiction in %S on item %s" r.name
        (Item.to_string r.schema item)

let remove r item = { r with body = Item_map.remove item r.body }

let add_named r sign names = add r (Item.of_names r.schema names) sign

let find r item = Item_map.find_opt item r.body
let mem r item = Item_map.mem item r.body

let tuples r = Item_map.fold (fun item sign acc -> { item; sign } :: acc) r.body [] |> List.rev
let items r = List.map (fun t -> t.item) (tuples r)

let fold f r init = Item_map.fold (fun item sign acc -> f { item; sign } acc) r.body init
let iter f r = Item_map.iter (fun item sign -> f { item; sign }) r.body

let filter p r =
  { r with body = Item_map.filter (fun item sign -> p { item; sign }) r.body }

let of_tuples ?name schema rows =
  List.fold_left
    (fun r (sign, names) -> add r (Item.of_names schema names) sign)
    (empty ?name schema) rows

let equal a b =
  Schema.equal a.schema b.schema && Item_map.equal Types.sign_equal a.body b.body

let to_rows r =
  List.map
    (fun { item; sign } ->
      let cells =
        List.init (Schema.arity r.schema) (fun i ->
            let h = Schema.hierarchy r.schema i in
            let v = Item.coord item i in
            if Hierarchy.is_class h v then "V " ^ Hierarchy.node_label h v
            else Hierarchy.node_label h v)
      in
      Format.asprintf "%a" Types.pp_sign sign :: cells)
    (tuples r)

let pp ppf r =
  let headers = "" :: Schema.names r.schema in
  Format.fprintf ppf "%s" (Hr_util.Texttable.render_rows ~headers (to_rows r))
