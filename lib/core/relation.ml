module Hierarchy = Hr_hierarchy.Hierarchy

type tuple = { item : Item.t; sign : Types.sign }

module Item_map = Map.Make (Item)

(* Memoized binding index: per attribute, hierarchy node -> positions
   (ascending) of tuples whose item carries that node in that coordinate.
   Built lazily on the first [candidates] probe and published through an
   [Atomic.t] so concurrent reader domains share one build; the structure
   is plain arrays and a hashtable that is never mutated after publication,
   so cross-domain sharing is safe. Every body-changing constructor
   allocates a fresh cell — values are persistent, so an index never goes
   stale, it just belongs to the version that built it. *)
type index = { ix_tuples : tuple array; ix_buckets : (int, int array) Hashtbl.t array }

type t = {
  name : string;
  schema : Schema.t;
  body : Types.sign Item_map.t;
  ix : index option Atomic.t;
}

let empty ?(name = "r") schema =
  { name; schema; body = Item_map.empty; ix = Atomic.make None }

let name r = r.name
let with_name r name = { r with name }
let schema r = r.schema

(* Items order by raw node-id arrays (not through the schema), so a
   schema swap never reorders the body map — and node ids are preserved
   by Schema.rebind, so the shared memoized index stays valid too. *)
let with_schema r schema = { r with schema }
let cardinality r = Item_map.cardinal r.body
let is_empty r = Item_map.is_empty r.body

let check_item r item =
  if Item.arity item <> Schema.arity r.schema then
    Types.model_error "item arity %d does not match relation %S" (Item.arity item) r.name

let with_body r body = { r with body; ix = Atomic.make None }

let set r item sign =
  check_item r item;
  with_body r (Item_map.add item sign r.body)

let add r item sign =
  check_item r item;
  match Item_map.find_opt item r.body with
  | None -> with_body r (Item_map.add item sign r.body)
  | Some existing ->
    if Types.sign_equal existing sign then r
    else
      Types.model_error "direct contradiction in %S on item %s" r.name
        (Item.to_string r.schema item)

let remove r item = with_body r (Item_map.remove item r.body)

let add_named r sign names = add r (Item.of_names r.schema names) sign

let find r item = Item_map.find_opt item r.body
let mem r item = Item_map.mem item r.body

let tuples r = Item_map.fold (fun item sign acc -> { item; sign } :: acc) r.body [] |> List.rev
let items r = List.map (fun t -> t.item) (tuples r)

let fold f r init = Item_map.fold (fun item sign acc -> f { item; sign } acc) r.body init
let iter f r = Item_map.iter (fun item sign -> f { item; sign }) r.body

let filter p r = with_body r (Item_map.filter (fun item sign -> p { item; sign }) r.body)

let build_index r =
  let arity = Schema.arity r.schema in
  let ix_tuples = Array.of_list (tuples r) in
  let acc = Array.init arity (fun _ -> Hashtbl.create 64) in
  Array.iteri
    (fun pos t ->
      for i = 0 to arity - 1 do
        let node = Item.coord t.item i in
        match Hashtbl.find_opt acc.(i) node with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.add acc.(i) node (ref [ pos ])
      done)
    ix_tuples;
  let ix_buckets =
    Array.map
      (fun tbl ->
        let frozen = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
        Hashtbl.iter (fun node l -> Hashtbl.add frozen node (Array.of_list (List.rev !l))) tbl;
        frozen)
      acc
  in
  { ix_tuples; ix_buckets }

let index r =
  match Atomic.get r.ix with
  | Some ix -> ix
  | None ->
    let ix = build_index r in
    (* A racing builder may overwrite with its own equivalent copy; the
       loser's work is wasted, never wrong. *)
    Atomic.set r.ix (Some ix);
    ix

let candidates r item =
  check_item r item;
  let arity = Schema.arity r.schema in
  if arity = 0 then tuples r
  else begin
    let ix = index r in
    (* Coordinate i of a subsuming tuple must be an ancestor (inclusive)
       of the query's coordinate i; probe only the cheapest attribute and
       leave the rest to the caller's full subsumption test. A tuple sits
       in exactly one bucket per attribute, so the candidate list is
       duplicate-free. *)
    let ancestors =
      Array.init arity (fun i ->
          Hierarchy.ancestors (Schema.hierarchy r.schema i) (Item.coord item i))
    in
    let count i =
      List.fold_left
        (fun acc node ->
          match Hashtbl.find_opt ix.ix_buckets.(i) node with
          | Some a -> acc + Array.length a
          | None -> acc)
        0 ancestors.(i)
    in
    let best = ref 0 in
    let best_n = ref (count 0) in
    for i = 1 to arity - 1 do
      let n = count i in
      if n < !best_n then begin
        best := i;
        best_n := n
      end
    done;
    if !best_n = 0 then []
    else
      List.concat_map
        (fun node ->
          match Hashtbl.find_opt ix.ix_buckets.(!best) node with
          | Some a -> Array.to_list a
          | None -> [])
        ancestors.(!best)
      |> List.sort Int.compare
      |> List.map (fun pos -> ix.ix_tuples.(pos))
  end

let of_tuples ?name schema rows =
  List.fold_left
    (fun r (sign, names) -> add r (Item.of_names schema names) sign)
    (empty ?name schema) rows

let equal a b =
  Schema.equal a.schema b.schema && Item_map.equal Types.sign_equal a.body b.body

let to_rows r =
  List.map
    (fun { item; sign } ->
      let cells =
        List.init (Schema.arity r.schema) (fun i ->
            let h = Schema.hierarchy r.schema i in
            let v = Item.coord item i in
            if Hierarchy.is_class h v then "V " ^ Hierarchy.node_label h v
            else Hierarchy.node_label h v)
      in
      Format.asprintf "%a" Types.pp_sign sign :: cells)
    (tuples r)

let pp ppf r =
  let headers = "" :: Schema.names r.schema in
  Format.fprintf ppf "%s" (Hr_util.Texttable.render_rows ~headers (to_rows r))
