(** A named collection of hierarchies and relations — the database.

    Relations are immutable values; the catalog maps names to current
    versions. All mutation goes through {!Txn} transactions, which enforce
    the ambiguity constraint at commit time (paper, §3.1: "whenever an
    update is made we require that the update does not create an
    unresolved conflict ... within the same transaction"). *)

type t

val create : unit -> t

(** {2 Versioning}

    The catalog's name maps are persistent: {!snapshot} captures the
    current hierarchy and relation bindings in O(1), and no later
    mutation of the live catalog can change what the captured value
    sees. A snapshot is only safe to read from other OCaml domains
    after {!freeze} has sealed every hierarchy (reads then touch no
    mutable state); the server's version publisher
    ([Hr_exec.Publisher]) enforces that order. Observed statistics are
    shared between a catalog and its snapshots by design — they are
    estimator feedback, not query-visible data. *)

val snapshot : t -> t
(** An immutable capture of the current bindings (O(1), shares all
    structure). The live catalog continues to evolve independently. *)

val same_bindings : t -> t -> bool
(** Physical equality of both map roots — true iff no binding has been
    added, replaced or dropped between the two captures. O(1); used by
    the publisher to skip republishing an unchanged catalog. *)

val freeze : t -> unit
(** {!Hr_hierarchy.Hierarchy.freeze} every registered hierarchy, making
    all read paths pure. Subsequent DDL must go through
    {!update_hierarchy}, which copies. Idempotent; newly registered
    hierarchies start unfrozen. *)

val update_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> (Hr_hierarchy.Hierarchy.t -> 'a) -> 'a
(** [update_hierarchy t h f] mutates registered hierarchy [h] through
    [f]. Unfrozen, [f] runs on [h] in place (the historical path).
    Frozen, [f] runs on a private copy which — on success — replaces
    [h] in the catalog and in the schema of every relation bound to it
    (node ids are preserved, so relation bodies carry over); snapshots
    taken earlier keep the original. If [f] raises, the catalog is
    unchanged. *)

val define_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> unit
(** Registers a hierarchy under its domain name. Raises
    {!Types.Model_error} on duplicates. *)

val hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t
val find_hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t option
val hierarchies : t -> Hr_hierarchy.Hierarchy.t list

val define_relation : ?check:bool -> t -> Relation.t -> unit
(** Registers a relation under its name; the initial contents must be
    consistent. [~check:false] skips the (quadratic) consistency sweep —
    for loaders re-registering contents that were validated when first
    defined, such as CRC-verified snapshots. *)

val relation : t -> string -> Relation.t
val find_relation : t -> string -> Relation.t option
val relations : t -> Relation.t list

val replace_relation : t -> Relation.t -> unit
(** Unchecked swap of a relation's current version (used by {!Txn.commit}
    and by maintenance operators like consolidation, which preserve
    semantics by construction). *)

val drop_relation : t -> string -> unit
(** Also forgets any observed statistics recorded for the relation. *)

(** {2 Observed statistics}

    A tiny feedback store for the static cost estimator: [EXPLAIN
    ANALYZE] records the actual row counts it measured per (relation,
    label) pair, and the estimator prefers an observed count over its
    formula the next time the same scan or selection is priced. Labels
    are ["*"] (the stored extension) or ["attr=value"] (a selection on
    the stored relation). The store is part of the catalog so durable
    backends persist it across checkpoints ({!Hr_storage.Snapshot}). *)

val record_stat : t -> rel:string -> label:string -> int -> unit
val observed_stat : t -> rel:string -> label:string -> int option

val observed_stats : t -> ((string * string) * int) list
(** All recorded pairs, sorted — for snapshot encoding and metrics. *)
