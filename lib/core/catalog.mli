(** A named collection of hierarchies and relations — the database.

    Relations are immutable values; the catalog maps names to current
    versions. All mutation goes through {!Txn} transactions, which enforce
    the ambiguity constraint at commit time (paper, §3.1: "whenever an
    update is made we require that the update does not create an
    unresolved conflict ... within the same transaction"). *)

type t

val create : unit -> t

val define_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> unit
(** Registers a hierarchy under its domain name. Raises
    {!Types.Model_error} on duplicates. *)

val hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t
val find_hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t option
val hierarchies : t -> Hr_hierarchy.Hierarchy.t list

val define_relation : ?check:bool -> t -> Relation.t -> unit
(** Registers a relation under its name; the initial contents must be
    consistent. [~check:false] skips the (quadratic) consistency sweep —
    for loaders re-registering contents that were validated when first
    defined, such as CRC-verified snapshots. *)

val relation : t -> string -> Relation.t
val find_relation : t -> string -> Relation.t option
val relations : t -> Relation.t list

val replace_relation : t -> Relation.t -> unit
(** Unchecked swap of a relation's current version (used by {!Txn.commit}
    and by maintenance operators like consolidation, which preserve
    semantics by construction). *)

val drop_relation : t -> string -> unit
(** Also forgets any observed statistics recorded for the relation. *)

(** {2 Observed statistics}

    A tiny feedback store for the static cost estimator: [EXPLAIN
    ANALYZE] records the actual row counts it measured per (relation,
    label) pair, and the estimator prefers an observed count over its
    formula the next time the same scan or selection is priced. Labels
    are ["*"] (the stored extension) or ["attr=value"] (a selection on
    the stored relation). The store is part of the catalog so durable
    backends persist it across checkpoints ({!Hr_storage.Snapshot}). *)

val record_stat : t -> rel:string -> label:string -> int -> unit
val observed_stat : t -> rel:string -> label:string -> int option

val observed_stats : t -> ((string * string) * int) list
(** All recorded pairs, sorted — for snapshot encoding and metrics. *)
