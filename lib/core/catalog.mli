(** A named collection of hierarchies and relations — the database.

    Relations are immutable values; the catalog maps names to current
    versions. All mutation goes through {!Txn} transactions, which enforce
    the ambiguity constraint at commit time (paper, §3.1: "whenever an
    update is made we require that the update does not create an
    unresolved conflict ... within the same transaction"). *)

type t

val create : unit -> t

val define_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> unit
(** Registers a hierarchy under its domain name. Raises
    {!Types.Model_error} on duplicates. *)

val hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t
val find_hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t option
val hierarchies : t -> Hr_hierarchy.Hierarchy.t list

val define_relation : ?check:bool -> t -> Relation.t -> unit
(** Registers a relation under its name; the initial contents must be
    consistent. [~check:false] skips the (quadratic) consistency sweep —
    for loaders re-registering contents that were validated when first
    defined, such as CRC-verified snapshots. *)

val relation : t -> string -> Relation.t
val find_relation : t -> string -> Relation.t option
val relations : t -> Relation.t list

val replace_relation : t -> Relation.t -> unit
(** Unchecked swap of a relation's current version (used by {!Txn.commit}
    and by maintenance operators like consolidation, which preserve
    semantics by construction). *)

val drop_relation : t -> string -> unit
