module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
module Ast = Hr_query.Ast
open Hierel

let m_statements = Hr_obs.Metrics.counter "storage.db.statements"
let m_checkpoints = Hr_obs.Metrics.counter "storage.db.checkpoints"
let g_lsn = Hr_obs.Metrics.gauge "storage.db.lsn"

type t = {
  dir : string;
  mutable catalog : Catalog.t;
  mutable store : Page_store.t;
  (* O(1) capture of the catalog as of the last checkpoint: a relation
     whose current binding is physically identical was not touched, so
     the checkpoint delta skips it without reading a tuple. *)
  mutable last_ckpt : Catalog.t;
  mutable ckpt_written : int;
  mutable ckpt_total : int;
  mutable wal : Wal.t;
  mutable pending : int;
  mutable lsn : int;
  mutable base_lsn : int;
  (* In-memory image of recent WAL records, newest first, covering
     exactly the LSNs in (tail_base, lsn]. Replication catch-up
     ([records_since]) is served from here so a committed statement does
     not re-read and re-parse the whole wal.log per subscriber. The tail
     is kept across checkpoints (records stay addressable even after the
     file is truncated) and bounded: once it exceeds [2 * tail_cap]
     records the oldest half is forgotten and [tail_base] advances. *)
  mutable tail : Wal.record list;
  mutable tail_len : int;
  mutable tail_base : int;
  (* Highest LSN covered by a completed WAL sync. Shipping must never
     send records above this: a replica could make them durable and ack
     before the primary does, and a primary crash would then leave the
     replica ahead — divergence. *)
  mutable synced_lsn : int;
  auto_checkpoint_every : int;
  fsync : bool;
  lock_fd : Unix.file_descr;
}

let tail_cap = 4096

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let pages_path dir = Filename.concat dir "pages.db"
let wal_path dir = Filename.concat dir "wal.log"
let lock_path dir = Filename.concat dir "LOCK"
let meta_path dir = Filename.concat dir "meta"
let graphs_path dir = Filename.concat dir "graphs.bin"

(* One writer per directory: an OS-level advisory lock on a LOCK file.
   The lock dies with the process, so a crash never wedges the db. *)
let acquire_lock dir =
  let fd = Unix.openfile (lock_path dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (try Unix.lockf fd Unix.F_TLOCK 0
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
     Unix.close fd;
     failwith (Printf.sprintf "database %s is locked by another process" dir));
  fd

(* [meta] holds the snapshot's LSN as a "base_lsn=N" first line, written
   atomically (tmp + rename) so a crash never leaves a half-written
   number next to a valid snapshot. Absent means 0 (pre-LSN directory or
   fresh database). A second "published_lsn=N" line records the catalog
   version LSN that was publishable at the checkpoint — by the
   visibility-never-outruns-durability invariant (docs/CONCURRENCY.md)
   it can never legitimately exceed the durable head LSN, which is what
   [hrdb fsck] finding F019 verifies. [read_meta] only consumes the
   first line, so directories written by older builds load unchanged. *)
let read_meta dir =
  let path = meta_path dir in
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let line = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic) in
    match String.split_on_char '=' (String.trim line) with
    | [ "base_lsn"; n ] -> ( match int_of_string_opt n with Some n when n >= 0 -> n | _ -> 0)
    | _ -> 0
  end

let write_meta dir base_lsn =
  let tmp = meta_path dir ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "base_lsn=%d\n" base_lsn;
  (* the checkpoint is itself a commit point: the snapshot's LSN is
     both durable and the newest publishable version *)
  Printf.fprintf oc "published_lsn=%d\n" base_lsn;
  close_out oc;
  Sys.rename tmp (meta_path dir)

(* Build a paged store for [catalog] beside [pages], then rename it into
   place: a crash mid-build leaves only a dead .tmp (removed on the next
   open), never a half-written pages.db. *)
let build_store ~fsync ~base_lsn pages catalog =
  let tmp = pages ^ ".tmp" in
  let s = Page_store.create tmp in
  Page_store.apply_catalog s catalog;
  Page_store.set_ddl s catalog;
  ignore (Page_store.commit s ~fsync ~base_lsn ());
  Page_store.close s;
  Sys.rename tmp pages;
  (* reopen + to_catalog primes the store's TID maps for later deltas *)
  let s = Page_store.open_ pages in
  (s, Page_store.to_catalog s)

let open_dir ?(auto_checkpoint_every = 10_000) ?(fsync = true) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let lock_fd = acquire_lock dir in
  let pages = pages_path dir in
  if Sys.file_exists (pages ^ ".tmp") then Sys.remove (pages ^ ".tmp");
  let store, catalog =
    if Sys.file_exists pages then begin
      (* Trusted load: pages were sealed (CRC) by the committer; [fsck]
         re-runs the deep checks. Recovery reads the page store and
         replays the WAL tail onto it — no monolithic snapshot decode. *)
      let s = Page_store.open_ pages in
      (s, Page_store.to_catalog s)
    end
    else begin
      (* First open of a legacy (snapshot.bin) or fresh directory:
         migrate into a paged store. The snapshot codec survives as the
         interchange/bootstrap format; the stale files are removed so
         they cannot shadow the paged state. *)
      let catalog =
        if Sys.file_exists (snapshot_path dir) then
          Snapshot.read_file ~check:false (snapshot_path dir)
        else Catalog.create ()
      in
      let sc = build_store ~fsync ~base_lsn:(read_meta dir) pages catalog in
      if Sys.file_exists (snapshot_path dir) then Sys.remove (snapshot_path dir);
      if Sys.file_exists (graphs_path dir) then Sys.remove (graphs_path dir);
      sc
    end
  in
  let base_lsn = Page_store.base_lsn store in
  (* capture the page store's state before replay mutates the catalog *)
  let last_ckpt = Catalog.snapshot catalog in
  let scan = Wal.recover (wal_path dir) in
  let records = scan.Wal.records in
  (match scan.Wal.tail with
  | None -> ()
  | Some { Wal.dropped_bytes; dropped_records } ->
    (* Data-loss-free truncation: only unacknowledged bytes past the
       last intact record are dropped, but the operator should see it. *)
    Printf.eprintf
      "hrdb: warning: %s had a torn tail; dropped %d byte(s) (~%d record(s)) past the \
       last intact record\n\
       %!"
      (wal_path dir) dropped_bytes dropped_records;
    (* Repair the file too: appending after unreadable garbage would
       strand every post-recovery record beyond the next replay's stop
       point, silently losing acknowledged statements on the reopen
       after this one. *)
    Wal.truncate_to (wal_path dir) scan.Wal.ok_bytes);
  (* A crash between writing snapshot.bin + meta and truncating the WAL
     leaves records with lsn <= base_lsn in the file; the snapshot
     already contains them, so replaying them would double-apply (or
     fail outright on e.g. a duplicate CREATE). *)
  let records = List.filter (fun { Wal.lsn; _ } -> lsn > base_lsn) records in
  List.iter
    (fun { Wal.stmt; _ } ->
      match Eval.run_script catalog stmt with
      | Ok _ -> ()
      | Error msg ->
        (* A logged statement failing on replay means the snapshot and
           log disagree; refuse to continue on half-recovered state. *)
        failwith (Printf.sprintf "WAL replay failed on %S: %s" stmt msg))
    records;
  let lsn =
    List.fold_left (fun acc { Wal.lsn; _ } -> max acc lsn) base_lsn records
  in
  Hr_obs.Metrics.set g_lsn lsn;
  {
    dir;
    catalog;
    store;
    last_ckpt;
    ckpt_written = 0;
    ckpt_total = 0;
    wal = Wal.open_ ~fsync (wal_path dir);
    pending = List.length records;
    lsn;
    base_lsn;
    tail = List.rev records;
    tail_len = List.length records;
    tail_base = base_lsn;
    synced_lsn = lsn;
    auto_checkpoint_every;
    fsync;
    lock_fd;
  }

let catalog t = t.catalog
let dir t = t.dir

(* The single definition lives in the AST (the effect analysis shares
   it); kept under its historical name here for the storage callers. *)
let mutating = Ast.mutating

(* The WAL stores each mutating statement's source text, so the script is
   split into statements here (HRQL has no string literals, making ';' an
   unambiguous separator) and each piece parsed and executed separately. *)
let split_statements script =
  String.split_on_char ';' script
  |> List.map String.trim
  |> List.filter (fun s -> s <> "" && not (String.for_all (fun c -> c = '\n' || c = ' ') s))

let script_mutation script =
  (* Every lexer/parser exception is caught here: this runs on the
     server's pre-flight path, where an attacker-controlled payload that
     raised would escape the event loop and kill the process. *)
  let is_mutating source =
    match Hr_query.Lexer.tokenize source with
    | [] -> false (* comment-only segment *)
    | _ :: _ -> (
      match Parser.parse_statement source with
      | { Ast.stmt; _ } -> mutating stmt
      | exception Parser.Parse_error _ -> false
      | exception Hr_query.Lexer.Lex_error _ -> false)
    | exception Hr_query.Lexer.Lex_error _ -> false
  in
  List.find_opt is_mutating (split_statements script)

let tail_push t record =
  t.tail <- record :: t.tail;
  t.tail_len <- t.tail_len + 1;
  if t.tail_len > 2 * tail_cap then begin
    let kept = List.filteri (fun i _ -> i < tail_cap) t.tail in
    (* oldest kept record is last in the newest-first list *)
    let oldest = List.nth kept (tail_cap - 1) in
    t.tail <- kept;
    t.tail_len <- tail_cap;
    t.tail_base <- oldest.Wal.lsn - 1
  end

let log_statement t source =
  t.lsn <- t.lsn + 1;
  let stmt = source ^ ";" in
  Wal.append t.wal ~lsn:t.lsn stmt;
  tail_push t { Wal.lsn = t.lsn; stmt };
  t.pending <- t.pending + 1;
  Hr_obs.Metrics.set g_lsn t.lsn

let checkpoint t =
  Hr_obs.Metrics.incr m_checkpoints;
  (* Wal.close below syncs buffered appends before the file is truncated;
     everything up to [t.lsn] is durable once the pages commit. *)
  t.synced_lsn <- t.lsn;
  (* Delta, not rewrite: only relations whose binding changed since the
     last checkpoint are diffed, and only their changed tuples touch a
     page. A crash after the page commit but before the WAL truncation
     cannot double-apply — replay skips LSNs at or below the store's
     base_lsn. *)
  List.iter
    (fun rel ->
      match Catalog.find_relation t.last_ckpt (Relation.name rel) with
      | Some old when old == rel -> ()
      | Some old -> Page_store.apply_relation t.store ~old rel
      | None -> Page_store.apply_relation t.store rel)
    (Catalog.relations t.catalog);
  List.iter
    (fun old ->
      match Catalog.find_relation t.catalog (Relation.name old) with
      | Some _ -> ()
      | None -> Page_store.drop_relation t.store (Relation.name old))
    (Catalog.relations t.last_ckpt);
  Page_store.set_ddl t.store t.catalog;
  let written, total = Page_store.commit t.store ~fsync:t.fsync ~base_lsn:t.lsn () in
  t.ckpt_written <- written;
  t.ckpt_total <- total;
  write_meta t.dir t.lsn;
  Wal.close t.wal;
  Wal.truncate (wal_path t.dir);
  t.wal <- Wal.open_ ~fsync:t.fsync (wal_path t.dir);
  t.base_lsn <- t.lsn;
  t.pending <- 0;
  t.last_ckpt <- Catalog.snapshot t.catalog

let last_checkpoint_pages t = (t.ckpt_written, t.ckpt_total)

(* A long-lived primary would otherwise grow wal.log without bound (and
   pay for it at the next recovery); the tail keeps checkpointed records
   addressable for replication catch-up. *)
let maybe_auto_checkpoint t =
  if t.auto_checkpoint_every > 0 && t.pending >= t.auto_checkpoint_every then
    checkpoint t

(* Executes a script, appending mutating statements to the WAL buffer
   without syncing. The caller owns the commit point: nothing run here
   may be acknowledged to a client until [sync] returns. *)
let exec_buffered t script =
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | source :: rest -> (
      (* tokenize inside the match, not in a [when] guard: a guard that
         raises [Lex_error] would escape [exec] entirely instead of
         becoming an [Error] reply *)
      match Hr_query.Lexer.tokenize source with
      | [] -> run acc rest (* comment-only segment *)
      | exception Hr_query.Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
      | _ :: _ -> (
      match Parser.parse_statement source with
      | exception Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
      | exception Hr_query.Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
      | { Ast.stmt; _ } -> (
        Hr_obs.Metrics.incr m_statements;
        match Eval.exec t.catalog stmt with
        | Ok out ->
          (* log only acknowledged statements: a rejected update (e.g. an
             integrity violation) must not poison replay *)
          if mutating stmt then log_statement t source;
          run (out :: acc) rest
        | Error msg -> Error msg)))
  in
  let result = run [] (split_statements script) in
  maybe_auto_checkpoint t;
  result

let sync t =
  Wal.sync t.wal;
  t.synced_lsn <- t.lsn

let unsynced t = Wal.unsynced t.wal
let synced_lsn t = t.synced_lsn

(* The sequential path keeps its historical contract: one call, one
   durable commit. Batching callers use [exec_buffered]/[commit_many]
   and share the sync. *)
let exec t script =
  let result = exec_buffered t script in
  sync t;
  result

let commit_many t scripts =
  let results = List.map (exec_buffered t) scripts in
  sync t;
  results

let close t =
  Wal.close t.wal;
  Page_store.close t.store;
  (try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  Unix.close t.lock_fd

let wal_records t = t.pending
let lsn t = t.lsn
let base_lsn t = t.base_lsn

let records_since t from_lsn =
  if from_lsn >= t.tail_base then begin
    (* served from memory: the tail is newest-first, so collecting while
       the LSN stays above the offset yields oldest-first *)
    let rec collect acc = function
      | ({ Wal.lsn; _ } as r) :: rest when lsn > from_lsn -> collect (r :: acc) rest
      | _ -> acc
    in
    collect [] t.tail
  end
  else List.of_seq (Wal.stream_from t.wal from_lsn)

let snapshot_image t = Snapshot.encode t.catalog

let install_snapshot t ~lsn image =
  match Snapshot.decode image with
  | exception Snapshot.Corrupt_snapshot msg -> Error ("corrupt snapshot image: " ^ msg)
  | catalog ->
    (* A replica image replaces everything: rebuild the paged store from
       scratch (tmp + rename, same crash safety as migration) rather
       than diffing against state the primary no longer vouches for. *)
    Page_store.close t.store;
    let store, catalog = build_store ~fsync:t.fsync ~base_lsn:lsn (pages_path t.dir) catalog in
    t.store <- store;
    t.catalog <- catalog;
    t.last_ckpt <- Catalog.snapshot catalog;
    write_meta t.dir lsn;
    Wal.close t.wal;
    Wal.truncate (wal_path t.dir);
    t.wal <- Wal.open_ ~fsync:t.fsync (wal_path t.dir);
    t.lsn <- lsn;
    t.base_lsn <- lsn;
    t.pending <- 0;
    t.tail <- [];
    t.tail_len <- 0;
    t.tail_base <- lsn;
    t.synced_lsn <- lsn;
    Hr_obs.Metrics.set g_lsn lsn;
    Ok ()

let apply_replicated t ~lsn source =
  if lsn <= t.lsn then
    Error (Printf.sprintf "duplicate record: LSN %d already applied (at %d)" lsn t.lsn)
  else
    match Eval.run_script t.catalog source with
    | Ok _ ->
      Hr_obs.Metrics.incr m_statements;
      Wal.append t.wal ~lsn source;
      tail_push t { Wal.lsn; stmt = source };
      t.pending <- t.pending + 1;
      t.lsn <- lsn;
      Hr_obs.Metrics.set g_lsn lsn;
      Ok ()
    | Error msg -> Error msg

(* The bookkeeping half of [apply_replicated] without the evaluation:
   for callers (the parallel WAL apply in lib/repl) that evaluated the
   record against a snapshot and installed the result themselves, but
   must still preserve the local WAL's contiguity discipline (fsck
   F007) record by record, in the primary's LSN order. *)
let log_replicated t ~lsn source =
  if lsn <= t.lsn then
    Error (Printf.sprintf "duplicate record: LSN %d already applied (at %d)" lsn t.lsn)
  else begin
    Hr_obs.Metrics.incr m_statements;
    Wal.append t.wal ~lsn source;
    tail_push t { Wal.lsn; stmt = source };
    t.pending <- t.pending + 1;
    t.lsn <- lsn;
    Hr_obs.Metrics.set g_lsn lsn;
    Ok ()
  end
