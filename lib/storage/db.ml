module Eval = Hr_query.Eval
module Parser = Hr_query.Parser
module Ast = Hr_query.Ast
open Hierel

let m_statements = Hr_obs.Metrics.counter "storage.db.statements"
let m_checkpoints = Hr_obs.Metrics.counter "storage.db.checkpoints"

type t = {
  dir : string;
  mutable catalog : Catalog.t;
  mutable wal : Wal.t;
  mutable pending : int;
  lock_fd : Unix.file_descr;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let wal_path dir = Filename.concat dir "wal.log"
let lock_path dir = Filename.concat dir "LOCK"

(* One writer per directory: an OS-level advisory lock on a LOCK file.
   The lock dies with the process, so a crash never wedges the db. *)
let acquire_lock dir =
  let fd = Unix.openfile (lock_path dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (try Unix.lockf fd Unix.F_TLOCK 0
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
     Unix.close fd;
     failwith (Printf.sprintf "database %s is locked by another process" dir));
  fd

let open_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let lock_fd = acquire_lock dir in
  let catalog =
    if Sys.file_exists (snapshot_path dir) then Snapshot.read_file (snapshot_path dir)
    else Catalog.create ()
  in
  let records = Wal.replay (wal_path dir) in
  List.iter
    (fun stmt ->
      match Eval.run_script catalog stmt with
      | Ok _ -> ()
      | Error msg ->
        (* A logged statement failing on replay means the snapshot and
           log disagree; refuse to continue on half-recovered state. *)
        failwith (Printf.sprintf "WAL replay failed on %S: %s" stmt msg))
    records;
  { dir; catalog; wal = Wal.open_ (wal_path dir); pending = List.length records; lock_fd }

let catalog t = t.catalog

let mutating = function
  | Ast.Create_domain _ | Ast.Create_class _ | Ast.Create_instance _ | Ast.Create_isa _
  | Ast.Create_preference _ | Ast.Create_relation _ | Ast.Drop_relation _ | Ast.Insert _
  | Ast.Delete _ | Ast.Let_binding _ | Ast.Consolidate _ | Ast.Explicate _ ->
    true
  | Ast.Select_query _ | Ast.Ask _ | Ast.Check _ | Ast.Show_hierarchy _ | Ast.Show_relations
  | Ast.Show_hierarchies | Ast.Explain _ | Ast.Explain_plan _ | Ast.Explain_analyze _
  | Ast.Count _ | Ast.Diff _ | Ast.Stats _ | Ast.Stats_reset ->
    false

(* The WAL stores each mutating statement's source text, so the script is
   split into statements here (HRQL has no string literals, making ';' an
   unambiguous separator) and each piece parsed and executed separately. *)
let split_statements script =
  String.split_on_char ';' script
  |> List.map String.trim
  |> List.filter (fun s -> s <> "" && not (String.for_all (fun c -> c = '\n' || c = ' ') s))

let exec t script =
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | source :: rest when Hr_query.Lexer.tokenize source = [] ->
      (* comment-only segment *)
      run acc rest
    | source :: rest -> (
      match Parser.parse_statement source with
      | exception Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
      | exception Hr_query.Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
      | { Ast.stmt; _ } -> (
        Hr_obs.Metrics.incr m_statements;
        match Eval.exec t.catalog stmt with
        | Ok out ->
          (* log only acknowledged statements: a rejected update (e.g. an
             integrity violation) must not poison replay *)
          if mutating stmt then begin
            Wal.append t.wal (source ^ ";");
            t.pending <- t.pending + 1
          end;
          run (out :: acc) rest
        | Error msg -> Error msg))
  in
  run [] (split_statements script)

let checkpoint t =
  Hr_obs.Metrics.incr m_checkpoints;
  Snapshot.write_file t.catalog (snapshot_path t.dir);
  Wal.close t.wal;
  Wal.truncate (wal_path t.dir);
  t.wal <- Wal.open_ (wal_path t.dir);
  t.pending <- 0

let close t =
  Wal.close t.wal;
  (try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  Unix.close t.lock_fd

let wal_records t = t.pending
