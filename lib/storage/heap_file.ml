(* Page layout: [u16 row_count][u16 used_bytes] then rows, each
   [u16 length][bytes]. Header is 4 bytes. *)

let header_bytes = 4
let max_row = Pager.page_size - header_bytes - 2

type t = { pager : Pager.t }

let get_u16 page off = Char.code (Bytes.get page off) lor (Char.code (Bytes.get page (off + 1)) lsl 8)

let set_u16 page off v =
  Bytes.set page off (Char.chr (v land 0xff));
  Bytes.set page (off + 1) (Char.chr ((v lsr 8) land 0xff))

let create ?pool_pages path = { pager = Pager.create ?pool_pages path }
let close t = Pager.close t.pager
let pager t = t.pager
let page_count t = Pager.page_count t.pager

let append t row =
  let len = String.length row in
  if len > max_row then invalid_arg "Heap_file.append: row exceeds page capacity";
  let target =
    let pages = Pager.page_count t.pager in
    if pages = 0 then Pager.allocate t.pager
    else begin
      let last = pages - 1 in
      let page = Pager.read_page t.pager last in
      let used = get_u16 page 2 in
      if header_bytes + used + 2 + len <= Pager.page_size then last
      else Pager.allocate t.pager
    end
  in
  (* mutate the pooled page in place — the old full-page [Bytes.copy]
     per row made bulk loads O(page_size) per append *)
  Pager.with_page t.pager target (fun page ->
      let count = get_u16 page 0 in
      let used = get_u16 page 2 in
      let off = header_bytes + used in
      set_u16 page off len;
      Bytes.blit_string row 0 page (off + 2) len;
      set_u16 page 0 (count + 1);
      set_u16 page 2 (used + 2 + len))

let scan t f =
  for page_no = 0 to Pager.page_count t.pager - 1 do
    let page = Pager.read_page t.pager page_no in
    let count = get_u16 page 0 in
    let off = ref header_bytes in
    for _ = 1 to count do
      let len = get_u16 page !off in
      f (Bytes.sub_string page (!off + 2) len);
      off := !off + 2 + len
    done
  done

let rows t =
  let acc = ref [] in
  scan t (fun row -> acc := row :: !acc);
  List.rev !acc

let row_count t =
  let n = ref 0 in
  scan t (fun _ -> incr n);
  !n
