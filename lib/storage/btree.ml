(* A disk B-tree over fixed-size pages, keyed by byte strings with an
   integer payload (a TID), supporting duplicate keys by treating
   (key, tid) as the composite entry identity. The tree does not own its
   pages: every access goes through an abstract {!pages} provider, which
   is how {!Page_store} gives it shadow-paged, checksummed, pooled pages
   while the test oracle drives the very same code over an in-memory
   array. *)

let m_inserts = Hr_obs.Metrics.counter "storage.btree.inserts"
let m_deletes = Hr_obs.Metrics.counter "storage.btree.deletes"
let m_lookups = Hr_obs.Metrics.counter "storage.btree.lookups"
let m_splits = Hr_obs.Metrics.counter "storage.btree.splits"
let m_merges = Hr_obs.Metrics.counter "storage.btree.merges"
let m_rebalances = Hr_obs.Metrics.counter "storage.btree.rebalances"
let m_node_reads = Hr_obs.Metrics.counter "storage.btree.node_reads"

type pages = {
  read : int -> bytes;
  modify : int -> (bytes -> unit) -> unit;
  alloc : unit -> int;
  free : int -> unit;
}

let max_key = 512

(* ---- node layout ------------------------------------------------------

   Shared 16-byte page header (see docs/STORAGE.md): byte 0 is the page
   type (leaf/internal), bytes 2-3 the entry count, bytes 4-5 the end of
   the packed payload; bytes 8-15 (logical id, CRC) belong to the page
   store and are never touched here.

   Leaf payload (from offset 16):      [u16 klen][u64 tid][key] ...
   Internal payload: u32 leftmost child at 16, then (from offset 20)
                     [u16 klen][u32 child][u64 tid][key] ...

   An internal entry's (key, tid) is the separator: its child subtree
   holds exactly the entries >= (key, tid) and < the next separator. *)

let header = 16
let tag_leaf = 3
let tag_internal = 4

type entry = { key : string; tid : int; child : int (* -1 in leaves *) }
type node = { leaf : bool; leftmost : int; entries : entry list }

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

let get_u64 b off = get_u32 b off lor (get_u32 b (off + 4) lsl 32)

let set_u64 b off v =
  set_u32 b off (v land 0xffffffff);
  set_u32 b (off + 4) ((v lsr 32) land 0x7fffffff)

let entry_size leaf e = (if leaf then 10 else 14) + String.length e.key
let payload_start leaf = if leaf then header else header + 4
let capacity leaf = Pager.page_size - payload_start leaf

let payload_size node =
  List.fold_left (fun acc e -> acc + entry_size node.leaf e) 0 node.entries

(* Composite order: key bytes, then tid. *)
let cmp_entry k t e =
  match String.compare k e.key with 0 -> compare t e.tid | c -> c

let decode b =
  let tag = Char.code (Bytes.get b 0) in
  if tag <> tag_leaf && tag <> tag_internal then
    invalid_arg (Printf.sprintf "Btree.decode: not a btree page (type %d)" tag);
  let leaf = tag = tag_leaf in
  let count = get_u16 b 2 in
  let leftmost = if leaf then -1 else get_u32 b header in
  let off = ref (payload_start leaf) in
  let entries =
    List.init count (fun _ ->
        let klen = get_u16 b !off in
        let child = if leaf then -1 else get_u32 b (!off + 2) in
        let tid = get_u64 b (!off + if leaf then 2 else 6) in
        let kpos = !off + if leaf then 10 else 14 in
        let key = Bytes.sub_string b kpos klen in
        off := kpos + klen;
        { key; tid; child })
  in
  { leaf; leftmost; entries }

let encode node b =
  Bytes.fill b 0 Pager.page_size '\000';
  Bytes.set b 0 (Char.chr (if node.leaf then tag_leaf else tag_internal));
  set_u16 b 2 (List.length node.entries);
  if not node.leaf then set_u32 b header node.leftmost;
  let off = ref (payload_start node.leaf) in
  List.iter
    (fun e ->
      let klen = String.length e.key in
      set_u16 b !off klen;
      if node.leaf then set_u64 b (!off + 2) e.tid
      else begin
        set_u32 b (!off + 2) e.child;
        set_u64 b (!off + 6) e.tid
      end;
      let kpos = !off + if node.leaf then 10 else 14 in
      Bytes.blit_string e.key 0 b kpos klen;
      off := kpos + klen)
    node.entries;
  set_u16 b 4 !off

let read_node pages id =
  Hr_obs.Metrics.incr m_node_reads;
  decode (pages.read id)

let write_node pages id node =
  pages.modify id (fun b -> encode node b)

let create pages =
  let id = pages.alloc () in
  write_node pages id { leaf = true; leftmost = -1; entries = [] };
  id

(* ---- routing ---------------------------------------------------------- *)

(* The child position covering (key, tid): 0 = leftmost, k >= 1 = the
   child of separator entry k-1. *)
let route node key tid =
  let rec go pos i = function
    | [] -> pos
    | e :: rest -> if cmp_entry key tid e >= 0 then go (i + 1) (i + 1) rest else pos
  in
  go 0 0 node.entries

let child_at node pos =
  if pos = 0 then node.leftmost else (List.nth node.entries (pos - 1)).child

(* ---- splitting -------------------------------------------------------- *)

(* Split an overfull entry list at (roughly) half its payload bytes.
   Both halves are guaranteed to fit: max_key bounds every entry well
   under half a page. *)
let split_bytes leaf entries =
  let total = List.fold_left (fun acc e -> acc + entry_size leaf e) 0 entries in
  let rec go acc size = function
    | [] -> (List.rev acc, [])
    | e :: rest ->
      if size > 0 && size + entry_size leaf e > total / 2 then (List.rev acc, e :: rest)
      else go (e :: acc) (size + entry_size leaf e) rest
  in
  go [] 0 entries

(* The result of inserting below: either the node was rewritten in
   place, or it split and the parent must absorb a new separator. *)
type push_up = Fit | Split of entry (* separator, child = new right node *)

let rec insert_rec pages id key tid =
  let node = read_node pages id in
  if node.leaf then begin
    if List.exists (fun e -> cmp_entry key tid e = 0) node.entries then Fit
    else begin
      let entries =
        let rec ins = function
          | [] -> [ { key; tid; child = -1 } ]
          | e :: rest ->
            if cmp_entry key tid e < 0 then { key; tid; child = -1 } :: e :: rest
            else e :: ins rest
        in
        ins node.entries
      in
      let node = { node with entries } in
      if payload_size node <= capacity true then begin
        write_node pages id node;
        Fit
      end
      else begin
        Hr_obs.Metrics.incr m_splits;
        let left, right = split_bytes true entries in
        let right_id = pages.alloc () in
        write_node pages id { node with entries = left };
        write_node pages right_id { node with entries = right };
        let sep = List.hd right in
        Split { key = sep.key; tid = sep.tid; child = right_id }
      end
    end
  end
  else begin
    let pos = route node key tid in
    match insert_rec pages (child_at node pos) key tid with
    | Fit -> Fit
    | Split sep ->
      (* the new separator lands at index [pos]: just after the entry
         whose child split *)
      let entries =
        let rec ins i rest =
          if i = 0 then sep :: rest
          else match rest with [] -> [ sep ] | e :: tl -> e :: ins (i - 1) tl
        in
        ins pos node.entries
      in
      let node = { node with entries } in
      if payload_size node <= capacity false then begin
        write_node pages id node;
        Fit
      end
      else begin
        Hr_obs.Metrics.incr m_splits;
        match split_bytes false entries with
        | left, mid :: right_rest ->
          let right_id = pages.alloc () in
          write_node pages id { node with entries = left };
          write_node pages right_id
            { node with leftmost = mid.child; entries = right_rest };
          Split { key = mid.key; tid = mid.tid; child = right_id }
        | _, [] -> assert false (* an overfull list always splits in two *)
      end
  end

let insert pages ~root ~key ~tid =
  if String.length key > max_key then
    invalid_arg (Printf.sprintf "Btree.insert: key exceeds %d bytes" max_key);
  Hr_obs.Metrics.incr m_inserts;
  match insert_rec pages root key tid with
  | Fit -> root
  | Split sep ->
    (* grow a level: fresh root with the old root as leftmost child *)
    let new_root = pages.alloc () in
    write_node pages new_root { leaf = false; leftmost = root; entries = [ sep ] };
    new_root

(* ---- deletion with rebalancing ---------------------------------------- *)

let underflow_threshold = (Pager.page_size - header) / 4

(* Merge or redistribute the children at positions [pos] and [pos+1] of
   [parent] (node value, id [pid]); returns the updated parent node. *)
let fix_siblings pages pid parent pos =
  let left_id = child_at parent pos and right_id = child_at parent (pos + 1) in
  let left = read_node pages left_id and right = read_node pages right_id in
  let sep = List.nth parent.entries pos in
  (* Internal children: the parent separator drops down between them,
     carrying the right node's leftmost pointer. Leaves: separators are
     copies of leaf entries, nothing drops. *)
  let merged =
    if left.leaf then left.entries @ right.entries
    else left.entries @ ({ key = sep.key; tid = sep.tid; child = right.leftmost } :: right.entries)
  in
  let merged_node = { left with entries = merged } in
  if payload_size merged_node <= capacity left.leaf then begin
    (* full merge: right disappears, the separator goes with it *)
    Hr_obs.Metrics.incr m_merges;
    write_node pages left_id merged_node;
    pages.free right_id;
    let entries = List.filteri (fun i _ -> i <> pos) parent.entries in
    let parent = { parent with entries } in
    write_node pages pid parent;
    parent
  end
  else begin
    (* redistribute: split the merged run; the right half's head becomes
       the new separator *)
    Hr_obs.Metrics.incr m_rebalances;
    match split_bytes left.leaf merged with
    | l, r :: rest when not left.leaf ->
      write_node pages left_id { left with entries = l };
      write_node pages right_id { right with leftmost = r.child; entries = rest };
      let entries =
        List.mapi
          (fun i e -> if i = pos then { key = r.key; tid = r.tid; child = right_id } else e)
          parent.entries
      in
      let parent = { parent with entries } in
      write_node pages pid parent;
      parent
    | l, (r :: _ as rs) ->
      write_node pages left_id { left with entries = l };
      write_node pages right_id { right with entries = rs };
      let entries =
        List.mapi
          (fun i e -> if i = pos then { key = r.key; tid = r.tid; child = right_id } else e)
          parent.entries
      in
      let parent = { parent with entries } in
      write_node pages pid parent;
      parent
    | _, [] -> assert false (* both sides were non-empty *)
  end

let rec delete_rec pages id key tid =
  let node = read_node pages id in
  if node.leaf then begin
    let entries = List.filter (fun e -> cmp_entry key tid e <> 0) node.entries in
    if List.length entries <> List.length node.entries then
      write_node pages id { node with entries }
  end
  else begin
    let pos = route node key tid in
    let child_id = child_at node pos in
    delete_rec pages child_id key tid;
    let child = read_node pages child_id in
    if payload_size child < underflow_threshold && node.entries <> [] then begin
      let node = read_node pages id in
      (* pair the underfull child with a neighbour: to the left when it
         is the last child, to the right otherwise *)
      let pos = if pos = List.length node.entries then pos - 1 else pos in
      ignore (fix_siblings pages id node pos)
    end
  end

let delete pages ~root ~key ~tid =
  Hr_obs.Metrics.incr m_deletes;
  delete_rec pages root key tid;
  let node = read_node pages root in
  if (not node.leaf) && node.entries = [] then begin
    (* the root lost its last separator: collapse a level *)
    let child = node.leftmost in
    pages.free root;
    child
  end
  else root

(* ---- range iteration --------------------------------------------------

   [iter_range] visits, in (key, tid) order, every entry with
   lo <= (key, tid) <= hi, where [lo]/[hi] are (key, tid) bounds and
   [None] means unbounded. No sibling chains: the traversal prunes
   internal children whose separator interval cannot intersect the
   range, so a point lookup touches one root-to-leaf path (plus a
   neighbour when duplicates straddle a boundary). *)

let cmp_bound (k, t) e = cmp_entry k t e

let rec iter_node pages id lo hi f =
  let node = read_node pages id in
  if node.leaf then
    List.iter
      (fun e ->
        let above_lo = match lo with None -> true | Some b -> cmp_bound b e <= 0 in
        let below_hi = match hi with None -> true | Some b -> cmp_bound b e >= 0 in
        if above_lo && below_hi then f e.key e.tid)
      node.entries
  else begin
    (* child k covers [sep_k, sep_{k+1}); visit it unless the range lies
       entirely outside that interval *)
    let seps = Array.of_list node.entries in
    let n = Array.length seps in
    for k = 0 to n do
      let child = if k = 0 then node.leftmost else seps.(k - 1).child in
      let lower_ok =
        (* range upper bound must reach the child's lower edge *)
        k = 0 || match hi with None -> true | Some b -> cmp_bound b seps.(k - 1) >= 0
      in
      let upper_ok =
        (* range lower bound must sit below the child's upper edge *)
        k = n || match lo with None -> true | Some b -> cmp_bound b seps.(k) < 0
      in
      if lower_ok && upper_ok then iter_node pages child lo hi f
    done
  end

let iter pages ~root f = iter_node pages root None None f

let lookup pages ~root key =
  Hr_obs.Metrics.incr m_lookups;
  let acc = ref [] in
  iter_node pages root (Some (key, 0)) (Some (key, max_int)) (fun _ tid -> acc := tid :: !acc);
  List.rev !acc

(* ---- introspection (tests, fsck) -------------------------------------- *)

let rec depth pages ~root =
  let node = read_node pages root in
  if node.leaf then 1 else 1 + depth pages ~root:node.leftmost

let rec node_ids pages ~root =
  let node = read_node pages root in
  if node.leaf then [ root ]
  else
    root
    :: List.concat_map
         (fun c -> node_ids pages ~root:c)
         (node.leftmost :: List.map (fun e -> e.child) node.entries)

(* Structural invariants, reported as human-readable faults rather than
   exceptions so fsck can keep going: every node decodes, entries are
   strictly ordered by (key, tid) globally, and each subtree respects
   its separator interval. *)
let check pages ~root =
  let faults = ref [] in
  let fault fmt = Format.kasprintf (fun s -> faults := s :: !faults) fmt in
  let rec walk id lo hi =
    match read_node pages id with
    | exception e ->
      fault "node %d does not decode: %s" id (Printexc.to_string e)
    | node ->
      let inside e =
        (match lo with None -> true | Some b -> cmp_bound b e <= 0)
        && match hi with None -> true | Some b -> cmp_bound b e > 0
      in
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          if cmp_entry a.key a.tid b >= 0 then
            fault "node %d: entries out of order at key %S" id b.key;
          ordered rest
        | _ -> ()
      in
      ordered node.entries;
      List.iter
        (fun e ->
          if not (inside e) then
            fault "node %d: entry %S/%d escapes its separator interval" id e.key e.tid)
        node.entries;
      if not node.leaf then begin
        let seps = Array.of_list node.entries in
        let n = Array.length seps in
        for k = 0 to n do
          let child = if k = 0 then node.leftmost else seps.(k - 1).child in
          let clo = if k = 0 then lo else Some (seps.(k - 1).key, seps.(k - 1).tid) in
          let chi = if k = n then hi else Some (seps.(k).key, seps.(k).tid) in
          walk child clo chi
        done
      end
  in
  walk root None None;
  List.rev !faults
