(** Binary encoding primitives for the storage layer.

    Hand-rolled rather than [Marshal] so the on-disk format is stable
    across compiler versions, versioned, and checkable: little-endian
    fixed-width integers, length-prefixed strings, counted lists, and a
    CRC-32 for record integrity. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  (** 32-bit unsigned, range-checked. *)

  val u64 : t -> int64 -> unit
  val string : t -> string -> unit
  (** Length-prefixed (u32). *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Count-prefixed (u32). *)

  val contents : t -> string
end

module Reader : sig
  type t

  exception Corrupt of string

  val of_string : string -> t
  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val string : t -> string
  val list : t -> (t -> 'a) -> 'a list
  (** Count-prefixed; elements are read (and [f] is applied) strictly
      left to right, matching the wire order. *)

  val iter : t -> (t -> unit) -> unit
  (** [list] without building the result — for decode paths that fold
      elements into an accumulator as they stream past. *)

  val at_end : t -> bool
  val remaining : t -> int
end

val crc32 : string -> int32
(** Standard CRC-32 (IEEE 802.3 polynomial). *)
