module Hierarchy = Hr_hierarchy.Hierarchy
module W = Codec.Writer
module R = Codec.Reader
open Hierel

exception Corrupt_snapshot of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt_snapshot s)) fmt

let magic = "HRELSNAP"

(* v2 appends the observed-statistics section (the cost estimator's
   EXPLAIN ANALYZE feedback); v1 snapshots still decode, with an empty
   store. *)
let version = 2

(* ---- encoding -------------------------------------------------------- *)

let encode_hierarchy w h =
  let label = Hierarchy.node_label h in
  W.string w (label (Hierarchy.root h));
  (* nodes in topological order so parents precede children on decode *)
  let order =
    let seen = Hashtbl.create 256 in
    let acc = ref [] in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        List.iter visit (Hierarchy.parents h v);
        acc := v :: !acc
      end
    in
    List.iter visit (Hierarchy.nodes h);
    List.rev !acc
  in
  let non_root = List.filter (fun v -> v <> Hierarchy.root h) order in
  W.list w
    (fun w v ->
      W.string w (label v);
      W.u8 w (if Hierarchy.is_instance h v then 1 else 0);
      W.list w (fun w p -> W.string w (label p)) (Hierarchy.parents h v))
    non_root;
  W.list w
    (fun w (weaker, stronger) ->
      W.string w (label weaker);
      W.string w (label stronger))
    (Hierarchy.preference_edges h)

let encode_relation w rel =
  let schema = Relation.schema rel in
  W.string w (Relation.name rel);
  W.list w
    (fun w (name, i) ->
      W.string w name;
      W.string w (Hr_util.Symbol.name (Hierarchy.domain (Schema.hierarchy schema i))))
    (List.mapi (fun i name -> (name, i)) (Schema.names schema));
  W.list w
    (fun w (t : Relation.tuple) ->
      W.u8 w (match t.Relation.sign with Types.Pos -> 1 | Types.Neg -> 0);
      W.list w
        (fun w (i : int) ->
          W.string w (Hierarchy.node_label (Schema.hierarchy schema i) (Item.coord t.Relation.item i)))
        (List.init (Schema.arity schema) Fun.id))
    (Relation.tuples rel)

let encode cat =
  let w = W.create () in
  let hierarchies =
    List.sort
      (fun a b -> Hr_util.Symbol.compare (Hierarchy.domain a) (Hierarchy.domain b))
      (Catalog.hierarchies cat)
  in
  W.list w encode_hierarchy hierarchies;
  let relations =
    List.sort (fun a b -> String.compare (Relation.name a) (Relation.name b))
      (Catalog.relations cat)
  in
  W.list w encode_relation relations;
  W.list w
    (fun w ((rel, label), count) ->
      W.string w rel;
      W.string w label;
      W.u32 w count)
    (Catalog.observed_stats cat);
  let body = W.contents w in
  let out = W.create () in
  W.string out magic;
  W.u32 out version;
  W.string out body;
  W.u32 out (Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF);
  W.contents out

(* ---- decoding -------------------------------------------------------- *)

(* The encoder wrote nodes in topological order (parents precede
   children), so each node can be added the moment it streams past — no
   intermediate (name, is_instance, parents) list. *)
let decode_hierarchy r =
  let root = R.string r in
  let h = Hierarchy.create root in
  R.iter r (fun r ->
      let name = R.string r in
      let is_instance = R.u8 r = 1 in
      let parents = List.filter (fun p -> p <> root) (R.list r R.string) in
      if is_instance then ignore (Hierarchy.add_instance h ~parents name)
      else ignore (Hierarchy.add_class h ~parents name));
  R.iter r (fun r ->
      let weaker = R.string r in
      let stronger = R.string r in
      Hierarchy.add_preference h ~weaker ~stronger);
  h

let decode_relation cat r =
  let name = R.string r in
  let attrs = R.list r (fun r ->
      let attr = R.string r in
      let domain = R.string r in
      (attr, domain))
  in
  let schema =
    Schema.make (List.map (fun (a, d) -> (a, Catalog.hierarchy cat d)) attrs)
  in
  let arity = Schema.arity schema in
  (* Per-attribute name -> node memo: a snapshot repeats the same labels
     across thousands of tuples, and the per-coordinate [find_exn]
     (symbol intern + table lookup) dominated decode cost. *)
  let memo = Array.init arity (fun _ -> Hashtbl.create 256) in
  let node i label =
    match Hashtbl.find_opt memo.(i) label with
    | Some v -> v
    | None ->
      let v = Hierarchy.find_exn (Schema.hierarchy schema i) label in
      Hashtbl.add memo.(i) label v;
      v
  in
  let rel = ref (Relation.empty ~name schema) in
  R.iter r (fun r ->
      let sign = if R.u8 r = 1 then Types.Pos else Types.Neg in
      let n = R.u32 r in
      if n <> arity then
        corrupt "tuple arity %d does not match schema arity %d in %S" n arity name;
      let coords = Array.make arity 0 in
      for i = 0 to arity - 1 do
        coords.(i) <- node i (R.string r)
      done;
      rel := Relation.add !rel (Item.make schema coords) sign);
  !rel

let decode ?(check = true) data =
  try
    let r = R.of_string data in
    let m = R.string r in
    if m <> magic then corrupt "bad magic %S" m;
    let v = R.u32 r in
    if v <> 1 && v <> version then corrupt "unsupported snapshot version %d" v;
    let body = R.string r in
    let crc = R.u32 r in
    let actual = Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF in
    if crc <> actual then corrupt "CRC mismatch: stored %08x, computed %08x" crc actual;
    let r = R.of_string body in
    let cat = Catalog.create () in
    let hierarchies = R.list r decode_hierarchy in
    List.iter (Catalog.define_hierarchy cat) hierarchies;
    let relations = R.list r (fun r -> decode_relation cat r) in
    List.iter (Catalog.define_relation ~check cat) relations;
    if v >= 2 then
      R.iter r (fun r ->
          let rel = R.string r in
          let label = R.string r in
          let count = R.u32 r in
          Catalog.record_stat cat ~rel ~label count);
    cat
  with
  | R.Corrupt msg -> corrupt "%s" msg
  | Hierarchy.Error msg | Types.Model_error msg -> corrupt "invalid content: %s" msg

let write_file cat path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode cat))

let read_file ?check path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode ?check data
