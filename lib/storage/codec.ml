module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  let u32 buf v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.Writer.u32: out of range";
    u8 buf v;
    u8 buf (v lsr 8);
    u8 buf (v lsr 16);
    u8 buf (v lsr 24)

  let u64 buf v =
    for i = 0 to 7 do
      u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

  let string buf s =
    u32 buf (String.length s);
    Buffer.add_string buf s

  let list buf f xs =
    u32 buf (List.length xs);
    List.iter (f buf) xs

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

  let of_string data = { data; pos = 0 }

  let need r n =
    if r.pos + n > String.length r.data then
      corrupt "truncated input: need %d bytes at offset %d (size %d)" n r.pos
        (String.length r.data)

  let u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    let a = u8 r in
    let b = u8 r in
    let c = u8 r in
    let d = u8 r in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let u64 r =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 r)) (8 * i))
    done;
    !v

  let string r =
    let n = u32 r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  (* Explicitly left-to-right: each element read advances [r.pos], so the
     evaluation order IS the wire order ([List.init]'s order is not
     specified, which this replaced). *)
  let list r f =
    let n = u32 r in
    let rec loop acc i = if i = n then List.rev acc else loop (f r :: acc) (i + 1) in
    loop [] 0

  (* Length-prefixed repetition without materializing a list — the
     snapshot decode hot path streams records through this. *)
  let iter r f =
    let n = u32 r in
    for _ = 1 to n do
      f r
    done

  let at_end r = r.pos >= String.length r.data
  let remaining r = String.length r.data - r.pos
end

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl
