(** A durable database: paged tuple store + write-ahead log + HRQL.

    A database lives in a directory holding [pages.db] (the
    {!Page_store}: shadow-paged slotted tuple pages, B-tree index,
    free-space map and DDL blob), [wal.log] (statements applied since
    the last checkpoint, {!Wal} format) and [meta] (the LSN the store is
    valid through). {!open_dir} loads the page store and replays the log
    onto it; {!exec} runs HRQL statements, appending each successful
    mutating statement to the log before acknowledging it (so
    acknowledged implies replayable — rejected updates are never logged
    and cannot poison recovery); {!checkpoint} writes only the pages
    dirtied since the previous checkpoint and truncates the log.
    Reopening after a crash (including one that tore the last log
    record, or one that died mid-checkpoint before the meta-root swap)
    recovers every acknowledged statement.

    Directories written by pre-paged builds ([snapshot.bin]) are
    migrated on first open; the {!Snapshot} codec survives as the
    interchange format for replica bootstrap and [fsck --against].

    Every logged statement carries a {e log sequence number} (LSN):
    monotone from 1 over the whole life of the directory, never reset by
    checkpoints. [lsn t] is the last statement applied, [base_lsn t] the
    statement the page store covers through; the WAL holds exactly
    [base_lsn+1 .. lsn]. LSNs are the replication protocol's addresses
    (see [docs/REPLICATION.md]): {!records_since} serves a subscriber's
    catch-up, {!install_snapshot} and {!apply_replicated} are the
    replica-side application path, which preserves the primary's LSNs so
    a replica resumes from exactly where it durably stopped. *)

type t

val open_dir : ?auto_checkpoint_every:int -> ?fsync:bool -> string -> t
(** Creates the directory if needed; recovers existing state. Takes an
    advisory lock on [DIR/LOCK] — a second concurrent open of the same
    directory fails with [Failure] rather than corrupting the log. The
    lock is released by {!close} or process exit. If recovery dropped a
    torn WAL tail, a warning with the dropped byte/record counts is
    printed to stderr (and counted in [storage.wal.torn_tail_*]), and
    the log file is truncated back to the last intact record so
    subsequent appends land on a record boundary.
    Recovery replays only records with LSN past the snapshot's
    [base_lsn], so a crash between a checkpoint's snapshot write and its
    WAL truncation cannot double-apply.

    [auto_checkpoint_every] (default 10000, 0 to disable) caps the WAL:
    when {!exec} leaves at least that many logged statements pending, it
    checkpoints automatically so a long-lived primary's log does not
    grow without bound.

    [fsync] (default [true]) governs whether WAL syncs issue a real
    [Unix.fsync] — the [--no-fsync] escape hatch for benchmarks. With it
    off, "committed" means "flushed to the OS", not "on disk". *)

val catalog : t -> Hierel.Catalog.t

val dir : t -> string
(** The directory this database was opened on (for diagnostics and the
    server's [FSCK] endpoint). *)

val exec : t -> string -> (string list, string) result
(** Runs an HRQL script (one or more statements). Every successful
    statement that changes durable state (CREATE / DROP / INSERT /
    DELETE / LET / CONSOLIDATE / EXPLICATE) is logged under a fresh LSN;
    reads and rejected updates are not. On error, statements before the
    failing one remain applied and logged (statement-level, not
    script-level, atomicity). Returns only after a WAL {!sync}: when
    this call comes back, every logged statement is durable. *)

(** {1 Group commit}

    The batched write path. [exec_buffered] appends to the WAL without
    syncing; the caller decides the commit point and must call {!sync}
    (or let {!commit_many} do it) before acknowledging any of the
    batched statements as committed. The server's event loop uses this
    to make N statements from one select tick share a single
    write+fsync. *)

val exec_buffered : t -> string -> (string list, string) result
(** {!exec} without the trailing sync. The returned [Ok] means "applied
    and staged", not "durable" — never surface it to a client before
    {!sync} returns. *)

val commit_many : t -> string list -> (string list, string) result list
(** Runs each script with {!exec_buffered}, then one shared {!sync}:
    the group-commit primitive. Result [i] corresponds to script [i];
    per-script statement-level atomicity is unchanged. *)

val sync : t -> unit
(** Makes every buffered WAL append durable (one flush + fsync, unless
    the database was opened with [~fsync:false]). No-op when nothing is
    buffered. *)

val unsynced : t -> int
(** WAL appends staged since the last {!sync} — the server's window /
    max-batch bookkeeping reads this. *)

val synced_lsn : t -> int
(** The highest LSN covered by a completed sync ([lsn t] right after
    {!sync}). Replication must only ship records at or below this: a
    record a replica could ack before the primary made it durable would
    diverge the pair on a primary crash. *)

val checkpoint : t -> unit
(** Incremental page-level checkpoint: diffs each relation against its
    binding at the previous checkpoint (relations whose binding is
    physically unchanged are skipped without reading a tuple), applies
    the changed tuples to the page store, and commits only the dirty
    pages plus a fresh page table and meta root (write-new-then-swap-root
    — a crash at any point leaves the previous checkpoint intact).
    Records [base_lsn = lsn] in [meta] and truncates [wal.log]. Cost is
    proportional to the data changed since the last checkpoint, not to
    the database size. *)

val last_checkpoint_pages : t -> int * int
(** [(pages_written, pages_total)] from the most recent {!checkpoint}
    (or [install_snapshot]/migration commit) in this process — [(0, 0)]
    before the first. The bench harness and STATS read this to verify
    checkpoint cost tracks the delta. *)

val close : t -> unit

val wal_records : t -> int
(** Statements currently in the log (for tests and monitoring). *)

(** {1 Log sequence numbers and replication hooks} *)

val lsn : t -> int
(** The LSN of the last applied mutating statement (0 for a fresh
    database). Monotone across checkpoints and reopens. *)

val base_lsn : t -> int
(** The LSN the current snapshot covers through (0 before the first
    checkpoint). *)

val records_since : t -> int -> Wal.record list
(** The logged statements with LSN strictly greater than the argument —
    the replication catch-up stream. Served from a bounded in-memory
    tail of recent records (falling back to a [wal.log] scan for older
    offsets the tail no longer covers), so per-commit shipping does not
    re-read the log file. Only meaningful for arguments [>= base_lsn t];
    older offsets need {!snapshot_image} first. *)

val snapshot_image : t -> string
(** The current catalog as a {!Snapshot} binary image (for bootstrapping
    a subscriber whose offset predates [base_lsn]). *)

val install_snapshot : t -> lsn:int -> string -> (unit, string) result
(** Replica bootstrap: replaces the whole catalog with the decoded
    image, rebuilds the paged store from it (valid through [lsn]), and
    truncates the local log. All previous local state is discarded. *)

val apply_replicated : t -> lsn:int -> string -> (unit, string) result
(** Replica apply: runs one logged statement from the primary and
    appends it to the local WAL under the {e primary's} LSN. The append
    is buffered — the replica must {!sync} before acking the batch's
    final LSN upstream. [Error]
    means divergence (a statement that replayed cleanly on the primary
    failed here) and the caller should treat it as fatal. Statements at
    or below the current {!lsn} are rejected as duplicates. *)

val log_replicated : t -> lsn:int -> string -> (unit, string) result
(** The bookkeeping half of {!apply_replicated} without the evaluation:
    appends one primary record to the local WAL (buffered; {!sync}
    before acking) and advances the LSN. For callers that evaluated the
    record against a catalog snapshot and installed the result
    themselves — the parallel WAL apply in [lib/repl] — so the local
    log keeps its record-by-record contiguity (fsck F007) whatever the
    evaluation strategy was. Duplicate LSNs are rejected. *)

val mutating : Hr_query.Ast.statement -> bool
(** Whether a statement changes durable state (and hence is logged and
    replicated). An alias of {!Hr_query.Ast.mutating}, exposed for
    read-only front ends. *)

val script_mutation : string -> string option
(** The source text of the first mutating statement in a script, if any
    — the read-only replica's pre-flight guard. Scripts that fail to
    parse return [None] (the evaluator will report the error). *)
