(** A page-oriented file with an LRU buffer pool.

    Fixed-size pages addressed by number, backed by one file, cached in a
    bounded pool with write-back on eviction. The recency list is an
    intrusive doubly-linked list, so every pool touch — hit, fault-in,
    eviction — is O(1) regardless of pool size. This is the conventional
    bottom layer of a disk-resident database; {!Heap_file} builds a row
    store on top, and {!Page_store} builds the shadow-paged tuple store
    (slotted pages, TIDs, B-trees) the database checkpoints through.

    Single-process, no concurrency control; all sizes in bytes. *)

val page_size : int
(** 4096. *)

type t

val create : ?pool_pages:int -> ?repair_partial:bool -> string -> t
(** Opens (creating if needed) the file. [pool_pages] bounds the buffer
    pool (default 64). A file whose size is not a multiple of
    {!page_size} raises [Invalid_argument] unless [repair_partial] is
    set, in which case the trailing partial page (a crash artifact —
    nothing durable can reference an unfinished extension) is truncated
    away. *)

val close : t -> unit
(** Flushes every dirty page and closes the file. *)

val page_count : t -> int

val allocate : t -> int
(** Appends a zeroed page; returns its number. *)

val read_page : t -> int -> bytes
(** The page's current contents — the pool's copy; mutate only through
    {!write_page} or {!with_page}. Raises [Invalid_argument] on an
    out-of-range page. *)

val write_page : t -> int -> bytes -> unit
(** Replaces the page (must be exactly {!page_size} bytes); marked dirty
    and written back on eviction, {!flush} or {!close}. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t n f] runs [f] on page [n]'s pooled bytes, marking the
    page dirty — in-place mutation without {!write_page}'s full-page
    copy. The bytes must not escape [f] (eviction recycles them). *)

val flush : t -> unit
(** Writes every dirty pooled page back to the file (no fsync). *)

val fsync : t -> unit
(** [Unix.fsync] on the underlying descriptor. Durability = {!flush}
    then {!fsync}. *)

(* statistics for benchmarks and tests *)
val reads_from_disk : t -> int
val writes_to_disk : t -> int
val hits : t -> int
val evictions : t -> int
