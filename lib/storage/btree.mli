(** A B-tree over fixed-size pages with byte-string keys and integer
    (TID) payloads. Duplicate keys are supported: the entry identity is
    the composite (key, tid), ordered by key bytes then tid.

    The tree is parameterised over a {!pages} provider rather than
    owning a file, so {!Page_store} can hand it shadow-paged pages while
    tests drive the identical code over an in-memory array. All
    node-mutating operations go through [modify], which the provider
    uses to mark pages dirty (and, in the store, to relocate them before
    the mutation). *)

type pages = {
  read : int -> bytes;
      (** [read id] returns the current contents of logical page [id].
          The returned bytes must not be mutated. *)
  modify : int -> (bytes -> unit) -> unit;
      (** [modify id f] applies [f] to a mutable view of page [id] and
          marks it dirty. *)
  alloc : unit -> int;  (** allocate a fresh zeroed page, returning its id *)
  free : int -> unit;  (** return a page to the provider's free pool *)
}

val max_key : int
(** Maximum key length in bytes; [insert] rejects longer keys. Callers
    (the page store) truncate keys to this bound — lookups then
    post-filter on the full key. *)

val create : pages -> int
(** Allocate and initialise an empty tree; returns the root page id. *)

val insert : pages -> root:int -> key:string -> tid:int -> int
(** Insert (key, tid), returning the (possibly new) root. Inserting a
    pair already present is a no-op. Raises [Invalid_argument] if the
    key exceeds {!max_key}. *)

val delete : pages -> root:int -> key:string -> tid:int -> int
(** Remove (key, tid) if present, returning the (possibly new) root.
    Underfull nodes are merged with or rebalanced against a sibling; an
    empty internal root collapses into its only child. *)

val lookup : pages -> root:int -> string -> int list
(** All tids stored under exactly this key, in ascending tid order. *)

val iter : pages -> root:int -> (string -> int -> unit) -> unit
(** In-order iteration over every (key, tid) entry. *)

val depth : pages -> root:int -> int
(** Levels in the tree (1 = a lone leaf). *)

val node_ids : pages -> root:int -> int list
(** Every page id reachable from the root (pre-order). *)

val check : pages -> root:int -> string list
(** Structural validation for fsck: nodes decode, entries are strictly
    (key, tid)-ordered, and every subtree respects its separator
    interval. Returns human-readable fault descriptions, [] if sound. *)
