(** The paged durable store behind {!Db}: one [pages.db] file of
    shadow-paged 4 KiB pages holding slotted heap pages of TID-addressed
    tuples, a {!Btree} over (relation, attribute, label), a free-space
    map, and a DDL blob (skeleton {!Snapshot} + relation-id map).

    Mutations accumulate in relocated copies of the affected pages;
    nothing becomes visible to a reopen until {!commit} publishes a new
    meta root (write-new-then-swap-root, crash-safe at every step).
    Checkpoint write cost is proportional to the pages touched since the
    last commit, not to the database size. See docs/STORAGE.md. *)

type t

exception Corrupt of string
(** Raised by {!open_} and the loaders on structurally invalid state
    (bad meta CRCs, out-of-range page table, undecodable records). *)

val create : ?pool_pages:int -> string -> t
(** A fresh store at [path] (truncating any existing file), with meta
    slots and an empty B-tree initialised but nothing committed — call
    {!commit} to make it openable. Builders write to a temp path and
    rename over [pages.db] so a crash mid-build never strands a
    half-written store. *)

val open_ : ?pool_pages:int -> string -> t
(** Load the newest valid epoch: pick the meta root, rebuild the page
    table, free lists, DDL blob and free-space map. O(metadata); tuple
    pages are only read by {!to_catalog} / {!check}. *)

val close : t -> unit
val base_lsn : t -> int
val epoch : t -> int
val pager : t -> Pager.t
val btree_root : t -> int

val to_catalog : t -> Hierel.Catalog.t
(** Rebuild the in-memory catalog from pages (heap scan + skeleton
    snapshot decode), also priming this store's TID maps for later
    delta application. *)

val apply_relation : t -> ?old:Hierel.Relation.t -> Hierel.Relation.t -> unit
(** Write a relation's tuples as a delta against [old] (its value at
    the last checkpoint): unchanged tuples touch no page. [?old]
    absent means every tuple is new (initial load / migration). *)

val drop_relation : t -> string -> unit
(** Delete every tuple and index entry of the named relation. *)

val apply_catalog : t -> Hierel.Catalog.t -> unit
(** {!apply_relation} with no [old] for every relation — full loads
    (legacy-snapshot migration, replica snapshot install). *)

val set_ddl : t -> Hierel.Catalog.t -> unit
(** Re-encode hierarchies, schemas, observed stats and the relation-id
    map into the DDL blob pages; a byte-identical blob touches no
    page. *)

val commit : t -> ?fsync:bool -> base_lsn:int -> unit -> int * int
(** Publish everything applied since the last commit: seal dirty pages
    (logical id + CRC), flush, write a fresh page table, swap the meta
    root, release superseded physical pages. Returns
    [(pages_written, pages_total)] and sets the
    [storage.checkpoint.dirty_pages] / [pages_total] gauges. *)

(** {2 Integrity (fsck F025–F029)} *)

type fault_kind =
  | Checksum  (** F025: page CRC / header seal violations *)
  | Dangling_tid  (** F026: index entry pointing at a dead or absent tuple *)
  | Duplicate_tid  (** F027: one TID referenced twice for the same attribute *)
  | Btree_order  (** F028: key order or leaf/heap disagreement *)
  | Freemap  (** F029: free-space map inaccurate *)

type fault = { kind : fault_kind; detail : string }

val check : t -> fault list
(** Full sweep: page seals, B-tree structure, index↔heap agreement in
    both directions, free-map accuracy. Empty list means sound. *)

(** Seeded corruption and crash hooks for the test suite. The edits
    write committed pages in place (deliberately bypassing shadowing)
    and re-seal CRCs so each one isolates a single finding. *)
module Testing : sig
  val crash_before_meta : bool ref
  (** When set, the next {!commit} dies with [_exit 137] after the data
      flush but before the meta-root swap. *)

  val corrupt_page : t -> unit
  (** Flip a byte under the B-tree root's seal (F025). *)

  val kill_slot : t -> int
  (** Tombstone a live tuple's slot without touching the index; returns
      the now-dangling TID (F026). *)

  val dup_btree_ref : t -> unit
  (** Insert a second index entry for an existing TID under the same
      attribute and commit it (F027). *)

  val swap_btree_keys : t -> unit
  (** Swap the first two entries of the leftmost leaf (F028). *)

  val skew_freemap : t -> unit
  (** Inflate one free-space map entry's free-byte count (F029). *)
end
