(** A write-ahead log of HRQL statements, addressed by log sequence
    number.

    Each record is a 64-bit LSN, a length-prefixed HRQL statement string
    and a CRC-32 over both, appended to a single file and flushed before
    the statement is applied to the in-memory catalog — the usual WAL
    discipline. LSNs are assigned by {!Db} and are monotone over the
    whole life of a database directory (they do not reset when the log
    is truncated at a checkpoint), which is what makes the log
    offset-addressable for replication: {!stream_from} replays exactly
    the records after a given LSN.

    Recovery replays records in order and stops at the first torn or
    corrupt record (a crash mid-append); the dropped tail is measured
    and reported rather than silently discarded. *)

type record = { lsn : int; stmt : string }

type torn_tail = {
  dropped_bytes : int;  (** trailing bytes not replayed *)
  dropped_records : int;
      (** structurally parseable records in the dropped tail (a torn
          final record counts as one) *)
}

type t

val open_ : string -> t
(** Opens (creating if absent) the log file for appending. *)

val append : t -> lsn:int -> string -> unit
(** Appends one statement record and flushes to the OS. *)

val close : t -> unit

val replay : string -> record list * torn_tail option
(** All intact records in the file, in append order; [[]] if the file
    does not exist. A trailing partial or corrupt record stops the
    replay; when that happens the second component describes the dropped
    tail (also counted in the [storage.wal.torn_tail_*] metrics). *)

val records : string -> record list
(** {!replay} without the tail report (convenience for callers that
    already surfaced it). *)

val stream_from : t -> int -> record Seq.t
(** [stream_from t lsn] — the intact records with LSN strictly greater
    than [lsn], in order, re-read from the file (every append is flushed,
    so the file is current). The sequence is ephemeral: it reads the
    whole file once when forced. *)

val truncate : string -> unit
(** Empties the log (after a successful checkpoint). *)
