(** A write-ahead log of HRQL statements, addressed by log sequence
    number.

    Each record is a 64-bit LSN, a length-prefixed HRQL statement string
    and a CRC-32 over both, appended to a single file. {!append} only
    buffers; {!sync} flushes the channel and [Unix.fsync]s the
    descriptor, so N appends between syncs share one write+fsync — the
    group-commit discipline. Callers must not acknowledge a statement as
    committed before the sync that covers it returns. LSNs are assigned by {!Db} and are monotone over the
    whole life of a database directory (they do not reset when the log
    is truncated at a checkpoint), which is what makes the log
    offset-addressable for replication: {!stream_from} replays exactly
    the records after a given LSN.

    Recovery replays records in order and stops at the first torn or
    corrupt record (a crash mid-append); the dropped tail is measured
    and reported rather than silently discarded. There is exactly one
    record reader — {!scan} — shared by recovery, replication streaming
    and [hrdb fsck], so the three cannot drift on framing or torn-tail
    handling. *)

type record = { lsn : int; stmt : string }

type torn_tail = {
  dropped_bytes : int;  (** trailing bytes not replayed *)
  dropped_records : int;
      (** structurally parseable records in the dropped tail (a torn
          final record counts as one) *)
}

type scan_result = {
  records : record list;  (** intact records, in append order *)
  ok_bytes : int;
      (** byte offset just past the last intact record — the safe
          truncation point for a torn tail *)
  total_bytes : int;  (** the file's size ([ok_bytes] when clean) *)
  tail : torn_tail option;  (** the dropped tail, if any *)
}

type t

val open_ : ?fsync:bool -> string -> t
(** Opens (creating if absent) the log file for appending. [~fsync:false]
    makes {!sync} skip the [Unix.fsync] (channel flush only) — an escape
    hatch for benchmarks; never use it where durability matters. Default
    [true]. *)

val append : t -> lsn:int -> string -> unit
(** Buffers one statement record. Not durable — not even visible to the
    OS — until the next {!sync}. *)

val sync : t -> unit
(** Makes every buffered append durable: flushes the channel, then
    [Unix.fsync] on the descriptor (unless the log was opened with
    [~fsync:false]). A no-op when nothing is buffered. Counts one
    [storage.wal.sync_batches] (and one [storage.wal.fsyncs] when a real
    fsync ran) and observes the batch size in
    [storage.wal.stmts_per_sync]. *)

val unsynced : t -> int
(** Appends buffered since the last {!sync}. *)

val close : t -> unit
(** Syncs, then closes. *)

val scan : string -> scan_result
(** The single shared record reader: every intact record in the file, in
    append order, plus the accounting of any torn or corrupt tail. Pure —
    touches no metrics. An absent file scans as empty. *)

val recover : string -> scan_result
(** {!scan}, plus the recovery-side metrics ([storage.wal.replayed],
    [storage.wal.torn_tail_*]). The open path uses this; read-only
    inspectors (fsck, streaming) use {!scan}. *)

val replay : string -> record list * torn_tail option
(** [recover] in its historical shape: the intact records and the tail
    report. *)

val records : string -> record list
(** {!scan} projected to just the records (convenience for callers that
    already surfaced the tail). *)

val stream_from : t -> int -> record Seq.t
(** [stream_from t lsn] — the intact records with LSN strictly greater
    than [lsn], in order, re-read from the file after flushing buffered
    appends to the OS (visibility, not durability). The sequence is
    ephemeral: it reads the whole file once when forced. *)

val truncate : string -> unit
(** Empties the log (after a successful checkpoint). *)

val truncate_to : string -> int -> unit
(** Truncates the file to the given byte length — the recovery path's
    repair for a torn tail ({!scan_result.ok_bytes}), so the next append
    lands on a record boundary instead of after unreadable garbage. *)
