(** Binary catalog snapshots.

    A snapshot is a self-contained, versioned binary image of a catalog:
    every hierarchy (nodes with names, instance flags, [isa] and
    preference edges) and every relation (schema plus signed tuples).
    The encoding goes through the public construction APIs on decode, so
    invariants (acyclicity, arity checks, the ambiguity constraint at
    [define_relation]) are re-validated on load. A CRC-32 trailer detects
    torn or corrupted files.

    Re-running the relation consistency sweep on every load is by far
    the most expensive part of decoding (it is quadratic in relation
    size), and it re-proves a property the encoder already held: a
    snapshot is only ever written from a catalog whose relations passed
    that check when they were defined. [decode ~check:false] skips it —
    the CRC still guards the bytes, structural invariants (arity,
    acyclicity, name resolution) are still enforced, and the offline
    fsck remains the deep validator for untrusted state. *)

exception Corrupt_snapshot of string

val encode : Hierel.Catalog.t -> string
val decode : ?check:bool -> string -> Hierel.Catalog.t
(** Raises {!Corrupt_snapshot} on bad magic, unsupported version, CRC
    mismatch or malformed structure. [~check] (default [true]) controls
    the per-relation consistency sweep; see the module comment. *)

val write_file : Hierel.Catalog.t -> string -> unit
val read_file : ?check:bool -> string -> Hierel.Catalog.t
