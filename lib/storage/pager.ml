let page_size = 4096

(* Process-wide counters mirror the per-pager fields so a STATS frame
   sees I/O across every open pager. [writebacks] counts only dirty
   pages written back by flush/eviction — allocation's materializing
   write is deliberately excluded, keeping "reads >= writebacks" a real
   invariant for fault-in-then-flush workloads. [evictions] counts pool
   slots recycled (clean or dirty); dirty evictions also count one
   writeback. *)
let m_disk_reads = Hr_obs.Metrics.counter "storage.pager.disk_reads"
let m_disk_writes = Hr_obs.Metrics.counter "storage.pager.disk_writes"
let m_pool_hits = Hr_obs.Metrics.counter "storage.pager.pool_hits"
let m_allocations = Hr_obs.Metrics.counter "storage.pager.allocations"
let m_writebacks = Hr_obs.Metrics.counter "storage.pager.writebacks"
let m_evictions = Hr_obs.Metrics.counter "storage.pager.evictions"

(* Pool slots form an intrusive doubly-linked list in recency order
   (head = most recent), so a touch is an O(1) unlink + push instead of
   the O(pool) list rebuild the first version did on every access. *)
type slot = {
  page_no : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable prev : slot option; (* toward the head (more recent) *)
  mutable next : slot option; (* toward the tail (least recent) *)
}

type t = {
  fd : Unix.file_descr;
  mutable pages : int;
  pool_pages : int;
  pool : (int, slot) Hashtbl.t; (* page_no -> slot *)
  mutable head : slot option; (* most recently used *)
  mutable tail : slot option; (* least recently used *)
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable pool_hits : int;
  mutable evictions : int;
}

let create ?(pool_pages = 64) ?(repair_partial = false) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then begin
    if repair_partial then
      (* a crash mid-extension left a trailing partial page; nothing
         durable can reference pages past the last full one, so cutting
         back to the boundary is safe *)
      Unix.ftruncate fd (size - (size mod page_size))
    else begin
      Unix.close fd;
      invalid_arg (Printf.sprintf "Pager.create: %s has a partial page" path)
    end
  end;
  {
    fd;
    pages = size / page_size;
    pool_pages = max 1 pool_pages;
    pool = Hashtbl.create 64;
    head = None;
    tail = None;
    disk_reads = 0;
    disk_writes = 0;
    pool_hits = 0;
    evictions = 0;
  }

let page_count t = t.pages

let check_page t page_no =
  if page_no < 0 || page_no >= t.pages then
    invalid_arg (Printf.sprintf "Pager: page %d out of range (%d pages)" page_no t.pages)

let seek t page_no = ignore (Unix.lseek t.fd (page_no * page_size) Unix.SEEK_SET)

let disk_write t page_no data =
  seek t page_no;
  let written = Unix.write t.fd data 0 page_size in
  assert (written = page_size);
  t.disk_writes <- t.disk_writes + 1;
  Hr_obs.Metrics.incr m_disk_writes

let disk_read t page_no =
  seek t page_no;
  let data = Bytes.make page_size '\000' in
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd data off (page_size - off) in
      if n = 0 then () (* sparse tail: keep zeroes *) else fill (off + n)
    end
  in
  fill 0;
  t.disk_reads <- t.disk_reads + 1;
  Hr_obs.Metrics.incr m_disk_reads;
  data

(* ---- O(1) recency list ------------------------------------------------ *)

let unlink t slot =
  (match slot.prev with Some p -> p.next <- slot.next | None -> t.head <- slot.next);
  (match slot.next with Some n -> n.prev <- slot.prev | None -> t.tail <- slot.prev);
  slot.prev <- None;
  slot.next <- None

let push_front t slot =
  slot.next <- t.head;
  slot.prev <- None;
  (match t.head with Some h -> h.prev <- Some slot | None -> t.tail <- Some slot);
  t.head <- Some slot

let touch t slot =
  if t.head != Some slot then begin
    unlink t slot;
    push_front t slot
  end

let evict_if_needed t =
  if Hashtbl.length t.pool > t.pool_pages then
    match t.tail with
    | None -> ()
    | Some victim ->
      if victim.dirty then begin
        Hr_obs.Metrics.incr m_writebacks;
        disk_write t victim.page_no victim.data
      end;
      unlink t victim;
      Hashtbl.remove t.pool victim.page_no;
      t.evictions <- t.evictions + 1;
      Hr_obs.Metrics.incr m_evictions

let slot_of t page_no =
  check_page t page_no;
  match Hashtbl.find_opt t.pool page_no with
  | Some slot ->
    t.pool_hits <- t.pool_hits + 1;
    Hr_obs.Metrics.incr m_pool_hits;
    touch t slot;
    slot
  | None ->
    let data = disk_read t page_no in
    let slot = { page_no; data; dirty = false; prev = None; next = None } in
    Hashtbl.replace t.pool page_no slot;
    push_front t slot;
    evict_if_needed t;
    slot

let allocate t =
  Hr_obs.Metrics.incr m_allocations;
  let page_no = t.pages in
  t.pages <- t.pages + 1;
  (* materialize the page on disk so file size tracks page_count *)
  disk_write t page_no (Bytes.make page_size '\000');
  page_no

let read_page t page_no = (slot_of t page_no).data

let write_page t page_no data =
  if Bytes.length data <> page_size then invalid_arg "Pager.write_page: wrong size";
  let slot = slot_of t page_no in
  slot.data <- data;
  slot.dirty <- true

let with_page t page_no f =
  let slot = slot_of t page_no in
  (* dirty before running [f]: even a partial mutation must reach disk
     rather than be silently dropped by a clean eviction *)
  slot.dirty <- true;
  f slot.data

let flush t =
  Hashtbl.iter
    (fun page_no slot ->
      if slot.dirty then begin
        Hr_obs.Metrics.incr m_writebacks;
        disk_write t page_no slot.data;
        slot.dirty <- false
      end)
    t.pool

let fsync t = Unix.fsync t.fd

let close t =
  flush t;
  Unix.close t.fd

let reads_from_disk t = t.disk_reads
let writes_to_disk t = t.disk_writes
let hits t = t.pool_hits
let evictions t = t.evictions
