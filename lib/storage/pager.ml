let page_size = 4096

(* Process-wide counters mirror the per-pager fields so a STATS frame
   sees I/O across every open pager. [writebacks] counts only dirty
   pages written back by flush/eviction — allocation's materializing
   write is deliberately excluded, keeping "reads >= writebacks" a real
   invariant for fault-in-then-flush workloads. *)
let m_disk_reads = Hr_obs.Metrics.counter "storage.pager.disk_reads"
let m_disk_writes = Hr_obs.Metrics.counter "storage.pager.disk_writes"
let m_pool_hits = Hr_obs.Metrics.counter "storage.pager.pool_hits"
let m_allocations = Hr_obs.Metrics.counter "storage.pager.allocations"
let m_writebacks = Hr_obs.Metrics.counter "storage.pager.writebacks"

type slot = { mutable page_no : int; mutable data : bytes; mutable dirty : bool }

type t = {
  fd : Unix.file_descr;
  mutable pages : int;
  pool_pages : int;
  pool : (int, slot) Hashtbl.t; (* page_no -> slot *)
  mutable lru : int list; (* most recent first *)
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable pool_hits : int;
}

let create ?(pool_pages = 64) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then begin
    Unix.close fd;
    invalid_arg (Printf.sprintf "Pager.create: %s has a partial page" path)
  end;
  {
    fd;
    pages = size / page_size;
    pool_pages = max 1 pool_pages;
    pool = Hashtbl.create 64;
    lru = [];
    disk_reads = 0;
    disk_writes = 0;
    pool_hits = 0;
  }

let page_count t = t.pages

let check_page t page_no =
  if page_no < 0 || page_no >= t.pages then
    invalid_arg (Printf.sprintf "Pager: page %d out of range (%d pages)" page_no t.pages)

let seek t page_no = ignore (Unix.lseek t.fd (page_no * page_size) Unix.SEEK_SET)

let disk_write t page_no data =
  seek t page_no;
  let written = Unix.write t.fd data 0 page_size in
  assert (written = page_size);
  t.disk_writes <- t.disk_writes + 1;
  Hr_obs.Metrics.incr m_disk_writes

let disk_read t page_no =
  seek t page_no;
  let data = Bytes.make page_size '\000' in
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd data off (page_size - off) in
      if n = 0 then () (* sparse tail: keep zeroes *) else fill (off + n)
    end
  in
  fill 0;
  t.disk_reads <- t.disk_reads + 1;
  Hr_obs.Metrics.incr m_disk_reads;
  data

let touch t page_no = t.lru <- page_no :: List.filter (fun p -> p <> page_no) t.lru

let evict_if_needed t =
  if Hashtbl.length t.pool > t.pool_pages then begin
    match List.rev t.lru with
    | [] -> ()
    | victim :: _ ->
      (match Hashtbl.find_opt t.pool victim with
      | Some slot ->
        if slot.dirty then begin
          Hr_obs.Metrics.incr m_writebacks;
          disk_write t victim slot.data
        end;
        Hashtbl.remove t.pool victim
      | None -> ());
      t.lru <- List.filter (fun p -> p <> victim) t.lru
  end

let slot_of t page_no =
  check_page t page_no;
  match Hashtbl.find_opt t.pool page_no with
  | Some slot ->
    t.pool_hits <- t.pool_hits + 1;
    Hr_obs.Metrics.incr m_pool_hits;
    touch t page_no;
    slot
  | None ->
    let data = disk_read t page_no in
    let slot = { page_no; data; dirty = false } in
    Hashtbl.replace t.pool page_no slot;
    touch t page_no;
    evict_if_needed t;
    slot

let allocate t =
  Hr_obs.Metrics.incr m_allocations;
  let page_no = t.pages in
  t.pages <- t.pages + 1;
  (* materialize the page on disk so file size tracks page_count *)
  disk_write t page_no (Bytes.make page_size '\000');
  page_no

let read_page t page_no = (slot_of t page_no).data

let write_page t page_no data =
  if Bytes.length data <> page_size then invalid_arg "Pager.write_page: wrong size";
  let slot = slot_of t page_no in
  slot.data <- data;
  slot.dirty <- true

let flush t =
  Hashtbl.iter
    (fun page_no slot ->
      if slot.dirty then begin
        Hr_obs.Metrics.incr m_writebacks;
        disk_write t page_no slot.data;
        slot.dirty <- false
      end)
    t.pool

let close t =
  flush t;
  Unix.close t.fd

let reads_from_disk t = t.disk_reads
let writes_to_disk t = t.disk_writes
let hits t = t.pool_hits
