module W = Codec.Writer
module R = Codec.Reader
open Hierel

exception Corrupt_graphs of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt_graphs s)) fmt

let magic = "HRELGRPH"
let version = 1

type graph = { tuples : (Types.sign * string) list; edges : (int * int) list }

(* Tuples are rendered by label, not node id: node ids depend on the
   order a catalog was built in, while labels survive a decode/re-encode
   round trip, so the stored bytes are comparable across processes. *)
let graph_of_relation rel =
  let sub = Subsumption.build rel in
  let schema = Relation.schema rel in
  let tuples =
    List.init (Subsumption.tuple_count sub) (fun i ->
        let t = Subsumption.tuple sub i in
        (t.Relation.sign, Item.to_string schema t.Relation.item))
  in
  let edges =
    List.concat_map
      (fun u -> List.map (fun v -> (u, v)) (Subsumption.succs sub u))
      (Subsumption.topological sub)
    |> List.sort compare
  in
  { tuples; edges }

let of_catalog cat =
  Catalog.relations cat
  |> List.sort (fun a b -> String.compare (Relation.name a) (Relation.name b))
  |> List.map (fun rel -> (Relation.name rel, graph_of_relation rel))

let encode cat =
  let w = W.create () in
  W.list w
    (fun w (name, { tuples; edges }) ->
      W.string w name;
      W.list w
        (fun w (sign, item) ->
          W.u8 w (match sign with Types.Pos -> 1 | Types.Neg -> 0);
          W.string w item)
        tuples;
      W.list w
        (fun w (u, v) ->
          W.u32 w u;
          W.u32 w v)
        edges)
    (of_catalog cat);
  let body = W.contents w in
  let out = W.create () in
  W.string out magic;
  W.u32 out version;
  W.string out body;
  W.u32 out (Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF);
  W.contents out

let decode data =
  try
    let r = R.of_string data in
    let m = R.string r in
    if m <> magic then corrupt "bad magic %S" m;
    let v = R.u32 r in
    if v <> version then corrupt "unsupported graph-store version %d" v;
    let body = R.string r in
    let crc = R.u32 r in
    let actual = Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF in
    if crc <> actual then corrupt "CRC mismatch: stored %08x, computed %08x" crc actual;
    let r = R.of_string body in
    R.list r (fun r ->
        let name = R.string r in
        let tuples =
          R.list r (fun r ->
              let sign = if R.u8 r = 1 then Types.Pos else Types.Neg in
              let item = R.string r in
              (sign, item))
        in
        let edges =
          R.list r (fun r ->
              let u = R.u32 r in
              let v = R.u32 r in
              (u, v))
        in
        (name, { tuples; edges }))
  with R.Corrupt msg -> corrupt "%s" msg

let write_file cat path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode cat))

let read_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode data
