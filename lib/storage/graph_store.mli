(** Durable subsumption graphs — the [graphs.bin] checkpoint sidecar.

    The paper requires every relation's subsumption graph to be exactly
    the transitive reduction of the strict item-subsumption order
    (§2.1); consolidation and explication both traverse it, so a stale
    or corrupted stored graph silently changes their results. At each
    checkpoint {!Hr_storage.Db} persists a canonical rendering of every
    relation's graph next to [snapshot.bin]; [hrdb fsck] recomputes the
    graphs from the snapshot and demands byte-equality.

    The encoding is canonical — relations sorted by name, tuples in
    {!Hierel.Relation.tuples} order rendered by label (node ids are
    process-dependent; labels are not), edges sorted — so two encodings
    of semantically equal catalogs are byte-equal. Framing matches
    {!Snapshot}: magic, version, length-prefixed body, CRC-32. *)

exception Corrupt_graphs of string

type graph = {
  tuples : (Hierel.Types.sign * string) list;
      (** sign and rendered item, indexed [0 .. n-1]; the virtual
          universal negated root is node [n] and is not listed *)
  edges : (int * int) list;
      (** transitive-reduction edges over node ids, sorted *)
}

val graph_of_relation : Hierel.Relation.t -> graph
(** The canonical graph, recomputed from the relation's tuples. *)

val of_catalog : Hierel.Catalog.t -> (string * graph) list
(** Every relation's recomputed graph, sorted by relation name. *)

val encode : Hierel.Catalog.t -> string
val decode : string -> (string * graph) list
(** Raises {!Corrupt_graphs} on bad magic, version, framing or CRC. *)

val write_file : Hierel.Catalog.t -> string -> unit
val read_file : string -> (string * graph) list
