module W = Codec.Writer
module R = Codec.Reader

type t = { oc : out_channel }

(* Every append is flushed before returning, so fsyncs tracks appends
   one-for-one; a gap between the two counters would mean a durability
   bug. *)
let m_appends = Hr_obs.Metrics.counter "storage.wal.appends"
let m_fsyncs = Hr_obs.Metrics.counter "storage.wal.fsyncs"
let m_replayed = Hr_obs.Metrics.counter "storage.wal.replayed"

let open_ path =
  { oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path }

let append t stmt =
  Hr_obs.Metrics.incr m_appends;
  let w = W.create () in
  W.string w stmt;
  W.u32 w (Int32.to_int (Codec.crc32 stmt) land 0xFFFFFFFF);
  output_string t.oc (W.contents w);
  flush t.oc;
  Hr_obs.Metrics.incr m_fsyncs

let close t = close_out t.oc

let replay path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let r = R.of_string data in
    let rec loop acc =
      if R.at_end r then List.rev acc
      else
        match
          let stmt = R.string r in
          let crc = R.u32 r in
          if Int32.to_int (Codec.crc32 stmt) land 0xFFFFFFFF <> crc then None
          else Some stmt
        with
        | Some stmt ->
          Hr_obs.Metrics.incr m_replayed;
          loop (stmt :: acc)
        | None -> List.rev acc (* corrupt record: drop the tail *)
        | exception R.Corrupt _ -> List.rev acc (* torn tail *)
    in
    loop []
  end

let truncate path =
  let oc = open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 path in
  close_out oc
