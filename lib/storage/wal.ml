module W = Codec.Writer
module R = Codec.Reader

type record = { lsn : int; stmt : string }
type torn_tail = { dropped_bytes : int; dropped_records : int }

type scan_result = {
  records : record list;
  ok_bytes : int;
  total_bytes : int;
  tail : torn_tail option;
}

type t = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;  (* the channel's descriptor, for real fsync *)
  fsync : bool;
  mutable unsynced : int;  (* appends buffered since the last [sync] *)
}

(* Appends only buffer; durability is the batched [sync] below, which
   flushes the channel and fsyncs the descriptor. [fsyncs] counts actual
   Unix.fsync calls, [sync_batches] counts sync calls that had work to
   do, and the [stmts_per_sync] histogram records how many appends each
   shared sync made durable. *)
let m_appends = Hr_obs.Metrics.counter "storage.wal.appends"
let m_fsyncs = Hr_obs.Metrics.counter "storage.wal.fsyncs"
let m_sync_batches = Hr_obs.Metrics.counter "storage.wal.sync_batches"
let m_stmts_per_sync = Hr_obs.Metrics.histogram "storage.wal.stmts_per_sync"
let m_replayed = Hr_obs.Metrics.counter "storage.wal.replayed"
let m_torn_bytes = Hr_obs.Metrics.counter "storage.wal.torn_tail_bytes"
let m_torn_records = Hr_obs.Metrics.counter "storage.wal.torn_tail_records"

let open_ ?(fsync = true) path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; oc; fd = Unix.descr_of_out_channel oc; fsync; unsynced = 0 }

(* The CRC covers the LSN and the statement: a record whose LSN bytes
   were torn must not replay under a different sequence number. *)
let record_crc lsn stmt =
  Int32.to_int (Codec.crc32 (string_of_int lsn ^ "\n" ^ stmt)) land 0xFFFFFFFF

let append t ~lsn stmt =
  Hr_obs.Metrics.incr m_appends;
  let w = W.create () in
  W.u64 w (Int64.of_int lsn);
  W.string w stmt;
  W.u32 w (record_crc lsn stmt);
  output_string t.oc (W.contents w);
  t.unsynced <- t.unsynced + 1

let unsynced t = t.unsynced

let sync t =
  if t.unsynced > 0 then begin
    flush t.oc;
    if t.fsync then begin
      Unix.fsync t.fd;
      Hr_obs.Metrics.incr m_fsyncs
    end;
    Hr_obs.Metrics.incr m_sync_batches;
    Hr_obs.Metrics.observe m_stmts_per_sync t.unsynced;
    t.unsynced <- 0
  end

let close t =
  sync t;
  close_out t.oc

(* Counts records that still parse structurally after the first bad one.
   They are never replayed (the framing downstream of a corrupt record
   cannot be trusted for recovery), but the count tells an operator how
   much acknowledged work the torn tail may contain. *)
let count_tail_records r =
  let rec loop n =
    if R.at_end r then n
    else
      match
        let _lsn = R.u64 r in
        let _stmt = R.string r in
        let _crc = R.u32 r in
        ()
      with
      | () -> loop (n + 1)
      | exception R.Corrupt _ -> n + 1 (* the torn final record *)
  in
  loop 0

(* The one WAL record reader: recovery replay, replication streaming and
   fsck all go through here, so the three cannot drift on framing or
   torn-tail handling. Pure — no metrics, no side effects. *)
let scan path =
  if not (Sys.file_exists path) then
    { records = []; ok_bytes = 0; total_bytes = 0; tail = None }
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let total = String.length data in
    let r = R.of_string data in
    let consumed () = total - R.remaining r in
    let rec loop acc ok_end =
      if R.at_end r then (List.rev acc, ok_end)
      else
        match
          let lsn = Int64.to_int (R.u64 r) in
          let stmt = R.string r in
          let crc = R.u32 r in
          if record_crc lsn stmt <> crc then None else Some { lsn; stmt }
        with
        | Some rec_ -> loop (rec_ :: acc) (consumed ())
        | None -> (List.rev acc, ok_end) (* corrupt record: drop the tail *)
        | exception R.Corrupt _ -> (List.rev acc, ok_end) (* torn tail *)
    in
    let records, ok_end = loop [] 0 in
    if ok_end = total then
      { records; ok_bytes = ok_end; total_bytes = total; tail = None }
    else begin
      let dropped_bytes = total - ok_end in
      let tail_r = R.of_string (String.sub data ok_end dropped_bytes) in
      let dropped_records = count_tail_records tail_r in
      {
        records;
        ok_bytes = ok_end;
        total_bytes = total;
        tail = Some { dropped_bytes; dropped_records };
      }
    end
  end

(* Recovery wrapper: the same scan, with the replay / torn-tail metrics
   the observability layer documents. *)
let recover path =
  let s = scan path in
  Hr_obs.Metrics.add m_replayed (List.length s.records);
  (match s.tail with
  | None -> ()
  | Some { dropped_bytes; dropped_records } ->
    Hr_obs.Metrics.add m_torn_bytes dropped_bytes;
    Hr_obs.Metrics.add m_torn_records dropped_records);
  s

let replay path =
  let s = recover path in
  (s.records, s.tail)

let records path = (scan path).records

let stream_from t lsn =
  (* Appends buffer in the channel until [sync]; push them to the OS so
     the file read below sees every appended record. No fsync — reading
     back our own writes needs visibility, not durability. *)
  flush t.oc;
  let all = records t.path in
  List.to_seq (List.filter (fun r -> r.lsn > lsn) all)

let truncate path =
  let oc = open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 path in
  close_out oc

let truncate_to path bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd bytes)
